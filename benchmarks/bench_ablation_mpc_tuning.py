"""Ablation — MPC tuning: reference time constant and control penalty.

Paper §IV-B: "A smaller Tref causes the system to converge faster to the
set point but may lead to a larger overshoot", and the control-penalty
weight R damps input activity.  This bench measures settling behavior of
the real closed loop (controller + request-level plant) across the two
knobs.
"""

import numpy as np

from repro.apps import AppSpec, MultiTierApp
from repro.control.mpc_core import MPCConfig
from repro.core.controller import ControllerConfig, ResponseTimeController, tracking_metrics
from repro.util.tables import format_table


def _closed_loop(model, tref_s, r_weight, periods=50, seed=404):
    plant = MultiTierApp(AppSpec.rubbos(), [2.0, 2.0], concurrency=40, rng=seed)
    plant.warmup(90)
    ctrl = ResponseTimeController(
        model,
        ControllerConfig(
            setpoint_ms=1000.0,
            period_s=15.0,
            ref_time_constant_s=tref_s,
            mpc=MPCConfig(
                prediction_horizon=8, control_horizon=2,
                q_weight=1.0, r_weight=r_weight,
                delta_max=0.3, power_weight=200.0,
            ),
        ),
        c_min=[0.2, 0.2], c_max=[3.0, 3.0], initial_alloc_ghz=[2.0, 2.0],
    )
    rts = []
    moves = []
    for _ in range(periods):
        stats = plant.run_period(15.0)
        prev = ctrl.current_demand_ghz
        c = ctrl.update(stats.rt_p90_ms, used_ghz=plant.used_ghz(15.0))
        moves.append(float(np.abs(c - prev).sum()))
        plant.set_allocations(c)
        rts.append(stats.rt_p90_ms)
    metrics = tracking_metrics(rts, 1000.0, period_s=15.0)
    settle = metrics.settling_s if np.isfinite(metrics.settling_s) else periods * 15.0
    return (
        settle,
        metrics.steady_state_mean,
        metrics.steady_state_std,
        float(np.mean(moves)),
    )


def test_ablation_mpc_tuning(benchmark, shared_model, report):
    grid = [
        (7.5, 1e5),
        (15.0, 1e5),
        (60.0, 1e5),
        (15.0, 1e4),
        (15.0, 1e6),
    ]

    def run():
        return [
            (tref, r, *_closed_loop(shared_model, tref, r)) for tref, r in grid
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["Tref (s)", "R weight", "settling (s)", "tail mean (ms)",
             "tail std (ms)", "mean |dc| per period"],
            rows,
            title="Ablation: MPC reference speed and control penalty "
            "(start from over-provisioned 2 GHz/tier)",
        )
    )
    by_key = {(tref, r): row for (tref, r), row in zip(grid, rows)}
    # All tunings must still track the set point in steady state.
    for (tref, r), row in by_key.items():
        assert abs(row[3] - 1000.0) / 1000.0 < 0.3, (tref, r, row[3])
    # Heavier control penalty means calmer inputs.
    assert by_key[(15.0, 1e6)][5] <= by_key[(15.0, 1e4)][5] + 1e-9
