"""Figure 5 — response time of App5 as the set point sweeps 600..1300 ms.

Paper: "Figure 5 shows the average response times (with standard
deviations) achieved by the controller when the response time set point
increases from 600 ms to 1300 ms.  The controller achieves the desired
response time for all the ... set points."
"""

import numpy as np

from repro.sim.testbed import TestbedConfig, TestbedExperiment
from repro.util.ascii_chart import ascii_bars
from repro.util.tables import format_table

SETPOINTS_MS = (600.0, 700.0, 800.0, 900.0, 1000.0, 1100.0, 1200.0, 1300.0)


def test_fig5_setpoint_sweep(benchmark, shared_model, report, full_mode):
    duration = 900.0 if full_mode else 450.0
    settle = 12

    def run():
        out = []
        for setpoint in SETPOINTS_MS:
            config = TestbedConfig(
                n_apps=8,
                duration_s=duration,
                seed=2010 + int(setpoint),
                setpoints_ms={5: setpoint},
            )
            result = TestbedExperiment(config, model=shared_model).run()
            rts = result.recorder.values("rt/app5")[settle:]
            out.append((setpoint, float(np.nanmean(rts)), float(np.nanstd(rts))))
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["set point (ms)", "achieved mean (ms)", "std (ms)"],
            rows,
            title="Figure 5: App5 achieved response time vs set point "
            "(concurrency 40, model identified at 1000 ms region)",
        )
    )
    report(ascii_bars([f"{int(r[0])}" for r in rows], [r[1] for r in rows],
                      title="achieved mean (ms) by set point"))
    for setpoint, mean, _std in rows:
        assert abs(mean - setpoint) / setpoint < 0.25, (
            f"set point {setpoint:.0f}: achieved {mean:.0f} ms"
        )
    # Achieved response time must increase with the set point overall.
    means = [r[1] for r in rows]
    assert means[-1] > means[0]
