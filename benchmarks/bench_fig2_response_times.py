"""Figure 2 — response time of all 8 applications at a 1000 ms set point.

Paper: "We first set the response time target for all applications to be
1000 ms.  Figure 2 plots the means and the standard deviations of the
response times of the applications in the data center ... the response
time controller works effectively to achieve the desired response time
for all the applications."  (Power optimizer disabled.)
"""

import numpy as np

from repro.sim.testbed import TestbedConfig, TestbedExperiment
from repro.util.ascii_chart import ascii_bars
from repro.util.tables import format_table


def test_fig2_all_apps_track_setpoint(benchmark, shared_model, report, full_mode):
    duration = 1200.0 if full_mode else 600.0
    config = TestbedConfig(n_apps=8, setpoint_ms=1000.0, duration_s=duration)

    def run():
        return TestbedExperiment(config, model=shared_model).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    means = []
    settle = 10  # discard the settling transient, as the paper's run does
    for i in range(8):
        rts = result.recorder.values(f"rt/app{i}")[settle:]
        rows.append([f"App{i + 1}", float(np.nanmean(rts)), float(np.nanstd(rts))])
        means.append(float(np.nanmean(rts)))
    report(
        format_table(
            ["application", "rt mean (ms)", "std (ms)"],
            rows,
            title="Figure 2: response time of all 8 applications (set point 1000 ms)",
        )
    )
    report(ascii_bars([r[0] for r in rows], means, title="mean 90p response time (ms)"))

    # Reproduction criterion: every app within 20% of the set point.
    for label, mean, _std in rows:
        assert abs(mean - 1000.0) / 1000.0 < 0.2, f"{label} off set point: {mean:.0f} ms"
