"""Figure 6 — energy per VM over the trace, IPAC vs pMapper.

Paper: "Figure 6 plots the average energy consumption per VM of IPAC and
pMapper in 7 days under different number of VMs.  In comparison to
pMapper, IPAC shows lower energy consumption in all these simulations.
On average, IPAC has a 40.7% more energy saving than pMapper. ... With
more VMs, the average energy consumption per VM becomes higher for both
schemes ... because both algorithms try to use power-efficient servers
first."

Default mode runs a reduced grid on a 3-day / 2,100-VM trace; set
``REPRO_BENCH_FULL=1`` for the paper's 7-day trace with sizes up to
5,415 VMs.
"""

import numpy as np

from repro.sim.largescale import LargeScaleConfig, run_largescale
from repro.util.ascii_chart import ascii_series
from repro.util.tables import format_table

SIZES_QUICK = (30, 130, 530, 1030, 2030)
SIZES_FULL = (30, 130, 530, 1030, 2030, 3030, 4030, 5415)


def test_fig6_energy_per_vm(benchmark, fig6_trace, report, full_mode):
    sizes = [n for n in (SIZES_FULL if full_mode else SIZES_QUICK)
             if n <= fig6_trace.n_series]
    n_servers = 3000

    def run():
        rows = []
        for n in sizes:
            per_scheme = {}
            for scheme in ("ipac", "pmapper"):
                res = run_largescale(
                    fig6_trace,
                    LargeScaleConfig(
                        n_vms=n, n_servers=n_servers, scheme=scheme, seed=7
                    ),
                )
                per_scheme[scheme] = res
            rows.append((n, per_scheme["ipac"], per_scheme["pmapper"]))
        return rows

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = []
    savings = []
    for n, ipac_res, pm_res in results:
        saving = 1.0 - ipac_res.energy_per_vm_wh / pm_res.energy_per_vm_wh
        savings.append(saving)
        table.append([
            n,
            ipac_res.energy_per_vm_wh,
            pm_res.energy_per_vm_wh,
            100.0 * saving,
            ipac_res.migrations,
            pm_res.migrations,
            ipac_res.mean_active_servers,
        ])
    report(
        format_table(
            ["#VMs", "IPAC Wh/VM", "pMapper Wh/VM", "saving %",
             "IPAC moves", "pM moves", "IPAC active srv"],
            table,
            title=f"Figure 6: energy per VM over {fig6_trace.duration_s / 86400:.0f} days "
            f"(paper reports 40.7% average IPAC saving)",
        )
    )
    report(ascii_series([row[1] for row in table],
                        label="IPAC Wh/VM vs data-center size (should rise at scale)"))

    # Reproduction criteria:
    # 1. IPAC wins at every size.
    for n, ipac_res, pm_res in results:
        assert ipac_res.energy_per_vm_wh < pm_res.energy_per_vm_wh, f"IPAC lost at n={n}"
    # 2. Substantial average saving (tens of percent; paper: 40.7%).
    assert float(np.mean(savings)) > 0.10
    # 3. Per-VM energy grows once the efficient pool saturates: the largest
    #    size costs more per VM than the cheapest mid-range size.
    per_vm = [row[1] for row in table]
    assert per_vm[-1] > min(per_vm)
    # 4. Nothing was left unplaced.
    for n, ipac_res, pm_res in results:
        assert ipac_res.unplaced_vm_steps == 0
        assert pm_res.unplaced_vm_steps == 0
