"""Ablation — does IPAC's win survive a different power-model family?

Fig. 6 uses the linear-in-utilization model; real servers have concave
SPECpower-style curves (most dynamic power spent by 50% load), which
*reduces* the benefit of dense packing.  This bench re-runs the
comparison on a pool whose power comes from measured-curve
interpolation: the claim being protected is "IPAC < pMapper", not the
exact margin.
"""

from repro.cluster import MeasuredPowerCurve, Server, ServerSpec
from repro.cluster.catalog import CPU_1P5GHZ_DUAL, CPU_2GHZ_DUAL, CPU_3GHZ_QUAD
from repro.sim.largescale import LargeScaleConfig, run_largescale
from repro.util.rng import ensure_rng
from repro.util.tables import format_table

MEASURED_TYPES = (
    ServerSpec("mA-3.0x4", CPU_3GHZ_QUAD, 16384, MeasuredPowerCurve.spec2008_like(300.0, sleep_w=10.0)),
    ServerSpec("mB-2.0x2", CPU_2GHZ_DUAL, 8192, MeasuredPowerCurve.spec2008_like(150.0, sleep_w=8.0)),
    ServerSpec("mC-1.5x2", CPU_1P5GHZ_DUAL, 4096, MeasuredPowerCurve.spec2008_like(135.0, sleep_w=7.0)),
)


def _measured_pool(n_servers: int, seed: int):
    rng = ensure_rng(seed)
    weights = (0.03, 0.27, 0.70)
    pool = []
    for i in range(n_servers):
        idx = int(rng.choice(3, p=weights))
        pool.append(Server(f"M{i:04d}", MEASURED_TYPES[idx], active=False))
    return pool


def test_ablation_measured_power_curves(benchmark, fig6_trace, report):
    n_vms = min(530, fig6_trace.n_series)
    n_servers = 1500

    def run():
        rows = []
        for family in ("linear", "measured"):
            servers = _measured_pool(n_servers, seed=8) if family == "measured" else None
            per = {}
            for scheme in ("ipac", "pmapper"):
                per[scheme] = run_largescale(
                    fig6_trace,
                    LargeScaleConfig(
                        n_vms=n_vms, n_servers=n_servers, scheme=scheme, seed=7
                    ),
                    servers=servers,
                )
            rows.append((
                family,
                per["ipac"].energy_per_vm_wh,
                per["pmapper"].energy_per_vm_wh,
                100.0 * (1 - per["ipac"].energy_per_vm_wh / per["pmapper"].energy_per_vm_wh),
            ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(format_table(
        ["power-model family", "IPAC Wh/VM", "pMapper Wh/VM", "saving %"],
        rows,
        title=f"Ablation: linear vs SPECpower-style measured curves at {n_vms} VMs",
    ))
    for family, ipac_wh, pm_wh, _saving in rows:
        assert ipac_wh < pm_wh, f"IPAC lost under the {family} power family"
