"""Figure 4 — response time of App5 under concurrency levels 30..80.

Paper: "To test the robustness of the response time controller when it
is applied to a system that is different from the one used to do system
identification, we conduct a set of experiments with wide ranges of
concurrency levels ... The controller achieves the desired response time
for all the concurrency levels."  (Set point 1000 ms throughout; the
model was identified at concurrency 40 only.)
"""

import numpy as np

from repro.sim.testbed import TestbedConfig, TestbedExperiment
from repro.util.ascii_chart import ascii_bars
from repro.util.tables import format_table

CONCURRENCY_LEVELS = (30, 40, 50, 60, 70, 80)


def test_fig4_concurrency_sweep(benchmark, shared_model, report, full_mode):
    duration = 900.0 if full_mode else 450.0
    settle = 12

    from repro.apps.workload import ConstantWorkload

    def run():
        out = []
        for level in CONCURRENCY_LEVELS:
            config = TestbedConfig(
                n_apps=8, duration_s=duration, seed=2010 + level,
                workloads={5: ConstantWorkload(level)},
            )
            result = TestbedExperiment(config, model=shared_model).run()
            rts = result.recorder.values("rt/app5")[settle:]
            out.append((level, float(np.nanmean(rts)), float(np.nanstd(rts))))
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["concurrency", "rt mean (ms)", "std (ms)"],
            rows,
            title="Figure 4: App5 response time vs concurrency (set point 1000 ms, "
            "model identified at concurrency 40)",
        )
    )
    report(ascii_bars([str(r[0]) for r in rows], [r[1] for r in rows],
                      title="mean 90p response time (ms) by concurrency"))
    for level, mean, _std in rows:
        assert abs(mean - 1000.0) / 1000.0 < 0.25, (
            f"concurrency {level}: {mean:.0f} ms off the 1000 ms set point"
        )
