"""Shared fixtures for the figure-reproduction benchmarks.

Every bench prints the rows/series of the paper figure it regenerates
(directly to the terminal, bypassing capture) and also times the
underlying computation through pytest-benchmark.

Set ``REPRO_BENCH_FULL=1`` for full-resolution runs (all 54 data-center
sizes of Fig. 6, the full 1500 s testbed traces); the default
configuration is scaled to finish the whole suite in a few minutes while
preserving every qualitative shape.
"""

from __future__ import annotations

import os

import pytest

from repro.sim.testbed import TestbedConfig, TestbedExperiment
from repro.traces import TraceConfig, generate_trace

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")


@pytest.fixture(scope="session")
def full_mode() -> bool:
    """True when REPRO_BENCH_FULL requests paper-scale runs."""
    return FULL


@pytest.fixture(scope="session")
def shared_model():
    """One system-identification pass shared by all testbed benches,
    exactly as the paper identifies once and reuses the model."""
    experiment = TestbedExperiment(TestbedConfig())
    model = experiment.identify_model()
    return model


@pytest.fixture(scope="session")
def fig6_trace(full_mode):
    """The synthetic stand-in for the paper's 5,415-server trace."""
    n = 5415 if full_mode else 2100
    days = 7 if full_mode else 3
    return generate_trace(TraceConfig(n_servers=n, n_days=days), rng=2008)


@pytest.fixture
def report(capsys):
    """Print *text* to the real terminal, bypassing pytest capture."""

    def _print(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _print
