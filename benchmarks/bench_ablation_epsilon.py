"""Ablation — Minimum Slack's allowed-slack eps and step budget.

Algorithm 1 trades solution quality against search effort through the
allowed slack eps (early exit) and the step budget (eps escalation).
This bench sweeps both on a fixed packing instance and reports slack
achieved vs steps spent — the knob a deployment tunes for large
migration lists.
"""

import numpy as np

from repro.packing.mbs import MemoryConstraint, minimum_bin_slack
from repro.util.tables import format_table


def _instance(n_items: int, seed: int):
    rng = np.random.default_rng(seed)
    sizes = rng.uniform(0.1, 1.5, size=n_items)
    mems = rng.choice([512.0, 1024.0, 2048.0], size=n_items)
    return sizes, mems


def test_ablation_epsilon_and_budget(benchmark, report):
    sizes, mems = _instance(26, seed=11)
    capacity = 11.4
    mem_capacity = 16384.0
    grid = [
        (0.0, 200_000),
        (0.0, 5_000),
        (0.0, 500),
        (0.05, 200_000),
        (0.2, 200_000),
        (0.5, 200_000),
    ]

    def run():
        rows = []
        for eps, budget in grid:
            res = minimum_bin_slack(
                list(sizes), capacity,
                constraint=MemoryConstraint(list(mems), mem_capacity),
                epsilon=eps, max_steps=budget,
            )
            rows.append((eps, budget, res.slack, res.steps, res.epsilon_used,
                         res.early_exit))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["eps (GHz)", "step budget", "slack achieved", "steps used",
             "eps after escalation", "early exit"],
            rows,
            title=f"Ablation: Minimum Slack eps / budget sweep "
            f"(26 items, bin {capacity} GHz)",
        )
    )
    by_key = {(e, b): r for (e, b, *_), r in zip(grid, rows)}
    exhaustive_slack = by_key[(0.0, 200_000)][2]
    # Looser eps never yields a *smaller* slack than the exhaustive run.
    for (eps, budget), row in by_key.items():
        assert row[2] >= exhaustive_slack - 1e-9
    # Larger eps terminates in fewer steps.
    assert by_key[(0.5, 200_000)][3] <= by_key[(0.05, 200_000)][3]
    # The slack found with a generous budget is near-perfect here.
    assert exhaustive_slack < 0.05
