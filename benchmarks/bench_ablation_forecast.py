"""Ablation — provisioning against forecast peaks vs current demand.

The paper's optimizer packs against demand measured at invocation time
(§V); demand growth inside the multi-hour window then overloads hosts.
This bench quantifies the trade offered by the forecasting extension
(:mod:`repro.traces.forecast`): overload pressure vs energy, including
the conservative no-reconfiguration reference point.
"""

from repro.sim.largescale import LargeScaleConfig, run_largescale
from repro.util.tables import format_table


def test_ablation_forecast_provisioning(benchmark, fig6_trace, report):
    n_vms = min(530, fig6_trace.n_series)
    variants = [
        ("ipac / current demand (paper)", dict(scheme="ipac", provisioning="current")),
        ("ipac / ewma-peak forecast", dict(scheme="ipac", provisioning="ewma_peak")),
        ("ipac / holt forecast", dict(scheme="ipac", provisioning="holt")),
        ("static peak (no reconfiguration)", dict(scheme="static_peak")),
    ]

    def run():
        rows = []
        for label, kw in variants:
            res = run_largescale(
                fig6_trace,
                LargeScaleConfig(n_vms=n_vms, n_servers=1500, seed=7, **kw),
            )
            rows.append((
                label,
                res.energy_per_vm_wh,
                res.overload_server_steps,
                res.migrations,
                res.mean_active_servers,
            ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(format_table(
        ["provisioning variant", "Wh/VM", "overloaded server-steps",
         "moves", "mean active"],
        rows,
        title=f"Ablation: provisioning policy at {n_vms} VMs",
    ))
    by_label = dict((r[0], r) for r in rows)
    paper = by_label["ipac / current demand (paper)"]
    ewma = by_label["ipac / ewma-peak forecast"]
    holt = by_label["ipac / holt forecast"]
    static = by_label["static peak (no reconfiguration)"]
    # Forecast provisioning holds or reduces overload pressure at a small
    # energy premium (on smooth traces the difference can be noise-level;
    # the trend-aware forecaster is the stronger of the two).
    assert min(ewma[2], holt[2]) <= paper[2]
    assert ewma[1] <= paper[1] * 1.15
    assert holt[1] <= paper[1] * 1.15
    # The static reference never overloads but pays heavily in energy.
    assert static[2] == 0
    assert static[1] > paper[1]
