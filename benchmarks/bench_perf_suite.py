"""Hot-path perf suite — standalone entry point.

Thin wrapper over :mod:`repro.bench.perf_suite` (same code path as the
``repro-bench`` console script)::

    PYTHONPATH=src python benchmarks/bench_perf_suite.py --scale smoke
    PYTHONPATH=src python benchmarks/bench_perf_suite.py \
        --output BENCH_perf.json --check-against BENCH_perf.json

Unlike the ``bench_fig*`` files in this directory this is not a
pytest-benchmark module: it times fast-lane vs reference paths and
writes the machine-readable report CI tracks (``BENCH_perf.json``).
"""

import sys

from repro.cli import main_bench

if __name__ == "__main__":
    sys.exit(main_bench())
