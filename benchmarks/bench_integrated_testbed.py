"""Integrated two-level run on the testbed (paper Fig. 1 architecture).

§VII-A: "We first evaluate the response time controller and examine the
power optimizer on the hardware testbed."  This bench runs both levels
together: the MPC controllers track the SLA every 15 s while a mid-run
IPAC invocation consolidates the 12 VMs onto fewer hosts and sleeps the
rest — response times must stay on the set point through the
consolidation, and cluster power must drop.
"""

import numpy as np

from repro.sim.testbed import TestbedConfig, TestbedExperiment
from repro.util.ascii_chart import ascii_series
from repro.util.tables import format_table


def test_integrated_controller_plus_optimizer(benchmark, shared_model, report):
    config = TestbedConfig(
        n_apps=6,                  # 12 VMs: consolidable from 4 to 2 hosts
        duration_s=1200.0,
        optimize_at_s=(600.0,),
    )

    def run():
        return TestbedExperiment(config, model=shared_model).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rec = result.recorder
    power = rec.values("power/total")
    times = rec.times("power/total")
    before = float(power[(times >= 300.0) & (times < 600.0)].mean())
    after = float(power[(times >= 750.0)].mean())
    moves = rec.values("optimizer/moves")
    active_after = rec.values("optimizer/active_servers")

    rows = [
        ["cluster power before optimize (W)", before],
        ["cluster power after optimize (W)", after],
        ["power saving (%)", 100.0 * (1.0 - after / before)],
        ["migrations executed", float(moves.sum())],
        ["active servers after", float(active_after[-1])],
    ]
    rt_rows = []
    for i in range(config.n_apps):
        rts = rec.values(f"rt/app{i}")
        pre = rts[(times >= 300.0) & (times < 600.0)]
        post = rts[times >= 750.0]
        rt_rows.append([f"app{i}", float(np.nanmean(pre)), float(np.nanmean(post))])

    report(format_table(["metric", "value"], rows,
                        title="Integrated run: IPAC invoked at t=600 s"))
    report(format_table(["app", "rt before (ms)", "rt after (ms)"], rt_rows,
                        title="SLA tracking through the consolidation"))
    report(ascii_series(power, label="cluster power (W); optimizer fires at 600 s"))

    # Reproduction criteria: consolidation actually happened, power fell,
    # and every application still tracks its set point afterwards.
    assert moves.sum() >= 1
    assert active_after[-1] < config.n_servers
    assert after < before
    for label, _pre, post in rt_rows:
        assert abs(post - 1000.0) / 1000.0 < 0.3, f"{label} lost tracking: {post:.0f} ms"
