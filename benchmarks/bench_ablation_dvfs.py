"""Ablation — DVFS's contribution to IPAC's savings.

The paper credits IPAC's Fig. 6 margin to two mechanisms: better packing
(Minimum Slack) and "IPAC is integrated with DVFS for power savings on a
short time scale between two consecutive invocations of the optimization
algorithm".  This bench separates them by running IPAC with DVFS forced
off, and pMapper with DVFS forced on.
"""

from repro.sim.largescale import LargeScaleConfig, run_largescale
from repro.util.tables import format_table


def test_ablation_dvfs_contribution(benchmark, fig6_trace, report):
    n_vms = 530 if fig6_trace.n_series >= 530 else fig6_trace.n_series
    variants = [
        ("ipac + dvfs (paper)", "ipac", True),
        ("ipac, no dvfs", "ipac", False),
        ("pmapper (paper)", "pmapper", False),
        ("pmapper + dvfs", "pmapper", True),
    ]

    def run():
        out = []
        for label, scheme, dvfs in variants:
            res = run_largescale(
                fig6_trace,
                LargeScaleConfig(
                    n_vms=n_vms, n_servers=1500, scheme=scheme, dvfs=dvfs, seed=7
                ),
            )
            out.append((label, res.energy_per_vm_wh, res.mean_active_servers))
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["variant", "Wh/VM", "mean active servers"],
            rows,
            title=f"Ablation: DVFS contribution at {n_vms} VMs",
        )
    )
    values = {label: wh for label, wh, _ in rows}
    # DVFS saves energy for both schemes.
    assert values["ipac + dvfs (paper)"] < values["ipac, no dvfs"]
    assert values["pmapper + dvfs"] < values["pmapper (paper)"]
    # Packing alone (no DVFS anywhere) still favors IPAC.
    assert values["ipac, no dvfs"] < values["pmapper (paper)"]
