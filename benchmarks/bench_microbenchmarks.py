"""Microbenchmarks of the hot primitives.

Not figure reproductions: these time the inner loops everything else is
built on, so performance regressions show up directly in CI history.
(The guides' rule — measure before optimizing — needs a baseline.)
"""

import numpy as np

from repro.apps import AppSpec, MultiTierApp
from repro.apps.queueing import approx_mva_closed_network, mva_closed_network
from repro.control.arx import ARXModel
from repro.control.mpc_core import MPCConfig, MPCController
from repro.packing.mbs import MemoryConstraint, minimum_bin_slack
from repro.sim.des import PSResource, Simulator


def test_perf_des_request_throughput(benchmark):
    """Simulated seconds of a loaded 2-tier app per wall-clock call."""
    app = MultiTierApp(AppSpec.rubbos(), [0.8, 0.8], concurrency=40, rng=1)
    app.warmup(30.0)

    def run():
        return app.run_period(30.0).completed

    completed = benchmark(run)
    assert completed > 0


def test_perf_ps_resource_churn(benchmark):
    """Raw PS queue: 1000 jobs through one resource."""

    def run():
        sim = Simulator()
        ps = PSResource(sim, 4.0)
        rng = np.random.default_rng(0)
        for t in np.sort(rng.uniform(0, 100.0, size=1000)):
            sim.schedule_at(float(t), lambda: ps.submit(float(rng.uniform(0.05, 0.3))))
        sim.run()
        return ps.completed_jobs

    done = benchmark(run)
    assert done == 1000


def test_perf_minimum_bin_slack(benchmark):
    """Algorithm 1 on a 60-item list with a memory constraint."""
    rng = np.random.default_rng(3)
    sizes = rng.uniform(0.1, 1.5, size=60)
    mems = rng.choice([512.0, 1024.0, 2048.0], size=60)

    def run():
        return minimum_bin_slack(
            list(sizes), 11.4,
            constraint=MemoryConstraint(list(mems), 16384.0),
            epsilon=0.05, max_steps=5000,
        )

    result = benchmark(run)
    assert result.slack <= 11.4


def test_perf_mpc_solve(benchmark):
    """One full constrained MPC solve (the per-period controller cost)."""
    model = ARXModel(a=[0.4], b=[[-800.0, -300.0], [-100.0, -50.0]], g=1800.0)
    ctrl = MPCController(model, MPCConfig(r_weight=1e5, delta_max=0.3))
    t_hist = [1600.0]
    c_hist = np.array([[0.7, 0.6], [0.7, 0.6]])
    ref = np.linspace(1500.0, 1000.0, 8)

    def run():
        return ctrl.solve(t_hist, c_hist, ref, 1000.0, [0.1, 0.1], [3.0, 3.0])

    sol = benchmark(run)
    assert sol.qp.ok


def test_perf_exact_vs_approx_mva(benchmark):
    """Exact MVA at n=2000 (the case approximate MVA exists to avoid)."""

    def run():
        return mva_closed_network([0.02, 0.015, 0.01], 2000, 1.0)

    res = benchmark(run)
    approx = approx_mva_closed_network([0.02, 0.015, 0.01], 2000, 1.0)
    assert abs(approx.throughput_rps - res.throughput_rps) / res.throughput_rps < 0.05
