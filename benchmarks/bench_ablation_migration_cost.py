"""Ablation — the cost-aware migration interface (paper §V).

"When the IPAC algorithm requests a migration, benefits and costs should
be compared to decide if the migration should be allowed or rejected ...
we provide an interface for data center administrators to define their
own cost functions."  This bench runs the same trace under three stock
policies and reports the migrations executed vs the energy achieved —
the trade a policy encodes.
"""

from repro.core.optimizer.ipac import IPACConfig, ipac
from repro.core.optimizer.migration import (
    AllowAllPolicy,
    BandwidthBudgetPolicy,
    BenefitThresholdPolicy,
)
from repro.core.optimizer.minslack import MinSlackConfig
from repro.core.optimizer.pac import PACConfig
from repro.sim.largescale import LargeScaleConfig, run_largescale
from repro.util.tables import format_table


def test_ablation_migration_cost_policies(benchmark, fig6_trace, report):
    n_vms = min(330, fig6_trace.n_series)
    policies = [
        ("allow all (paper sim)", AllowAllPolicy()),
        ("benefit threshold", BenefitThresholdPolicy(
            amortization_horizon_s=4 * 3600.0, overhead_w=60.0, safety_factor=4.0)),
        ("bandwidth budget 4 GB", BandwidthBudgetPolicy(budget_mb_per_invocation=4096.0)),
    ]
    pac_cfg = PACConfig(
        minslack=MinSlackConfig(epsilon_ghz=0.1, max_steps=3000),
        target_utilization=0.9,
    )
    config = LargeScaleConfig(n_vms=n_vms, n_servers=1000, scheme="ipac", seed=7)

    def run():
        rows = []
        for label, policy in policies:
            ipac_cfg = IPACConfig(pac=pac_cfg, cost_policy=policy)
            res = run_largescale(
                fig6_trace, config, optimizer=lambda p, c=ipac_cfg: ipac(p, c)
            )
            rows.append((label, res.energy_per_vm_wh, res.migrations))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["policy", "Wh/VM", "migrations executed"],
            rows,
            title=f"Ablation: cost-aware migration policies at {n_vms} VMs",
        )
    )
    by_label = {label: (wh, moves) for label, wh, moves in rows}
    allow_wh, allow_moves = by_label["allow all (paper sim)"]
    for label, (wh, moves) in by_label.items():
        if label == "allow all (paper sim)":
            continue
        # Restrictive policies execute no more migrations...
        assert moves <= allow_moves
        # ...at a bounded energy premium.
        assert wh <= allow_wh * 1.5
