"""Ablation — on-demand overload relief between optimizer invocations.

Paper §III: between two optimizer invocations "an unexpected increase of
the workload can cause a severe overload on a server", to be handled by
an on-demand migration algorithm.  This bench compares a spiky trace run
with and without the relief pass: overloaded server-steps (SLA pressure)
must drop, at a modest cost in extra migrations and energy.
"""

from dataclasses import replace

from repro.sim.largescale import LargeScaleConfig, run_largescale
from repro.traces import TraceConfig, generate_trace
from repro.util.tables import format_table


def test_ablation_ondemand_relief(benchmark, report):
    trace = generate_trace(
        TraceConfig(n_servers=400, n_days=2, spike_probability=0.008,
                    spike_magnitude=0.5),
        rng=99,
    )
    base = LargeScaleConfig(
        n_vms=400, n_servers=600, scheme="ipac", seed=3,
        optimize_every_steps=48,  # 12 h between consolidations: spikes bite
    )

    def run():
        without = run_largescale(trace, base)
        with_relief = run_largescale(trace, replace(base, ondemand_relief=True))
        return without, with_relief

    without, with_relief = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["ipac only", without.overload_server_steps, without.migrations,
         0, without.energy_per_vm_wh],
        ["ipac + on-demand relief", with_relief.overload_server_steps,
         with_relief.migrations, int(with_relief.info["relief_moves"]),
         with_relief.energy_per_vm_wh],
    ]
    report(format_table(
        ["variant", "overloaded server-steps", "optimizer moves",
         "relief moves", "Wh/VM"],
        rows,
        title="Ablation: on-demand overload relief (spiky trace, "
        "12 h optimizer period)",
    ))

    assert with_relief.overload_server_steps < without.overload_server_steps
    assert with_relief.info["relief_moves"] > 0
    # Relief is a safety valve, not a power feature: energy stays close.
    assert with_relief.energy_per_vm_wh < without.energy_per_vm_wh * 1.15
