"""Ablation — Minimum Slack vs first-fit-decreasing packing quality.

The paper attributes part of IPAC's win to its packing core: "pMapper is
adapted from FFD while IPAC is adapted from Minimum Slack.  Typically,
Minimum Slack provides a better solution in terms of power consumption,
especially when facing constraints such as memory constraint".  This
bench isolates that claim: one static snapshot, both placers, compare
hosting-server counts and idle-power proxy — no DVFS, no drain loop.
"""

import numpy as np

from repro.core.optimizer import PACConfig, PlacementProblem, ServerInfo, VMInfo, pac, pmapper
from repro.core.optimizer.pmapper import PMapperConfig
from repro.util.tables import format_table


def _snapshot(n_vms: int, seed: int) -> PlacementProblem:
    rng = np.random.default_rng(seed)
    servers = []
    for i in range(max(4, n_vms // 2)):
        cap, mem, eff, busy = [
            (12.0, 16384.0, 0.040, 300.0),
            (4.0, 8192.0, 0.027, 150.0),
            (3.0, 4096.0, 0.022, 135.0),
        ][i % 3]
        servers.append(ServerInfo(
            f"s{i:03d}", cap, mem, eff, active=False,
            idle_w=busy * 0.6, busy_w=busy, sleep_w=8.0,
        ))
    vms = tuple(
        VMInfo(f"v{j:03d}", float(rng.uniform(0.2, 1.8)),
               float(rng.choice([512.0, 1024.0, 2048.0])))
        for j in range(n_vms)
    )
    return PlacementProblem(tuple(servers), vms, {})


def _idle_power_proxy(problem: PlacementProblem, mapping) -> float:
    """Sum of hosting servers' idle power — the fixed cost consolidation
    is trying to minimize."""
    hosting = set(mapping.values())
    return sum(s.idle_w for s in problem.servers if s.server_id in hosting)


def test_ablation_minslack_vs_ffd(benchmark, report):
    sizes = (40, 120, 400)
    seeds = (1, 2, 3)

    from repro.packing import capacity_bound_servers

    def run():
        rows = []
        for n in sizes:
            for seed in seeds:
                problem = _snapshot(n, seed)
                pac_plan = pac(problem, config=PACConfig(target_utilization=0.95))
                pm_plan = pmapper(problem, PMapperConfig(target_utilization=0.95))
                lower = capacity_bound_servers(
                    [v.demand_ghz for v in problem.vms],
                    [s.max_capacity_ghz for s in problem.servers],
                    target_utilization=0.95,
                )
                rows.append((
                    n, seed, lower,
                    len(set(pac_plan.final_mapping.values())),
                    len(set(pm_plan.final_mapping.values())),
                    _idle_power_proxy(problem, pac_plan.final_mapping),
                    _idle_power_proxy(problem, pm_plan.final_mapping),
                ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["#VMs", "seed", "lower bound", "PAC hosts", "FFD hosts",
             "PAC idle W", "FFD idle W"],
            rows,
            title="Ablation: Minimum-Slack (PAC) vs FFD (pMapper phase 1) packing "
            "(lower bound = capacity-only minimum server count)",
        )
    )
    # Every packing respects the capacity lower bound.
    for n, seed, lower, pac_hosts_n, ffd_hosts_n, *_ in rows:
        assert pac_hosts_n >= lower
        assert ffd_hosts_n >= lower
    pac_hosts = sum(r[3] for r in rows)
    ffd_hosts = sum(r[4] for r in rows)
    pac_idle = sum(r[5] for r in rows)
    ffd_idle = sum(r[6] for r in rows)
    report(
        f"totals: PAC {pac_hosts} hosts / {pac_idle:.0f} W idle vs "
        f"FFD {ffd_hosts} hosts / {ffd_idle:.0f} W idle"
    )
    # Minimum Slack never needs more idle power than FFD in aggregate.
    assert pac_idle <= ffd_idle
