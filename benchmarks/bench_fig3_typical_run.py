"""Figure 3 — typical run under a workload increase (concurrency 40->80).

Paper: App5's concurrency doubles on t in [600 s, 1200 s).  Fig. 3(a)
shows the response time violating the 1000 ms limit at the step and the
controller reconverging; Fig. 3(b) shows cluster power rising slightly
during the overload (more CPU allocated -> higher DVFS levels) and
returning afterwards.  The caption also references the uncontrolled
baseline, reproduced here as a static-allocation run.
"""

import numpy as np

from repro.apps.workload import StepWorkload
from repro.sim.testbed import TestbedConfig, TestbedExperiment
from repro.util.ascii_chart import ascii_series
from repro.util.tables import format_table


def _segments(values, times, spans):
    return {
        name: values[(times >= a) & (times < b)]
        for name, (a, b) in spans.items()
    }


def test_fig3_step_workload_controlled(benchmark, shared_model, report, full_mode):
    duration = 1500.0
    config = TestbedConfig(
        n_apps=8,
        duration_s=duration,
        workloads={5: StepWorkload(40, 80, 600.0, 1200.0)},
    )

    def run():
        return TestbedExperiment(config, model=shared_model).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rec = result.recorder
    rts = rec.values("rt/app5")
    power = rec.values("power/total")
    times = rec.times("rt/app5")

    spans = {
        "before step (300-600 s)": (300.0, 600.0),
        "spike window (600-720 s)": (600.0, 720.0),
        "controlled overload (720-1200 s)": (720.0, 1200.0),
        "after step (1260-1500 s)": (1260.0, 1500.0),
    }
    rt_seg = _segments(rts, times, spans)
    pw_seg = _segments(power, times, spans)
    rows = [
        [name, float(np.nanmean(rt_seg[name])), float(np.nanmax(rt_seg[name])),
         float(np.nanmean(pw_seg[name]))]
        for name in spans
    ]
    report(
        format_table(
            ["phase", "rt mean (ms)", "rt max (ms)", "power mean (W)"],
            rows,
            title="Figure 3: App5 under a 40->80 concurrency step on [600, 1200) s",
        )
    )
    report(ascii_series(rts, label="Fig 3(a): App5 90p response time (ms) over 1500 s"))
    report(ascii_series(power, label="Fig 3(b): cluster power (W) over 1500 s"))

    before_rt = float(np.nanmean(rt_seg["before step (300-600 s)"]))
    spike_max = float(np.nanmax(rt_seg["spike window (600-720 s)"]))
    during_rt = float(np.nanmean(rt_seg["controlled overload (720-1200 s)"]))
    after_rt = float(np.nanmean(rt_seg["after step (1260-1500 s)"]))
    before_pw = float(np.nanmean(pw_seg["before step (300-600 s)"]))
    during_pw = float(np.nanmean(pw_seg["controlled overload (720-1200 s)"]))

    # Reproduction criteria: tracking before; violation at the step;
    # reconvergence during and after; power slightly up during overload.
    assert abs(before_rt - 1000.0) < 250.0
    assert spike_max > 1500.0
    assert abs(during_rt - 1000.0) / 1000.0 < 0.3
    assert abs(after_rt - 1000.0) / 1000.0 < 0.3
    assert during_pw > before_pw


def test_fig3_uncontrolled_baseline(benchmark, shared_model, report):
    """Without the controller, static allocations sized for the base load
    stay in violation for the entire overload window."""
    config = TestbedConfig(
        n_apps=8,
        duration_s=1500.0,
        controlled=False,
        initial_alloc_ghz=0.55,
        workloads={5: StepWorkload(40, 80, 600.0, 1200.0)},
    )

    def run():
        return TestbedExperiment(config, model=shared_model).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rec = result.recorder
    rts = rec.values("rt/app5")
    times = rec.times("rt/app5")
    during = rts[(times >= 720.0) & (times < 1200.0)]
    report(
        format_table(
            ["metric", "value"],
            [
                ["uncontrolled rt mean during overload (ms)", float(np.nanmean(during))],
                ["violation factor vs 1000 ms set point", float(np.nanmean(during)) / 1000.0],
            ],
            title="Figure 3 baseline: static allocation, no controller",
        )
    )
    assert np.nanmean(during) > 2000.0
