"""Application substrate: demands, MVA, workloads, the RUBBoS plant."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    AppSpec,
    ConstantWorkload,
    Deterministic,
    Erlang,
    Exponential,
    LogNormal,
    MultiTierApp,
    PiecewiseWorkload,
    RampWorkload,
    StepWorkload,
    TierSpec,
    mm1_mean_response_time,
    mm1_utilization,
    mva_closed_network,
    p90_from_mean_exponential,
)
from repro.apps.queueing import closed_network_response_time_ms


class TestDemandDistributions:
    def test_deterministic_sample(self, rng):
        d = Deterministic(0.5)
        assert d.sample(rng) == 0.5
        assert d.mean == 0.5

    @pytest.mark.parametrize("dist", [
        Exponential(0.02),
        Erlang(0.02, k=3),
        LogNormal(0.02, cv=0.8),
        Deterministic(0.02),
    ])
    def test_sample_mean_matches_declared(self, dist, rng):
        samples = dist.sample_n(rng, 20000)
        assert samples.mean() == pytest.approx(dist.mean, rel=0.05)

    @pytest.mark.parametrize("dist", [
        Exponential(0.02), Erlang(0.02), LogNormal(0.02), Deterministic(0.02)
    ])
    def test_samples_positive(self, dist, rng):
        assert np.all(dist.sample_n(rng, 1000) > 0)

    def test_erlang_less_variable_than_exponential(self, rng):
        exp = Exponential(1.0).sample_n(rng, 20000)
        erl = Erlang(1.0, k=4).sample_n(rng, 20000)
        assert erl.std() < exp.std()

    def test_erlang_k1_matches_exponential_cv(self, rng):
        erl = Erlang(1.0, k=1).sample_n(rng, 20000)
        assert erl.std() == pytest.approx(1.0, rel=0.1)

    def test_lognormal_cv(self, rng):
        ln = LogNormal(2.0, cv=0.5)
        samples = ln.sample_n(rng, 50000)
        assert samples.std() / samples.mean() == pytest.approx(0.5, rel=0.1)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            Exponential(0.0)
        with pytest.raises(ValueError):
            Erlang(1.0, k=0)
        with pytest.raises(ValueError):
            LogNormal(1.0, cv=0.0)
        with pytest.raises(ValueError):
            Deterministic(-1.0)


class TestMVA:
    def test_single_station_no_think(self):
        # One station, 1 client, no think time: R = s.
        res = mva_closed_network([0.1], 1, 0.0)
        assert res.response_time_s == pytest.approx(0.1)
        assert res.throughput_rps == pytest.approx(10.0)

    def test_zero_clients(self):
        res = mva_closed_network([0.1, 0.2], 0, 1.0)
        assert res.response_time_s == 0.0
        assert res.throughput_rps == 0.0

    def test_utilization_below_one(self):
        res = mva_closed_network([0.02, 0.015], 100, 1.0)
        assert np.all(res.station_utilization <= 1.0)

    def test_throughput_bounded_by_bottleneck(self):
        s = [0.02, 0.015]
        res = mva_closed_network(s, 500, 1.0)
        assert res.throughput_rps <= 1.0 / max(s) + 1e-9

    def test_response_time_monotone_in_population(self):
        rts = [
            mva_closed_network([0.02, 0.015], n, 1.0).response_time_s
            for n in [1, 10, 40, 80, 160]
        ]
        assert all(b >= a - 1e-12 for a, b in zip(rts, rts[1:]))

    def test_little_law_consistency(self):
        res = mva_closed_network([0.05, 0.03], 20, 0.5)
        # N = X * (R + Z)
        assert res.throughput_rps * (res.response_time_s + 0.5) == pytest.approx(20.0)

    def test_queue_lengths_sum_little(self):
        res = mva_closed_network([0.05, 0.03], 20, 0.5)
        assert res.station_queue_len.sum() == pytest.approx(
            res.throughput_rps * res.response_time_s
        )

    def test_visits_scale_demand(self):
        base = mva_closed_network([0.02], 10, 1.0)
        doubled = mva_closed_network([0.01], 10, 1.0, visits=[2.0])
        assert doubled.response_time_s == pytest.approx(base.response_time_s)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            mva_closed_network([], 10, 1.0)
        with pytest.raises(ValueError):
            mva_closed_network([-0.1], 10, 1.0)
        with pytest.raises(ValueError):
            mva_closed_network([0.1], -1, 1.0)
        with pytest.raises(ValueError):
            mva_closed_network([0.1], 10, 1.0, visits=[1.0, 2.0])

    def test_closed_network_response_time_ms(self):
        rt = closed_network_response_time_ms([0.02, 0.015], [1.0, 1.0], 40, 1.0)
        res = mva_closed_network([0.02, 0.015], 40, 1.0)
        assert rt == pytest.approx(res.response_time_s * 1000.0)

    def test_mm1_helpers(self):
        assert mm1_utilization(10.0, 0.05) == pytest.approx(0.5)
        assert mm1_mean_response_time(10.0, 0.05) == pytest.approx(0.1)
        assert mm1_mean_response_time(20.0, 0.05) == math.inf

    def test_p90_exponential(self):
        assert p90_from_mean_exponential(1.0) == pytest.approx(math.log(10.0))

    @settings(max_examples=30, deadline=None)
    @given(
        s=st.lists(st.floats(0.001, 0.2), min_size=1, max_size=4),
        n=st.integers(1, 60),
        z=st.floats(0.0, 5.0),
    )
    def test_mva_invariants(self, s, n, z):
        res = mva_closed_network(s, n, z)
        assert res.response_time_s >= sum(s) - 1e-9  # at least the raw demand
        assert res.throughput_rps >= 0
        assert np.all(res.station_utilization <= 1.0 + 1e-9)
        # Little's law over the full loop.
        assert res.throughput_rps * (res.response_time_s + z) == pytest.approx(n, rel=1e-6)


class TestWorkloads:
    def test_constant(self):
        w = ConstantWorkload(40)
        assert w.level(0) == 40
        assert w.level(1e6) == 40
        assert w.max_level == 40

    def test_step_window(self):
        w = StepWorkload(40, 80, 600.0, 1200.0)
        assert w.level(599.9) == 40
        assert w.level(600.0) == 80
        assert w.level(1199.9) == 80
        assert w.level(1200.0) == 40
        assert w.max_level == 80

    def test_step_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            StepWorkload(40, 80, 1200.0, 600.0)

    def test_ramp_endpoints(self):
        w = RampWorkload(10, 50, 0.0, 100.0)
        assert w.level(0.0) == 10
        assert w.level(100.0) == 50
        assert w.level(50.0) == 30

    def test_ramp_clamps_outside(self):
        w = RampWorkload(10, 50, 100.0, 200.0)
        assert w.level(0.0) == 10
        assert w.level(500.0) == 50

    def test_piecewise(self):
        w = PiecewiseWorkload([(0.0, 5), (10.0, 20), (30.0, 10)])
        assert w.level(0) == 5
        assert w.level(9.9) == 5
        assert w.level(10.0) == 20
        assert w.level(35.0) == 10
        assert w.max_level == 20

    def test_piecewise_must_start_at_zero(self):
        with pytest.raises(ValueError):
            PiecewiseWorkload([(1.0, 5)])

    def test_piecewise_strictly_increasing_times(self):
        with pytest.raises(ValueError):
            PiecewiseWorkload([(0.0, 5), (0.0, 6)])

    def test_negative_levels_rejected(self):
        with pytest.raises(ValueError):
            ConstantWorkload(-1)
        with pytest.raises(ValueError):
            PiecewiseWorkload([(0.0, -5)])


class TestMultiTierApp:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            AppSpec(name="x", tiers=())
        with pytest.raises(ValueError):
            TierSpec("t", Exponential(0.02), min_alloc_ghz=2.0, max_alloc_ghz=1.0)

    def test_rubbos_spec_shape(self):
        spec = AppSpec.rubbos()
        assert spec.n_tiers == 2
        assert spec.tiers[0].name == "web"
        assert spec.tiers[1].name == "db"

    def test_allocations_clipped_to_tier_bounds(self):
        app = MultiTierApp(AppSpec.rubbos(), [1.0, 1.0], rng=0)
        app.set_allocations([100.0, 0.0001])
        alloc = app.allocations_ghz
        assert alloc[0] == pytest.approx(4.0)  # default max
        assert alloc[1] == pytest.approx(0.1)  # default min

    def test_wrong_allocation_length_rejected(self):
        app = MultiTierApp(AppSpec.rubbos(), [1.0, 1.0], rng=0)
        with pytest.raises(ValueError):
            app.set_allocations([1.0])

    def test_run_period_produces_stats(self):
        app = MultiTierApp(AppSpec.rubbos(), [1.0, 1.0], concurrency=20, rng=1)
        app.warmup(30)
        stats = app.run_period(60.0)
        assert stats.completed > 0
        assert stats.rt_p90_ms > stats.rt_mean_ms > 0
        assert all(0 <= u <= 1 for u in stats.utilizations)

    def test_zero_concurrency_no_requests(self):
        app = MultiTierApp(AppSpec.rubbos(), [1.0, 1.0], concurrency=0, rng=1)
        stats = app.run_period(30.0)
        assert stats.completed == 0
        assert math.isnan(stats.rt_p90_ms)

    def test_concurrency_increase_raises_throughput(self):
        app = MultiTierApp(AppSpec.rubbos(), [2.0, 2.0], concurrency=5, rng=2)
        app.warmup(50)
        low = app.run_period(100.0)
        app.set_concurrency(20)
        app.warmup(50)
        high = app.run_period(100.0)
        assert high.throughput_rps > low.throughput_rps

    def test_concurrency_decrease_parks_clients(self):
        app = MultiTierApp(AppSpec.rubbos(), [1.0, 1.0], concurrency=20, rng=3)
        app.warmup(30)
        app.set_concurrency(2)
        app.warmup(60)  # drain
        stats = app.run_period(100.0)
        # Throughput bounded by 2 clients cycling.
        assert stats.throughput_rps <= 2.1

    def test_more_allocation_reduces_response_time(self):
        app = MultiTierApp(AppSpec.rubbos(), [0.5, 0.5], concurrency=40, rng=4)
        app.warmup(60)
        slow = app.run_period(120.0)
        app.set_allocations([2.0, 2.0])
        app.warmup(60)
        fast = app.run_period(120.0)
        assert fast.rt_p90_ms < slow.rt_p90_ms

    def test_des_matches_mva_mean(self):
        """The request-level simulator agrees with exact MVA within noise."""
        app = MultiTierApp(AppSpec.rubbos(), [1.0, 1.0], concurrency=40, rng=5)
        app.warmup(120)
        stats = app.run_period(400.0)
        mva = mva_closed_network([0.020, 0.015], 40, 1.0)
        assert stats.rt_mean_ms == pytest.approx(mva.response_time_s * 1000, rel=0.15)
        assert stats.throughput_rps == pytest.approx(mva.throughput_rps, rel=0.1)

    def test_used_ghz_bounded_by_allocation(self):
        app = MultiTierApp(AppSpec.rubbos(), [1.0, 1.0], concurrency=40, rng=6)
        app.warmup(30)
        app.run_period(60.0)
        used = app.used_ghz(60.0)
        assert np.all(used <= app.allocations_ghz + 1e-9)

    def test_deterministic_with_seed(self):
        def run(seed):
            app = MultiTierApp(AppSpec.rubbos(), [1.0, 1.0], concurrency=10, rng=seed)
            app.warmup(20)
            return app.run_period(50.0).rt_mean_ms
        assert run(42) == run(42)
        assert run(42) != run(43)

    def test_queue_lengths_accessible(self):
        app = MultiTierApp(AppSpec.rubbos(), [0.3, 0.3], concurrency=30, rng=7)
        app.warmup(30)
        qs = app.queue_lengths()
        assert len(qs) == 2
        assert all(q >= 0 for q in qs)


class TestAdmissionControl:
    def test_concurrency_cap_limits_in_service(self):
        from repro.apps.rubbos import _Tier
        from repro.sim.des import Simulator

        sim = Simulator()
        tier = _Tier(sim, TierSpec("t", Exponential(0.02), max_concurrency=2), 1.0)
        events = [tier.submit(1.0) for _ in range(5)]
        assert tier._in_service == 2
        assert tier.queue_length == 5
        sim.run()
        assert all(ev.triggered for ev in events)

    def test_fifo_admission_order(self):
        from repro.apps.rubbos import _Tier
        from repro.sim.des import Simulator

        sim = Simulator()
        tier = _Tier(sim, TierSpec("t", Exponential(0.02), max_concurrency=1), 1.0)
        events = [tier.submit(1.0) for _ in range(3)]
        sim.run()
        finish = [ev.value for ev in events]
        assert finish[0] < finish[1] < finish[2]

    def test_cap_one_serializes_exactly(self):
        from repro.apps.rubbos import _Tier
        from repro.sim.des import Simulator

        sim = Simulator()
        tier = _Tier(sim, TierSpec("t", Exponential(0.02), max_concurrency=1), 2.0)
        e1 = tier.submit(2.0)  # 1 s at 2 GHz
        e2 = tier.submit(2.0)
        sim.run()
        assert e1.value == pytest.approx(1.0)
        assert e2.value == pytest.approx(2.0)  # waited 1 s, served 1 s

    def test_uncapped_tier_unchanged(self):
        from repro.apps.rubbos import _Tier
        from repro.sim.des import Simulator

        sim = Simulator()
        tier = _Tier(sim, TierSpec("t", Exponential(0.02)), 1.0)
        e1 = tier.submit(1.0)
        e2 = tier.submit(1.0)
        sim.run()
        # Pure PS: simultaneous equal jobs finish together.
        assert e1.value == pytest.approx(2.0)
        assert e2.value == pytest.approx(2.0)

    def test_app_with_capped_tier_still_serves_everything(self):
        spec = AppSpec(
            name="capped",
            tiers=(
                TierSpec("web", Exponential(0.020), max_concurrency=8),
                TierSpec("db", Exponential(0.015), max_concurrency=4),
            ),
        )
        app = MultiTierApp(spec, [1.0, 1.0], concurrency=30, rng=9)
        app.warmup(60)
        stats = app.run_period(120.0)
        assert stats.completed > 0
        assert stats.rt_p90_ms > 0

    def test_cap_preserves_throughput(self):
        """An admission cap reshapes waiting (queue at the door instead of
        sharing the CPU) but cannot change the capacity-bound throughput."""
        def run(cap):
            spec = AppSpec(
                name="x",
                tiers=(
                    TierSpec("web", Exponential(0.020), max_concurrency=cap),
                    TierSpec("db", Exponential(0.015)),
                ),
            )
            app = MultiTierApp(spec, [1.0, 1.0], concurrency=40, rng=10)
            app.warmup(90)
            return app.run_period(200.0).throughput_rps

        assert run(2) == pytest.approx(run(64), rel=0.1)

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            TierSpec("t", Exponential(0.02), max_concurrency=0)


class TestTraceWorkload:
    def test_maps_series_to_levels(self):
        from repro.apps import TraceWorkload
        w = TraceWorkload([0.0, 0.5, 1.0], interval_s=10.0, min_level=20, max_level=80)
        assert w.level(0.0) == 20
        assert w.level(10.0) == 50
        assert w.level(20.0) == 80
        assert w.level(1e9) == 80  # clamps past the series
        assert w.max_level == 80

    def test_time_scale_compresses(self):
        from repro.apps import TraceWorkload
        w = TraceWorkload([0.0, 1.0], interval_s=900.0, min_level=0,
                          max_level=100, time_scale=60.0)
        assert w.level(0.0) == 0
        assert w.level(15.0) == 100  # 900 s of trace per 15 s of sim

    def test_validation(self):
        from repro.apps import TraceWorkload
        with pytest.raises(ValueError):
            TraceWorkload([], 10.0, 0, 10)
        with pytest.raises(ValueError):
            TraceWorkload([1.5], 10.0, 0, 10)
        with pytest.raises(ValueError):
            TraceWorkload([0.5], 10.0, 10, 5)
        with pytest.raises(ValueError):
            TraceWorkload([0.5], 10.0, 0, 10, time_scale=0.0)

    def test_diurnal_day_in_the_life_tracks(self):
        """A trace-driven diurnal workload (compressed day) stays on the
        set point throughout — the two substrates compose."""
        from repro.apps import TraceWorkload
        from repro.sim.testbed import TestbedConfig, TestbedExperiment
        from repro.traces import TraceConfig, generate_trace

        trace = generate_trace(TraceConfig(n_servers=4, n_days=1), rng=41)
        # One day of 15-min samples compressed into 480 s of simulation.
        workload = TraceWorkload(
            trace.utilization[0], interval_s=900.0,
            min_level=25, max_level=60, time_scale=180.0,
        )
        config = TestbedConfig(
            n_apps=2, duration_s=480.0, workloads={0: workload}
        )
        result = TestbedExperiment(config).run()
        rts = result.recorder.values("rt/app0")[8:]
        assert abs(np.nanmean(rts) - 1000.0) / 1000.0 < 0.25
