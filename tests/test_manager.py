"""Integrated power manager: control step plumbing and optimization."""

import numpy as np
import pytest

from repro.apps import AppSpec, MultiTierApp
from repro.cluster import Application, DataCenter, Server, VM
from repro.cluster.catalog import (
    SERVER_TYPE_A,
    SERVER_TYPE_B,
    SERVER_TYPE_C,
    TESTBED_SERVER,
)
from repro.control.arx import ARXModel
from repro.core import (
    ControllerConfig,
    PowerManager,
    PowerManagerConfig,
    ResponseTimeController,
)
from repro.core.optimizer import pmapper


def _dc_with_app(plant=None):
    dc = DataCenter()
    dc.add_server(Server("T0", TESTBED_SERVER))
    dc.add_server(Server("T1", TESTBED_SERVER))
    dc.add_vm(VM("a-web", app_id="a", tier_index=0, memory_mb=1024, demand_ghz=1.0))
    dc.add_vm(VM("a-db", app_id="a", tier_index=1, memory_mb=1024, demand_ghz=1.0))
    dc.place("a-web", "T0")
    dc.place("a-db", "T1")
    dc.add_application(Application("a", ["a-web", "a-db"], plant=plant))
    return dc


def _controller(model=None):
    model = model or ARXModel(a=[0.4], b=[[-800.0, -300.0], [-100.0, -50.0]], g=1800.0)
    return ResponseTimeController(
        model, ControllerConfig(util_band=None),
        c_min=[0.2, 0.2], c_max=[3.0, 3.0], initial_alloc_ghz=[1.0, 1.0],
    )


class TestConfig:
    def test_period_ordering(self):
        with pytest.raises(ValueError):
            PowerManagerConfig(control_period_s=60.0, optimizer_period_s=30.0)


class TestControlStep:
    def test_updates_demands_and_allocations(self):
        dc = _dc_with_app()
        mgr = PowerManager(dc)
        mgr.register_controller("a", _controller())
        result = mgr.control_step({"a": 2000.0})
        # High RT -> more CPU demanded than the initial 1 GHz.
        assert dc.vms["a-web"].demand_ghz + dc.vms["a-db"].demand_ghz > 2.0
        assert "a" in result.granted_ghz
        # Granted equals demand (no contention on these big hosts).
        np.testing.assert_allclose(
            result.granted_ghz["a"],
            [dc.vms["a-web"].demand_ghz, dc.vms["a-db"].demand_ghz],
        )

    def test_dvfs_applied_to_servers(self):
        dc = _dc_with_app()
        mgr = PowerManager(dc)
        mgr.register_controller("a", _controller())
        mgr.control_step({"a": 1000.0})
        for server in dc.active_servers():
            assert server.freq_ghz in server.spec.cpu.freq_levels_ghz

    def test_empty_active_server_idles_at_min_frequency(self):
        dc = _dc_with_app()
        dc.add_server(Server("T2", TESTBED_SERVER))
        mgr = PowerManager(dc)
        mgr.register_controller("a", _controller())
        mgr.control_step({"a": 1000.0})
        assert dc.servers["T2"].freq_ghz == TESTBED_SERVER.cpu.min_freq_ghz

    def test_plant_receives_granted_allocations(self):
        plant = MultiTierApp(AppSpec.rubbos(), [1.0, 1.0], concurrency=10, rng=1)
        dc = _dc_with_app(plant=plant)
        mgr = PowerManager(dc)
        mgr.register_controller("a", _controller())
        result = mgr.control_step({"a": 1500.0})
        np.testing.assert_allclose(plant.allocations_ghz, result.granted_ghz["a"])

    def test_unregistered_app_rejected(self):
        dc = _dc_with_app()
        mgr = PowerManager(dc)
        with pytest.raises(KeyError):
            mgr.control_step({"a": 1000.0})

    def test_partial_measurements_leave_state_untouched(self):
        dc = _dc_with_app()
        mgr = PowerManager(dc)
        mgr.register_controller("a", _controller())
        with pytest.raises(KeyError):
            # "a" is registered but "ghost" is not: the step must refuse
            # up front rather than update "a" and then blow up.
            mgr.control_step({"a": 2000.0, "ghost": 500.0})
        assert dc.vms["a-web"].demand_ghz == 1.0
        assert dc.vms["a-db"].demand_ghz == 1.0

    def test_overloaded_server_rations_proportionally(self):
        # Both tiers of the app on one 4.8 GHz host, each demanding up
        # to 3 GHz: with a high response time the controller pushes the
        # total demand past capacity and the arbitrator must ration.
        dc = DataCenter()
        dc.add_server(Server("T0", TESTBED_SERVER))
        dc.add_vm(VM("a-web", app_id="a", tier_index=0, memory_mb=1024, demand_ghz=1.0))
        dc.add_vm(VM("a-db", app_id="a", tier_index=1, memory_mb=1024, demand_ghz=1.0))
        dc.place("a-web", "T0")
        dc.place("a-db", "T0")
        dc.add_application(Application("a", ["a-web", "a-db"]))
        mgr = PowerManager(dc)
        ctrl = ResponseTimeController(
            ARXModel(a=[0.4], b=[[-800.0, -300.0], [-100.0, -50.0]], g=1800.0),
            ControllerConfig(util_band=None),
            c_min=[3.0, 3.0], c_max=[3.0, 3.0], initial_alloc_ghz=[3.0, 3.0],
        )
        mgr.register_controller("a", ctrl)
        result = mgr.control_step({"a": 5000.0})
        assert "T0" in result.overloaded_servers
        granted = result.granted_ghz["a"]
        cap = dc.servers["T0"].max_capacity_ghz
        # Rationed grants fill the server exactly and stay below demand.
        assert np.sum(granted) == pytest.approx(cap)
        assert np.all(granted < 3.0)
        # Equal demands are scaled equally.
        assert granted[0] == pytest.approx(granted[1])
        # The host runs flat out while oversubscribed.
        assert dc.servers["T0"].freq_ghz == max(TESTBED_SERVER.cpu.freq_levels_ghz)

    def test_register_checks_tier_count(self):
        dc = _dc_with_app()
        mgr = PowerManager(dc)
        bad_model = ARXModel(a=[0.4], b=[[-800.0]], g=1800.0)  # one input
        bad = ResponseTimeController(
            bad_model, ControllerConfig(util_band=None),
            c_min=[0.2], c_max=[3.0], initial_alloc_ghz=[1.0],
        )
        with pytest.raises(ValueError):
            mgr.register_controller("a", bad)

    def test_register_unknown_app_rejected(self):
        dc = _dc_with_app()
        mgr = PowerManager(dc)
        with pytest.raises(KeyError):
            mgr.register_controller("ghost", _controller())


class TestOptimize:
    def test_default_ipac_consolidates(self):
        dc = DataCenter()
        dc.add_server(Server("big", SERVER_TYPE_A))
        dc.add_server(Server("small", SERVER_TYPE_B))
        dc.add_vm(VM("v1", memory_mb=512, demand_ghz=0.5))
        dc.add_vm(VM("v2", memory_mb=512, demand_ghz=0.5))
        dc.place("v1", "big")
        dc.place("v2", "small")
        mgr = PowerManager(dc)
        power_before = dc.total_power_w()
        plan = mgr.optimize()
        # Both VMs consolidate onto one host; the other sleeps.  (At this
        # low load IPAC's power-estimate acceptance picks the type-B host:
        # its 95 W idle beats type A's 180 W despite the lower full-load
        # efficiency.)
        host = dc.server_of("v1")
        assert dc.server_of("v2") == host
        other = "small" if host == "big" else "big"
        assert not dc.servers[other].active
        assert dc.total_power_w() < power_before
        assert plan.n_moves >= 1
        assert len(dc.migration_log) == plan.n_moves

    def test_custom_optimizer_pluggable(self):
        dc = DataCenter()
        dc.add_server(Server("big", SERVER_TYPE_A))
        dc.add_vm(VM("v1", memory_mb=512, demand_ghz=0.5))
        mgr = PowerManager(dc, optimizer=pmapper)
        plan = mgr.optimize()
        assert dc.server_of("v1") == "big"
        assert plan.unplaced == []

    def test_optimize_wakes_servers_when_needed(self):
        dc = DataCenter()
        dc.add_server(Server("asleep", SERVER_TYPE_A, active=False))
        dc.add_vm(VM("v1", memory_mb=512, demand_ghz=0.5))
        mgr = PowerManager(dc)
        mgr.optimize()
        assert dc.servers["asleep"].active
        assert dc.server_of("v1") == "asleep"


class TestEmergencyEvacuate:
    def _crashed_cluster(self):
        """T1 crashes; the only survivor and the only sleeper are both
        too small (CPU capacity) to absorb the 4 GHz evicted VMs."""
        dc = DataCenter()
        dc.add_server(Server("T0", TESTBED_SERVER))  # 4.8 GHz max
        dc.add_server(Server("T1", TESTBED_SERVER))
        dc.add_server(Server("T2", SERVER_TYPE_C, active=False))  # 3.0 GHz max
        dc.add_vm(VM("keep", memory_mb=1024, demand_ghz=4.0))
        dc.place("keep", "T0")
        for vm_id in ("v-a", "v-b"):
            dc.add_vm(VM(vm_id, memory_mb=1024, demand_ghz=4.0))
            dc.place(vm_id, "T1")
        return dc, PowerManager(dc)

    def test_unplaceable_vms_reported_not_dropped(self):
        from repro.obs import InMemoryBackend, Telemetry, use_telemetry

        dc, mgr = self._crashed_cluster()
        backend = InMemoryBackend()
        evicted = dc.fail_server("T1")
        assert sorted(evicted) == ["v-a", "v-b"]
        with use_telemetry(Telemetry(backend)):
            plan = mgr.emergency_evacuate("T1", evicted, time_s=42.0)
        # Nowhere to go: both VMs stay unplaced in the returned plan...
        assert sorted(plan.unplaced) == ["v-a", "v-b"]
        # ...but survive in the inventory (homeless, not deleted).
        for vm_id in ("v-a", "v-b"):
            assert vm_id in dc.vms
            assert dc.server_of(vm_id) is None
        # The untouched survivor keeps its placement; nothing was woken
        # (the sleeper cannot hold these VMs either).
        assert dc.server_of("keep") == "T0"
        assert not dc.servers["T2"].active
        # The telemetry event carries the unplaced list for operators.
        events = [r for r in backend.records if r.get("kind") == "evacuation"]
        assert len(events) == 1
        assert sorted(events[0]["unplaced"]) == ["v-a", "v-b"]
        assert events[0]["server"] == "T1"

    def test_partial_placement_places_what_fits(self):
        dc, mgr = self._crashed_cluster()
        # Shrink one VM so it fits the sleeping type-C host (3 GHz).
        dc.vms["v-b"].demand_ghz = 1.0
        evicted = dc.fail_server("T1")
        plan = mgr.emergency_evacuate("T1", evicted, time_s=42.0)
        assert plan.unplaced == ["v-a"]
        assert dc.server_of("v-b") is not None
        assert dc.server_of("v-a") is None
