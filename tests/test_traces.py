"""Trace container and synthetic generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces import SECTORS, TraceConfig, UtilizationTrace, generate_trace


class TestUtilizationTrace:
    def test_basic_properties(self):
        u = np.random.default_rng(0).uniform(0, 1, size=(5, 96))
        tr = UtilizationTrace(u, interval_s=900.0)
        assert tr.n_series == 5
        assert tr.n_samples == 96
        assert tr.duration_s == pytest.approx(96 * 900.0)

    def test_bounds_enforced(self):
        with pytest.raises(ValueError):
            UtilizationTrace(np.array([[1.2]]))
        with pytest.raises(ValueError):
            UtilizationTrace(np.array([[-0.1]]))
        with pytest.raises(ValueError):
            UtilizationTrace(np.array([[np.nan]]))

    def test_label_count_checked(self):
        with pytest.raises(ValueError):
            UtilizationTrace(np.zeros((2, 4)), labels=["only-one"])

    def test_subset_deterministic(self):
        u = np.random.default_rng(0).uniform(0, 1, size=(10, 8))
        tr = UtilizationTrace(u, labels=[f"s{i}" for i in range(10)])
        sub = tr.subset(3)
        assert sub.n_series == 3
        np.testing.assert_array_equal(sub.utilization, u[:3])
        assert sub.labels == ["s0", "s1", "s2"]

    def test_subset_random_sampling(self):
        u = np.random.default_rng(0).uniform(0, 1, size=(10, 8))
        tr = UtilizationTrace(u)
        sub = tr.subset(5, rng=np.random.default_rng(1))
        assert sub.n_series == 5

    def test_subset_bounds(self):
        tr = UtilizationTrace(np.zeros((3, 4)))
        with pytest.raises(ValueError):
            tr.subset(0)
        with pytest.raises(ValueError):
            tr.subset(4)

    def test_demands_scalar_peak(self):
        u = np.full((2, 3), 0.5)
        tr = UtilizationTrace(u)
        d = tr.demands_ghz(2.0)
        np.testing.assert_allclose(d, 1.0)

    def test_demands_vector_peak(self):
        u = np.full((2, 3), 0.5)
        tr = UtilizationTrace(u)
        d = tr.demands_ghz([2.0, 4.0])
        np.testing.assert_allclose(d[0], 1.0)
        np.testing.assert_allclose(d[1], 2.0)

    def test_demands_bad_peak(self):
        tr = UtilizationTrace(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            tr.demands_ghz([1.0])
        with pytest.raises(ValueError):
            tr.demands_ghz([-1.0, 1.0])

    def test_csv_roundtrip(self, tmp_path):
        u = np.round(np.random.default_rng(0).uniform(0, 1, size=(4, 12)), 4)
        tr = UtilizationTrace(u, interval_s=600.0, labels=[f"x{i}" for i in range(4)])
        path = str(tmp_path / "trace.csv")
        tr.to_csv(path)
        back = UtilizationTrace.from_csv(path)
        assert back.interval_s == 600.0
        assert back.labels == tr.labels
        np.testing.assert_allclose(back.utilization, u, atol=1e-4)


class TestGenerator:
    def test_dimensions_match_paper(self):
        tr = generate_trace(TraceConfig(n_servers=50), rng=1)
        assert tr.n_series == 50
        assert tr.n_samples == 7 * 96  # 7 days of 15-minute samples
        assert tr.interval_s == 900.0

    def test_values_in_bounds(self):
        tr = generate_trace(TraceConfig(n_servers=100), rng=2)
        assert tr.utilization.min() >= 0.02 - 1e-12
        assert tr.utilization.max() <= 1.0 + 1e-12

    def test_deterministic_from_seed(self):
        a = generate_trace(TraceConfig(n_servers=20), rng=3)
        b = generate_trace(TraceConfig(n_servers=20), rng=3)
        np.testing.assert_array_equal(a.utilization, b.utilization)

    def test_different_seeds_differ(self):
        a = generate_trace(TraceConfig(n_servers=20), rng=3)
        b = generate_trace(TraceConfig(n_servers=20), rng=4)
        assert not np.array_equal(a.utilization, b.utilization)

    def test_labels_carry_sector_and_company(self):
        tr = generate_trace(TraceConfig(n_servers=30), rng=5)
        assert len(tr.labels) == 30
        sector_names = {s.name for s in SECTORS}
        for label in tr.labels:
            sector, company = label.split("/")
            assert sector in sector_names
            assert company.startswith("company")

    def test_diurnal_variation_present(self):
        """Average across servers must vary substantially over the day."""
        tr = generate_trace(TraceConfig(n_servers=300), rng=6)
        daily = tr.utilization.mean(axis=0).reshape(7, 96).mean(axis=0)
        assert daily.max() - daily.min() > 0.05

    def test_financial_weekend_trough(self):
        """Financial-sector servers drop on the weekend (days 6-7)."""
        tr = generate_trace(TraceConfig(n_servers=400), rng=7)
        fin = np.asarray([l.startswith("financial") for l in tr.labels])
        assert fin.any()
        util = tr.utilization[fin]
        weekday = util[:, : 5 * 96].mean()
        weekend = util[:, 5 * 96 :].mean()
        assert weekend < weekday

    def test_retail_weekend_boost(self):
        tr = generate_trace(TraceConfig(n_servers=400), rng=8)
        retail = np.asarray([l.startswith("retail") for l in tr.labels])
        util = tr.utilization[retail]
        weekday = util[:, : 5 * 96].mean()
        weekend = util[:, 5 * 96 :].mean()
        assert weekend > weekday

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(n_servers=0)
        with pytest.raises(ValueError):
            TraceConfig(n_days=0)
        with pytest.raises(ValueError):
            TraceConfig(noise_ar1=1.0)
        with pytest.raises(ValueError):
            TraceConfig(spike_probability=2.0)

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(1, 40), days=st.integers(1, 3))
    def test_arbitrary_dimensions(self, n, days):
        tr = generate_trace(TraceConfig(n_servers=n, n_days=days), rng=9)
        assert tr.utilization.shape == (n, days * 96)
        assert np.all((tr.utilization >= 0) & (tr.utilization <= 1))
