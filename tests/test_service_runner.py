"""ExperimentRunner: golden hashes, kill-and-resume, sweeps, cancel.

The load-bearing claims pinned here:

* a run executed by the service hashes **bit-identical** to the same
  scenario run one-shot through ``spec.build()`` (and, for
  ``testbed-small``, to the repo-wide pinned golden hash);
* that stays true when the run is killed mid-flight (crash injection —
  SIGKILL semantics) or gracefully shut down, and later **resumed from
  its stored checkpoint** by a fresh runner;
* a >= 20-configuration grid sweep across 2 workers completes with
  every run, checkpoint, and audit report queryable from the store.
"""

import hashlib
import json
import time

import pytest

from repro.engine.scenario import ScenarioSpec, builtin_registry
from repro.obs import InMemoryBackend, Telemetry, use_telemetry
from repro.service.runner import ExperimentRunner, RunnerConfig, eventlog_hash
from repro.service.store import ResultsStore
from repro.service.sweep import apply_overrides, expand_grid

# Same pin as tests/test_scenarios.py / tests/test_perf_fastpath.py.
_TB_SMALL_SHA = "a4ae4a9006785b8e0898af5df2bc1ff973350d82380b8d0b5be7c122018478fc"


def _oneshot_hash(spec_doc):
    """(sha256, n_events) of the scenario run uninterrupted, in memory."""
    spec = ScenarioSpec.from_dict(spec_doc)
    backend = InMemoryBackend()
    engine, plant = spec.build()
    with use_telemetry(Telemetry(backend)):
        plant.start()
        engine.run()
        plant.result()
    events = [r for r in backend.records
              if r.get("kind") not in ("span", "metrics")]
    digest = hashlib.sha256(
        json.dumps(events, sort_keys=True, default=str).encode()
    ).hexdigest()
    return digest, len(events)


def _wait(predicate, timeout_s=60.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


@pytest.fixture
def store(tmp_path):
    s = ResultsStore(tmp_path / "svc.db")
    yield s
    s.close()


def _runner(store, tmp_path, **kw):
    kw.setdefault("data_dir", tmp_path / "data")
    kw.setdefault("workers", 1)
    kw.setdefault("poll_interval_s", 0.02)
    return ExperimentRunner(store, RunnerConfig(**kw))


def _small_doc(**overrides):
    doc = builtin_registry().get("testbed-small").to_dict()
    return apply_overrides(doc, overrides) if overrides else doc


class TestGoldenHash:
    def test_service_run_matches_pinned_oneshot_hash(self, store, tmp_path):
        runner = _runner(store, tmp_path, checkpoint_every=4)
        run, _ = store.submit_run(_small_doc())
        runner.start()
        try:
            assert runner.wait_idle(60.0)
        finally:
            runner.stop()
        row = store.get_run(run.id)
        assert row.status == "done", row.error
        assert (row.event_hash, row.n_events) == (_TB_SMALL_SHA, 25)
        # the summary carries the headline numbers
        assert row.result["harness"] == "testbed"
        assert row.result["power_w"]["mean"] > 0
        # checkpoints were taken at period boundaries
        periods = [c.period for c in store.list_checkpoints(run.id)]
        assert periods == [4, 8]
        # and the stored log re-hashes to the same digest
        assert eventlog_hash(row.event_log) == (_TB_SMALL_SHA, 25)

    def test_failed_spec_is_recorded_not_raised(self, store, tmp_path):
        doc = _small_doc()
        doc["params"]["n_servers"] = 0  # builds, but the harness rejects it
        runner = _runner(store, tmp_path)
        run, _ = store.submit_run(doc)
        runner.start()
        try:
            assert _wait(lambda: store.get_run(run.id).terminal)
        finally:
            runner.stop()
        row = store.get_run(run.id)
        assert row.status == "failed"
        assert row.error


class TestKillAndResume:
    def test_injected_crash_then_resume_matches_oneshot(self, store, tmp_path):
        # Worker dies right after the first checkpoint — no cleanup, the
        # run is left 'running' exactly as a SIGKILL would leave it.
        crasher = _runner(store, tmp_path, checkpoint_every=4,
                          crash_after_checkpoints=1)
        run, _ = store.submit_run(_small_doc())
        crasher.start()
        assert _wait(lambda: store.latest_checkpoint(run.id) is not None)
        assert _wait(lambda: crasher.busy_workers == 0)
        crasher.stop()
        assert store.run_status(run.id) == "running"  # stale, not requeued

        resumer = _runner(store, tmp_path, checkpoint_every=4)
        recovered = resumer.start()
        assert recovered == 1
        try:
            assert resumer.wait_idle(60.0)
        finally:
            resumer.stop()
        assert resumer.n_resumed == 1
        row = store.get_run(run.id)
        assert row.status == "done", row.error
        assert (row.event_hash, row.n_events) == (_TB_SMALL_SHA, 25)

    def test_graceful_stop_checkpoints_requeues_and_resumes(
        self, store, tmp_path
    ):
        # A longer run (40 periods) so the stop lands mid-flight.
        doc = _small_doc(**{"params.duration_s": 600.0})
        expected = _oneshot_hash(doc)
        runner = _runner(store, tmp_path, checkpoint_every=2)
        run, _ = store.submit_run(doc)
        runner.start()
        assert _wait(lambda: store.get_run(run.id).periods_done >= 2)
        runner.stop(graceful=True)
        row = store.get_run(run.id)
        assert row.status == "queued"  # checkpointed and requeued
        checkpoint = store.latest_checkpoint(run.id)
        assert checkpoint is not None
        assert checkpoint.period < 40  # genuinely interrupted

        resumer = _runner(store, tmp_path, checkpoint_every=2)
        resumer.start()
        try:
            assert resumer.wait_idle(120.0)
        finally:
            resumer.stop()
        row = store.get_run(run.id)
        assert row.status == "done", row.error
        assert (row.event_hash, row.n_events) == expected

    def test_missing_log_restarts_from_scratch(self, store, tmp_path):
        crasher = _runner(store, tmp_path, checkpoint_every=4,
                          crash_after_checkpoints=1)
        run, _ = store.submit_run(_small_doc())
        crasher.start()
        assert _wait(lambda: store.latest_checkpoint(run.id) is not None)
        assert _wait(lambda: crasher.busy_workers == 0)
        crasher.stop()
        _, log_path = crasher.run_paths(run.id)
        log_path.unlink()  # the prefix is gone; resume must not try

        resumer = _runner(store, tmp_path, checkpoint_every=4)
        resumer.start()
        try:
            assert resumer.wait_idle(60.0)
        finally:
            resumer.stop()
        row = store.get_run(run.id)
        assert row.status == "done", row.error
        assert (row.event_hash, row.n_events) == (_TB_SMALL_SHA, 25)
        assert resumer.n_resumed == 0  # restarted, not resumed


class TestSweep:
    def test_twenty_config_sweep_on_two_workers(self, store, tmp_path):
        # 10 seeds x 2 durations = 20 configurations; checkpoint every
        # period so even the 3-period runs leave checkpoint rows.
        base = _small_doc()
        grid = {
            "params.seed": [1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
            "params.duration_s": [45.0, 60.0],
        }
        jobs = expand_grid(base, grid)
        assert len(jobs) == 20
        sweep = store.create_sweep("grid", base, grid, len(jobs))
        for doc, _overrides in jobs:
            store.submit_run(doc, sweep_id=sweep.id, dedupe=False)

        runner = _runner(store, tmp_path, workers=2, checkpoint_every=1)
        runner.start()
        try:
            assert runner.wait_idle(300.0)
        finally:
            runner.stop()

        progress = store.sweep_progress(sweep.id)
        assert progress["done"] == 20
        runs = store.list_runs(sweep_id=sweep.id)
        assert len(runs) == 20
        assert {r.worker for r in runs} == {"worker-0", "worker-1"}
        hashes = set()
        for row in runs:
            assert row.status == "done", row.error
            assert row.event_hash and row.n_events > 0
            assert row.result["harness"] == "testbed"
            assert store.list_checkpoints(row.id), f"run {row.id}: no checkpoint"
            audit = store.get_audit(row.id)
            assert audit is not None, f"run {row.id}: no audit report"
            assert "slo" in audit.report
            hashes.add(row.event_hash)
        # different seeds genuinely produce different runs
        assert len(hashes) == 20


class TestCancel:
    def test_cancel_running_run(self, store, tmp_path):
        doc = _small_doc(**{"params.duration_s": 600.0})
        runner = _runner(store, tmp_path, checkpoint_every=2)
        run, _ = store.submit_run(doc)
        runner.start()
        try:
            assert _wait(lambda: store.run_status(run.id) == "running")
            assert _wait(lambda: store.get_run(run.id).periods_done >= 1)
            store.request_cancel(run.id)
            assert _wait(lambda: store.run_status(run.id) == "cancelled")
        finally:
            runner.stop()
        assert store.get_run(run.id).result is None
