"""Optimizer: types, Minimum Slack wrapper, PAC, IPAC, pMapper, policies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.migration import LiveMigrationModel
from repro.core.optimizer import (
    AllowAllPolicy,
    BandwidthBudgetPolicy,
    BenefitThresholdPolicy,
    IPACConfig,
    Migration,
    MigrationContext,
    MinSlackConfig,
    PACConfig,
    PlacementProblem,
    ipac,
    pac,
    pmapper,
    select_vms_for_server,
    sort_servers_by_efficiency,
)
from repro.core.optimizer.pmapper import PMapperConfig
from repro.core.optimizer.types import ServerInfo, VMInfo

from tests.conftest import check_plan_feasible, make_server_info, make_vm_info


class TestTypes:
    def test_duplicate_ids_rejected(self):
        s = make_server_info("s1")
        with pytest.raises(ValueError):
            PlacementProblem((s, s), (), {})
        v = make_vm_info("v1")
        with pytest.raises(ValueError):
            PlacementProblem((s,), (v, v), {})

    def test_mapping_reference_checked(self):
        s = make_server_info("s1")
        v = make_vm_info("v1")
        with pytest.raises(ValueError):
            PlacementProblem((s,), (v,), {"v1": "nope"})
        with pytest.raises(ValueError):
            PlacementProblem((s,), (v,), {"ghost": "s1"})

    def test_lookups(self):
        s = make_server_info("s1")
        v = make_vm_info("v1", demand=1.5)
        p = PlacementProblem((s,), (v,), {"v1": "s1"})
        assert p.server_by_id("s1") is s
        assert p.vm_by_id("v1") is v
        assert p.server_load_ghz("s1") == pytest.approx(1.5)
        with pytest.raises(KeyError):
            p.server_by_id("zzz")

    def test_vm_info_validation(self):
        with pytest.raises(ValueError):
            VMInfo("v", -1.0, 100)
        with pytest.raises(ValueError):
            ServerInfo("s", 0.0, 100, 0.1, True, 10, 20, 1)


class TestSortServers:
    def test_descending_by_efficiency(self):
        servers = [
            make_server_info("a", efficiency=0.02),
            make_server_info("b", efficiency=0.05),
            make_server_info("c", efficiency=0.03),
        ]
        out = sort_servers_by_efficiency(servers)
        assert [s.server_id for s in out] == ["b", "c", "a"]

    def test_tie_broken_by_id(self):
        servers = [
            make_server_info("z", efficiency=0.02),
            make_server_info("a", efficiency=0.02),
        ]
        out = sort_servers_by_efficiency(servers)
        assert [s.server_id for s in out] == ["a", "z"]

    def test_ascending(self):
        servers = [
            make_server_info("a", efficiency=0.02),
            make_server_info("b", efficiency=0.05),
        ]
        out = sort_servers_by_efficiency(servers, descending=False)
        assert [s.server_id for s in out] == ["a", "b"]


class TestSelectVMs:
    def test_fills_capacity(self):
        vms = [make_vm_info(f"v{i}", demand=d) for i, d in enumerate([3.0, 2.0, 1.0])]
        chosen, result = select_vms_for_server(4.0, 1e9, vms)
        assert sum(v.demand_ghz for v in chosen) == pytest.approx(4.0)
        assert result.slack == pytest.approx(0.0)

    def test_memory_respected(self):
        vms = [
            make_vm_info("big", demand=1.0, memory=4000),
            make_vm_info("small", demand=1.0, memory=500),
        ]
        chosen, _ = select_vms_for_server(4.0, 1000.0, vms)
        assert [v.vm_id for v in chosen] == ["small"]

    def test_zero_capacity(self):
        chosen, _ = select_vms_for_server(0.0, 100.0, [make_vm_info("v", 1.0)])
        assert chosen == []

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            select_vms_for_server(-1.0, 100.0, [])
        with pytest.raises(ValueError):
            MinSlackConfig(epsilon_ghz=-1.0)


class TestPAC:
    def test_places_all_when_capacity_suffices(self, heterogeneous_problem):
        plan = pac(heterogeneous_problem)
        assert plan.unplaced == []
        assert len(plan.final_mapping) == len(heterogeneous_problem.vms)
        check_plan_feasible(heterogeneous_problem, plan)

    def test_prefers_efficient_server(self, heterogeneous_problem):
        plan = pac(heterogeneous_problem)
        # Total demand 4.5 GHz fits entirely on sA (12 GHz, most efficient).
        assert set(plan.final_mapping.values()) == {"sA"}

    def test_wakes_inactive_servers_only_when_needed(self, heterogeneous_problem):
        plan = pac(heterogeneous_problem)
        assert plan.wake == []  # everything fit on the active sA

    def test_spills_to_next_server(self):
        servers = (
            make_server_info("good", capacity=2.0, efficiency=0.05),
            make_server_info("bad", capacity=2.0, efficiency=0.01, active=False),
        )
        vms = tuple(make_vm_info(f"v{i}", demand=1.0, memory=100) for i in range(3))
        plan = pac(PlacementProblem(servers, vms, {}), config=PACConfig(target_utilization=1.0))
        hosts = set(plan.final_mapping.values())
        assert hosts == {"good", "bad"}
        assert plan.wake == ["bad"]

    def test_target_utilization_caps_fill(self):
        servers = (make_server_info("s", capacity=10.0),)
        vms = tuple(make_vm_info(f"v{i}", demand=1.0, memory=10) for i in range(10))
        plan = pac(PlacementProblem(servers, vms, {}), config=PACConfig(target_utilization=0.5))
        placed = [v for v in plan.final_mapping.values()]
        assert len(placed) == 5
        assert len(plan.unplaced) == 5

    def test_partial_replace_keeps_others(self):
        servers = (
            make_server_info("s1", capacity=4.0),
            make_server_info("s2", capacity=4.0, efficiency=0.02),
        )
        vms = (make_vm_info("stay", 2.0, 100), make_vm_info("move", 1.0, 100))
        problem = PlacementProblem(servers, vms, {"stay": "s2", "move": "s2"})
        plan = pac(problem, vms_to_place=["move"])
        assert plan.final_mapping["stay"] == "s2"
        assert plan.final_mapping["move"] == "s1"  # most efficient has room

    def test_unplaceable_vm_stays_put(self):
        servers = (make_server_info("s1", capacity=1.0),)
        vms = (make_vm_info("huge", 5.0, 100),)
        problem = PlacementProblem(servers, vms, {"huge": "s1"})
        plan = pac(problem, vms_to_place=["huge"])
        assert plan.unplaced == ["huge"]
        assert plan.final_mapping["huge"] == "s1"

    def test_sleeps_emptied_servers(self):
        servers = (
            make_server_info("eff", capacity=8.0, efficiency=0.05),
            make_server_info("old", capacity=8.0, efficiency=0.01),
        )
        vms = (make_vm_info("v1", 1.0, 100),)
        problem = PlacementProblem(servers, vms, {"v1": "old"})
        plan = pac(problem)
        assert plan.final_mapping["v1"] == "eff"
        assert plan.sleep == ["old"]

    def test_duplicate_vms_to_place_rejected(self, heterogeneous_problem):
        with pytest.raises(ValueError):
            pac(heterogeneous_problem, vms_to_place=["vm0", "vm0"])

    def test_unknown_vm_rejected(self, heterogeneous_problem):
        with pytest.raises(KeyError):
            pac(heterogeneous_problem, vms_to_place=["nope"])


class TestIPAC:
    def test_initial_placement(self, heterogeneous_problem):
        plan = ipac(heterogeneous_problem)
        assert plan.unplaced == []
        check_plan_feasible(heterogeneous_problem, plan)
        assert plan.info["new_placements"] == len(heterogeneous_problem.vms)

    def test_overload_relief_mandatory(self):
        servers = (
            make_server_info("hot", capacity=4.0, efficiency=0.01),
            make_server_info("cold", capacity=8.0, efficiency=0.05, active=False),
        )
        vms = (
            make_vm_info("v1", 3.0, 100),
            make_vm_info("v2", 2.0, 100),
        )
        problem = PlacementProblem(servers, vms, {"v1": "hot", "v2": "hot"})
        plan = ipac(problem)
        check_plan_feasible(problem, plan)
        loads = {}
        for vm_id, sid in plan.final_mapping.items():
            loads[sid] = loads.get(sid, 0.0) + problem.vm_by_id(vm_id).demand_ghz
        assert all(l <= problem.server_by_id(s).max_capacity_ghz + 1e-9 for s, l in loads.items())
        assert plan.info["overload_evictions"] >= 1

    def test_drains_least_efficient_server(self):
        servers = (
            make_server_info("eff", capacity=12.0, efficiency=0.05),
            make_server_info("mid", capacity=4.0, efficiency=0.03),
            make_server_info("old", capacity=4.0, efficiency=0.01),
        )
        vms = (
            make_vm_info("a", 2.0, 100),
            make_vm_info("b", 1.5, 100),
            make_vm_info("c", 1.0, 100),
        )
        mapping = {"a": "eff", "b": "mid", "c": "old"}
        plan = ipac(PlacementProblem(servers, vms, mapping))
        # Everything fits on 'eff'; both inefficient hosts drain and sleep.
        assert set(plan.final_mapping.values()) == {"eff"}
        assert sorted(plan.sleep) == ["mid", "old"]
        assert plan.info["drain_rounds_accepted"] >= 2

    def test_stops_when_no_improvement(self):
        # Two servers, each full: draining cannot reduce the count.
        servers = (
            make_server_info("s1", capacity=2.0, efficiency=0.05),
            make_server_info("s2", capacity=2.0, efficiency=0.01),
        )
        vms = (make_vm_info("a", 1.9, 100), make_vm_info("b", 1.9, 100))
        mapping = {"a": "s1", "b": "s2"}
        plan = ipac(PlacementProblem(servers, vms, mapping),
                    IPACConfig(pac=PACConfig(target_utilization=1.0)))
        assert plan.final_mapping == mapping
        assert plan.migrations == []

    def test_no_churn_at_steady_state(self, heterogeneous_problem):
        first = ipac(heterogeneous_problem)
        problem2 = PlacementProblem(
            heterogeneous_problem.servers,
            heterogeneous_problem.vms,
            first.final_mapping,
        )
        second = ipac(problem2)
        assert second.migrations == []

    def test_cost_policy_rejects_non_mandatory(self):
        class RejectAll(AllowAllPolicy):
            def allow(self, context):
                return context.mandatory

        servers = (
            make_server_info("eff", capacity=12.0, efficiency=0.05),
            make_server_info("old", capacity=4.0, efficiency=0.01),
        )
        vms = (make_vm_info("a", 1.0, 100),)
        problem = PlacementProblem(servers, vms, {"a": "old"})
        plan = ipac(problem, IPACConfig(cost_policy=RejectAll()))
        assert plan.final_mapping["a"] == "old"  # rolled back
        assert plan.info["migrations_rejected"] == 1

    def test_max_drain_rounds_zero_keeps_placement(self):
        servers = (
            make_server_info("eff", capacity=12.0, efficiency=0.05),
            make_server_info("old", capacity=4.0, efficiency=0.01),
        )
        vms = (make_vm_info("a", 1.0, 100),)
        problem = PlacementProblem(servers, vms, {"a": "old"})
        plan = ipac(problem, IPACConfig(max_drain_rounds=0))
        assert plan.final_mapping["a"] == "old"

    def test_unplaced_vm_retried_after_drain_frees_capacity(self):
        # Phase A packs the efficient small server to its utilization
        # target and the big server runs out of memory, leaving one VM
        # homeless.  The drain loop then consolidates everything onto
        # the big server — emptying the small one, which can now host
        # the leftover VM.  IPAC must retry it (hypothesis-found case).
        servers = (
            make_server_info("s0", capacity=8.0, memory=4096.0,
                             efficiency=0.03125, active=False),
            make_server_info("s1", capacity=3.0, memory=16384.0,
                             efficiency=0.046875, active=False),
        )
        vms = (
            make_vm_info("v0", demand=1.0, memory=512.0),
            make_vm_info("v1", demand=1.0, memory=512.0),
            make_vm_info("v2", demand=1.0, memory=512.0),
            make_vm_info("v3", demand=0.25, memory=512.0),
            make_vm_info("v4", demand=1.0, memory=2048.0),
            make_vm_info("v5", demand=1.0, memory=2048.0),
        )
        problem = PlacementProblem(servers, vms, {})
        plan = ipac(problem)
        check_plan_feasible(problem, plan)
        assert plan.unplaced == []
        assert set(plan.final_mapping) == {v.vm_id for v in vms}

    def test_unplaced_vm_homed_by_single_relocation(self):
        # Neither server can take v6 directly: s0 is out of memory and
        # s1 out of CPU headroom.  Moving one 1-GHz / 512-MB VM from s1
        # to s0 opens the CPU room, so the repair pass must find the
        # (host, relocated VM, refuge) triple (hypothesis-found case).
        servers = (
            make_server_info("s0", capacity=9.0, memory=4096.0,
                             efficiency=0.03125, active=False),
            make_server_info("s1", capacity=3.0, memory=16384.0,
                             efficiency=0.046875, active=False),
        )
        vms = (
            make_vm_info("v0", demand=1.0, memory=512.0),
            make_vm_info("v1", demand=1.0, memory=512.0),
            make_vm_info("v2", demand=1.0, memory=512.0),
            make_vm_info("v3", demand=0.5, memory=512.0),
            make_vm_info("v4", demand=0.25, memory=512.0),
            make_vm_info("v5", demand=1.0, memory=2048.0),
            make_vm_info("v6", demand=1.0, memory=2048.0),
        )
        problem = PlacementProblem(servers, vms, {})
        plan = ipac(problem)
        check_plan_feasible(problem, plan)
        assert plan.unplaced == []
        assert set(plan.final_mapping) == {v.vm_id for v in vms}

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_random_problems_feasible_and_unplaced_sound(self, data):
        n_srv = data.draw(st.integers(2, 6))
        n_vms = data.draw(st.integers(1, 10))
        servers = tuple(
            make_server_info(
                f"s{i}",
                capacity=data.draw(st.floats(2.0, 12.0)),
                memory=data.draw(st.sampled_from([4096.0, 8192.0, 16384.0])),
                efficiency=data.draw(st.floats(0.01, 0.06)),
                active=data.draw(st.booleans()),
            )
            for i in range(n_srv)
        )
        vms = tuple(
            make_vm_info(
                f"v{j}",
                demand=data.draw(st.floats(0.1, 1.5)),
                memory=data.draw(st.sampled_from([512.0, 1024.0, 2048.0])),
            )
            for j in range(n_vms)
        )
        problem = PlacementProblem(servers, vms, {})
        plan = ipac(problem)
        check_plan_feasible(problem, plan)
        # Incompleteness must be *earned*: a VM is reported unplaced
        # only when, in the returned placement, no server has both the
        # CPU headroom (at the packing target) and the memory for it —
        # the ejection-chain repair has already tried harder than that.
        #
        # (A blanket "generous aggregate capacity implies complete"
        # claim is unsound: e.g. servers of 9 GHz / 4096 MB and
        # 2 GHz / 16384 MB with three 1 GHz / 2048 MB VMs and four
        # 0.25-0.5 GHz / 512 MB VMs satisfy 2x aggregate headroom in
        # both dimensions, yet every memory-feasible split needs more
        # than 0.95 * 2 GHz on the small server — no placement at the
        # utilization target exists at all.)
        target = PACConfig().target_utilization
        loads = {s.server_id: 0.0 for s in servers}
        mems = {s.server_id: 0.0 for s in servers}
        vm_by_id = {v.vm_id: v for v in vms}
        for vm_id, sid in plan.final_mapping.items():
            loads[sid] += vm_by_id[vm_id].demand_ghz
            mems[sid] += vm_by_id[vm_id].memory_mb
        for vm_id in plan.unplaced:
            vm = vm_by_id[vm_id]
            for s in servers:
                fits_cpu = (
                    loads[s.server_id] + vm.demand_ghz
                    <= s.max_capacity_ghz * target + 1e-9
                )
                fits_mem = mems[s.server_id] + vm.memory_mb <= s.memory_mb + 1e-9
                assert not (fits_cpu and fits_mem), (
                    f"{vm_id} reported unplaced but fits {s.server_id}"
                )


class TestPMapper:
    def test_initial_placement(self, heterogeneous_problem):
        plan = pmapper(heterogeneous_problem)
        assert plan.unplaced == []
        check_plan_feasible(heterogeneous_problem, plan)

    def test_consolidates_to_efficient_servers(self):
        servers = (
            make_server_info("eff", capacity=12.0, efficiency=0.05),
            make_server_info("old", capacity=12.0, efficiency=0.01),
        )
        vms = (make_vm_info("a", 1.0, 100), make_vm_info("b", 1.0, 100))
        mapping = {"a": "old", "b": "old"}
        plan = pmapper(PlacementProblem(servers, vms, mapping))
        assert set(plan.final_mapping.values()) == {"eff"}
        assert plan.sleep == ["old"]

    def test_no_churn_at_steady_state(self):
        servers = (
            make_server_info("eff", capacity=12.0, efficiency=0.05),
            make_server_info("old", capacity=12.0, efficiency=0.01),
        )
        vms = (make_vm_info("a", 1.0, 100), make_vm_info("b", 1.0, 100))
        first = pmapper(PlacementProblem(servers, vms, {}))
        second = pmapper(PlacementProblem(servers, vms, first.final_mapping))
        assert second.migrations == []

    def test_donor_sheds_smallest_first(self):
        servers = (
            make_server_info("eff", capacity=3.0, efficiency=0.05),
            make_server_info("old", capacity=12.0, efficiency=0.01),
        )
        vms = (make_vm_info("big", 2.5, 100), make_vm_info("small", 0.5, 100))
        mapping = {"big": "old", "small": "old"}
        plan = pmapper(PlacementProblem(servers, vms, mapping),
                       PMapperConfig(target_utilization=1.0))
        # Target: both on eff is impossible (3.0 < 3.0 exact fit is allowed:
        # 2.5 + 0.5 = 3.0). FFD places big then small on eff.
        assert plan.final_mapping["big"] == "eff"
        assert plan.final_mapping["small"] == "eff"

    def test_respects_memory(self):
        servers = (
            make_server_info("eff", capacity=12.0, memory=1000.0, efficiency=0.05),
            make_server_info("old", capacity=12.0, memory=8192.0, efficiency=0.01),
        )
        vms = (make_vm_info("a", 1.0, 900.0), make_vm_info("b", 1.0, 900.0))
        plan = pmapper(PlacementProblem(servers, vms, {}))
        check_plan_feasible(PlacementProblem(servers, vms, {}), plan)
        assert len(plan.final_mapping) == 2

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_random_problems_feasible(self, data):
        n_srv = data.draw(st.integers(1, 5))
        n_vms = data.draw(st.integers(1, 10))
        servers = tuple(
            make_server_info(
                f"s{i}",
                capacity=data.draw(st.floats(2.0, 12.0)),
                efficiency=data.draw(st.floats(0.01, 0.06)),
                active=data.draw(st.booleans()),
            )
            for i in range(n_srv)
        )
        vms = tuple(
            make_vm_info(f"v{j}", demand=data.draw(st.floats(0.1, 1.5)))
            for j in range(n_vms)
        )
        problem = PlacementProblem(servers, vms, {})
        plan = pmapper(problem)
        check_plan_feasible(problem, plan)


class TestMinSlackBeatsFFD:
    def test_packing_quality_on_adversarial_instance(self):
        """Minimum Slack fills a bin exactly where FFD leaves slack —
        the packing-quality edge the paper credits IPAC with."""
        servers = (make_server_info("s", capacity=6.0),)
        vms = (
            make_vm_info("a", 5.0, 10),
            make_vm_info("b", 4.0, 10),
            make_vm_info("c", 2.0, 10),
        )
        problem = PlacementProblem(servers, vms, {})
        pac_plan = pac(problem, config=PACConfig(target_utilization=1.0))
        pac_load = sum(
            v.demand_ghz for v in vms if pac_plan.final_mapping.get(v.vm_id) == "s"
        )
        pm_plan = pmapper(problem, PMapperConfig(target_utilization=1.0))
        pm_load = sum(
            v.demand_ghz for v in vms if pm_plan.final_mapping.get(v.vm_id) == "s"
        )
        assert pac_load == pytest.approx(6.0)  # picks 4 + 2
        assert pm_load == pytest.approx(5.0)   # FFD grabs 5 first


class TestMigrationPolicies:
    def _context(self, mandatory=False, benefit=50.0, memory=1024.0):
        vm = make_vm_info("v", 1.0, memory)
        src = make_server_info("src", efficiency=0.01)
        dst = make_server_info("dst", efficiency=0.05)
        return MigrationContext(
            migration=Migration("v", "src", "dst"),
            vm=vm,
            source=src,
            target=dst,
            estimated_benefit_w=benefit,
            migration_model=LiveMigrationModel(),
            mandatory=mandatory,
        )

    def test_allow_all(self):
        assert AllowAllPolicy().allow(self._context())

    def test_benefit_threshold_accepts_big_savings(self):
        policy = BenefitThresholdPolicy(amortization_horizon_s=3600.0)
        assert policy.allow(self._context(benefit=100.0))

    def test_benefit_threshold_rejects_tiny_savings(self):
        policy = BenefitThresholdPolicy(
            amortization_horizon_s=10.0, overhead_w=100.0, safety_factor=10.0
        )
        assert not policy.allow(self._context(benefit=0.01))

    def test_benefit_threshold_always_allows_mandatory(self):
        policy = BenefitThresholdPolicy(
            amortization_horizon_s=1.0, overhead_w=1e6, safety_factor=100.0
        )
        assert policy.allow(self._context(mandatory=True, benefit=0.0))

    def test_bandwidth_budget_exhausts(self):
        policy = BandwidthBudgetPolicy(budget_mb_per_invocation=2000.0)
        ctx = self._context(memory=1024.0)  # ~1331 MB with dirty factor 1.3
        assert policy.allow(ctx)
        assert not policy.allow(ctx)  # budget spent
        policy.reset()
        assert policy.allow(ctx)

    def test_bandwidth_budget_mandatory_bypasses(self):
        policy = BandwidthBudgetPolicy(budget_mb_per_invocation=1.0)
        assert policy.allow(self._context(mandatory=True))

    def test_context_cost_properties(self):
        ctx = self._context(memory=1000.0)
        assert ctx.cost_traffic_mb == pytest.approx(1300.0)
        assert ctx.cost_duration_s > 0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BenefitThresholdPolicy(amortization_horizon_s=0.0)
        with pytest.raises(ValueError):
            BandwidthBudgetPolicy(0.0)
