"""Optimizer extras: the exhaustive oracle, on-demand relief, and
near-optimality evidence for the heuristics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimizer import (
    IPACConfig,
    OnDemandConfig,
    PlacementProblem,
    ipac,
    optimal_placement_power,
    pac,
    placement_power_w,
    pmapper,
    relieve_overloads,
)

from tests.conftest import check_plan_feasible, make_server_info, make_vm_info


class TestOracle:
    def test_single_server_trivial(self):
        servers = (make_server_info("s", capacity=4.0),)
        vms = (make_vm_info("v", 1.0, 100),)
        power, mapping = optimal_placement_power(PlacementProblem(servers, vms, {}))
        assert mapping == {"v": "s"}
        assert power == pytest.approx(100.0 + 100.0 * (1.0 / 4.0))

    def test_prefers_consolidation(self):
        servers = (
            make_server_info("a", capacity=4.0),
            make_server_info("b", capacity=4.0),
        )
        vms = (make_vm_info("v1", 1.0, 100), make_vm_info("v2", 1.0, 100))
        power, mapping = optimal_placement_power(PlacementProblem(servers, vms, {}))
        assert len(set(mapping.values())) == 1  # one idle cost beats two

    def test_infeasible_returns_none(self):
        servers = (make_server_info("s", capacity=1.0),)
        vms = (make_vm_info("v", 5.0, 100),)
        power, mapping = optimal_placement_power(PlacementProblem(servers, vms, {}))
        assert mapping is None
        assert power == float("inf")

    def test_memory_respected(self):
        servers = (
            make_server_info("small", capacity=8.0, memory=1000.0),
            make_server_info("big", capacity=8.0, memory=8000.0, efficiency=0.02),
        )
        vms = (make_vm_info("v", 1.0, 2000.0),)
        _, mapping = optimal_placement_power(PlacementProblem(servers, vms, {}))
        assert mapping == {"v": "big"}

    def test_state_guard(self):
        servers = tuple(make_server_info(f"s{i}") for i in range(10))
        vms = tuple(make_vm_info(f"v{j}", 0.1, 10) for j in range(10))
        with pytest.raises(ValueError):
            optimal_placement_power(
                PlacementProblem(servers, vms, {}), max_states=100
            )

    def test_placement_power_sleepers_flag(self):
        servers = (
            make_server_info("a", capacity=4.0, sleep_w=8.0),
            make_server_info("b", capacity=4.0, sleep_w=8.0),
        )
        vms = (make_vm_info("v", 1.0, 100),)
        problem = PlacementProblem(servers, vms, {})
        mapping = {"v": "a"}
        without = placement_power_w(problem, mapping, include_sleepers=False)
        with_sleep = placement_power_w(problem, mapping, include_sleepers=True)
        assert with_sleep == pytest.approx(without + 8.0)

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_heuristics_near_optimal_on_tiny_instances(self, data):
        """Never better than the oracle (oracle sanity), and IPAC — whose
        drain loop accepts moves by the true power estimate — lands within
        50% of the brute-force optimum.  PAC alone only guarantees
        feasibility: the paper's efficiency metric (max capacity / max
        power) is blind to idle power, so adversarial idle draws can make
        efficiency-first packing arbitrarily suboptimal — a documented
        property of the heuristic, not a bug.

        Servers here have a fixed idle fraction (idle = 0.6 busy) and
        efficiency consistent with their power fields, the regime the
        paper's metric is designed for."""
        n_srv = data.draw(st.integers(2, 3))
        n_vms = data.draw(st.integers(2, 5))
        cap_bands = [(8.0, 10.0), (4.0, 5.5), (2.5, 3.2)]
        servers = []
        for i in range(n_srv):
            capacity = data.draw(st.floats(*cap_bands[i]))
            busy_w = data.draw(st.floats(150.0, 250.0))
            servers.append(make_server_info(
                f"s{i}",
                capacity=capacity,
                efficiency=capacity / busy_w,
                idle_w=0.6 * busy_w,
                busy_w=busy_w,
            ))
        servers = tuple(servers)
        vms = tuple(
            make_vm_info(f"v{j}", demand=data.draw(st.floats(0.2, 1.2)), memory=256.0)
            for j in range(n_vms)
        )
        problem = PlacementProblem(servers, vms, {})
        best_power, best_mapping = optimal_placement_power(problem)
        if best_mapping is None:
            return
        for name, algo in (("pac", lambda p: pac(p)), ("ipac", lambda p: ipac(p))):
            plan = algo(problem)
            if plan.unplaced:
                continue
            power = placement_power_w(problem, plan.final_mapping)
            assert power >= best_power - 1e-9, f"{name} beat the oracle?!"
            if name == "ipac":
                assert power <= best_power * 1.5 + 1e-9


class TestOnDemandRelief:
    def _overloaded_problem(self):
        servers = (
            make_server_info("hot", capacity=4.0, efficiency=0.03),
            make_server_info("cool", capacity=8.0, efficiency=0.04),
            make_server_info("asleep", capacity=8.0, efficiency=0.05, active=False),
        )
        vms = (
            make_vm_info("v1", 2.0, 512),
            make_vm_info("v2", 1.5, 512),
            make_vm_info("v3", 1.2, 512),
            make_vm_info("v4", 0.5, 512),
        )
        mapping = {"v1": "hot", "v2": "hot", "v3": "hot", "v4": "cool"}
        return PlacementProblem(servers, vms, mapping)

    def test_relieves_overload(self):
        problem = self._overloaded_problem()  # hot carries 4.7 > 4.0
        plan = relieve_overloads(problem)
        loads = {}
        for vm_id, sid in plan.final_mapping.items():
            loads[sid] = loads.get(sid, 0.0) + problem.vm_by_id(vm_id).demand_ghz
        assert loads["hot"] <= 4.0 * 0.9 + 1e-9
        check_plan_feasible(problem, plan)

    def test_prefers_active_receiver(self):
        problem = self._overloaded_problem()
        plan = relieve_overloads(problem)
        # 'cool' has plenty of room; nothing should wake 'asleep'.
        assert plan.wake == []

    def test_wakes_only_when_necessary(self):
        servers = (
            make_server_info("hot", capacity=4.0),
            make_server_info("asleep", capacity=8.0, active=False),
        )
        vms = (make_vm_info("v1", 3.0, 512), make_vm_info("v2", 1.5, 512))
        problem = PlacementProblem(servers, vms, {"v1": "hot", "v2": "hot"})
        plan = relieve_overloads(problem)
        assert plan.wake == ["asleep"]
        check_plan_feasible(problem, plan)

    def test_wake_disabled_leaves_unplaced(self):
        servers = (
            make_server_info("hot", capacity=4.0),
            make_server_info("asleep", capacity=8.0, active=False),
        )
        vms = (make_vm_info("v1", 3.0, 512), make_vm_info("v2", 1.5, 512))
        problem = PlacementProblem(servers, vms, {"v1": "hot", "v2": "hot"})
        plan = relieve_overloads(problem, OnDemandConfig(allow_wake=False))
        assert plan.wake == []
        assert plan.unplaced  # nowhere to go

    def test_noop_when_no_overload(self):
        servers = (make_server_info("s", capacity=8.0),)
        vms = (make_vm_info("v", 1.0, 512),)
        problem = PlacementProblem(servers, vms, {"v": "s"})
        plan = relieve_overloads(problem)
        assert plan.migrations == []
        assert plan.final_mapping == {"v": "s"}

    def test_never_sleeps_servers(self):
        problem = self._overloaded_problem()
        plan = relieve_overloads(problem)
        assert plan.sleep == []

    def test_evicts_smallest_sufficient_set(self):
        problem = self._overloaded_problem()
        plan = relieve_overloads(problem)
        # v1 (largest) stays; smaller VMs moved first.
        assert plan.final_mapping["v1"] == "hot"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OnDemandConfig(target_utilization=0.95, overload_utilization=0.9)


class TestLargeScaleRelief:
    def test_relief_reduces_overload_steps(self):
        from repro.sim.largescale import LargeScaleConfig, run_largescale
        from repro.traces import TraceConfig, generate_trace

        trace = generate_trace(
            TraceConfig(n_servers=80, n_days=1, spike_probability=0.01), rng=13
        )
        base = dict(n_vms=80, n_servers=120, scheme="ipac", seed=3,
                    optimize_every_steps=48)
        without = run_largescale(trace, LargeScaleConfig(**base))
        with_relief = run_largescale(
            trace, LargeScaleConfig(ondemand_relief=True, **base)
        )
        assert with_relief.overload_server_steps <= without.overload_server_steps
        if without.overload_server_steps:
            assert with_relief.info["relief_moves"] > 0
