"""Bin-packing substrate: first-fit family and Minimum Bin Slack."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.packing import (
    best_fit_decreasing,
    first_fit,
    first_fit_decreasing,
    minimum_bin_slack,
)
from repro.packing.mbs import CompositeConstraint, MemoryConstraint, PackingConstraint


def _loads(assignment, sizes, n_bins, dim):
    loads = np.zeros(n_bins)
    for i, b in enumerate(assignment):
        if b is not None:
            loads[b] += sizes[i][dim]
    return loads


class TestFirstFit:
    def test_simple_sequence(self):
        sizes = [[3.0], [3.0], [3.0]]
        caps = [[4.0], [4.0], [4.0]]
        assert first_fit(sizes, caps) == [0, 1, 2]

    def test_fills_before_moving_on(self):
        sizes = [[2.0], [2.0], [2.0]]
        caps = [[4.0], [4.0]]
        assert first_fit(sizes, caps) == [0, 0, 1]

    def test_unplaceable_returns_none(self):
        assert first_fit([[5.0]], [[4.0]]) == [None]

    def test_respects_existing_usage(self):
        out = first_fit([[2.0]], [[4.0]], bin_used=[[3.0]])
        assert out == [None]

    def test_vector_dimensions_all_checked(self):
        sizes = [[1.0, 3000.0]]
        caps = [[4.0, 2048.0], [4.0, 4096.0]]
        assert first_fit(sizes, caps) == [1]

    def test_ffd_sorts_by_dimension(self):
        sizes = [[1.0], [3.0], [2.0]]
        caps = [[3.0], [3.0]]
        out = first_fit_decreasing(sizes, caps)
        # 3 -> bin0; 2 -> bin1; 1 -> bin1.
        assert out == [1, 0, 1]

    def test_ffd_returns_original_order(self):
        sizes = [[1.0], [5.0], [2.0]]
        caps = [[10.0]]
        out = first_fit_decreasing(sizes, caps)
        assert out == [0, 0, 0]

    def test_bfd_prefers_tightest_fit(self):
        sizes = [[2.0]]
        caps = [[10.0], [2.5]]
        assert best_fit_decreasing(sizes, caps) == [1]

    def test_empty_items(self):
        assert first_fit_decreasing([], [[1.0]]) == []
        assert best_fit_decreasing([], [[1.0]]) == []

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            first_fit([[-1.0]], [[4.0]])

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_feasibility_invariant(self, data):
        """No assigned bin ever exceeds capacity in any dimension."""
        n_items = data.draw(st.integers(1, 12))
        n_bins = data.draw(st.integers(1, 6))
        sizes = [
            [data.draw(st.floats(0.1, 3.0)), data.draw(st.floats(10, 2000))]
            for _ in range(n_items)
        ]
        caps = [
            [data.draw(st.floats(1.0, 6.0)), data.draw(st.floats(500, 4000))]
            for _ in range(n_bins)
        ]
        for algo in (first_fit, first_fit_decreasing, best_fit_decreasing):
            out = algo(sizes, caps)
            for dim in (0, 1):
                loads = _loads(out, sizes, n_bins, dim)
                assert np.all(loads <= np.asarray(caps)[:, dim] + 1e-6)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_ffd_within_guarantee_of_ff(self, data):
        # FFD is NOT pointwise <= FF (e.g. [0.5, 3x0.25, 2x0.375] packs
        # to 2 bins under FF but 3 under FFD); the sound relation is the
        # approximation guarantee FFD <= 11/9 OPT + 6/9 with OPT <= FF,
        # plus the L1 lower bound on any feasible packing.
        n_items = data.draw(st.integers(1, 10))
        sizes = [[data.draw(st.floats(0.1, 1.0))] for _ in range(n_items)]
        caps = [[1.0] for _ in range(n_items)]
        ff = first_fit(sizes, caps)
        ffd = first_fit_decreasing(sizes, caps)
        used_ff = len({b for b in ff if b is not None})
        used_ffd = len({b for b in ffd if b is not None})
        assert used_ffd <= 11.0 / 9.0 * used_ff + 6.0 / 9.0
        lower = math.ceil(sum(s[0] for s in sizes) - 1e-9)
        assert used_ffd >= lower
        assert used_ff >= lower


class TestMinimumBinSlack:
    def test_exact_fill_found(self):
        res = minimum_bin_slack([3.0, 2.0, 1.0, 5.0], capacity=6.0)
        assert res.slack == pytest.approx(0.0)
        chosen = sum([3.0, 2.0, 1.0, 5.0][i] for i in res.selected)
        assert chosen == pytest.approx(6.0)

    def test_better_than_greedy(self):
        """Greedy decreasing picks 5 then nothing fits (slack 1); MBS finds
        4 + 2 (slack 0)."""
        res = minimum_bin_slack([5.0, 4.0, 2.0], capacity=6.0)
        assert res.slack == pytest.approx(0.0)
        assert sorted([5.0, 4.0, 2.0][i] for i in res.selected) == [2.0, 4.0]

    def test_empty_items(self):
        res = minimum_bin_slack([], capacity=5.0)
        assert res.selected == ()
        assert res.slack == 5.0

    def test_zero_capacity(self):
        res = minimum_bin_slack([1.0, 2.0], capacity=0.0)
        assert res.selected == ()
        assert res.slack == 0.0
        assert res.early_exit

    def test_epsilon_early_exit(self):
        res = minimum_bin_slack([3.0, 2.0, 1.0], capacity=6.0, epsilon=1.5)
        assert res.slack <= 1.5
        assert res.early_exit

    def test_memory_constraint_blocks_items(self):
        sizes = [4.0, 3.0, 3.0]
        mems = [3000.0, 500.0, 500.0]
        res = minimum_bin_slack(
            sizes, capacity=7.0,
            constraint=MemoryConstraint(mems, memory_capacity=1500.0),
        )
        # Item 0 never fits memory; best CPU fill is 3 + 3 = 6.
        assert 0 not in res.selected
        assert res.slack == pytest.approx(1.0)

    def test_constraint_state_restored_after_search(self):
        mems = [500.0, 500.0]
        constraint = MemoryConstraint(mems, 2000.0)
        minimum_bin_slack([1.0, 2.0], 5.0, constraint=constraint)
        assert constraint.used == pytest.approx(0.0)

    def test_composite_constraint(self):
        class Reject1(PackingConstraint):
            def accepts(self, idx):
                return idx != 1
        comp = CompositeConstraint([Reject1(), MemoryConstraint([10, 10, 10], 100)])
        res = minimum_bin_slack([2.0, 2.0, 2.0], 6.0, constraint=comp)
        assert 1 not in res.selected

    def test_step_budget_epsilon_escalation(self):
        """With a 1-step budget, epsilon escalates and the search still
        terminates with a feasible answer."""
        sizes = list(np.linspace(0.1, 1.0, 12))
        res = minimum_bin_slack(sizes, capacity=3.0, max_steps=1, epsilon_step=0.5)
        assert res.epsilon_used > 0.0
        assert res.slack <= 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            minimum_bin_slack([-1.0], 5.0)
        with pytest.raises(ValueError):
            minimum_bin_slack([1.0], -5.0)
        with pytest.raises(ValueError):
            minimum_bin_slack([1.0], 5.0, epsilon=-0.1)
        with pytest.raises(ValueError):
            minimum_bin_slack([1.0], 5.0, max_steps=0)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_matches_bruteforce_on_small_instances(self, data):
        n = data.draw(st.integers(1, 8))
        sizes = [data.draw(st.floats(0.1, 4.0)) for _ in range(n)]
        capacity = data.draw(st.floats(1.0, 8.0))
        res = minimum_bin_slack(sizes, capacity, epsilon=0.0, max_steps=10**6)
        # Brute force over all subsets.
        best = capacity
        for mask in itertools.product([0, 1], repeat=n):
            total = sum(s for s, b in zip(sizes, mask) if b)
            if total <= capacity + 1e-9:
                best = min(best, capacity - total)
        assert res.slack == pytest.approx(best, abs=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_selection_always_feasible(self, data):
        n = data.draw(st.integers(1, 10))
        sizes = [data.draw(st.floats(0.1, 4.0)) for _ in range(n)]
        mems = [data.draw(st.floats(100, 2000)) for _ in range(n)]
        capacity = data.draw(st.floats(0.5, 6.0))
        mem_cap = data.draw(st.floats(500, 4000))
        res = minimum_bin_slack(
            sizes, capacity, constraint=MemoryConstraint(mems, mem_cap),
            epsilon=0.05, max_steps=2000,
        )
        total = sum(sizes[i] for i in res.selected)
        total_mem = sum(mems[i] for i in res.selected)
        assert total <= capacity + 1e-9
        assert total_mem <= mem_cap + 1e-9
        assert res.slack == pytest.approx(capacity - total)
        assert len(set(res.selected)) == len(res.selected)  # no duplicates
