"""Control-plane kernel: units, golden equivalence, checkpoint/resume.

The golden hashes pin the kernel's determinism contract: a kernel-driven
run emits byte-identical telemetry event logs to the legacy hand-wired
loops (captured on the pre-kernel harnesses), including under fault
injection — and a run resumed from a mid-run checkpoint finishes with
the same events, power series, and aggregates as an uninterrupted one.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.control.arx import ARXModel
from repro.core.controller.response_time_controller import (
    ControllerConfig,
    ResponseTimeController,
)
from repro.engine import (
    CHECKPOINT_SCHEMA,
    PHASE_NAMES,
    CheckpointError,
    ControlPlane,
    PeriodContext,
    Phase,
)
from repro.engine.checkpoint import (
    decode_array,
    decode_float,
    decode_rng,
    encode_array,
    encode_float,
    encode_rng,
)
from repro.engine.largescale_backend import build_largescale_engine
from repro.engine.testbed_backend import build_testbed_engine
from repro.faults import FaultSchedule
from repro.obs import InMemoryBackend, Telemetry, use_telemetry
from repro.sim.largescale import LargeScaleConfig
from repro.sim.testbed import TestbedConfig
from repro.traces.generator import TraceConfig, generate_trace


def _eventlog_hash(records):
    events = [r for r in records if r.get("kind") not in ("span", "metrics")]
    digest = hashlib.sha256(
        json.dumps(events, sort_keys=True, default=str).encode()
    ).hexdigest()
    return digest, len(events)


FAULTED_TB_SPEC = {
    "seed": 3,
    "events": [
        {"time_s": 45.0, "kind": "server_crash", "target": "T1",
         "duration_s": 60.0},
        {"time_s": 60.0, "kind": "thermal_throttle", "target": "T0",
         "duration_s": 45.0, "fraction": 0.6},
        {"time_s": 90.0, "kind": "sensor_dropout", "target": "app0",
         "duration_s": 30.0, "probability": 1.0},
    ],
}

FAULTED_LS_SPEC = {
    "seed": 11,
    "events": [
        {"time_s": 3600.0, "kind": "server_crash", "target": "S0009",
         "duration_s": 7200.0},
        {"time_s": 10800.0, "kind": "thermal_throttle", "target": "S0010",
         "duration_s": 7200.0, "fraction": 0.5},
        {"time_s": 14400.0, "kind": "migration_failure", "target": None,
         "duration_s": 21600.0, "probability": 0.5},
    ],
}

# Captured on the pre-kernel harness loops (same configs, same seeds).
_LS_FAULTED_GOLDEN = {
    "eventlog_sha": "440685fa88dccad2d695c7dfa875c130e4b949da44e2eb1bda0581a70731c766",
    "n_events": 122,
    "energy_wh": 14410.484465926129,
    "migrations": 6,
    "power_sha": "c808145a61f9c04f82be16ff81edb5f58c1da84e4962c550a759e068e2409d70",
}
_TB_FAULTED_GOLDEN = {
    "eventlog_sha": "a731f38538def6d068c06d2399aa5597d92e11d482788027d0bb3767f02f64b3",
    "n_events": 32,
    "power_mean": 112.70115962383106,
}
_TB_INTEGRATED_GOLDEN = {
    "eventlog_sha": "895d756c50c298b6ca7e1dd7120ad5ff63f741b1ae9ca80ff22caafd1583643d",
    "n_events": 38,
    "power_mean": 114.66230894310405,
}

_TB_MODEL = ARXModel(a=[0.4], b=[[-800.0, -300.0], [-100.0, -50.0]], g=1800.0)


def _tb_config(**overrides):
    # control_mode="scalar": these configs reproduce goldens captured on
    # the pre-kernel per-app loop; the fleet path is allclose, not
    # bit-identical (see tests/test_fleet.py for its equivalence gates).
    base = dict(
        n_servers=2, n_apps=2, duration_s=180.0, warmup_s=20.0,
        concurrency=10, initial_alloc_ghz=0.6, mpc_warm_start=False,
        control_mode="scalar", seed=77,
    )
    base.update(overrides)
    return TestbedConfig(**base)


def _ls_trace():
    return generate_trace(TraceConfig(n_servers=40, n_days=1), rng=13)


def _ls_config(**overrides):
    base = dict(n_vms=30, n_servers=50, seed=5)
    base.update(overrides)
    return LargeScaleConfig(**base)


# ---------------------------------------------------------------------------
# kernel units
# ---------------------------------------------------------------------------


class _Counter:
    """Minimal checkpointable component for kernel unit tests."""

    def __init__(self):
        self.value = 0

    def bump(self, ctx):
        self.value += 1

    def state_dict(self):
        return {"value": self.value}

    def load_state_dict(self, state):
        self.value = int(state["value"])


def _engine(n_periods=4, component=None, name="engine"):
    comp = component or _Counter()
    return ControlPlane(
        period_s=1.0,
        n_periods=n_periods,
        phases=[Phase("sense", comp.bump)],
        checkpointables={"counter": comp},
        name=name,
    ), comp


class TestKernelUnits:
    def test_phase_name_must_be_canonical(self):
        with pytest.raises(ValueError, match="unknown phase name"):
            Phase("warmup", lambda ctx: None)

    def test_phase_must_be_callable(self):
        with pytest.raises(TypeError):
            Phase("sense", None)

    def test_canonical_vocabulary_is_stable(self):
        assert PHASE_NAMES == (
            "faults", "sense", "sysid", "control", "arbitrate",
            "optimize", "actuate", "telemetry",
        )

    def test_duplicate_phases_rejected(self):
        comp = _Counter()
        with pytest.raises(ValueError, match="duplicate phase"):
            ControlPlane(1.0, 2, [Phase("sense", comp.bump), Phase("sense", comp.bump)])

    def test_needs_at_least_one_phase(self):
        with pytest.raises(ValueError, match="at least one phase"):
            ControlPlane(1.0, 2, [])

    def test_non_checkpointable_component_rejected(self):
        with pytest.raises(TypeError, match="state_dict"):
            ControlPlane(
                1.0, 2, [Phase("sense", lambda ctx: None)],
                checkpointables={"bad": object()},
            )

    def test_step_and_run_semantics(self):
        engine, comp = _engine(n_periods=5)
        ctx = engine.step()
        assert (ctx.k, ctx.time_s, ctx.period_s) == (0, 0.0, 1.0)
        assert isinstance(ctx, PeriodContext)
        assert engine.k == 1 and engine.time_s == 1.0 and not engine.finished
        assert engine.run(until_period=3) == 2
        assert engine.run() == 2
        assert engine.finished and comp.value == 5
        with pytest.raises(RuntimeError, match="already ran"):
            engine.step()

    def test_checkpoint_document_shape(self):
        engine, _ = _engine()
        engine.run(until_period=2)
        doc = engine.checkpoint()
        assert doc["schema"] == CHECKPOINT_SCHEMA
        assert doc["engine"] == {
            "name": "engine", "period": 2, "period_s": 1.0, "n_periods": 4,
        }
        assert doc["components"] == {"counter": {"value": 2}}
        # JSON-safe by construction.
        assert json.loads(json.dumps(doc)) == doc

    def test_restore_continues_from_cursor(self):
        engine, _ = _engine()
        engine.run(until_period=3)
        doc = json.loads(json.dumps(engine.checkpoint()))
        fresh, comp = _engine()
        fresh.restore(doc)
        assert fresh.k == 3 and comp.value == 3
        fresh.run()
        assert comp.value == 4

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda d: d.pop("schema"), "malformed"),
            (lambda d: d.update(schema=99), "schema"),
            (lambda d: d["engine"].update(name="other"), "engine 'other'"),
            (lambda d: d["engine"].update(period_s=2.0), "timing"),
            (lambda d: d["engine"].update(n_periods=9), "timing"),
            (lambda d: d["engine"].update(period=77), "out of range"),
            (lambda d: d["components"].pop("counter"), "lacks component"),
            (lambda d: d["components"].update(extra={}), "unknown components"),
        ],
    )
    def test_restore_rejects_bad_documents(self, mutate, message):
        engine, _ = _engine()
        engine.run(until_period=1)
        doc = engine.checkpoint()
        mutate(doc)
        fresh, _ = _engine()
        with pytest.raises(CheckpointError, match=message):
            fresh.restore(doc)

    def test_replay_resume_needs_fresh_engine(self):
        class _Replayed(_Counter):
            resume_strategy = "replay"

        engine, _ = _engine(component=_Replayed())
        engine.run(until_period=2)
        doc = engine.checkpoint()
        assert engine.resume_strategy == "replay"
        used, _ = _engine(component=_Replayed())
        used.step()
        with pytest.raises(CheckpointError, match="freshly built"):
            used.restore(doc)

    def test_load_checkpoint_rejects_bad_files(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("not json", encoding="utf-8")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            ControlPlane.load_checkpoint(str(path))
        path.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(CheckpointError, match="checkpoint object"):
            ControlPlane.load_checkpoint(str(path))

    def test_save_load_roundtrip(self, tmp_path):
        engine, _ = _engine()
        engine.run(until_period=2)
        path = tmp_path / "ck.json"
        engine.save_checkpoint(str(path))
        assert ControlPlane.load_checkpoint(str(path)) == engine.checkpoint()


class TestCheckpointCodecs:
    def test_array_roundtrip(self):
        arr = np.arange(6, dtype=np.float64).reshape(2, 3)
        doc = json.loads(json.dumps(encode_array(arr)))
        out = decode_array(doc)
        assert out.dtype == arr.dtype and out.shape == arr.shape
        np.testing.assert_array_equal(out, arr)

    def test_array_rejects_non_finite(self):
        with pytest.raises(ValueError):
            encode_array(np.array([1.0, np.nan]))

    def test_rng_roundtrip_preserves_stream(self):
        rng = np.random.default_rng(42)
        rng.random(7)
        doc = json.loads(json.dumps(encode_rng(rng)))
        clone = decode_rng(doc)
        np.testing.assert_array_equal(rng.random(5), clone.random(5))

    def test_float_nan_roundtrip(self):
        assert encode_float(float("nan")) is None
        assert np.isnan(decode_float(None))
        assert decode_float(encode_float(1.5)) == 1.5


# ---------------------------------------------------------------------------
# golden equivalence under fault injection
# ---------------------------------------------------------------------------


class TestGoldenFaulted:
    def test_largescale_faulted_matches_legacy_loop(self):
        backend = InMemoryBackend()
        engine, plant = build_largescale_engine(
            _ls_trace(),
            _ls_config(faults=FaultSchedule.from_spec(FAULTED_LS_SPEC)),
        )
        with use_telemetry(Telemetry(backend)):
            plant.start()
            engine.run()
            res = plant.result()
        digest, n = _eventlog_hash(backend.records)
        assert (digest, n) == (
            _LS_FAULTED_GOLDEN["eventlog_sha"], _LS_FAULTED_GOLDEN["n_events"],
        )
        assert res.total_energy_wh == _LS_FAULTED_GOLDEN["energy_wh"]
        assert res.migrations == _LS_FAULTED_GOLDEN["migrations"]
        power_sha = hashlib.sha256(
            np.asarray(res.power_series_w).tobytes()
        ).hexdigest()
        assert power_sha == _LS_FAULTED_GOLDEN["power_sha"]

    def test_testbed_faulted_matches_legacy_loop(self):
        backend = InMemoryBackend()
        engine, plant = build_testbed_engine(
            config=_tb_config(faults=FaultSchedule.from_spec(FAULTED_TB_SPEC)),
            model=_TB_MODEL,
        )
        with use_telemetry(Telemetry(backend)):
            plant.start()
            engine.run()
            res = plant.result()
        digest, n = _eventlog_hash(backend.records)
        assert (digest, n) == (
            _TB_FAULTED_GOLDEN["eventlog_sha"], _TB_FAULTED_GOLDEN["n_events"],
        )
        assert res.power_summary()["mean"] == _TB_FAULTED_GOLDEN["power_mean"]

    def test_testbed_integrated_matches_legacy_loop(self):
        from repro.apps.workload import StepWorkload

        backend = InMemoryBackend()
        engine, plant = build_testbed_engine(
            config=_tb_config(
                duration_s=240.0,
                optimize_at_s=(60.0, 180.0),
                workloads={1: StepWorkload(10, 20, 90.0, 180.0)},
            ),
            model=_TB_MODEL,
        )
        with use_telemetry(Telemetry(backend)):
            plant.start()
            engine.run()
            res = plant.result()
        digest, n = _eventlog_hash(backend.records)
        assert (digest, n) == (
            _TB_INTEGRATED_GOLDEN["eventlog_sha"],
            _TB_INTEGRATED_GOLDEN["n_events"],
        )
        assert res.power_summary()["mean"] == _TB_INTEGRATED_GOLDEN["power_mean"]


# ---------------------------------------------------------------------------
# checkpoint / resume bit-identity
# ---------------------------------------------------------------------------


class TestLargeScaleResume:
    """State-strategy resume: arrays and counters restore directly."""

    def _build(self):
        return build_largescale_engine(
            _ls_trace(),
            _ls_config(
                faults=FaultSchedule.from_spec(FAULTED_LS_SPEC),
                provisioning="ewma_peak",
            ),
        )

    def test_resume_matches_uninterrupted_run(self):
        full = InMemoryBackend()
        engine, plant = self._build()
        with use_telemetry(Telemetry(full)):
            plant.start()
            engine.run()
            res_full = plant.result()

        split = InMemoryBackend()
        engine1, plant1 = self._build()
        with use_telemetry(Telemetry(split)):
            plant1.start()
            engine1.run(until_period=50)
            doc = json.loads(json.dumps(engine1.checkpoint()))
        engine2, plant2 = self._build()
        with use_telemetry(Telemetry(split)):
            engine2.restore(doc)
            assert engine2.k == 50
            engine2.run()
            res = plant2.result()

        assert _eventlog_hash(split.records) == _eventlog_hash(full.records)
        assert res.total_energy_wh == res_full.total_energy_wh
        assert res.migrations == res_full.migrations
        np.testing.assert_array_equal(res.power_series_w, res_full.power_series_w)

    def test_resume_with_different_seed_rejected(self):
        engine, plant = self._build()
        plant.start()
        engine.run(until_period=10)
        doc = json.loads(json.dumps(engine.checkpoint()))
        other, _ = build_largescale_engine(
            _ls_trace(),
            _ls_config(
                seed=6,
                faults=FaultSchedule.from_spec(FAULTED_LS_SPEC),
                provisioning="ewma_peak",
            ),
        )
        with pytest.raises(CheckpointError, match="same trace"):
            other.restore(doc)


class TestTestbedResume:
    """Replay-strategy resume: muted re-execution, then verification."""

    def _build(self):
        return build_testbed_engine(
            config=_tb_config(faults=FaultSchedule.from_spec(FAULTED_TB_SPEC)),
            model=_TB_MODEL,
        )

    def test_resume_matches_uninterrupted_run(self, tmp_path):
        full = InMemoryBackend()
        engine, plant = self._build()
        with use_telemetry(Telemetry(full)):
            plant.start()
            engine.run()
            res_full = plant.result()

        path = tmp_path / "tb.json"
        split = InMemoryBackend()
        engine1, plant1 = self._build()
        with use_telemetry(Telemetry(split)):
            plant1.start()
            engine1.run(until_period=7)
            engine1.save_checkpoint(str(path))
        engine2, plant2 = self._build()
        with use_telemetry(Telemetry(split)):
            # restore() replays the prefix muted (no duplicate events),
            # verifies the replayed state, and leaves the cursor at 7.
            engine2.restore(ControlPlane.load_checkpoint(str(path)))
            assert engine2.k == 7
            engine2.run()
            res = plant2.result()

        assert _eventlog_hash(split.records) == _eventlog_hash(full.records)
        assert res.power_summary() == res_full.power_summary()

    def test_resume_with_different_seed_rejected(self):
        engine, plant = self._build()
        plant.start()
        engine.run(until_period=5)
        doc = json.loads(json.dumps(engine.checkpoint()))
        other, _ = build_testbed_engine(
            config=_tb_config(
                seed=78, faults=FaultSchedule.from_spec(FAULTED_TB_SPEC)
            ),
            model=_TB_MODEL,
        )
        with pytest.raises(CheckpointError, match="does not match"):
            other.restore(doc)


# ---------------------------------------------------------------------------
# controller handover inside the engine (adopt_warm_state)
# ---------------------------------------------------------------------------


class TestControllerHandover:
    def test_warm_state_survives_handover(self):
        engine, plant = build_testbed_engine(
            config=_tb_config(mpc_warm_start=True), model=_TB_MODEL
        )
        plant.start()
        engine.run(until_period=6)
        old = plant.manager.controllers["app0"]
        assert old._mpc._warm_active  # the run has seeded warm sets

        # A supervisor swaps in a fresh controller mid-run (e.g. after
        # re-identification); the warm working sets carry over.
        cfg = plant.config
        new = ResponseTimeController(
            _TB_MODEL,
            ControllerConfig(
                setpoint_ms=cfg.setpoint_ms,
                period_s=cfg.control_period_s,
            ),
            c_min=[cfg.min_alloc_ghz] * 2,
            c_max=[cfg.max_alloc_ghz] * 2,
            initial_alloc_ghz=[cfg.initial_alloc_ghz] * 2,
        )
        new.load_state_dict(old.state_dict())
        new._mpc.adopt_warm_state(old._mpc)
        assert new._mpc._warm_active == old._mpc._warm_active
        baseline_hits = new._mpc.warm_hits
        plant.manager.register_controller("app0", new)

        engine.run()
        assert engine.finished
        # The adopted working sets actually warm-started solves after
        # the handover.
        assert new._mpc.solves > 0
        assert new._mpc.warm_hits > baseline_hits
        mean_power = plant.recorder.summary("power/total")["mean"]
        assert np.isfinite(mean_power) and mean_power > 0
