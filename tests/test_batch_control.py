"""Batched control kernel: stacked QP, fleet MPC, stacked RLS.

The batch paths are documented as *allclose*-equivalent to their scalar
counterparts (multi-RHS LAPACK and einsum reorder floating-point sums),
so every test here compares against the scalar implementation on the
same inputs rather than against golden numbers.
"""

import copy

import numpy as np
import pytest

from repro.control.arx import ARXModel
from repro.control.mpc_core import MPCConfig, MPCController, solve_mpc_batch
from repro.control.qp import solve_qp, solve_qp_batch
from repro.sysid.rls import RecursiveARXEstimator, rls_update_batch


def _spd(rng, n):
    a = rng.normal(size=(n, n))
    return a @ a.T + n * np.eye(n)


class TestSolveQpBatch:
    def test_matches_scalar_across_constraint_patterns(self):
        rng = np.random.default_rng(0)
        n, B = 6, 25
        for trial in range(8):
            H = _spd(rng, n)
            A_eq = rng.normal(size=(1, n))
            A_ub = np.vstack([np.eye(n), -np.eye(n), rng.normal(size=(3, n))])
            g = 3.0 * rng.normal(size=(B, n))
            b_eq = 0.2 * rng.normal(size=(B, 1))
            b_ub = np.abs(rng.normal(size=(B, A_ub.shape[0]))) + 0.1
            batch = solve_qp_batch(H, g, A_eq, b_eq, A_ub, b_ub)
            for i in range(B):
                ref = solve_qp(H, g[i], A_eq, b_eq[i], A_ub, b_ub[i])
                assert batch[i].ok == ref.ok
                if ref.ok:
                    np.testing.assert_allclose(batch[i].x, ref.x, atol=1e-7)

    def test_inequality_only_and_unconstrained(self):
        rng = np.random.default_rng(1)
        n, B = 4, 10
        H = _spd(rng, n)
        g = rng.normal(size=(B, n))
        # Unconstrained: x = -H^-1 g.
        for i, res in enumerate(solve_qp_batch(H, g)):
            np.testing.assert_allclose(res.x, np.linalg.solve(H, -g[i]), atol=1e-9)
        A_ub = np.vstack([np.eye(n), -np.eye(n)])
        b_ub = np.abs(rng.normal(size=(B, 2 * n))) + 0.05
        for i, res in enumerate(solve_qp_batch(H, g, A_ub=A_ub, b_ub_batch=b_ub)):
            ref = solve_qp(H, g[i], A_ub=A_ub, b_ub=b_ub[i])
            np.testing.assert_allclose(res.x, ref.x, atol=1e-7)

    def test_warm_starts_reach_same_optimum(self):
        rng = np.random.default_rng(2)
        n, B = 5, 20
        H = _spd(rng, n)
        A_ub = np.vstack([np.eye(n), -np.eye(n)])
        g = 3.0 * rng.normal(size=(B, n))
        b_ub = np.abs(rng.normal(size=(B, 2 * n))) + 0.05
        cold = solve_qp_batch(H, g, A_ub=A_ub, b_ub_batch=b_ub)
        warm = solve_qp_batch(
            H, g, A_ub=A_ub, b_ub_batch=b_ub,
            warm_starts=[r.active_set for r in cold],
        )
        for c, w in zip(cold, warm):
            np.testing.assert_allclose(w.x, c.x, atol=1e-7)
            assert w.warm_started or not c.active_set

    def test_shape_validation(self):
        H = np.eye(3)
        g = np.zeros((4, 3))
        with pytest.raises(ValueError):
            solve_qp_batch(np.eye(2), g)
        with pytest.raises(ValueError):
            solve_qp_batch(H, g, A_eq=np.ones((1, 3)), b_eq_batch=np.zeros((2, 1)))
        with pytest.raises(ValueError):
            solve_qp_batch(H, g, A_ub=np.ones((2, 3)), b_ub_batch=np.zeros((4, 3)))
        with pytest.raises(ValueError):
            solve_qp_batch(H, g, warm_starts=[None])


def _mpc_requests(rng, n, m=3):
    reqs = []
    for _ in range(n):
        t_now = 600.0 + 40.0 * rng.normal()
        reqs.append(
            dict(
                t_hist=[t_now, 600.0],
                c_hist=np.vstack([np.full(m, 0.7)] * 2),
                reference=np.full(8, 600.0),
                setpoint=600.0,
                c_min=[0.2] * m,
                c_max=[3.0] * m,
            )
        )
    return reqs


class TestSolveMpcBatch:
    MODEL = ARXModel(
        a=[0.4], b=[[-800.0, -300.0, -500.0], [-100.0, -50.0, -80.0]], g=1800.0
    )
    CFG = MPCConfig(
        prediction_horizon=8, control_horizon=2, r_weight=1e3, delta_max=0.5
    )

    def test_matches_sequential_solves_and_counters(self):
        rng = np.random.default_rng(7)
        B = 20
        seq = [MPCController(self.MODEL, self.CFG) for _ in range(B)]
        bat = [MPCController(self.MODEL, self.CFG) for _ in range(B)]
        for _ in range(3):  # cold period then warm periods
            reqs = _mpc_requests(rng, B)
            want = [c.solve(**r) for c, r in zip(seq, reqs)]
            got = solve_mpc_batch(bat, reqs)
            for w, g in zip(want, got):
                np.testing.assert_allclose(g.delta_c, w.delta_c, atol=1e-6)
                assert g.terminal_softened == w.terminal_softened
        assert [c.solves for c in seq] == [c.solves for c in bat]
        assert [c.warm_hits for c in seq] == [c.warm_hits for c in bat]

    def test_mixed_models_group_independently(self):
        rng = np.random.default_rng(8)
        other = ARXModel(
            a=[0.3], b=[[-600.0, -250.0, -400.0], [-80.0, -40.0, -60.0]], g=1500.0
        )
        ctrls = [
            MPCController(self.MODEL if i % 2 else other, self.CFG)
            for i in range(10)
        ]
        refs = [
            MPCController(self.MODEL if i % 2 else other, self.CFG)
            for i in range(10)
        ]
        reqs = _mpc_requests(rng, 10)
        got = solve_mpc_batch(ctrls, reqs)
        for ref, req, g in zip(refs, reqs, got):
            np.testing.assert_allclose(
                g.delta_c, ref.solve(**req).delta_c, atol=1e-6
            )

    def test_softened_member_matches_scalar(self):
        # A tiny rate limit makes the terminal equality unreachable, so
        # every member takes the softening branch.
        cfg = MPCConfig(
            prediction_horizon=8, control_horizon=2, r_weight=1e3, delta_max=1e-4
        )
        rng = np.random.default_rng(9)
        B = 4
        seq = [MPCController(self.MODEL, cfg) for _ in range(B)]
        bat = [MPCController(self.MODEL, cfg) for _ in range(B)]
        reqs = _mpc_requests(rng, B)
        for r in reqs:
            r["t_hist"] = [1500.0, 1500.0]  # far from the set point
        want = [c.solve(**r) for c, r in zip(seq, reqs)]
        got = solve_mpc_batch(bat, reqs)
        assert all(w.terminal_softened for w in want)
        for w, g in zip(want, got):
            assert g.terminal_softened
            np.testing.assert_allclose(g.delta_c, w.delta_c, atol=1e-6)

    def test_length_mismatch_rejected(self):
        ctrl = MPCController(self.MODEL, self.CFG)
        with pytest.raises(ValueError):
            solve_mpc_batch([ctrl], [])


class TestRlsUpdateBatch:
    MODEL = ARXModel(a=[0.55], b=[[-0.8, -0.4]], g=3.0)

    def _measurements(self, rng, n):
        meas = []
        for _ in range(n):
            t_hist = [2.0 + 0.1 * rng.normal()]
            c_hist = np.abs(rng.normal(size=(1, 2))) + 1.0
            y = (
                3.0 + 0.55 * t_hist[0] - 0.8 * c_hist[0, 0]
                - 0.4 * c_hist[0, 1] + 0.02 * rng.normal()
            )
            meas.append((y, t_hist, c_hist))
        return meas

    def test_matches_sequential_updates(self):
        rng = np.random.default_rng(3)
        B = 24
        seq = [
            RecursiveARXEstimator(self.MODEL, forgetting=0.96 + 0.03 * rng.random())
            for _ in range(B)
        ]
        bat = [copy.deepcopy(e) for e in seq]
        for _ in range(25):
            meas = self._measurements(rng, B)
            for e, mm in zip(seq, meas):
                e.update(*mm)
            rls_update_batch(bat, meas)
        for a, b in zip(seq, bat):
            np.testing.assert_allclose(b.theta, a.theta, atol=1e-9)
            np.testing.assert_allclose(b.P, a.P, atol=1e-9)
            assert b.n_updates == a.n_updates

    def test_non_finite_measurement_holds_that_estimator(self):
        rng = np.random.default_rng(4)
        ests = [RecursiveARXEstimator(self.MODEL) for _ in range(3)]
        before = ests[1].theta.copy()
        meas = self._measurements(rng, 3)
        meas[1] = (float("nan"),) + meas[1][1:]
        rls_update_batch(ests, meas)
        np.testing.assert_array_equal(ests[1].theta, before)
        assert ests[1].n_updates == 0
        assert ests[0].n_updates == ests[2].n_updates == 1

    def test_mixed_shapes_group_independently(self):
        rng = np.random.default_rng(5)
        small = RecursiveARXEstimator(self.MODEL)
        big_model = ARXModel(a=[0.4, 0.1], b=[[-0.5], [-0.2]], g=2.0)
        big = RecursiveARXEstimator(big_model)
        small_ref = copy.deepcopy(small)
        big_ref = copy.deepcopy(big)
        small_meas = self._measurements(rng, 1)[0]
        big_meas = (2.2, [2.0, 1.9], np.array([[1.1], [0.9]]))
        rls_update_batch([small, big], [small_meas, big_meas])
        small_ref.update(*small_meas)
        big_ref.update(*big_meas)
        np.testing.assert_allclose(small.theta, small_ref.theta, atol=1e-9)
        np.testing.assert_allclose(big.theta, big_ref.theta, atol=1e-9)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rls_update_batch([RecursiveARXEstimator(self.MODEL)], [])
