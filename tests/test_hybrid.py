"""Hybrid plant: switching policy, reconciliation, and MVA accuracy."""

import math

import numpy as np
import pytest

from repro.apps.rubbos import AppSpec, MultiTierApp, TierSpec
from repro.apps.demand import Exponential
from repro.sim.hybrid import HybridConfig, HybridPlant
from repro.sim.testbed import TestbedConfig, TestbedExperiment

#: Documented accuracy bound for pure-MVA segments (docs/PERFORMANCE.md):
#: per-period mean response times within 10% of an exact-DES run of the
#: same scenario, power within 5%.
MVA_RT_TOLERANCE = 0.10


def _plant(concurrency=40, alloc=(1.0, 1.0), config=None, seed=5):
    app = MultiTierApp(
        AppSpec.rubbos(),
        initial_allocations_ghz=list(alloc),
        concurrency=concurrency,
        rng=np.random.default_rng(seed),
    )
    return HybridPlant(app, config)


class TestHybridConfig:
    def test_defaults_valid(self):
        cfg = HybridConfig()
        assert cfg.alloc_tolerance == 0.10
        assert cfg.settle_periods == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alloc_tolerance": -0.1},
            {"settle_periods": 0},
            {"min_reconcile_samples": 0},
            {"max_population_exact_mva": -1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HybridConfig(**kwargs)

    def test_testbed_coerces_dict(self):
        cfg = TestbedConfig(
            plant_mode="hybrid", hybrid={"alloc_tolerance": 0.2}
        )
        assert isinstance(cfg.hybrid, HybridConfig)
        assert cfg.hybrid.alloc_tolerance == 0.2

    def test_testbed_rejects_unknown_plant_mode(self):
        with pytest.raises(ValueError):
            TestbedConfig(plant_mode="analytic")


class TestSwitchingPolicy:
    def test_startup_then_settle_then_mva(self):
        plant = _plant(config=HybridConfig(settle_periods=2))
        plant.warmup(5.0)
        for _ in range(4):
            plant.run_period(15.0)
        assert plant.mode_log[0] == (0, "exact", "startup")
        assert plant.mode_log[1] == (1, "exact", "settling")
        assert plant.mode_log[2][1] == "mva"
        assert plant.mode_log[3][1] == "mva"
        assert plant.switches == 1

    def test_concurrency_step_forces_exact(self):
        plant = _plant()
        plant.warmup(5.0)
        for _ in range(3):
            plant.run_period(15.0)
        assert plant.mode_log[-1][1] == "mva"
        plant.set_concurrency(60)  # transient: client population step
        plant.run_period(15.0)
        assert plant.mode_log[-1] == (3, "exact", "concurrency_step")
        # ...and the streak restarts: settling again before MVA resumes.
        plant.run_period(15.0)
        assert plant.mode_log[-1][1] == "exact"

    def test_fault_forces_exact_until_restored(self):
        plant = _plant()
        plant.warmup(5.0)
        for _ in range(3):
            plant.run_period(15.0)
        plant.degrade_tier(1, 0.4)
        plant.run_period(15.0)
        assert plant.mode_log[-1] == (3, "exact", "fault")
        # Still degraded: every period stays exact regardless of streak.
        plant.run_period(15.0)
        assert plant.mode_log[-1][1] == "exact"
        plant.degrade_tier(1, 1.0)  # recovery is itself a transient
        plant.run_period(15.0)
        assert plant.mode_log[-1] == (5, "exact", "fault")

    def test_small_alloc_drift_stays_mva(self):
        plant = _plant(config=HybridConfig(alloc_tolerance=0.10))
        plant.warmup(5.0)
        for _ in range(3):
            plant.run_period(15.0)
        plant.set_allocations([1.05, 1.05])  # 5% < tolerance
        plant.run_period(15.0)
        assert plant.mode_log[-1][1] == "mva"

    def test_large_alloc_step_forces_exact(self):
        plant = _plant(config=HybridConfig(alloc_tolerance=0.10))
        plant.warmup(5.0)
        for _ in range(3):
            plant.run_period(15.0)
        plant.set_allocations([1.5, 1.0])  # 50% step on tier 0
        plant.run_period(15.0)
        assert plant.mode_log[-1] == (3, "exact", "alloc_step")

    def test_admission_capped_app_never_fast_forwards(self):
        spec = AppSpec(
            name="capped",
            tiers=(
                TierSpec("web", Exponential(0.02), 0.1, 4.0, max_concurrency=8),
                TierSpec("db", Exponential(0.015), 0.1, 4.0),
            ),
        )
        app = MultiTierApp(spec, concurrency=20, rng=np.random.default_rng(3))
        plant = HybridPlant(app)
        plant.warmup(5.0)
        for _ in range(5):
            plant.run_period(15.0)
        assert plant.mva_periods == 0
        assert all(m == "exact" for _, m, _ in plant.mode_log)
        assert plant.mode_log[-1][2] == "admission_gate"

    def test_zero_concurrency_mva_period_is_empty(self):
        plant = _plant(concurrency=0)
        for _ in range(3):
            plant.run_period(15.0)
        stats = plant.run_period(15.0)
        assert plant.mode_log[-1][1] == "mva"
        assert stats.completed == 0
        assert math.isnan(stats.rt_mean_ms)


class TestReconciliation:
    def test_moment_ratios_from_exact_period(self):
        plant = _plant()
        plant.warmup(10.0)
        plant.run_period(30.0)
        exact = plant.run_period(30.0)  # most recent exact period wins
        mva = plant.run_period(30.0)
        assert plant.mode_log[-1][1] == "mva"
        # Synthesized percentiles inherit the exact period's moment
        # ratios, so p90/mean is continuous across the switch.
        assert mva.rt_p90_ms / mva.rt_mean_ms == pytest.approx(
            exact.rt_p90_ms / exact.rt_mean_ms
        )
        assert mva.rt_p50_ms / mva.rt_mean_ms == pytest.approx(
            exact.rt_p50_ms / exact.rt_mean_ms
        )

    def test_completed_count_carries_fraction(self):
        plant = _plant()
        plant.warmup(5.0)
        for _ in range(2):
            plant.run_period(15.0)
        stats = [plant.run_period(15.0) for _ in range(20)]
        assert all(m == "mva" for _, m, _ in plant.mode_log[2:])
        total = sum(s.completed for s in stats)
        fluid = sum(s.throughput_rps * 15.0 for s in stats)
        # floor() per period would drift by up to one request per period;
        # the carry keeps the cumulative count within one of the fluid sum.
        assert abs(total - fluid) <= 1.0

    def test_used_ghz_reflects_mva_throughput(self):
        plant = _plant()
        plant.warmup(5.0)
        for _ in range(2):
            plant.run_period(15.0)
        stats = plant.run_period(15.0)
        used = plant.used_ghz(15.0)
        demands = [t.demand.mean for t in plant.spec.tiers]
        for u, d in zip(used, demands):
            assert u == pytest.approx(stats.throughput_rps * d)


class TestMVAAccuracy:
    def test_mva_segment_mean_rt_within_tolerance(self):
        """Pure-MVA means stay within the documented bound of exact DES.

        A single 60 s exact period's mean wanders ±10% at this load, so
        each synthesized period is judged against the *aggregate*
        (completion-weighted) mean of the exact run's quasi-static
        segment — the stationary quantity MVA actually predicts.
        """

        def run(use_hybrid):
            app = MultiTierApp(
                AppSpec.rubbos(),
                initial_allocations_ghz=[1.0, 0.8],
                concurrency=40,
                rng=np.random.default_rng(11),
            )
            plant = HybridPlant(app) if use_hybrid else app
            plant.warmup(30.0)
            return plant, [plant.run_period(60.0) for _ in range(6)]

        hybrid_plant, hybrid_stats = run(True)
        _, exact_stats = run(False)
        mva_idx = [i for i, (_, m, _) in enumerate(hybrid_plant.mode_log) if m == "mva"]
        assert len(mva_idx) >= 3
        exact_mean = sum(
            s.rt_mean_ms * s.completed for s in exact_stats
        ) / sum(s.completed for s in exact_stats)
        for i in mva_idx:
            rel = abs(hybrid_stats[i].rt_mean_ms - exact_mean) / exact_mean
            assert rel < MVA_RT_TOLERANCE, (
                f"period {i}: MVA mean {hybrid_stats[i].rt_mean_ms:.1f} ms vs "
                f"exact segment mean {exact_mean:.1f} ms ({rel:.1%})"
            )


class TestTestbedIntegration:
    def test_hybrid_summary_in_result(self):
        cfg = TestbedConfig(
            n_servers=2,
            n_apps=2,
            duration_s=120,
            warmup_s=10,
            concurrency=30,
            controlled=False,
            plant_mode="hybrid",
            seed=9,
        )
        from repro.control.arx import ARXModel

        model = ARXModel(a=[0.4], b=[[-800.0, -300.0], [-100.0, -50.0]], g=1800.0)
        result = TestbedExperiment(cfg, model=model).run()
        assert result.hybrid is not None
        assert set(result.hybrid) == {"app0", "app1"}
        summary = result.hybrid["app0"]
        assert summary["mva_periods"] + summary["exact_periods"] == len(
            summary["mode_log"]
        )
        assert summary["mva_periods"] > 0

    def test_des_mode_has_no_hybrid_summary(self):
        cfg = TestbedConfig(
            n_servers=1,
            n_apps=1,
            duration_s=60,
            warmup_s=5,
            concurrency=10,
            controlled=False,
            plant_mode="des",
            seed=9,
        )
        from repro.control.arx import ARXModel

        model = ARXModel(a=[0.4], b=[[-800.0], [-100.0]], g=1800.0)
        result = TestbedExperiment(cfg, model=model).run()
        assert result.hybrid is None
