"""Unit-conversion helpers."""

import math

import pytest

from repro import units


def test_ghz_identity():
    assert units.ghz(2.5) == 2.5


def test_mhz_to_ghz():
    assert units.mhz_to_ghz(2400) == pytest.approx(2.4)


def test_seconds_ms_roundtrip():
    assert units.ms_to_seconds(units.seconds_to_ms(1.75)) == pytest.approx(1.75)


def test_hours_seconds_roundtrip():
    assert units.seconds_to_hours(units.hours_to_seconds(3.5)) == pytest.approx(3.5)


def test_minutes_to_seconds():
    assert units.minutes_to_seconds(15) == 900.0


def test_watt_seconds_to_wh():
    assert units.watt_seconds_to_wh(3600.0) == pytest.approx(1.0)


def test_wh_roundtrip():
    assert units.watt_seconds_to_wh(units.wh_to_watt_seconds(2.2)) == pytest.approx(2.2)


def test_share_to_ghz_paper_example():
    # Paper §IV-A: 20% of a 5 GHz CPU is 1 GHz.
    assert units.share_to_ghz(0.20, 5.0) == pytest.approx(1.0)


def test_ghz_to_share_inverse():
    assert units.ghz_to_share(units.share_to_ghz(0.35, 2.4), 2.4) == pytest.approx(0.35)


def test_share_negative_rejected():
    with pytest.raises(ValueError):
        units.share_to_ghz(-0.1, 2.0)


def test_ghz_to_share_zero_cpu_rejected():
    with pytest.raises(ValueError):
        units.ghz_to_share(1.0, 0.0)
