"""Active-set QP solver, validated against SciPy on random problems."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import optimize

from repro.control.qp import solve_qp


def _scipy_reference(H, g, A_eq=None, b_eq=None, A_ub=None, b_ub=None):
    n = g.shape[0]
    cons = []
    if A_eq is not None:
        cons.append(optimize.LinearConstraint(A_eq, b_eq, b_eq))
    if A_ub is not None:
        cons.append(optimize.LinearConstraint(A_ub, -np.inf, b_ub))
    res = optimize.minimize(
        lambda x: 0.5 * x @ H @ x + g @ x,
        np.zeros(n),
        jac=lambda x: H @ x + g,
        constraints=cons,
        method="trust-constr",
        options={"maxiter": 3000, "gtol": 1e-10},
    )
    return res.x, res.fun


class TestUnconstrained:
    def test_quadratic_minimum(self):
        H = 2.0 * np.eye(2)
        g = np.array([-2.0, -4.0])
        r = solve_qp(H, g)
        assert r.ok
        np.testing.assert_allclose(r.x, [1.0, 2.0], atol=1e-9)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            solve_qp(np.eye(3), np.zeros(2))


class TestEquality:
    def test_projection_onto_plane(self):
        # min |x|^2 s.t. x0 + x1 = 2 -> (1, 1)
        r = solve_qp(2 * np.eye(2), np.zeros(2), A_eq=[[1.0, 1.0]], b_eq=[2.0])
        np.testing.assert_allclose(r.x, [1.0, 1.0], atol=1e-9)

    def test_multiple_equalities(self):
        H = 2 * np.eye(3)
        A = np.array([[1.0, 0, 0], [0, 1.0, 0]])
        b = np.array([3.0, -1.0])
        r = solve_qp(H, np.zeros(3), A_eq=A, b_eq=b)
        np.testing.assert_allclose(r.x, [3.0, -1.0, 0.0], atol=1e-9)


class TestInequality:
    def test_active_inequality(self):
        # min (x0-1)^2 + (x1-2)^2 s.t. x0 + x1 <= 2 -> (0.5, 1.5)
        r = solve_qp(2 * np.eye(2), np.array([-2.0, -4.0]),
                     A_ub=[[1.0, 1.0]], b_ub=[2.0])
        np.testing.assert_allclose(r.x, [0.5, 1.5], atol=1e-8)
        assert r.active_set == (0,)

    def test_inactive_inequality_ignored(self):
        r = solve_qp(2 * np.eye(2), np.array([-2.0, -4.0]),
                     A_ub=[[1.0, 1.0]], b_ub=[100.0])
        np.testing.assert_allclose(r.x, [1.0, 2.0], atol=1e-9)
        assert r.active_set == ()

    def test_box_constraints(self):
        # min (x-5)^2 s.t. x <= 1, -x <= 0
        r = solve_qp(np.array([[2.0]]), np.array([-10.0]),
                     A_ub=[[1.0], [-1.0]], b_ub=[1.0, 0.0])
        np.testing.assert_allclose(r.x, [1.0], atol=1e-9)

    def test_mixed_eq_and_ineq(self):
        # min |x|^2 s.t. x0 + x1 = 4, x0 <= 1 -> (1, 3)
        r = solve_qp(2 * np.eye(2), np.zeros(2),
                     A_eq=[[1.0, 1.0]], b_eq=[4.0],
                     A_ub=[[1.0, 0.0]], b_ub=[1.0])
        np.testing.assert_allclose(r.x, [1.0, 3.0], atol=1e-8)

    def test_constraint_add_then_drop(self):
        """A constraint activated early in the search must be dropped when
        its multiplier turns negative."""
        # min (x0-2)^2 + (x1-2)^2 s.t. x0 <= 1, x0 + x1 <= 10.
        r = solve_qp(2 * np.eye(2), np.array([-4.0, -4.0]),
                     A_ub=[[1.0, 0.0], [1.0, 1.0]], b_ub=[1.0, 10.0])
        np.testing.assert_allclose(r.x, [1.0, 2.0], atol=1e-8)
        assert r.active_set == (0,)


class TestAgainstScipy:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), n=st.integers(2, 6), m=st.integers(0, 8))
    def test_random_inequality_qps(self, data, n, m):
        seed = data.draw(st.integers(0, 10_000))
        rng = np.random.default_rng(seed)
        L = rng.normal(size=(n, n))
        H = L @ L.T + n * np.eye(n)  # well-conditioned SPD
        g = rng.normal(scale=3.0, size=n)
        A_ub = rng.normal(size=(m, n)) if m else None
        b_ub = rng.uniform(0.5, 3.0, size=m) if m else None  # x=0 feasible
        ours = solve_qp(H, g, A_ub=A_ub, b_ub=b_ub)
        assert ours.ok
        ref_x, ref_f = _scipy_reference(H, g, A_ub=A_ub, b_ub=b_ub)
        our_f = 0.5 * ours.x @ H @ ours.x + g @ ours.x
        assert our_f <= ref_f + 1e-5 * (1 + abs(ref_f))
        if A_ub is not None:
            assert np.max(A_ub @ ours.x - b_ub) <= 1e-7

    @settings(max_examples=25, deadline=None)
    @given(data=st.data(), n=st.integers(2, 5))
    def test_random_equality_qps(self, data, n):
        seed = data.draw(st.integers(0, 10_000))
        rng = np.random.default_rng(seed)
        L = rng.normal(size=(n, n))
        H = L @ L.T + n * np.eye(n)
        g = rng.normal(size=n)
        A_eq = rng.normal(size=(1, n))
        b_eq = rng.normal(size=1)
        ours = solve_qp(H, g, A_eq=A_eq, b_eq=b_eq)
        assert ours.ok
        assert abs(A_eq @ ours.x - b_eq)[0] < 1e-7
        ref_x, ref_f = _scipy_reference(H, g, A_eq=A_eq, b_eq=b_eq)
        our_f = 0.5 * ours.x @ H @ ours.x + g @ ours.x
        assert our_f <= ref_f + 1e-5 * (1 + abs(ref_f))


class TestDegenerate:
    def test_infeasible_equalities_fall_back(self):
        # x = 1 and x = 2 simultaneously: infeasible.
        r = solve_qp(np.array([[2.0]]), np.zeros(1),
                     A_eq=[[1.0], [1.0]], b_eq=[1.0, 2.0])
        assert r.status in ("infeasible", "fallback")

    def test_redundant_constraints(self):
        # Same inequality twice must not confuse the working set.
        r = solve_qp(2 * np.eye(2), np.array([-4.0, -4.0]),
                     A_ub=[[1.0, 0.0], [1.0, 0.0]], b_ub=[1.0, 1.0])
        assert r.ok
        assert r.x[0] == pytest.approx(1.0, abs=1e-7)
