"""Fault injection: models, schedules, injector, and degraded-mode control."""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Application, DataCenter, Server, VM
from repro.cluster.catalog import TESTBED_SERVER
from repro.cluster.migration import MigrationFailedError
from repro.control.arx import ARXModel
from repro.core import (
    ControllerConfig,
    PowerManager,
    ResponseTimeController,
)
from repro.core.optimizer.types import Migration, PlacementPlan, apply_plan, snapshot_datacenter
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    FaultSpecError,
    validate_spec,
)
from repro.obs import InMemoryBackend, Telemetry, use_telemetry
from repro.sim.testbed import TestbedConfig, TestbedExperiment

MODEL = ARXModel(a=[0.4], b=[[-800.0, -300.0], [-100.0, -50.0]], g=1800.0)


def _dc(n_servers=3, active=None):
    dc = DataCenter()
    for i in range(n_servers):
        is_active = True if active is None else active[i]
        dc.add_server(Server(f"T{i}", TESTBED_SERVER, active=is_active))
    return dc


def _add_vm(dc, vm_id, server_id, demand=0.5):
    dc.add_vm(VM(vm_id, memory_mb=512, demand_ghz=demand))
    dc.place(vm_id, server_id)


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultEvent(time_s=0.0, kind="meteor_strike", target="T0")

    def test_crash_requires_target(self):
        with pytest.raises(FaultSpecError):
            FaultEvent(time_s=0.0, kind="server_crash")

    def test_throttle_fraction_range(self):
        with pytest.raises(FaultSpecError):
            FaultEvent(time_s=0.0, kind="thermal_throttle", target="T0", fraction=0.0)
        with pytest.raises(FaultSpecError):
            FaultEvent(time_s=0.0, kind="thermal_throttle", target="T0", fraction=1.5)

    def test_recovery_is_instantaneous(self):
        with pytest.raises(FaultSpecError):
            FaultEvent(time_s=5.0, kind="server_recovery", target="T0", duration_s=10.0)

    def test_end_time(self):
        ev = FaultEvent(time_s=10.0, kind="server_crash", target="T0", duration_s=5.0)
        assert ev.end_time_s == 15.0
        open_ended = FaultEvent(time_s=10.0, kind="server_crash", target="T0")
        assert open_ended.end_time_s is None

    def test_spec_roundtrip(self):
        ev = FaultEvent(
            time_s=3.0, kind="thermal_throttle", target="T1",
            duration_s=20.0, fraction=0.5,
        )
        assert FaultEvent(**ev.to_spec()) == ev


class TestValidateSpec:
    def test_valid_spec(self):
        assert validate_spec({"seed": 1, "events": []}) == []

    def test_collects_all_problems(self):
        spec = {
            "seed": "nope",
            "bogus": 1,
            "events": [
                {"time_s": -1.0, "kind": "server_crash", "target": "T0"},
                {"time_s": 0.0, "kind": "server_recovery", "target": "T9"},
                {"time_s": 0.0, "kind": "server_crash", "target": "T0", "zap": 2},
            ],
        }
        problems = validate_spec(spec)
        assert len(problems) == 5

    def test_recovery_after_crash_accepted(self):
        spec = {"events": [
            {"time_s": 0.0, "kind": "server_crash", "target": "T0"},
            {"time_s": 50.0, "kind": "server_recovery", "target": "T0"},
        ]}
        assert validate_spec(spec) == []

    def test_from_spec_raises_on_problems(self):
        with pytest.raises(FaultSpecError):
            FaultSchedule.from_spec({"events": [{"time_s": 0.0, "kind": "nope"}]})


class TestFaultSchedule:
    def test_events_sorted_by_time(self):
        s = FaultSchedule(events=(
            FaultEvent(time_s=50.0, kind="server_crash", target="T0"),
            FaultEvent(time_s=10.0, kind="thermal_throttle", target="T1", duration_s=5.0),
        ))
        assert [ev.time_s for ev in s.events] == [10.0, 50.0]

    def test_empty_schedule_is_falsy(self):
        assert not FaultSchedule()
        assert FaultSchedule(events=(
            FaultEvent(time_s=0.0, kind="sensor_dropout"),
        ))

    def test_json_roundtrip(self, tmp_path):
        s = FaultSchedule.random(3600.0, ["T0", "T1"], app_ids=["a"], seed=11,
                                 sensor_rate_per_hour=2.0)
        path = str(tmp_path / "spec.json")
        s.to_json(path)
        assert FaultSchedule.from_json(path) == s

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_random_is_deterministic_and_roundtrips(self, seed):
        kwargs = dict(
            horizon_s=7200.0, server_ids=("s0", "s1", "s2"), app_ids=("a0",),
            seed=seed, crash_rate_per_hour=1.0, throttle_rate_per_hour=1.0,
            sensor_rate_per_hour=1.0,
        )
        a = FaultSchedule.random(**kwargs)
        b = FaultSchedule.random(**kwargs)
        assert a == b
        assert FaultSchedule.from_spec(a.to_spec()) == a

    def test_timeline_orders_begin_before_end(self):
        s = FaultSchedule(events=(
            FaultEvent(time_s=0.0, kind="server_crash", target="T0", duration_s=10.0),
            FaultEvent(time_s=10.0, kind="server_crash", target="T1", duration_s=10.0),
        ))
        cursor = s.cursor()
        first = cursor.advance(0.0)
        assert [(t.phase, t.event.target) for t in first] == [("begin", "T0")]
        second = cursor.advance(10.0)
        assert [(t.phase, t.event.target) for t in second] == [
            ("begin", "T1"), ("end", "T0"),
        ]
        assert not cursor.exhausted
        cursor.advance(20.0)
        assert cursor.exhausted


class TestServerFaultState:
    def test_fail_evicts_and_cuts_power(self):
        dc = _dc(2)
        _add_vm(dc, "v1", "T0")
        _add_vm(dc, "v2", "T0")
        evicted = dc.fail_server("T0")
        assert evicted == ["v1", "v2"]
        assert dc.servers["T0"].failed and not dc.servers["T0"].active
        assert dc.server_of("v1") is None
        assert dc.servers["T0"].power_w(0.0) == 0.0
        # Idempotent: a second crash evicts nothing new.
        assert dc.fail_server("T0") == []

    def test_recovered_server_rejoins_sleeping(self):
        dc = _dc(1)
        dc.fail_server("T0")
        dc.recover_server("T0")
        s = dc.servers["T0"]
        assert not s.failed and not s.active
        dc.wake_server("T0")
        assert s.active

    def test_failed_server_cannot_wake(self):
        dc = _dc(1)
        dc.fail_server("T0")
        with pytest.raises(ValueError):
            dc.wake_server("T0")

    def test_throttle_scales_capacity(self):
        dc = _dc(1)
        s = dc.servers["T0"]
        full = s.max_capacity_ghz
        s.throttle(0.5)
        assert s.max_capacity_ghz == pytest.approx(0.5 * full)
        s.unthrottle()
        assert s.max_capacity_ghz == pytest.approx(full)

    def test_snapshot_excludes_failed_servers(self):
        dc = _dc(3)
        dc.fail_server("T1")
        problem = snapshot_datacenter(dc)
        assert [s.server_id for s in problem.servers] == ["T0", "T2"]


class TestApplyPlanFaultTolerance:
    def test_migration_retry_succeeds(self):
        dc = _dc(2)
        _add_vm(dc, "v1", "T0")
        # Two disrupted attempts, third lands.
        calls = {"n": 0}

        def disruptor(vm, src, dst):
            calls["n"] += 1
            return calls["n"] <= 2

        dc.migration_disruptor = disruptor
        plan = PlacementPlan(migrations=[Migration("v1", "T0", "T1")])
        report = apply_plan(dc, plan, time_s=100.0, retry_backoff_s=5.0)
        assert dc.server_of("v1") == "T1"
        assert report.retries == 2
        assert report.failed_migrations == []
        assert len(report.records) == 1
        # Third attempt is stamped two backoffs after the first.
        assert report.records[0].time_s == pytest.approx(110.0)

    def test_migration_failure_is_atomic(self):
        dc = _dc(2)
        _add_vm(dc, "v1", "T0")
        dc.migration_disruptor = lambda vm, src, dst: True
        plan = PlacementPlan(
            migrations=[Migration("v1", "T0", "T1")], sleep=["T0"],
        )
        report = apply_plan(dc, plan)
        assert dc.server_of("v1") == "T0"  # rollback: still on source
        assert [m.vm_id for m in report.failed_migrations] == ["v1"]
        # The source cannot sleep while the stranded VM sits on it.
        assert report.skipped_sleep == ["T0"]
        assert dc.servers["T0"].active

    def test_wake_of_crashed_server_skipped(self):
        dc = _dc(2, active=[True, False])
        _add_vm(dc, "v1", "T0")
        dc.fail_server("T1")
        plan = PlacementPlan(
            wake=["T1"], migrations=[Migration("v1", "T0", "T1")],
        )
        report = apply_plan(dc, plan)
        assert report.skipped_wake == ["T1"]
        assert [m.vm_id for m in report.failed_migrations] == ["v1"]
        assert dc.server_of("v1") == "T0"

    def test_migration_record_carries_costs(self):
        dc = _dc(2)
        _add_vm(dc, "v1", "T0")
        plan = PlacementPlan(migrations=[Migration("v1", "T0", "T1")])
        report = apply_plan(dc, plan)
        assert report.total_duration_s > 0
        assert report.total_bytes_moved_mb > 0


class TestEmergencyEvacuation:
    def test_evicted_vms_replaced_on_survivors(self):
        dc = _dc(2)
        _add_vm(dc, "v1", "T0", demand=0.5)
        _add_vm(dc, "v2", "T0", demand=0.5)
        _add_vm(dc, "v3", "T1", demand=0.5)
        mgr = PowerManager(dc)
        evicted = dc.fail_server("T0")
        plan = mgr.emergency_evacuate("T0", evicted, time_s=42.0)
        assert plan.unplaced == []
        assert dc.server_of("v1") == "T1"
        assert dc.server_of("v2") == "T1"
        assert dc.servers["T1"].active

    def test_evacuation_recruits_sleepers_when_survivors_full(self):
        dc = _dc(3, active=[True, True, False])
        _add_vm(dc, "v1", "T0", demand=2.0)
        _add_vm(dc, "v2", "T0", demand=2.0)
        _add_vm(dc, "v3", "T1", demand=3.0)
        mgr = PowerManager(dc)
        evicted = dc.fail_server("T0")
        plan = mgr.emergency_evacuate("T0", evicted, time_s=0.0)
        assert plan.unplaced == []
        assert dc.servers["T2"].active  # sleeper recruited
        hosts = {dc.server_of("v1"), dc.server_of("v2")}
        assert hosts <= {"T1", "T2"}

    def test_evacuation_never_sleeps_servers(self):
        dc = _dc(3)
        _add_vm(dc, "v1", "T0", demand=0.2)
        mgr = PowerManager(dc)
        evicted = dc.fail_server("T0")
        mgr.emergency_evacuate("T0", evicted)
        # T1/T2 hosted nothing, yet evacuation must not power them down.
        assert dc.servers["T1"].active and dc.servers["T2"].active


class TestControllerMissingPolicy:
    def _controller(self, **cfg):
        return ResponseTimeController(
            MODEL, ControllerConfig(util_band=None, **cfg),
            c_min=[0.2, 0.2], c_max=[3.0, 3.0], initial_alloc_ghz=[1.0, 1.0],
        )

    def test_hold_keeps_last_demands(self):
        ctrl = self._controller(missing_policy="hold")
        first = ctrl.update(1200.0)
        held = ctrl.update(float("nan"))
        np.testing.assert_allclose(held, first)
        assert ctrl.held_updates == 1

    def test_hold_escalates_after_max_periods(self):
        ctrl = self._controller(missing_policy="hold", max_hold_periods=2)
        ctrl.update(1000.0)
        before = ctrl.update(float("nan"))
        ctrl.update(float("nan"))
        escalated = ctrl.update(float("nan"))  # 3rd loss > max_hold_periods
        assert ctrl.held_updates == 2
        # Pessimistic substitution kicks in: demand moves up, not held.
        assert not np.allclose(escalated, before)

    def test_finite_sample_resets_hold_budget(self):
        ctrl = self._controller(missing_policy="hold", max_hold_periods=1)
        ctrl.update(1000.0)
        ctrl.update(float("nan"))
        ctrl.update(900.0)
        ctrl.update(float("nan"))  # budget refreshed: held again
        assert ctrl.held_updates == 2

    def test_pessimistic_default_unchanged(self):
        ctrl = self._controller()
        a = ctrl.update(float("nan"))
        clamped = self._controller().update(3000.0)
        np.testing.assert_allclose(a, clamped)

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            ControllerConfig(missing_policy="wishful")


class TestFaultInjector:
    def test_crash_triggers_evacuation_hook(self):
        dc = _dc(2)
        _add_vm(dc, "v1", "T0")
        calls = []
        sched = FaultSchedule(events=(
            FaultEvent(time_s=30.0, kind="server_crash", target="T0", duration_s=60.0),
        ))
        inj = FaultInjector(dc, sched, on_evacuate=lambda sid, vms, t: calls.append((sid, vms, t)))
        assert inj.step(0.0) == []
        inj.step(30.0)
        assert calls == [("T0", ["v1"], 30.0)]
        assert dc.servers["T0"].failed
        inj.step(90.0)
        assert not dc.servers["T0"].failed
        assert inj.exhausted

    def test_throttle_applied_and_reverted(self):
        dc = _dc(1)
        sched = FaultSchedule(events=(
            FaultEvent(time_s=0.0, kind="thermal_throttle", target="T0",
                       duration_s=10.0, fraction=0.4),
        ))
        inj = FaultInjector(dc, sched)
        inj.step(0.0)
        assert dc.servers["T0"].capacity_fraction == 0.4
        inj.step(10.0)
        assert dc.servers["T0"].capacity_fraction == 1.0

    def test_migration_fault_installs_disruptor(self):
        dc = _dc(2)
        _add_vm(dc, "v1", "T0")
        sched = FaultSchedule(events=(
            FaultEvent(time_s=0.0, kind="migration_failure", duration_s=10.0,
                       probability=1.0),
        ), seed=3)
        inj = FaultInjector(dc, sched)
        inj.step(0.0)
        with pytest.raises(MigrationFailedError):
            dc.migrate("v1", "T1")
        inj.step(10.0)
        assert dc.migration_disruptor is None
        dc.migrate("v1", "T1")
        assert dc.server_of("v1") == "T1"

    def test_sensor_dropout_and_noise(self):
        dc = _dc(1)
        sched = FaultSchedule(events=(
            FaultEvent(time_s=0.0, kind="sensor_dropout", target="a",
                       duration_s=10.0, probability=1.0),
            FaultEvent(time_s=0.0, kind="sensor_noise", target="b",
                       duration_s=10.0, sigma_ms=25.0),
        ), seed=9)
        inj = FaultInjector(dc, sched)
        inj.step(0.0)
        out = inj.filter_measurements({"a": 500.0, "b": 500.0, "c": 500.0})
        assert math.isnan(out["a"])
        assert out["b"] != 500.0 and math.isfinite(out["b"])
        assert out["c"] == 500.0

    def test_filter_is_seed_deterministic(self):
        sched = FaultSchedule(events=(
            FaultEvent(time_s=0.0, kind="sensor_dropout", duration_s=100.0,
                       probability=0.5),
            FaultEvent(time_s=0.0, kind="sensor_noise", duration_s=100.0,
                       sigma_ms=10.0),
        ), seed=21)
        outs = []
        for _ in range(2):
            inj = FaultInjector(_dc(1), sched)
            inj.step(0.0)
            seq = [inj.filter_measurements({"a": 100.0, "b": 200.0}) for _ in range(20)]
            outs.append(seq)
        assert repr(outs[0]) == repr(outs[1])


def _crash_schedule():
    return FaultSchedule(events=(
        FaultEvent(time_s=45.0, kind="server_crash", target="T1", duration_s=60.0),
        FaultEvent(time_s=60.0, kind="sensor_dropout", target="app0",
                   duration_s=30.0, probability=1.0),
    ), seed=17)


def _chaos_config(**over):
    kw = dict(
        n_servers=2, n_apps=2, duration_s=180.0, warmup_s=20.0,
        concurrency=10, initial_alloc_ghz=0.6, faults=_crash_schedule(), seed=77,
    )
    kw.update(over)
    return TestbedConfig(**kw)


def _run_chaos(config):
    backend = InMemoryBackend()
    with use_telemetry(Telemetry(backend, record_spans=False), close=False):
        result = TestbedExperiment(config, model=MODEL).run()
    events = [r for r in backend.records if r.get("kind") not in ("span", "metrics")]
    return result, events


class TestTestbedChaos:
    def test_crash_scenario_completes_with_fault_events(self):
        result, events = _run_chaos(_chaos_config())
        kinds = {e["kind"] for e in events}
        assert {"fault_injected", "evacuation", "fault_recovered"} <= kinds
        evac = next(e for e in events if e["kind"] == "evacuation")
        # Every evicted VM re-placed within the same control period.
        assert evac["unplaced"] == []
        assert sorted(evac["placed"]) == sorted(evac["vms"])
        # No response-time sample was lost to an unhandled exception:
        # every period produced a control_period event.
        n_periods = int(180.0 / 15.0)
        n_controls = sum(1 for e in events if e["kind"] == "control_period")
        assert n_controls == n_periods
        assert math.isfinite(result.power_summary()["mean"])

    def test_identical_spec_and_seed_give_identical_event_logs(self):
        _, events_a = _run_chaos(_chaos_config())
        _, events_b = _run_chaos(_chaos_config())
        dump_a = json.dumps(events_a, sort_keys=True, default=str)
        dump_b = json.dumps(events_b, sort_keys=True, default=str)
        assert dump_a.encode() == dump_b.encode()

    def test_no_faults_emits_no_fault_events(self):
        _, events = _run_chaos(_chaos_config(faults=None))
        kinds = {e["kind"] for e in events}
        assert kinds.isdisjoint({"fault_injected", "fault_recovered", "evacuation"})


class TestLargeScaleFaults:
    @pytest.fixture(scope="class")
    def small_trace(self):
        from repro.traces import TraceConfig, generate_trace

        return generate_trace(TraceConfig(n_servers=40, n_days=1), rng=13)

    def test_noop_schedule_matches_baseline(self, small_trace):
        from repro.sim.largescale import LargeScaleConfig, run_largescale

        base = run_largescale(
            small_trace, LargeScaleConfig(n_vms=30, n_servers=50, seed=5)
        )
        # One event far past the trace end: the fault code path runs but
        # no transition ever fires -> results must match exactly.
        idle = FaultSchedule(events=(
            FaultEvent(time_s=1e9, kind="server_crash", target="S0000"),
        ))
        faulted = run_largescale(
            small_trace,
            LargeScaleConfig(n_vms=30, n_servers=50, seed=5, faults=idle),
        )
        assert faulted.total_energy_wh == base.total_energy_wh
        np.testing.assert_array_equal(faulted.power_series_w, base.power_series_w)

    def test_crash_evacuates_and_run_completes(self, small_trace):
        from repro.sim.largescale import LargeScaleConfig, run_largescale

        # Find a server that hosts VMs at t=0 so the crash bites.
        backend = InMemoryBackend()
        cfg = LargeScaleConfig(n_vms=30, n_servers=50, seed=5)
        with use_telemetry(Telemetry(backend, record_spans=False), close=False):
            run_largescale(small_trace, cfg)
        on = [r["server"] for r in backend.records
              if r.get("kind") == "server_power" and r.get("state") == "on"]
        target = on[0]
        sched = FaultSchedule(events=(
            FaultEvent(time_s=3600.0, kind="server_crash", target=target,
                       duration_s=7200.0),
        ), seed=2)
        backend2 = InMemoryBackend()
        with use_telemetry(Telemetry(backend2, record_spans=False), close=False):
            res = run_largescale(
                small_trace,
                LargeScaleConfig(n_vms=30, n_servers=50, seed=5, faults=sched),
            )
        kinds = [r["kind"] for r in backend2.records]
        assert "fault_injected" in kinds and "evacuation" in kinds
        evac = next(r for r in backend2.records if r["kind"] == "evacuation")
        assert evac["unplaced"] == []
        assert res.unplaced_vm_steps == 0
        assert math.isfinite(res.total_energy_wh)
