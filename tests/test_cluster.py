"""Cluster model: power, servers, VMs, migration, the data center."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    CPU_2GHZ_DUAL,
    CPU_3GHZ_QUAD,
    DataCenter,
    LiveMigrationModel,
    SERVER_TYPE_A,
    SERVER_TYPE_B,
    SERVER_TYPE_C,
    Server,
    ServerPowerModel,
    ServerSpec,
    TESTBED_SERVER,
    VM,
    Application,
    CPUSpec,
    make_server_pool,
)


class TestPowerModel:
    def test_endpoints(self):
        pm = ServerPowerModel(sleep_w=5.0, idle_w=100.0, busy_w=200.0)
        assert pm.active_power_w(1.0, 0.0) == pytest.approx(100.0)
        assert pm.active_power_w(1.0, 1.0) == pytest.approx(200.0)
        assert pm.sleep_power_w() == 5.0

    def test_lower_frequency_saves_power_at_equal_utilization(self):
        pm = ServerPowerModel(sleep_w=5.0, idle_w=100.0, busy_w=200.0)
        assert pm.active_power_w(0.5, 0.8) < pm.active_power_w(1.0, 0.8)

    def test_dvfs_cubic_scaling(self):
        pm = ServerPowerModel(sleep_w=0.0, idle_w=100.0, busy_w=200.0,
                              dvfs_exponent=3.0, idle_dvfs_fraction=0.0)
        # Dynamic part scales with ratio^3.
        dyn_full = pm.active_power_w(1.0, 1.0) - pm.active_power_w(1.0, 0.0)
        dyn_half = pm.active_power_w(0.5, 1.0) - pm.active_power_w(0.5, 0.0)
        assert dyn_half / dyn_full == pytest.approx(0.125)

    def test_monotone_in_utilization(self):
        pm = ServerPowerModel(sleep_w=5.0, idle_w=100.0, busy_w=200.0)
        powers = [pm.active_power_w(0.8, u) for u in np.linspace(0, 1, 11)]
        assert all(b >= a for a, b in zip(powers, powers[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            ServerPowerModel(sleep_w=5.0, idle_w=200.0, busy_w=100.0)
        with pytest.raises(ValueError):
            ServerPowerModel(sleep_w=500.0, idle_w=100.0, busy_w=200.0)
        pm = ServerPowerModel(sleep_w=5.0, idle_w=100.0, busy_w=200.0)
        with pytest.raises(ValueError):
            pm.active_power_w(1.5, 0.5)
        with pytest.raises(ValueError):
            pm.active_power_w(0.5, -0.1)

    @settings(max_examples=30, deadline=None)
    @given(ratio=st.floats(0.1, 1.0), util=st.floats(0.0, 1.0))
    def test_power_within_physical_envelope(self, ratio, util):
        pm = ServerPowerModel(sleep_w=5.0, idle_w=100.0, busy_w=220.0)
        p = pm.active_power_w(ratio, util)
        assert 0 < p <= 220.0 + 1e-9


class TestCPUSpec:
    def test_capacity(self):
        assert CPU_3GHZ_QUAD.max_capacity_ghz == pytest.approx(12.0)
        assert CPU_2GHZ_DUAL.capacity_at(1.0) == pytest.approx(2.0)

    def test_lowest_level_for(self):
        cpu = CPUSpec("x", 2, (1.0, 1.5, 2.0))
        assert cpu.lowest_level_for(1.9) == 1.0   # 2 cores x 1.0 = 2.0 >= 1.9
        assert cpu.lowest_level_for(2.5) == 1.5
        assert cpu.lowest_level_for(3.9) == 2.0
        assert cpu.lowest_level_for(99.0) == 2.0  # saturates at max

    def test_validation(self):
        with pytest.raises(ValueError):
            CPUSpec("x", 0, (1.0,))
        with pytest.raises(ValueError):
            CPUSpec("x", 2, ())
        with pytest.raises(ValueError):
            CPUSpec("x", 2, (2.0, 1.0))


class TestServer:
    def test_initial_state(self):
        s = Server("s1", SERVER_TYPE_A)
        assert s.active
        assert s.freq_ghz == SERVER_TYPE_A.cpu.max_freq_ghz
        assert s.capacity_ghz == pytest.approx(12.0)

    def test_sleep_wake(self):
        s = Server("s1", SERVER_TYPE_A)
        s.sleep()
        assert not s.active
        assert s.capacity_ghz == 0.0
        s.wake()
        assert s.active
        assert s.freq_ghz == SERVER_TYPE_A.cpu.max_freq_ghz

    def test_set_frequency_only_discrete_levels(self):
        s = Server("s1", SERVER_TYPE_A)
        s.set_frequency(2.0)
        assert s.freq_ghz == 2.0
        with pytest.raises(ValueError):
            s.set_frequency(2.1)

    def test_power_sleeping(self):
        s = Server("s1", SERVER_TYPE_A)
        s.sleep()
        assert s.power_w(0.0) == SERVER_TYPE_A.power.sleep_w

    def test_power_active_uses_current_frequency(self):
        s = Server("s1", SERVER_TYPE_A)
        p_high = s.power_w(6.0)
        s.set_frequency(1.5)  # capacity 6 GHz, same absolute usage
        p_low = s.power_w(6.0)
        assert p_low < p_high

    def test_efficiency_ordering_of_catalog(self):
        effs = [SERVER_TYPE_A.power_efficiency, SERVER_TYPE_B.power_efficiency,
                SERVER_TYPE_C.power_efficiency]
        assert effs[0] > effs[1] > effs[2]

    def test_make_server_pool_types_and_ids(self):
        pool = make_server_pool(10, rng=1)
        assert len(pool) == 10
        assert len({s.server_id for s in pool}) == 10
        assert all(not s.active for s in pool)

    def test_make_server_pool_weights(self):
        pool = make_server_pool(
            600, rng=2, type_weights=(1.0, 0.0, 0.0)
        )
        assert all(s.spec.name == SERVER_TYPE_A.name for s in pool)

    def test_make_server_pool_bad_weights(self):
        with pytest.raises(ValueError):
            make_server_pool(5, type_weights=(1.0,))
        with pytest.raises(ValueError):
            make_server_pool(5, type_weights=(0.0, 0.0, 0.0))


class TestVM:
    def test_defaults(self):
        vm = VM("v1", app_id="a1", tier_index=1, memory_mb=2048, demand_ghz=0.5)
        assert vm.allocation_ghz == 0.0
        assert vm.demand_ghz == 0.5

    def test_set_demand(self):
        vm = VM("v1")
        vm.set_demand(1.5)
        assert vm.demand_ghz == 1.5
        with pytest.raises(ValueError):
            vm.set_demand(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            VM("v1", memory_mb=0)
        with pytest.raises(ValueError):
            VM("v1", tier_index=-1)


class TestMigrationModel:
    def test_duration_scales_with_memory(self):
        m = LiveMigrationModel(bandwidth_mbps=1000.0, dirty_factor=1.0, downtime_s=0.0)
        # 1024 MB * 8 bits / 1000 Mbps = 8.192 s
        assert m.duration_s(1024) == pytest.approx(8.192)
        assert m.duration_s(2048) == pytest.approx(16.384)

    def test_dirty_factor_inflates_traffic(self):
        m = LiveMigrationModel(dirty_factor=1.5)
        assert m.bytes_moved_mb(1000) == pytest.approx(1500.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LiveMigrationModel(bandwidth_mbps=0.0)
        with pytest.raises(ValueError):
            LiveMigrationModel(dirty_factor=0.5)


class TestApplication:
    def test_needs_vms(self):
        with pytest.raises(ValueError):
            Application("a1", [])

    def test_setpoint_positive(self):
        with pytest.raises(ValueError):
            Application("a1", ["v1"], rt_setpoint_ms=0.0)


class TestDataCenter:
    def _dc(self):
        dc = DataCenter()
        dc.add_server(Server("s1", SERVER_TYPE_A))
        dc.add_server(Server("s2", SERVER_TYPE_B))
        dc.add_vm(VM("v1", memory_mb=1024, demand_ghz=1.0))
        dc.add_vm(VM("v2", memory_mb=2048, demand_ghz=0.5))
        return dc

    def test_duplicate_ids_rejected(self):
        dc = self._dc()
        with pytest.raises(ValueError):
            dc.add_server(Server("s1", SERVER_TYPE_A))
        with pytest.raises(ValueError):
            dc.add_vm(VM("v1"))

    def test_place_and_query(self):
        dc = self._dc()
        dc.place("v1", "s1")
        assert dc.server_of("v1") == "s1"
        assert [v.vm_id for v in dc.vms_on("s1")] == ["v1"]
        assert dc.total_demand_ghz("s1") == pytest.approx(1.0)
        assert dc.total_memory_mb("s1") == 1024

    def test_double_place_rejected(self):
        dc = self._dc()
        dc.place("v1", "s1")
        with pytest.raises(ValueError):
            dc.place("v1", "s2")

    def test_place_on_sleeping_server_rejected(self):
        dc = self._dc()
        dc.servers["s1"].sleep()
        with pytest.raises(ValueError):
            dc.place("v1", "s1")

    def test_memory_enforcement(self):
        dc = DataCenter()
        dc.add_server(Server("small", ServerSpec(
            "tiny", CPUSpec("c", 1, (1.0,)), memory_mb=1500,
            power=ServerPowerModel(1.0, 10.0, 20.0))))
        dc.add_vm(VM("v1", memory_mb=1024))
        dc.add_vm(VM("v2", memory_mb=1024))
        dc.place("v1", "small")
        with pytest.raises(ValueError):
            dc.place("v2", "small")
        dc.place("v2", "small", enforce_memory=False)
        assert dc.memory_violations() == ["small"]

    def test_migrate_records_log(self):
        dc = self._dc()
        dc.place("v1", "s1")
        record = dc.migrate("v1", "s2", time_s=100.0)
        assert dc.server_of("v1") == "s2"
        assert record.source_id == "s1"
        assert record.duration_s > 0
        assert dc.migration_log == [record]

    def test_migrate_to_same_server_rejected(self):
        dc = self._dc()
        dc.place("v1", "s1")
        with pytest.raises(ValueError):
            dc.migrate("v1", "s1")

    def test_migrate_unplaced_rejected(self):
        dc = self._dc()
        with pytest.raises(ValueError):
            dc.migrate("v1", "s2")

    def test_sleep_requires_empty(self):
        dc = self._dc()
        dc.place("v1", "s1")
        with pytest.raises(ValueError):
            dc.sleep_server("s1")
        dc.unplace("v1")
        dc.sleep_server("s1")
        assert not dc.servers["s1"].active
        assert dc.sleep_count == 1

    def test_wake(self):
        dc = self._dc()
        dc.sleep_server("s2")
        dc.wake_server("s2")
        assert dc.servers["s2"].active
        assert dc.wake_count == 1

    def test_overloaded_servers(self):
        dc = self._dc()
        dc.place("v1", "s2")  # type B: 4 GHz max
        dc.vms["v1"].set_demand(5.0)
        assert dc.overloaded_servers() == ["s2"]
        dc.vms["v1"].set_demand(3.0)
        assert dc.overloaded_servers() == []
        # With headroom 1.25, 3.0 > 4.0/1.25 = 3.2? no; 3.3 would be.
        dc.vms["v1"].set_demand(3.3)
        assert dc.overloaded_servers(headroom=1.25) == ["s2"]

    def test_total_power_counts_sleepers(self):
        dc = self._dc()
        dc.sleep_server("s1")
        p = dc.total_power_w()
        expected_sleep = SERVER_TYPE_A.power.sleep_w
        assert p >= expected_sleep

    def test_unknown_ids_raise_keyerror(self):
        dc = self._dc()
        with pytest.raises(KeyError):
            dc.place("nope", "s1")
        with pytest.raises(KeyError):
            dc.place("v1", "nope")
        with pytest.raises(KeyError):
            dc.vms_on("nope")
