"""ARX model: simulation, affine prediction, gains, stability analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.arx import ARXModel
from repro.control.stability import arx_poles, is_stable_arx


class TestConstruction:
    def test_orders(self, simple_arx):
        assert simple_arx.na == 1
        assert simple_arx.nb == 2
        assert simple_arx.n_inputs == 2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ARXModel(a=[], b=[[1.0]])

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            ARXModel(a=[np.nan], b=[[1.0]])
        with pytest.raises(ValueError):
            ARXModel(a=[0.5], b=[[np.inf]], g=0.0)


class TestOneStep:
    def test_manual_computation(self):
        m = ARXModel(a=[0.5], b=[[-2.0, -1.0], [-0.5, -0.2]], g=10.0)
        # t(k+1) = 0.5 t(k) + b1 c(k+1) + b2 c(k)
        t = m.one_step([4.0], np.array([[1.0, 2.0], [3.0, 4.0]]))
        expected = 0.5 * 4.0 + (-2.0 * 1.0 - 1.0 * 2.0) + (-0.5 * 3.0 - 0.2 * 4.0) + 10.0
        assert t == pytest.approx(expected)

    def test_short_history_rejected(self, simple_arx):
        with pytest.raises(ValueError):
            simple_arx.one_step([], np.ones((2, 2)))
        with pytest.raises(ValueError):
            simple_arx.one_step([1.0], np.ones((1, 2)))

    def test_wrong_input_dim_rejected(self, simple_arx):
        with pytest.raises(ValueError):
            simple_arx.one_step([1.0], np.ones((2, 3)))


class TestSimulate:
    def test_constant_input_converges_to_fixed_point(self, simple_arx):
        c = np.tile([1.0, 1.0], (200, 1))
        out = simple_arx.simulate([2000.0], c)
        fixed = (simple_arx.g + simple_arx.b.sum(axis=0) @ np.array([1.0, 1.0])) / (
            1 - simple_arx.a.sum()
        )
        assert out[-1] == pytest.approx(fixed, rel=1e-6)

    def test_dc_gain_matches_step_response(self, simple_arx):
        c_low = np.tile([1.0, 1.0], (300, 1))
        c_high = c_low.copy()
        c_high[:, 0] += 0.1
        low = simple_arx.simulate([1000.0], c_low)[-1]
        high = simple_arx.simulate([1000.0], c_high)[-1]
        assert (high - low) / 0.1 == pytest.approx(simple_arx.dc_gain()[0], rel=1e-6)

    def test_integrating_model_gain_inf(self):
        m = ARXModel(a=[1.0], b=[[-1.0]], g=0.0)
        assert np.all(np.isinf(m.dc_gain()))

    def test_length(self, simple_arx):
        out = simple_arx.simulate([1000.0], np.ones((17, 2)))
        assert out.shape == (17,)


class TestPredictAffine:
    @settings(max_examples=30, deadline=None)
    @given(
        data=st.data(),
        na=st.integers(1, 3),
        nb=st.integers(1, 3),
        m=st.integers(1, 3),
        P=st.integers(1, 8),
    )
    def test_affine_map_matches_forward_simulation(self, data, na, nb, m, P):
        """phi + psi @ u must equal iterating the model on the same inputs."""
        M = data.draw(st.integers(1, P))
        seed = data.draw(st.integers(0, 9999))
        rng = np.random.default_rng(seed)
        model = ARXModel(
            a=rng.uniform(-0.4, 0.4, size=na),
            b=rng.uniform(-2.0, 0.0, size=(nb, m)),
            g=rng.uniform(-5, 5),
        )
        t_hist = rng.uniform(0, 10, size=na)
        c_hist = rng.uniform(0, 2, size=(max(nb, 1), m))
        u = rng.uniform(-0.5, 0.5, size=M * m)
        phi, psi = model.predict_affine(t_hist, c_hist, P, M)
        predicted = phi + psi @ u

        # Forward simulation with explicit future inputs.
        dc = u.reshape(M, m)
        c_now = c_hist[0]
        future_c = [c_now + dc[: min(j, M)].sum(axis=0) for j in range(1, P + 1)]
        t_buf = list(t_hist)
        c_buf = [row.copy() for row in c_hist]
        outs = []
        for j in range(P):
            c_buf.insert(0, future_c[j])
            t_next = model.one_step(t_buf, np.asarray(c_buf))
            outs.append(t_next)
            t_buf.insert(0, t_next)
        np.testing.assert_allclose(predicted, outs, rtol=1e-9, atol=1e-7)

    def test_psi_first_row_is_direct_gain(self, simple_arx):
        phi, psi = simple_arx.predict_affine(
            [1000.0], np.array([[1.0, 1.0], [1.0, 1.0]]), 4, 2
        )
        # t(k+1) depends on c(k+1) = c + dc0 through b1 only.
        np.testing.assert_allclose(psi[0, :2], simple_arx.b[0])
        np.testing.assert_allclose(psi[0, 2:], 0.0)

    def test_invalid_horizons_rejected(self, simple_arx):
        hist = ([1000.0], np.ones((2, 2)))
        with pytest.raises(ValueError):
            simple_arx.predict_affine(*hist, 0, 1)
        with pytest.raises(ValueError):
            simple_arx.predict_affine(*hist, 4, 5)


class TestStability:
    def test_poles_of_first_order(self):
        m = ARXModel(a=[0.5], b=[[1.0]])
        np.testing.assert_allclose(arx_poles(m), [0.5])

    def test_stable_detection(self):
        assert is_stable_arx(ARXModel(a=[0.9], b=[[1.0]]))
        assert not is_stable_arx(ARXModel(a=[1.1], b=[[1.0]]))

    def test_margin(self):
        m = ARXModel(a=[0.9], b=[[1.0]])
        assert not is_stable_arx(m, margin=0.2)
        assert is_stable_arx(m, margin=0.05)

    def test_second_order_complex_poles(self):
        # t(k) = 1.0 t(k-1) - 0.5 t(k-2): poles 0.5 +- 0.5j, |z| ~ 0.707.
        m = ARXModel(a=[1.0, -0.5], b=[[1.0], [0.0]])
        poles = arx_poles(m)
        assert np.all(np.abs(np.abs(poles) - np.sqrt(0.5)) < 1e-9)
        assert is_stable_arx(m)

    def test_invalid_margin(self):
        with pytest.raises(ValueError):
            is_stable_arx(ARXModel(a=[0.5], b=[[1.0]]), margin=1.0)
