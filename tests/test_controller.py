"""Response-time controller: tracking on the real plant, guards, bias."""

import numpy as np
import pytest

from repro.apps import AppSpec, MultiTierApp
from repro.control.mpc_core import MPCConfig
from repro.core.controller import ControllerConfig, ResponseTimeController
from repro.sysid import fit_arx, run_identification_experiment


@pytest.fixture(scope="module")
def identified_model():
    """One identification run shared by all controller tests."""
    app = MultiTierApp(AppSpec.rubbos(), [1.0, 1.0], concurrency=40, rng=55)
    data = run_identification_experiment(
        app, n_periods=160, period_s=15.0,
        alloc_lower=[0.45, 0.45], alloc_upper=[0.9, 0.9], rng=56,
    )
    return fit_arx(data.t, data.c, na=1, nb=2).model


def _make_controller(model, setpoint=1000.0, **cfg_kwargs):
    return ResponseTimeController(
        model,
        ControllerConfig(setpoint_ms=setpoint, period_s=15.0, **cfg_kwargs),
        c_min=[0.2, 0.2],
        c_max=[3.0, 3.0],
        initial_alloc_ghz=[1.0, 1.0],
    )


def _run_loop(model, setpoint=1000.0, concurrency=40, periods=60, seed=77, **cfg):
    plant = MultiTierApp(AppSpec.rubbos(), [1.0, 1.0], concurrency=concurrency, rng=seed)
    plant.warmup(90)
    ctrl = _make_controller(model, setpoint, **cfg)
    rts = []
    for _ in range(periods):
        stats = plant.run_period(15.0)
        c = ctrl.update(stats.rt_p90_ms, used_ghz=plant.used_ghz(15.0))
        plant.set_allocations(c)
        rts.append(stats.rt_p90_ms)
    return np.asarray(rts), ctrl


class TestConfigValidation:
    def test_bias_gain_range(self):
        with pytest.raises(ValueError):
            ControllerConfig(bias_gain=1.5)

    def test_util_band_ordering(self):
        with pytest.raises(ValueError):
            ControllerConfig(util_band=(0.9, 0.8))
        with pytest.raises(ValueError):
            ControllerConfig(util_band=(0.0, 0.9))

    def test_bounds_validation(self, identified_model):
        with pytest.raises(ValueError):
            ResponseTimeController(
                identified_model, ControllerConfig(),
                c_min=[1.0, 1.0], c_max=[0.5, 0.5], initial_alloc_ghz=[1.0, 1.0],
            )
        with pytest.raises(ValueError):
            ResponseTimeController(
                identified_model, ControllerConfig(),
                c_min=[0.1], c_max=[3.0], initial_alloc_ghz=[1.0],
            )


class TestTracking:
    def test_tracks_default_setpoint(self, identified_model):
        rts, _ = _run_loop(identified_model)
        tail = rts[len(rts) // 2 :]
        assert tail.mean() == pytest.approx(1000.0, rel=0.12)

    def test_tracks_low_setpoint(self, identified_model):
        rts, _ = _run_loop(identified_model, setpoint=600.0)
        tail = rts[len(rts) // 2 :]
        assert tail.mean() == pytest.approx(600.0, rel=0.15)

    def test_tracks_high_setpoint(self, identified_model):
        rts, _ = _run_loop(identified_model, setpoint=1300.0)
        tail = rts[len(rts) // 2 :]
        assert tail.mean() == pytest.approx(1300.0, rel=0.2)

    def test_tracks_off_design_concurrency(self, identified_model):
        """Identified at 40 clients; must still track at 80 (paper Fig. 4)."""
        rts, _ = _run_loop(identified_model, concurrency=80, periods=70)
        tail = rts[len(rts) // 2 :]
        assert tail.mean() == pytest.approx(1000.0, rel=0.2)

    def test_recovers_from_workload_step(self, identified_model):
        plant = MultiTierApp(AppSpec.rubbos(), [1.0, 1.0], concurrency=40, rng=88)
        plant.warmup(90)
        ctrl = _make_controller(identified_model)
        rts = []
        for k in range(80):
            if k == 30:
                plant.set_concurrency(80)
            stats = plant.run_period(15.0)
            c = ctrl.update(stats.rt_p90_ms, used_ghz=plant.used_ghz(15.0))
            plant.set_allocations(c)
            rts.append(stats.rt_p90_ms)
        rts = np.asarray(rts)
        spike = rts[30:40].max()
        settled = rts[60:].mean()
        assert spike > 1500.0             # the step visibly violates the SLA
        assert settled == pytest.approx(1000.0, rel=0.2)  # and is controlled away


class TestGuards:
    def test_sustained_nan_pushes_allocation_up(self, identified_model):
        """Repeated empty periods (total starvation) read as worst-case
        response times; the bias estimate accumulates and allocation
        rises even though the model initially blames excess capacity."""
        ctrl = _make_controller(identified_model)
        before = ctrl.current_demand_ghz
        after = before
        for _ in range(6):
            after = ctrl.update(float("nan"))
        assert after.sum() > before.sum()

    def test_measurement_clamped(self, identified_model):
        ctrl = _make_controller(identified_model, measurement_limit_ms=2000.0)
        ctrl.update(1e9)  # must not blow up the internal state
        assert np.isfinite(ctrl.current_demand_ghz).all()

    def test_util_band_floor_prevents_starvation(self, identified_model):
        ctrl = _make_controller(identified_model, util_band=(0.75, 0.985))
        # Low RT tempts the controller to cut; usage floor resists.
        demand = ctrl.update(100.0, used_ghz=np.array([0.95, 0.95]))
        assert np.all(demand >= 0.95 / 0.985 - 1e-6)

    def test_util_band_cap_prevents_hoarding(self, identified_model):
        ctrl = _make_controller(identified_model, util_band=(0.75, 0.985))
        # High RT but tiny usage: cap limits the grab.
        demand = ctrl.update(2500.0, used_ghz=np.array([0.1, 0.1]))
        cap = 0.1 / 0.75 + ControllerConfig().util_band_headroom_ghz
        assert np.all(demand <= max(cap, 1.0 - 0.3) + 0.31)  # within reach+rate

    def test_without_usage_static_bounds_apply(self, identified_model):
        ctrl = _make_controller(identified_model)
        demand = ctrl.update(2500.0)
        assert np.all(demand <= 3.0 + 1e-9)
        assert np.all(demand >= 0.2 - 1e-9)

    def test_notify_allocation_overrides_history(self, identified_model):
        ctrl = _make_controller(identified_model)
        ctrl.update(1200.0)
        granted = np.array([0.5, 0.5])
        ctrl.notify_allocation(granted)
        np.testing.assert_array_equal(ctrl.current_demand_ghz, granted)

    def test_notify_allocation_shape_checked(self, identified_model):
        ctrl = _make_controller(identified_model)
        with pytest.raises(ValueError):
            ctrl.notify_allocation(np.array([0.5]))

    def test_bias_estimate_moves_toward_innovation(self, identified_model):
        ctrl = _make_controller(identified_model, bias_gain=0.5)
        assert ctrl.output_bias_ms == 0.0
        ctrl.update(1000.0)
        ctrl.update(2500.0)  # surprise: plant much slower than modeled
        assert ctrl.output_bias_ms > 0.0

    def test_bias_disabled(self, identified_model):
        ctrl = _make_controller(identified_model, bias_gain=0.0)
        ctrl.update(1000.0)
        ctrl.update(2500.0)
        assert ctrl.output_bias_ms == 0.0
