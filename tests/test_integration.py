"""Integration tests: the full testbed and large-scale experiment paths.

These reproduce miniature versions of the paper's experiments end to end
and assert the *shapes* the evaluation section reports.
"""

import numpy as np
import pytest

from repro.apps.workload import StepWorkload
from repro.sim.largescale import LargeScaleConfig, run_largescale
from repro.sim.testbed import TestbedConfig, TestbedExperiment
from repro.traces import TraceConfig, generate_trace


@pytest.fixture(scope="module")
def shared_model():
    """One system-identification pass shared across testbed tests."""
    exp = TestbedExperiment(TestbedConfig())
    return exp.identify_model()


@pytest.fixture(scope="module")
def small_trace():
    return generate_trace(TraceConfig(n_servers=120, n_days=2), rng=31)


class TestTestbedIntegration:
    def test_sysid_model_quality(self, shared_model):
        assert np.all(shared_model.b <= 0)
        assert 0.0 <= shared_model.a[0] < 1.0

    def test_all_apps_track_setpoint(self, shared_model):
        """Miniature Fig. 2: every application converges to 1000 ms."""
        config = TestbedConfig(n_apps=4, duration_s=450.0)
        result = TestbedExperiment(config, model=shared_model).run()
        for i in range(4):
            summary = result.rt_summary(i)
            # Discard the settling transient by looking at the back half.
            tail = result.recorder.values(f"rt/app{i}")[15:]
            assert np.nanmean(tail) == pytest.approx(1000.0, rel=0.2)

    def test_step_workload_recovers(self, shared_model):
        """Miniature Fig. 3: overload spike, then reconvergence."""
        config = TestbedConfig(
            n_apps=4,
            duration_s=900.0,
            workloads={1: StepWorkload(40, 80, 300.0, 600.0)},
        )
        result = TestbedExperiment(config, model=shared_model).run()
        rts = result.recorder.values("rt/app1")
        times = result.recorder.times("rt/app1")
        spike = rts[(times >= 300.0) & (times < 420.0)].max()
        settled = rts[(times >= 480.0) & (times < 600.0)]
        assert spike > 1400.0
        assert np.nanmean(settled) == pytest.approx(1000.0, rel=0.25)

    def test_power_rises_under_overload(self, shared_model):
        config = TestbedConfig(
            n_apps=4,
            duration_s=900.0,
            workloads={1: StepWorkload(40, 80, 300.0, 600.0)},
        )
        result = TestbedExperiment(config, model=shared_model).run()
        power = result.recorder.values("power/total")
        times = result.recorder.times("power/total")
        before = power[(times >= 150.0) & (times < 300.0)].mean()
        during = power[(times >= 360.0) & (times < 600.0)].mean()
        assert during > before

    def test_uncontrolled_baseline_violates_sla(self, shared_model):
        """Without the controller, static 0.5 GHz allocations cannot absorb
        a doubled workload — response time stays violated."""
        config = TestbedConfig(
            n_apps=2,
            duration_s=600.0,
            controlled=False,
            initial_alloc_ghz=0.55,
            workloads={0: StepWorkload(40, 80, 150.0, 600.0)},
        )
        result = TestbedExperiment(config, model=shared_model).run()
        rts = result.recorder.values("rt/app0")
        times = result.recorder.times("rt/app0")
        overloaded = rts[times >= 300.0]
        assert np.nanmean(overloaded) > 2000.0

    def test_setpoint_overrides_per_app(self, shared_model):
        config = TestbedConfig(
            n_apps=2, duration_s=450.0, setpoints_ms={1: 600.0}
        )
        result = TestbedExperiment(config, model=shared_model).run()
        tail0 = result.recorder.values("rt/app0")[15:]
        tail1 = result.recorder.values("rt/app1")[15:]
        assert np.nanmean(tail0) == pytest.approx(1000.0, rel=0.2)
        assert np.nanmean(tail1) == pytest.approx(600.0, rel=0.25)

    def test_recorder_has_expected_series(self, shared_model):
        config = TestbedConfig(n_apps=2, duration_s=60.0)
        result = TestbedExperiment(config, model=shared_model).run()
        names = set(result.recorder.names())
        assert {"rt/app0", "rt/app1", "power/total"} <= names
        assert any(n.startswith("freq/") for n in names)
        assert any(n.startswith("alloc/") for n in names)


class TestLargeScaleIntegration:
    def test_ipac_beats_pmapper(self, small_trace):
        """The headline Fig. 6 shape on a small instance."""
        kwargs = dict(n_vms=60, n_servers=100, seed=5)
        ipac_res = run_largescale(small_trace, LargeScaleConfig(scheme="ipac", **kwargs))
        pm_res = run_largescale(small_trace, LargeScaleConfig(scheme="pmapper", **kwargs))
        assert ipac_res.energy_per_vm_wh < pm_res.energy_per_vm_wh

    def test_dvfs_saves_energy(self, small_trace):
        kwargs = dict(n_vms=60, n_servers=100, scheme="ipac", seed=5)
        on = run_largescale(small_trace, LargeScaleConfig(dvfs=True, **kwargs))
        off = run_largescale(small_trace, LargeScaleConfig(dvfs=False, **kwargs))
        assert on.total_energy_wh < off.total_energy_wh

    def test_all_vms_placed(self, small_trace):
        res = run_largescale(
            small_trace, LargeScaleConfig(n_vms=80, n_servers=100, seed=5)
        )
        assert res.unplaced_vm_steps == 0

    def test_deterministic_given_seed(self, small_trace):
        cfg = LargeScaleConfig(n_vms=40, n_servers=60, seed=9)
        a = run_largescale(small_trace, cfg)
        b = run_largescale(small_trace, cfg)
        assert a.total_energy_wh == b.total_energy_wh
        assert a.migrations == b.migrations

    def test_active_servers_tracks_demand(self, small_trace):
        res = run_largescale(
            small_trace, LargeScaleConfig(n_vms=80, n_servers=100, seed=5)
        )
        assert res.max_active_servers >= res.mean_active_servers > 0
        assert res.power_series_w.shape == (small_trace.n_samples,)

    def test_consolidation_reduces_power_vs_no_reoptimization(self, small_trace):
        """Re-optimizing every 4 h must not do worse than placing once and
        never adapting (optimize_every larger than the trace)."""
        base = LargeScaleConfig(n_vms=60, n_servers=100, scheme="ipac", seed=5)
        adaptive = run_largescale(small_trace, base)
        from dataclasses import replace
        frozen = run_largescale(
            small_trace, replace(base, optimize_every_steps=10_000)
        )
        assert adaptive.total_energy_wh <= frozen.total_energy_wh * 1.05

    def test_trace_too_small_rejected(self, small_trace):
        with pytest.raises(ValueError):
            run_largescale(small_trace, LargeScaleConfig(n_vms=10_000))

    def test_scheme_validation(self):
        with pytest.raises(ValueError):
            LargeScaleConfig(scheme="magic")


class TestHeterogeneousApps:
    def test_diverse_demands_all_track(self, shared_model):
        """Apps whose per-request demands differ up to 60% all track the
        shared-model controller's set point — heterogeneity robustness
        beyond the paper's identical app instances."""
        config = TestbedConfig(
            n_apps=4, duration_s=450.0, demand_scale_range=(0.8, 1.3)
        )
        result = TestbedExperiment(config, model=shared_model).run()
        for i in range(4):
            tail = result.recorder.values(f"rt/app{i}")[15:]
            assert abs(np.nanmean(tail) - 1000.0) / 1000.0 < 0.25, f"app{i}"

    def test_invalid_scale_range_rejected(self):
        import pytest as _pytest
        with _pytest.raises(ValueError):
            TestbedConfig(demand_scale_range=(1.5, 1.0))
        with _pytest.raises(ValueError):
            TestbedConfig(demand_scale_range=(0.0, 1.0))


class TestDeterminism:
    def test_testbed_bitwise_reproducible(self, shared_model):
        """Identical configs and seeds give identical series."""
        config = TestbedConfig(n_apps=2, duration_s=150.0, seed=77)
        a = TestbedExperiment(config, model=shared_model).run()
        b = TestbedExperiment(config, model=shared_model).run()
        for name in ("rt/app0", "rt/app1", "power/total"):
            np.testing.assert_array_equal(
                a.recorder.values(name), b.recorder.values(name)
            )

    def test_testbed_seed_changes_series(self, shared_model):
        a = TestbedExperiment(
            TestbedConfig(n_apps=2, duration_s=150.0, seed=1), model=shared_model
        ).run()
        b = TestbedExperiment(
            TestbedConfig(n_apps=2, duration_s=150.0, seed=2), model=shared_model
        ).run()
        assert not np.array_equal(
            a.recorder.values("rt/app0"), b.recorder.values("rt/app0")
        )
