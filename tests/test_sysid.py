"""System identification: excitation, fitting, validation, experiment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import AppSpec, MultiTierApp
from repro.control.arx import ARXModel
from repro.sysid import (
    aprbs,
    excitation_trajectory,
    fit_arx,
    identify_app_model,
    one_step_r2,
    prbs,
    residual_autocorrelation,
    run_identification_experiment,
    simulation_rmse,
)


class TestExcitation:
    def test_prbs_values(self, rng):
        seq = prbs(100, rng)
        assert set(np.unique(seq)) <= {-1.0, 1.0}
        assert seq.shape == (100,)

    def test_prbs_hold_repeats(self, rng):
        seq = prbs(40, rng, hold=4)
        for i in range(0, 40, 4):
            assert np.all(seq[i : i + 4] == seq[i])

    def test_prbs_balanced(self):
        seq = prbs(10000, 1)
        assert abs(seq.mean()) < 0.05

    def test_aprbs_range(self, rng):
        seq = aprbs(200, 0.4, 0.9, rng)
        assert seq.min() >= 0.4
        assert seq.max() <= 0.9

    def test_aprbs_holds_within_bounds(self, rng):
        seq = aprbs(500, 0.0, 1.0, rng, min_hold=3, max_hold=5)
        # Count run lengths; all interior runs must be in [3, 5].
        changes = np.flatnonzero(np.diff(seq) != 0)
        runs = np.diff(changes)
        assert np.all(runs >= 3)
        assert np.all(runs <= 5)

    def test_trajectory_shape_and_channel_ranges(self, rng):
        traj = excitation_trajectory(50, [0.2, 0.5], [0.4, 1.5], rng)
        assert traj.shape == (50, 2)
        assert traj[:, 0].min() >= 0.2 and traj[:, 0].max() <= 0.4
        assert traj[:, 1].min() >= 0.5 and traj[:, 1].max() <= 1.5

    def test_trajectory_channels_independent(self, rng):
        traj = excitation_trajectory(400, [0.0, 0.0], [1.0, 1.0], rng)
        corr = np.corrcoef(traj[:, 0], traj[:, 1])[0, 1]
        assert abs(corr) < 0.3

    def test_invalid_args_rejected(self, rng):
        with pytest.raises(ValueError):
            prbs(0, rng)
        with pytest.raises(ValueError):
            aprbs(10, 1.0, 0.5, rng)
        with pytest.raises(ValueError):
            aprbs(10, 0.0, 1.0, rng, min_hold=5, max_hold=2)
        with pytest.raises(ValueError):
            excitation_trajectory(10, [0.5], [0.4], rng)


class TestFitARX:
    def _generate(self, model, K, rng, noise=0.0):
        c = excitation_trajectory(K, [0.3] * model.n_inputs, [1.2] * model.n_inputs, rng)
        t = np.empty(K)
        t_hist = [model.g / max(1 - model.a.sum(), 1e-6)] * model.na
        c_hist = [c[0]] * model.nb
        for k in range(K):
            c_hist.insert(0, c[k])
            c_hist = c_hist[: model.nb]
            t[k] = model.one_step(t_hist, np.asarray(c_hist)) + rng.normal(0, noise)
            t_hist.insert(0, t[k])
            t_hist = t_hist[: model.na]
        return t, c

    def test_recovers_known_model_exactly(self, rng):
        true = ARXModel(a=[0.5], b=[[-900.0, -250.0], [-150.0, -80.0]], g=1500.0)
        t, c = self._generate(true, 300, rng)
        fit = fit_arx(t, c, na=1, nb=2)
        np.testing.assert_allclose(fit.model.a, true.a, atol=1e-6)
        np.testing.assert_allclose(fit.model.b, true.b, atol=1e-4)
        assert fit.model.g == pytest.approx(true.g, abs=1e-2)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-9)

    def test_noisy_recovery_close(self, rng):
        true = ARXModel(a=[0.5], b=[[-900.0, -250.0], [-150.0, -80.0]], g=1500.0)
        t, c = self._generate(true, 2000, rng, noise=20.0)
        fit = fit_arx(t, c, na=1, nb=2)
        np.testing.assert_allclose(fit.model.a, true.a, atol=0.05)
        np.testing.assert_allclose(fit.model.b, true.b, rtol=0.2, atol=30)

    def test_physical_constraints_enforced(self, rng):
        """Even on pure noise, the physical fit keeps gains <= 0 and a in [0, 0.98]."""
        t = rng.normal(1000, 300, size=200)
        c = excitation_trajectory(200, [0.3, 0.3], [1.0, 1.0], rng)
        fit = fit_arx(t, c, na=1, nb=2, constraints="physical")
        assert np.all(fit.model.b <= 1e-12)
        assert np.all(fit.model.a >= -1e-12)
        assert np.all(fit.model.a <= 0.98)

    def test_unconstrained_mode(self, rng):
        true = ARXModel(a=[0.3], b=[[-500.0]], g=800.0)
        t, c = self._generate(true, 200, rng)
        fit = fit_arx(t, c, na=1, nb=1, constraints="none")
        np.testing.assert_allclose(fit.model.b, true.b, atol=1e-6)

    def test_nan_rows_dropped(self, rng):
        true = ARXModel(a=[0.5], b=[[-900.0]], g=1500.0)
        t, c = self._generate(true, 300, rng)
        t[50] = np.nan
        fit = fit_arx(t, c, na=1, nb=1)
        # NaN poisons a few regression rows but the fit survives.
        assert fit.n_samples < 299
        np.testing.assert_allclose(fit.model.b, true.b, rtol=0.05)

    def test_too_few_samples_rejected(self, rng):
        with pytest.raises(ValueError):
            fit_arx(np.ones(4), np.ones((4, 2)), na=1, nb=2)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fit_arx(np.ones(10), np.ones((9, 1)))

    def test_invalid_constraints_rejected(self):
        with pytest.raises(ValueError):
            fit_arx(np.ones(50), np.ones((50, 1)), constraints="magic")


class TestValidate:
    def _fit_pair(self, rng):
        true = ARXModel(a=[0.5], b=[[-900.0, -250.0], [-150.0, -80.0]], g=1500.0)
        c = excitation_trajectory(500, [0.3, 0.3], [1.2, 1.2], rng)
        t = np.empty(500)
        t_hist = [1000.0]
        c_hist = [c[0]] * 2
        for k in range(500):
            c_hist.insert(0, c[k])
            c_hist = c_hist[:2]
            t[k] = true.one_step(t_hist, np.asarray(c_hist)) + rng.normal(0, 10.0)
            t_hist = [t[k]]
        return true, t, c

    def test_r2_high_for_true_model(self, rng):
        true, t, c = self._fit_pair(rng)
        assert one_step_r2(true, t, c) > 0.9

    def test_r2_low_for_wrong_model(self, rng):
        true, t, c = self._fit_pair(rng)
        wrong = ARXModel(a=[0.0], b=[[0.0, 0.0], [0.0, 0.0]], g=float(np.mean(t)))
        assert one_step_r2(wrong, t, c) <= 0.05

    def test_simulation_rmse_small_for_true_model(self, rng):
        true, t, c = self._fit_pair(rng)
        assert simulation_rmse(true, t, c) < 50.0

    def test_residuals_white_for_true_model(self, rng):
        true, t, c = self._fit_pair(rng)
        rho = residual_autocorrelation(true, t, c, max_lag=5)
        assert np.all(np.abs(rho) < 2.5 / np.sqrt(len(t)) + 0.05)

    def test_residuals_correlated_for_wrong_model(self, rng):
        true, t, c = self._fit_pair(rng)
        wrong = ARXModel(a=[0.0], b=true.b, g=true.g)  # drops the AR term
        rho = residual_autocorrelation(wrong, t, c, max_lag=3)
        assert abs(rho[0]) > 0.2

    def test_max_lag_validation(self, rng):
        true, t, c = self._fit_pair(rng)
        with pytest.raises(ValueError):
            residual_autocorrelation(true, t, c, max_lag=0)


class TestIdentificationExperiment:
    def test_experiment_produces_aligned_data(self):
        app = MultiTierApp(AppSpec.rubbos(), [1.0, 1.0], concurrency=20, rng=3)
        data = run_identification_experiment(
            app, n_periods=30, period_s=10.0,
            alloc_lower=[0.5, 0.5], alloc_upper=[1.0, 1.0], rng=4,
        )
        assert data.t.shape == (30,)
        assert data.c.shape == (30, 2)
        assert data.c.min() >= 0.5 and data.c.max() <= 1.0

    def test_identify_app_model_sensible(self):
        """On the real plant, the identified model has negative gains
        (more CPU -> lower response time) and a stable pole."""
        app = MultiTierApp(AppSpec.rubbos(), [1.0, 1.0], concurrency=40, rng=5)
        fit = identify_app_model(app, n_periods=120, period_s=15.0, rng=6)
        assert np.all(fit.model.b <= 0)
        assert 0 <= fit.model.a[0] < 1
        assert fit.r_squared > 0.3

    def test_too_few_periods_rejected(self):
        app = MultiTierApp(AppSpec.rubbos(), [1.0, 1.0], concurrency=5, rng=7)
        with pytest.raises(ValueError):
            run_identification_experiment(app, n_periods=5)
