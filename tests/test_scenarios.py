"""Scenario registry: JSON round-trip, validation, build, CLI."""

import hashlib
import json

import pytest

from repro.engine.scenario import (
    HARNESSES,
    ScenarioError,
    ScenarioRegistry,
    ScenarioSpec,
    builtin_registry,
)
from repro.obs import InMemoryBackend, Telemetry, use_telemetry

# Pinned by tests/test_perf_fastpath.py for the same configuration run
# through the public harness API — the scenario path must agree.
_TB_SMALL_SHA = "a4ae4a9006785b8e0898af5df2bc1ff973350d82380b8d0b5be7c122018478fc"


def _eventlog_hash(records):
    events = [r for r in records if r.get("kind") not in ("span", "metrics")]
    digest = hashlib.sha256(
        json.dumps(events, sort_keys=True, default=str).encode()
    ).hexdigest()
    return digest, len(events)


class TestRoundTrip:
    def test_every_builtin_roundtrips_through_json(self):
        for spec in builtin_registry():
            doc = json.loads(json.dumps(spec.to_dict()))
            again = ScenarioSpec.from_dict(doc)
            assert again.to_dict() == spec.to_dict()
            assert again.validate() == []

    def test_to_dict_is_json_safe_despite_tuples(self):
        spec = ScenarioSpec(
            name="x", description="", harness="testbed",
            params={"optimize_at_s": (60.0, 180.0)},
        )
        doc = spec.to_dict()
        assert doc["params"]["optimize_at_s"] == [60.0, 180.0]
        assert json.loads(json.dumps(doc)) == doc

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ScenarioError, match="unknown scenario fields"):
            ScenarioSpec.from_dict({"name": "x", "harness": "testbed", "extra": 1})

    def test_from_dict_requires_name_and_harness(self):
        with pytest.raises(ScenarioError, match="lacks"):
            ScenarioSpec.from_dict({"harness": "testbed"})
        with pytest.raises(ScenarioError, match="lacks"):
            ScenarioSpec.from_dict({"name": "x"})

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(ScenarioError, match="must be an object"):
            ScenarioSpec.from_dict([1, 2])


class TestValidate:
    def _spec(self, **kw):
        base = dict(name="t", description="", harness="testbed", params={})
        base.update(kw)
        return ScenarioSpec(**base)

    def test_builtins_are_valid(self):
        for spec in builtin_registry():
            assert spec.validate() == []

    def test_harness_checked(self):
        assert HARNESSES == ("testbed", "largescale", "sharded")
        problems = self._spec(harness="cloud").validate()
        assert any("harness" in p for p in problems)

    def test_empty_name_flagged(self):
        problems = self._spec(name=" ").validate()
        assert any("name" in p for p in problems)

    def test_unknown_config_param_flagged(self):
        problems = self._spec(params={"bogus_knob": 1}).validate()
        assert any("bogus_knob" in p for p in problems)

    def test_bad_config_value_flagged(self):
        problems = self._spec(params={"duration_s": -5.0}).validate()
        assert any("duration_s" in p for p in problems)

    def test_faults_in_params_rejected(self):
        problems = self._spec(params={"faults": {}}).validate()
        assert any("top-level" in p for p in problems)

    def test_fault_spec_problems_prefixed(self):
        problems = self._spec(
            faults={"seed": 0, "events": [{"kind": "nope", "time_s": 1.0}]}
        ).validate()
        assert problems and all(p.startswith("faults:") for p in problems)

    def test_model_only_for_testbed(self):
        problems = self._spec(
            harness="largescale",
            params={"n_vms": 5, "n_servers": 5},
            trace={"n_servers": 5, "n_days": 1, "seed": 0},
            model={"a": [0.4], "b": [[-1.0, -1.0]], "g": 1.0},
        ).validate()
        assert any(p.startswith("model:") for p in problems)

    def test_bad_model_shape_flagged(self):
        problems = self._spec(model={"a": [0.4], "b": "oops", "g": 1.0}).validate()
        assert any(p.startswith("model:") for p in problems)

    def test_workloads_only_for_testbed(self):
        problems = self._spec(
            harness="largescale",
            params={"n_vms": 5, "n_servers": 5},
            trace={"n_servers": 5, "n_days": 1, "seed": 0},
            workloads={"0": {"type": "constant", "level": 5}},
        ).validate()
        assert any(p.startswith("workloads:") for p in problems)

    @pytest.mark.parametrize(
        "workload",
        [
            {"type": "sawtooth"},
            {"type": "step", "base": 10},
            {"type": "step", "base": 10, "high": 20, "start_s": 9.0,
             "end_s": 18.0, "bogus": 1},
            "not-an-object",
        ],
    )
    def test_bad_workload_flagged(self, workload):
        problems = self._spec(workloads={"0": workload}).validate()
        assert any("workloads[" in p for p in problems)

    def test_workload_key_must_be_index(self):
        problems = self._spec(
            workloads={"app0": {"type": "constant", "level": 5}}
        ).validate()
        assert any("app index" in p for p in problems)

    def test_largescale_requires_trace(self):
        problems = self._spec(
            harness="largescale", params={"n_vms": 5, "n_servers": 5}
        ).validate()
        assert any(p.startswith("trace:") for p in problems)

    def test_trace_only_for_largescale(self):
        problems = self._spec(trace={"n_servers": 5}).validate()
        assert any(p.startswith("trace:") for p in problems)

    def test_trace_unknown_fields_flagged(self):
        problems = self._spec(
            harness="largescale",
            params={"n_vms": 5, "n_servers": 5},
            trace={"n_servers": 5, "interval": 60},
        ).validate()
        assert any("unknown fields" in p for p in problems)

    def test_build_refuses_invalid_spec(self):
        with pytest.raises(ScenarioError, match="invalid"):
            self._spec(params={"bogus_knob": 1}).build()


class TestRegistry:
    def test_builtin_names(self):
        names = builtin_registry().names()
        assert "testbed-small" in names and "largescale-small" in names
        assert names == sorted(names)

    def test_register_rejects_duplicates(self):
        reg = builtin_registry()
        spec = reg.get("testbed-small")
        with pytest.raises(ScenarioError, match="already registered"):
            reg.register(spec)
        assert reg.register(spec, replace=True) is spec

    def test_register_validates(self):
        reg = ScenarioRegistry()
        with pytest.raises(ScenarioError, match="invalid"):
            reg.register(ScenarioSpec(name="bad", description="", harness="x"))
        assert len(reg) == 0

    def test_get_unknown_names_known(self):
        reg = builtin_registry()
        with pytest.raises(KeyError, match="testbed-small"):
            reg.get("nope")

    def test_iteration_and_contains(self):
        reg = builtin_registry()
        assert "testbed-faulted" in reg and "nope" not in reg
        assert [s.name for s in reg] == reg.names()
        assert len(reg) == len(reg.names())


class TestBuildAndRun:
    def test_testbed_small_matches_harness_golden(self):
        backend = InMemoryBackend()
        engine, plant = builtin_registry().get("testbed-small").build()
        with use_telemetry(Telemetry(backend)):
            plant.start()
            engine.run()
            plant.result()
        digest, n = _eventlog_hash(backend.records)
        assert (digest, n) == (_TB_SMALL_SHA, 25)

    def test_spec_file_runs_like_registry_entry(self, tmp_path):
        # A spec serialized to disk and reloaded builds the same run.
        spec = builtin_registry().get("testbed-small")
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()), encoding="utf-8")
        loaded = ScenarioSpec.from_dict(json.loads(path.read_text()))
        backend = InMemoryBackend()
        engine, plant = loaded.build()
        with use_telemetry(Telemetry(backend)):
            plant.start()
            engine.run()
        assert _eventlog_hash(backend.records) == (_TB_SMALL_SHA, 25)


class TestCli:
    def test_list(self, capsys):
        from repro.cli import main_scenario

        assert main_scenario(["list"]) == 0
        out = capsys.readouterr().out
        for name in builtin_registry().names():
            assert name in out

    def test_list_json_parses(self, capsys):
        from repro.cli import main_scenario

        assert main_scenario(["list", "--json"]) == 0
        docs = json.loads(capsys.readouterr().out)
        assert {d["name"] for d in docs} == set(builtin_registry().names())

    def test_validate_builtin(self, capsys):
        from repro.cli import main_scenario

        assert main_scenario(["validate", "testbed-faulted"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_show_prints_resolved_spec(self, capsys):
        from repro.cli import main_scenario

        assert main_scenario(["show", "testbed-small"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc == builtin_registry().get("testbed-small").to_dict()

    def test_show_output_is_runnable_spec_file(self, tmp_path, capsys):
        # show -> save -> validate -> run: the printed document is the
        # same spec-file format repro-sim --scenario accepts.
        from repro.cli import main_scenario, main_sim

        assert main_scenario(["show", "testbed-small"]) == 0
        path = tmp_path / "spec.json"
        path.write_text(capsys.readouterr().out, encoding="utf-8")
        assert main_scenario(["validate", str(path)]) == 0
        assert main_sim(["--scenario", str(path)]) == 0

    def test_validate_bad_spec_file(self, tmp_path, capsys):
        from repro.cli import main_scenario

        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps({
                "name": "bad", "description": "", "harness": "testbed",
                "params": {"bogus_knob": 1},
            }),
            encoding="utf-8",
        )
        assert main_scenario(["validate", str(path)]) == 1
        assert "bogus_knob" in capsys.readouterr().err

    def test_validate_unknown_name(self, capsys):
        from repro.cli import main_scenario

        with pytest.raises(SystemExit):
            main_scenario(["validate", "no-such-scenario"])
        assert "known:" in capsys.readouterr().err

    def test_sim_checkpoint_then_resume_is_bit_identical(self, tmp_path, capsys):
        from repro.cli import main_sim

        ck = tmp_path / "ck.json"
        prefix, suffix, full = (
            tmp_path / "a.jsonl", tmp_path / "b.jsonl", tmp_path / "full.jsonl"
        )
        assert main_sim([
            "--scenario", "testbed-faulted",
            "--checkpoint", str(ck), "--checkpoint-at", "7",
            "--trace-jsonl", str(prefix),
        ]) == 0
        assert main_sim([
            "--scenario", "testbed-faulted",
            "--resume", str(ck), "--trace-jsonl", str(suffix),
        ]) == 0
        assert main_sim([
            "--scenario", "testbed-faulted", "--trace-jsonl", str(full),
        ]) == 0
        capsys.readouterr()

        def events(path):
            with open(path, "r", encoding="utf-8") as fh:
                records = [json.loads(line) for line in fh]
            return [r for r in records if r.get("kind") not in ("span", "metrics")]

        joined = events(prefix) + events(suffix)
        assert json.dumps(joined, sort_keys=True, default=str) == json.dumps(
            events(full), sort_keys=True, default=str
        )

    def test_sim_rejects_mismatched_resume(self, tmp_path, capsys):
        from repro.cli import main_sim

        ck = tmp_path / "ck.json"
        assert main_sim([
            "--scenario", "testbed-faulted",
            "--checkpoint", str(ck), "--checkpoint-at", "3",
        ]) == 0
        # Resuming a different scenario from this checkpoint must fail
        # (testbed-small lacks the fault schedule the checkpoint carries).
        assert main_sim(["--scenario", "testbed-small", "--resume", str(ck)]) == 1
        assert "cannot resume" in capsys.readouterr().err
