"""Report rendering and multi-tier (3-tier) MIMO control."""

import numpy as np
import pytest

from repro.apps import AppSpec, Exponential, MultiTierApp, TierSpec
from repro.core.controller import ControllerConfig, ResponseTimeController
from repro.sim.largescale import LargeScaleConfig, run_largescale
from repro.sim.report import comparison_report, largescale_report, testbed_report
from repro.sim.testbed import TestbedConfig, TestbedExperiment
from repro.sysid import fit_arx, run_identification_experiment
from repro.traces import TraceConfig, generate_trace


class TestReports:
    @pytest.fixture(scope="class")
    def small_results(self):
        trace = generate_trace(TraceConfig(n_servers=60, n_days=1), rng=3)
        out = []
        for scheme in ("ipac", "pmapper"):
            out.append(run_largescale(
                trace, LargeScaleConfig(n_vms=60, n_servers=80, scheme=scheme, seed=4)
            ))
        return out

    def test_largescale_report_contains_key_metrics(self, small_results):
        text = largescale_report(small_results[0])
        assert "energy per VM" in text
        assert "migrations" in text
        assert "ipac" in text

    def test_comparison_report_orders_and_labels(self, small_results):
        text = comparison_report(small_results, baseline_index=-1)
        assert "vs pmapper" in text
        assert "ipac" in text
        lines = text.splitlines()
        assert len(lines) >= 4  # title + header + rule + 2 rows

    def test_comparison_report_empty_rejected(self):
        with pytest.raises(ValueError):
            comparison_report([])

    def test_testbed_report(self):
        config = TestbedConfig(n_apps=2, duration_s=120.0)
        result = TestbedExperiment(config).run()
        text = testbed_report(result, n_apps=2, setpoint_ms=1000.0)
        assert "Response-time tracking" in text
        assert "Cluster power" in text
        assert "app0" in text and "app1" in text


class TestThreeTierControl:
    """The paper's architecture is n-tier generic; exercise m = 3."""

    @staticmethod
    def _three_tier_spec() -> AppSpec:
        return AppSpec(
            name="threetier",
            tiers=(
                TierSpec("web", Exponential(0.012), 0.1, 3.0),
                TierSpec("app", Exponential(0.016), 0.1, 3.0),
                TierSpec("db", Exponential(0.010), 0.1, 3.0),
            ),
            think_time_s=1.0,
        )

    def test_three_tier_identification_and_control(self):
        spec = self._three_tier_spec()
        ident = MultiTierApp(spec, [1.0, 1.0, 1.0], concurrency=40, rng=61)
        data = run_identification_experiment(
            ident, n_periods=180, period_s=15.0,
            alloc_lower=[0.4] * 3, alloc_upper=[0.9] * 3, rng=62,
        )
        fit = fit_arx(data.t, data.c, na=1, nb=2)
        model = fit.model
        assert model.n_inputs == 3
        assert np.all(model.b <= 0)

        plant = MultiTierApp(spec, [1.0, 1.0, 1.0], concurrency=40, rng=63)
        plant.warmup(90.0)
        ctrl = ResponseTimeController(
            model, ControllerConfig(setpoint_ms=1000.0),
            c_min=[0.2] * 3, c_max=[3.0] * 3, initial_alloc_ghz=[1.0] * 3,
        )
        rts = []
        for _ in range(50):
            stats = plant.run_period(15.0)
            alloc = ctrl.update(stats.rt_p90_ms, used_ghz=plant.used_ghz(15.0))
            plant.set_allocations(alloc)
            rts.append(stats.rt_p90_ms)
        tail = np.asarray(rts[25:])
        assert np.nanmean(tail) == pytest.approx(1000.0, rel=0.2)
