"""repro-serve end-to-end: a real server process driven by the client CLI."""

import json
import os
import signal
import subprocess
import sys

import pytest

_ENV = dict(os.environ, PYTHONPATH="src")
_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _serve_cmd(tmp_path):
    return [
        sys.executable, "-m", "repro.service.cli", "serve",
        "--db", str(tmp_path / "svc.db"),
        "--data-dir", str(tmp_path / "data"),
        "--port", "0",
        "--workers", "1",
        "--checkpoint-every", "4",
    ]


def _client(url, *argv):
    return subprocess.run(
        [sys.executable, "-m", "repro.service.cli", *argv, "--url", url],
        env=_ENV, cwd=_REPO, capture_output=True, text=True, timeout=120,
    )


@pytest.fixture
def server(tmp_path):
    proc = subprocess.Popen(
        _serve_cmd(tmp_path), env=_ENV, cwd=_REPO,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    banner = proc.stdout.readline()  # "repro-serve: listening on http://..."
    assert "listening on http://" in banner, banner
    url = banner.split("listening on ")[1].split()[0]
    yield proc, url
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()


class TestServeCli:
    def test_submit_wait_status_results(self, server):
        proc, url = server
        run = _client(url, "submit", "testbed-small", "--wait")
        assert run.returncode == 0, run.stderr
        assert "done" in run.stdout

        status = _client(url, "status")
        assert status.returncode == 0, status.stderr
        assert "1 done" in status.stdout

        results = _client(url, "results", "1")
        assert results.returncode == 0, results.stderr
        doc = json.loads(results.stdout)
        assert doc["result"]["harness"] == "testbed"
        assert doc["event_hash"]

        audit = _client(url, "results", "1", "--audit")
        report = json.loads(audit.stdout)
        assert audit.returncode == (0 if report["passed"] else 1)

        # identical resubmission is answered from the store
        again = _client(url, "submit", "testbed-small")
        assert again.returncode == 0 and "(cached)" in again.stdout

    def test_sweep_wait(self, server):
        proc, url = server
        sweep = _client(
            url, "sweep", "testbed-small",
            "--set", "params.seed=21,22",
            "--set", "params.duration_s=45.0",
            "--wait",
        )
        assert sweep.returncode == 0, sweep.stderr
        assert "2 jobs queued" in sweep.stdout
        assert "2/2 done" in sweep.stdout

    def test_sigterm_shuts_down_cleanly(self, server):
        proc, url = server
        assert _client(url, "status", "--json").returncode == 0
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=30)
        stderr = proc.stderr.read()
        assert "shutting down" in stderr
        # SystemExit(143) from the SIGTERM handler, after the graceful
        # shutdown path ran (no traceback splatter).
        assert rc == 143
        assert "Traceback" not in stderr

    def test_client_without_server_fails_helpfully(self):
        res = _client("http://127.0.0.1:9", "status")
        assert res.returncode == 1
        assert "cannot reach" in res.stderr
