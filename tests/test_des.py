"""Discrete-event kernel: scheduling, processes, PS and FCFS queues."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.des import FCFSResource, PSResource, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, log.append, "b")
        sim.schedule(1.0, log.append, "a")
        sim.schedule(3.0, log.append, "c")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_fifo_tie_break(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, 1)
        sim.schedule(1.0, log.append, 2)
        sim.run()
        assert log == [1, 2]

    def test_cancel(self):
        sim = Simulator()
        log = []
        h = sim.schedule(1.0, log.append, "x")
        h.cancel()
        sim.run()
        assert log == []

    def test_run_until_advances_clock_exactly(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_until(5.0)
        assert sim.now == 5.0

    def test_run_until_does_not_run_future_events(self):
        sim = Simulator()
        log = []
        sim.schedule(10.0, log.append, "late")
        sim.run_until(5.0)
        assert log == []
        sim.run_until(10.0)
        assert log == ["late"]

    def test_run_backwards_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(ValueError):
            sim.run_until(4.0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(ValueError):
            sim.schedule_at(4.0, lambda: None)

    def test_peek(self):
        sim = Simulator()
        assert sim.peek() == math.inf
        sim.schedule(3.0, lambda: None)
        assert sim.peek() == 3.0

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []
        def outer():
            log.append(sim.now)
            sim.schedule(1.0, inner)
        def inner():
            log.append(sim.now)
        sim.schedule(1.0, outer)
        sim.run()
        assert log == [1.0, 2.0]


class TestEventsAndProcesses:
    def test_event_succeed_delivers_value(self):
        sim = Simulator()
        got = []
        ev = sim.event()
        ev.on_success(got.append)
        ev.succeed(42)
        assert got == [42]

    def test_event_double_succeed_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(RuntimeError):
            ev.succeed()

    def test_late_subscriber_fires_immediately(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("v")
        got = []
        ev.on_success(got.append)
        assert got == ["v"]

    def test_process_yields_delays(self):
        sim = Simulator()
        log = []
        def proc():
            yield 1.5
            log.append(sim.now)
            yield 2.5
            log.append(sim.now)
        sim.process(proc())
        sim.run()
        assert log == [1.5, 4.0]

    def test_process_waits_on_event(self):
        sim = Simulator()
        ev = sim.event()
        log = []
        def waiter():
            value = yield ev
            log.append((sim.now, value))
        sim.process(waiter())
        sim.schedule(3.0, ev.succeed, "hello")
        sim.run()
        assert log == [(3.0, "hello")]

    def test_process_finished_event(self):
        sim = Simulator()
        def proc():
            yield 1.0
            return "done"
        p = sim.process(proc())
        sim.run()
        assert p.finished.triggered
        assert p.finished.value == "done"

    def test_process_invalid_delay_raises(self):
        sim = Simulator()
        def proc():
            yield -1.0
        with pytest.raises(ValueError):
            sim.process(proc())

    def test_timeout_event(self):
        sim = Simulator()
        ev = sim.timeout(2.0)
        sim.run()
        assert ev.triggered


class TestPSResource:
    def test_single_job_service_time(self):
        sim = Simulator()
        ps = PSResource(sim, capacity_ghz=2.0)
        ev = ps.submit(4.0)  # 4 GHz-s at 2 GHz -> 2 s
        sim.run()
        assert ev.triggered
        assert ev.value == pytest.approx(2.0)

    def test_two_equal_jobs_share(self):
        sim = Simulator()
        ps = PSResource(sim, capacity_ghz=1.0)
        e1 = ps.submit(1.0)
        e2 = ps.submit(1.0)
        sim.run()
        # Each progresses at 0.5 GHz; both finish at t=2.
        assert e1.value == pytest.approx(2.0)
        assert e2.value == pytest.approx(2.0)

    def test_unequal_jobs_ps_order(self):
        sim = Simulator()
        ps = PSResource(sim, capacity_ghz=1.0)
        small = ps.submit(1.0)
        big = ps.submit(3.0)
        sim.run()
        # Shared until small departs at t=2; big then has 2 left alone.
        assert small.value == pytest.approx(2.0)
        assert big.value == pytest.approx(4.0)

    def test_capacity_change_midstream(self):
        sim = Simulator()
        ps = PSResource(sim, capacity_ghz=1.0)
        ev = ps.submit(2.0)
        sim.run_until(1.0)  # 1 GHz-s done
        ps.set_capacity(2.0)
        sim.run()
        assert ev.value == pytest.approx(1.5)  # remaining 1 at 2 GHz

    def test_zero_capacity_stalls(self):
        sim = Simulator()
        ps = PSResource(sim, capacity_ghz=0.0)
        ev = ps.submit(1.0)
        sim.run_until(10.0)
        assert not ev.triggered
        ps.set_capacity(1.0)
        sim.run()
        assert ev.triggered
        assert ev.value == pytest.approx(11.0)  # stalled 10 s + 1 s service

    def test_busy_time_accounting(self):
        sim = Simulator()
        ps = PSResource(sim, capacity_ghz=2.0)
        ps.submit(4.0)
        sim.run()
        assert ps.busy_time == pytest.approx(2.0)
        assert ps.work_done == pytest.approx(4.0)
        assert ps.completed_jobs == 1

    def test_reset_counters(self):
        sim = Simulator()
        ps = PSResource(sim, capacity_ghz=2.0)
        ps.submit(4.0)
        sim.run()
        ps.reset_counters()
        assert ps.busy_time == 0.0
        assert ps.work_done == 0.0
        assert ps.completed_jobs == 0

    def test_queue_length(self):
        sim = Simulator()
        ps = PSResource(sim, capacity_ghz=1.0)
        ps.submit(5.0)
        ps.submit(5.0)
        assert ps.queue_length == 2

    def test_invalid_work_rejected(self):
        sim = Simulator()
        ps = PSResource(sim, capacity_ghz=1.0)
        with pytest.raises(ValueError):
            ps.submit(0.0)
        with pytest.raises(ValueError):
            ps.submit(math.inf)

    @settings(max_examples=20, deadline=None)
    @given(works=st.lists(st.floats(0.1, 5.0), min_size=1, max_size=8),
           capacity=st.floats(0.5, 4.0))
    def test_work_conservation(self, works, capacity):
        """Total work processed equals total work submitted."""
        sim = Simulator()
        ps = PSResource(sim, capacity)
        for w in works:
            ps.submit(w)
        sim.run()
        assert ps.work_done == pytest.approx(sum(works), rel=1e-6)
        assert ps.completed_jobs == len(works)

    @settings(max_examples=20, deadline=None)
    @given(works=st.lists(st.floats(0.1, 5.0), min_size=2, max_size=6))
    def test_ps_completion_order_by_size(self, works):
        """With simultaneous arrival, smaller jobs never finish later."""
        sim = Simulator()
        ps = PSResource(sim, 1.0)
        events = [ps.submit(w) for w in works]
        sim.run()
        finish = [ev.value for ev in events]
        order = np.argsort(works)
        sorted_finish = np.asarray(finish)[order]
        assert np.all(np.diff(sorted_finish) >= -1e-9)


class TestFCFSResource:
    def test_sequential_service(self):
        sim = Simulator()
        q = FCFSResource(sim, capacity_ghz=1.0)
        e1 = q.submit(2.0)
        e2 = q.submit(1.0)
        sim.run()
        assert e1.value == pytest.approx(2.0)
        assert e2.value == pytest.approx(3.0)  # waits 2, serves 1

    def test_capacity_change_affects_in_service_job(self):
        sim = Simulator()
        q = FCFSResource(sim, capacity_ghz=1.0)
        ev = q.submit(4.0)
        sim.run_until(2.0)
        q.set_capacity(2.0)
        sim.run()
        assert ev.value == pytest.approx(3.0)  # 2s at 1GHz + 1s at 2GHz

    def test_queue_length_counts_in_service(self):
        sim = Simulator()
        q = FCFSResource(sim, capacity_ghz=1.0)
        q.submit(5.0)
        q.submit(5.0)
        assert q.queue_length == 2

    def test_work_conservation(self):
        sim = Simulator()
        q = FCFSResource(sim, 1.5)
        works = [1.0, 2.0, 0.5]
        for w in works:
            q.submit(w)
        sim.run()
        assert q.work_done == pytest.approx(sum(works))
        assert q.completed_jobs == 3

    def test_mm1_mean_sojourn_close_to_theory(self):
        """M/M/1 at rho=0.7: mean sojourn ~ s/(1-rho)."""
        sim = Simulator()
        rng = np.random.default_rng(9)
        service_mean = 0.7  # GHz-s at 1 GHz
        q = FCFSResource(sim, capacity_ghz=1.0)
        sojourns = []
        n = 4000
        t = 0.0
        for _ in range(n):
            t += rng.exponential(1.0)  # lambda = 1
            sim.schedule_at(t, lambda: sojourns.append(
                q.submit(rng.exponential(service_mean))))
        sim.run()
        values = [ev.value for ev in sojourns if ev.triggered]
        mean = np.mean(values)
        theory = service_mean / (1 - 0.7)
        assert mean == pytest.approx(theory, rel=0.15)


class TestProcessInterrupt:
    def test_interrupt_stops_process(self):
        sim = Simulator()
        log = []

        def proc():
            yield 1.0
            log.append("a")
            yield 1.0
            log.append("b")

        p = sim.process(proc())
        sim.run_until(1.5)
        p.interrupt()
        sim.run()
        assert log == ["a"]
        assert not p.finished.triggered

    def test_interrupted_process_never_finishes(self):
        sim = Simulator()

        def proc():
            yield 10.0
            return "done"

        p = sim.process(proc())
        p.interrupt()
        sim.run()
        assert not p.finished.triggered

    def test_two_processes_share_clock(self):
        sim = Simulator()
        log = []

        def maker(tag, delay):
            def proc():
                for _ in range(3):
                    yield delay
                    log.append((tag, sim.now))
            return proc

        sim.process(maker("fast", 1.0)())
        sim.process(maker("slow", 2.5)())
        sim.run()
        assert log == [
            ("fast", 1.0), ("fast", 2.0), ("slow", 2.5),
            ("fast", 3.0), ("slow", 5.0), ("slow", 7.5),
        ]

    def test_capacity_change_during_empty_queue(self):
        sim = Simulator()
        ps = PSResource(sim, 1.0)
        ps.set_capacity(2.0)  # no jobs: must not schedule anything
        assert sim.peek() == math.inf
        ev = ps.submit(2.0)
        sim.run()
        assert ev.value == pytest.approx(1.0)

    def test_many_simultaneous_submissions(self):
        sim = Simulator()
        ps = PSResource(sim, 10.0)
        events = [ps.submit(1.0) for _ in range(100)]
        sim.run()
        # All equal jobs sharing 10 GHz: each sees rate 0.1 GHz -> 10 s.
        for ev in events:
            assert ev.value == pytest.approx(10.0, rel=1e-6)


class TestHeapCompaction:
    """Lazy cancellation: stale handles are counted, then purged in bulk."""

    def test_live_and_total_counts(self):
        sim = Simulator()
        handles = [sim.schedule(1.0 + i, lambda: None) for i in range(10)]
        assert sim.heap_size == 10
        assert sim.live_event_count == 10
        for h in handles[:4]:
            h.cancel()
        assert sim.heap_size == 10  # lazy: entries linger until compaction
        assert sim.live_event_count == 6

    def test_double_cancel_counted_once(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h.cancel()
        h.cancel()
        assert sim.live_event_count == 1

    def test_compaction_purges_stale_entries(self):
        sim = Simulator()
        handles = [sim.schedule(1.0 + i, lambda: None) for i in range(200)]
        for h in handles[:150]:
            h.cancel()
        assert sim.heap_size == 200  # threshold only checked on schedule
        sim.schedule(500.0, lambda: None)  # 201st push triggers compaction
        assert sim.live_event_count == 51
        assert sim.heap_size == 51  # stale entries physically removed

    def test_compaction_deferred_while_live_majority(self):
        sim = Simulator()
        handles = [sim.schedule(1.0 + i, lambda: None) for i in range(200)]
        # More than COMPACT_MIN cancelled, but live entries still dominate:
        # compaction would be wasted work and must not run.
        for h in handles[: Simulator.COMPACT_MIN + 6]:
            h.cancel()
        sim.schedule(500.0, lambda: None)
        assert sim.heap_size == 201
        assert sim.live_event_count == 201 - (Simulator.COMPACT_MIN + 6)

    def test_dispatch_order_survives_compaction(self):
        sim = Simulator()
        log = []
        survivors = []
        handles = [sim.schedule(1.0 + i, log.append, i) for i in range(200)]
        for i, h in enumerate(handles):
            if i % 4 == 0:
                survivors.append(i)
            else:
                h.cancel()  # 150 of 200 cancelled
        sim.schedule(500.0, log.append, "last")  # compacts here
        assert sim.heap_size == sim.live_event_count
        sim.run()
        assert log == survivors + ["last"]

    def test_pop_of_cancelled_entry_decrements_counter(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h.cancel()
        sim.run()
        assert sim.heap_size == 0
        assert sim.live_event_count == 0


class TestBatchDispatch:
    """Same-timestamp runs are dispatched as a batch inside run_until."""

    def test_nested_zero_delay_fires_in_same_batch(self):
        sim = Simulator()
        log = []

        def first():
            log.append(("first", sim.now))
            sim.schedule(0.0, nested)

        def second():
            log.append(("second", sim.now))

        def nested():
            log.append(("nested", sim.now))

        sim.schedule(1.0, first)
        sim.schedule(1.0, second)
        sim.run_until(1.0)
        # FIFO within the timestamp; the zero-delay cascade still lands
        # at t=1.0 and runs before run_until returns.
        assert log == [("first", 1.0), ("second", 1.0), ("nested", 1.0)]
        assert sim.now == 1.0

    def test_cancel_within_batch_respected(self):
        sim = Simulator()
        log = []
        handles = {}

        def first():
            log.append("first")
            handles["b"].cancel()

        sim.schedule(1.0, first)
        handles["b"] = sim.schedule(1.0, log.append, "b")
        sim.schedule(1.0, log.append, "c")
        sim.run_until(2.0)
        assert log == ["first", "c"]

    def test_batch_does_not_cross_timestamps(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(sim.now))
        sim.schedule(1.0, lambda: seen.append(sim.now))
        sim.schedule(2.0, lambda: seen.append(sim.now))
        sim.run_until(5.0)
        assert seen == [1.0, 1.0, 2.0]
