"""The HTTP API: submit/poll/fetch over a real socket, errors, streaming."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.service.api import ControlPlaneService, ServiceConfig

# Same pin as tests/test_scenarios.py.
_TB_SMALL_SHA = "a4ae4a9006785b8e0898af5df2bc1ff973350d82380b8d0b5be7c122018478fc"


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("service")
    svc = ControlPlaneService(ServiceConfig(
        db_path=str(tmp / "svc.db"),
        data_dir=str(tmp / "data"),
        port=0,  # bind an ephemeral port
        workers=2,
        checkpoint_every=4,
        poll_interval_s=0.02,
    ))
    svc.start()
    yield svc
    svc.shutdown()


def _call(service, method, path, body=None, timeout=30):
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(service.url + path, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read() or b"null")


def _call_error(service, method, path, body=None):
    try:
        _call(service, method, path, body)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())
    raise AssertionError(f"{method} {path} unexpectedly succeeded")


def _await_run(service, run_id, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        _, doc = _call(service, "GET", f"/api/runs/{run_id}")
        if doc["status"] in ("done", "failed", "cancelled"):
            return doc
        time.sleep(0.05)
    raise AssertionError(f"run {run_id} still {doc['status']}")


class TestBasics:
    def test_health(self, service):
        status, doc = _call(service, "GET", "/api/health")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["workers"] == 2
        assert set(doc["runs"]) == {"queued", "running", "cancelling",
                                    "done", "failed", "cancelled"}

    def test_scenarios_listing_and_detail(self, service):
        _, listing = _call(service, "GET", "/api/scenarios")
        names = [s["name"] for s in listing]
        assert "testbed-small" in names
        _, spec = _call(service, "GET", "/api/scenarios/testbed-small")
        assert spec["harness"] == "testbed"
        code, err = _call_error(service, "GET", "/api/scenarios/nope")
        assert code == 404 and "unknown scenario" in err["error"]

    def test_unknown_route_is_404(self, service):
        code, _ = _call_error(service, "GET", "/api/bogus")
        assert code == 404


class TestSubmitToResult:
    def test_full_lifecycle_and_golden_hash(self, service):
        status, doc = _call(service, "POST", "/api/runs",
                            {"scenario": "testbed-small"})
        assert status == 201 and doc["cached"] is False
        run_id = doc["run"]["id"]

        final = _await_run(service, run_id)
        assert final["status"] == "done", final["error"]
        assert final["event_hash"] == _TB_SMALL_SHA
        assert final["n_events"] == 25

        _, res = _call(service, "GET", f"/api/runs/{run_id}/result")
        assert res["event_hash"] == _TB_SMALL_SHA
        assert res["result"]["harness"] == "testbed"

        _, audit = _call(service, "GET", f"/api/runs/{run_id}/audit")
        assert audit["run_id"] == run_id
        assert "slo" in audit["report"]

        _, cps = _call(service, "GET", f"/api/runs/{run_id}/checkpoints")
        assert [c["period"] for c in cps] == [4, 8]

        # identical resubmission is served from the store
        _, again = _call(service, "POST", "/api/runs",
                         {"scenario": "testbed-small"})
        assert again["cached"] is True and again["run"]["id"] == run_id

        # force bypasses the cache
        _, forced = _call(service, "POST", "/api/runs",
                          {"scenario": "testbed-small", "force": True})
        assert forced["cached"] is False
        assert forced["run"]["id"] != run_id
        assert _await_run(service, forced["run"]["id"])["event_hash"] \
            == _TB_SMALL_SHA

    def test_submit_with_overrides_and_inline_spec(self, service):
        _, spec = _call(service, "GET", "/api/scenarios/testbed-small")
        _, a = _call(service, "POST", "/api/runs", {
            "scenario": "testbed-small", "overrides": {"params.seed": 123},
        })
        _, b = _call(service, "POST", "/api/runs", {"spec": spec})
        # distinct specs -> distinct runs; identical spec -> cached
        assert a["run"]["spec_hash"] != b["run"]["spec_hash"]
        assert b["cached"] is True or b["run"]["status"] in (
            "queued", "running", "done"
        )

    def test_events_endpoint_serves_the_log(self, service):
        _, doc = _call(service, "POST", "/api/runs",
                       {"scenario": "testbed-small"})
        run_id = doc["run"]["id"]
        _await_run(service, run_id)
        req = urllib.request.Request(
            f"{service.url}/api/runs/{run_id}/events"
        )
        with urllib.request.urlopen(req, timeout=30) as resp:
            assert resp.headers["Content-Type"].startswith(
                "application/x-ndjson"
            )
            lines = [ln for ln in resp.read().decode().splitlines() if ln]
        records = [json.loads(ln) for ln in lines]
        kinds = {r.get("kind") for r in records}
        assert "control_period" in kinds and "run_config" in kinds

    def test_events_follow_streams_to_completion(self, service):
        _, doc = _call(service, "POST", "/api/runs", {
            "scenario": "testbed-small", "force": True,
        })
        run_id = doc["run"]["id"]
        # wait for the log to exist, then stream the rest live
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            _, run = _call(service, "GET", f"/api/runs/{run_id}")
            if run["event_log"]:
                break
            time.sleep(0.05)
        req = urllib.request.Request(
            f"{service.url}/api/runs/{run_id}/events?follow=1&timeout=30"
        )
        with urllib.request.urlopen(req, timeout=60) as resp:
            lines = [ln for ln in resp.read().decode().splitlines() if ln]
        assert len(lines) > 0
        assert _await_run(service, run_id)["status"] == "done"


class TestErrors:
    def test_submit_unknown_scenario_404(self, service):
        code, err = _call_error(service, "POST", "/api/runs",
                                {"scenario": "nope"})
        assert code == 404 and "unknown scenario" in err["error"]

    def test_submit_bad_override_path_400(self, service):
        code, err = _call_error(service, "POST", "/api/runs", {
            "scenario": "testbed-small",
            "overrides": {"params.bogus.deep": 1},
        })
        assert code == 400 and "does not exist" in err["error"]

    def test_submit_invalid_spec_400(self, service):
        code, err = _call_error(service, "POST", "/api/runs", {
            "spec": {"name": "x", "harness": "hovercraft"},
        })
        assert code == 400

    def test_submit_no_scenario_or_spec_400(self, service):
        code, err = _call_error(service, "POST", "/api/runs", {})
        assert code == 400 and "scenario" in err["error"]

    def test_result_of_unfinished_run_409(self, service):
        _, doc = _call(service, "POST", "/api/runs", {
            "scenario": "testbed-small",
            "overrides": {"params.duration_s": 3600.0},
        })
        run_id = doc["run"]["id"]
        code, err = _call_error(service, "GET", f"/api/runs/{run_id}/result")
        assert code == 409 and "not done" in err["error"]
        _call(service, "POST", f"/api/runs/{run_id}/cancel")

    def test_unknown_run_404(self, service):
        code, _ = _call_error(service, "GET", "/api/runs/99999")
        assert code == 404

    def test_bad_json_body_400(self, service):
        req = urllib.request.Request(
            service.url + "/api/runs", data=b"{not json", method="POST"
        )
        req.add_header("Content-Length", "9")
        try:
            urllib.request.urlopen(req, timeout=10)
            raise AssertionError("unexpectedly succeeded")
        except urllib.error.HTTPError as exc:
            assert exc.code == 400


class TestSweepAndMetrics:
    def test_sweep_submit_and_progress(self, service):
        status, doc = _call(service, "POST", "/api/sweeps", {
            "scenario": "testbed-small",
            "name": "api-sweep",
            "grid": {"params.seed": [11, 12, 13],
                     "params.duration_s": [45.0]},
        })
        assert status == 201
        assert doc["sweep"]["n_jobs"] == 3
        assert len(doc["run_ids"]) == 3
        for run_id in doc["run_ids"]:
            assert _await_run(service, run_id)["status"] == "done"
        _, sweep = _call(service, "GET", f"/api/sweeps/{doc['sweep']['id']}")
        assert sweep["runs"]["done"] == 3
        assert sweep["grid"]["params.seed"] == [11, 12, 13]
        _, sweeps = _call(service, "GET", "/api/sweeps")
        assert any(s["name"] == "api-sweep" for s in sweeps)

    def test_sweep_too_big_400(self, service):
        code, err = _call_error(service, "POST", "/api/sweeps", {
            "scenario": "testbed-small",
            "grid": {"params.seed": list(range(5000))},
        })
        assert code == 400 and "limit" in err["error"]

    def test_metrics_exposition(self, service):
        with urllib.request.urlopen(service.url + "/metrics", timeout=10) as r:
            text = r.read().decode()
        assert 'repro_service_runs_total{status="done"}' in text
        assert "repro_service_workers 2" in text
        assert "repro_service_uptime_seconds" in text


class TestCancelRoute:
    def test_cancel_queued_run(self, service):
        _, doc = _call(service, "POST", "/api/runs", {
            "scenario": "testbed-small",
            "overrides": {"params.duration_s": 7200.0},
        })
        run_id = doc["run"]["id"]
        _, cancelled = _call(service, "POST", f"/api/runs/{run_id}/cancel")
        assert cancelled["run"]["status"] in ("cancelled", "cancelling")
        final = _await_run(service, run_id, timeout_s=60.0)
        assert final["status"] == "cancelled"
