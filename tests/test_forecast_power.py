"""Forecasting and measured power curves; provisioning integration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import MeasuredPowerCurve, Server, ServerSpec
from repro.cluster.server import CPUSpec
from repro.traces import EwmaPeakForecaster, HoltForecaster


class TestMeasuredPowerCurve:
    def _curve(self):
        return MeasuredPowerCurve(
            load_points=(0.0, 0.5, 1.0),
            watts=(100.0, 170.0, 200.0),
            sleep_w=8.0,
        )

    def test_endpoints(self):
        c = self._curve()
        assert c.idle_w == 100.0
        assert c.busy_w == 200.0
        assert c.active_power_w(1.0, 0.0) == pytest.approx(100.0)
        assert c.active_power_w(1.0, 1.0) == pytest.approx(200.0)

    def test_interpolation(self):
        c = self._curve()
        assert c.active_power_w(1.0, 0.25) == pytest.approx(135.0)
        assert c.active_power_w(1.0, 0.75) == pytest.approx(185.0)

    def test_concavity_beats_linear_midload(self):
        """The SPEC-like curve draws more at mid load than a linear model
        with the same endpoints — the realism it adds."""
        spec = MeasuredPowerCurve.spec2008_like(200.0)
        linear_mid = spec.idle_w + (spec.busy_w - spec.idle_w) * 0.5
        assert spec.active_power_w(1.0, 0.5) > linear_mid

    def test_dvfs_scaling(self):
        c = self._curve()
        assert c.active_power_w(0.5, 0.8) < c.active_power_w(1.0, 0.8)

    def test_usable_in_server_spec(self):
        """Duck-typing contract: a ServerSpec accepts the measured curve."""
        spec = ServerSpec(
            name="measured",
            cpu=CPUSpec("c", 2, (1.0, 2.0)),
            memory_mb=4096,
            power=MeasuredPowerCurve.spec2008_like(180.0),
        )
        server = Server("s", spec)
        assert spec.power_efficiency == pytest.approx(4.0 / 180.0)
        p_busy = server.power_w(4.0)
        p_idle = server.power_w(0.0)
        assert p_idle < p_busy <= 180.0 + 1e-9
        server.sleep()
        assert server.power_w(0.0) == 8.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MeasuredPowerCurve((0.0, 1.0), (100.0,), 5.0)
        with pytest.raises(ValueError):
            MeasuredPowerCurve((0.1, 1.0), (100.0, 200.0), 5.0)
        with pytest.raises(ValueError):
            MeasuredPowerCurve((0.0, 1.0), (200.0, 100.0), 5.0)
        with pytest.raises(ValueError):
            MeasuredPowerCurve((0.0, 1.0), (100.0, 200.0), 500.0)

    @settings(max_examples=20, deadline=None)
    @given(util=st.floats(0.0, 1.0), ratio=st.floats(0.3, 1.0))
    def test_within_envelope(self, util, ratio):
        c = MeasuredPowerCurve.spec2008_like(250.0)
        p = c.active_power_w(ratio, util)
        assert 0.0 < p <= 250.0 + 1e-9


class TestForecasters:
    def test_ewma_tracks_constant(self):
        f = EwmaPeakForecaster(3)
        for _ in range(50):
            f.update(np.array([1.0, 2.0, 0.5]))
        np.testing.assert_allclose(f.forecast_peak(4), [1.0, 2.0, 0.5], atol=1e-6)

    def test_ewma_peak_covers_bursts(self):
        """A bursty series' forecast sits above its baseline level."""
        f = EwmaPeakForecaster(1)
        base = 1.0
        for k in range(300):
            burst = 1.0 if k % 10 == 0 else 0.0
            f.update(np.array([base + burst]))
        flat = EwmaPeakForecaster(1)
        for _ in range(300):
            flat.update(np.array([base]))
        assert f.forecast_peak(4)[0] > flat.forecast_peak(4)[0] + 0.05

    def test_holt_extrapolates_trend(self):
        f = HoltForecaster(1, alpha=0.5, beta=0.3)
        for k in range(60):
            f.update(np.array([1.0 + 0.01 * k]))
        current = 1.0 + 0.01 * 59
        assert f.forecast_peak(16)[0] > current

    def test_holt_falling_series_forecast_not_below_zero(self):
        f = HoltForecaster(1)
        for k in range(40):
            f.update(np.array([max(1.0 - 0.05 * k, 0.0)]))
        assert f.forecast_peak(8)[0] >= 0.0

    def test_shape_checked(self):
        f = EwmaPeakForecaster(2)
        with pytest.raises(ValueError):
            f.update(np.array([1.0]))
        with pytest.raises(ValueError):
            f.forecast_peak(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EwmaPeakForecaster(0)
        with pytest.raises(ValueError):
            HoltForecaster(1, alpha=0.0)

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_forecast_non_negative(self, data):
        n = data.draw(st.integers(1, 5))
        cls = data.draw(st.sampled_from([EwmaPeakForecaster, HoltForecaster]))
        f = cls(n)
        rng = np.random.default_rng(data.draw(st.integers(0, 1000)))
        for _ in range(30):
            f.update(rng.uniform(0, 2.0, size=n))
        assert np.all(f.forecast_peak(8) >= 0.0)


class TestProvisioningIntegration:
    @pytest.fixture(scope="class")
    def trace(self):
        from repro.traces import TraceConfig, generate_trace
        return generate_trace(
            TraceConfig(n_servers=120, n_days=2, spike_probability=0.005), rng=21
        )

    def test_forecast_reduces_overloads(self, trace):
        from repro.sim.largescale import LargeScaleConfig, run_largescale
        base = dict(n_vms=120, n_servers=200, scheme="ipac", seed=5)
        current = run_largescale(trace, LargeScaleConfig(provisioning="current", **base))
        forecast = run_largescale(trace, LargeScaleConfig(provisioning="ewma_peak", **base))
        assert forecast.overload_server_steps <= current.overload_server_steps
        assert forecast.energy_per_vm_wh <= current.energy_per_vm_wh * 1.15

    def test_static_peak_baseline(self, trace):
        from repro.sim.largescale import LargeScaleConfig, run_largescale
        base = dict(n_vms=120, n_servers=200, seed=5)
        static = run_largescale(trace, LargeScaleConfig(scheme="static_peak", **base))
        ipac_res = run_largescale(trace, LargeScaleConfig(scheme="ipac", **base))
        # The no-reconfiguration baseline never migrates, never overloads,
        # and burns noticeably more energy than IPAC.
        assert static.migrations == 0
        assert static.overload_server_steps == 0
        assert static.energy_per_vm_wh > ipac_res.energy_per_vm_wh
