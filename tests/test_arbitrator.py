"""Server-level CPU resource arbitrator with DVFS."""

import pytest

from repro.cluster.catalog import SERVER_TYPE_A, SERVER_TYPE_B
from repro.cluster.server import Server
from repro.core.arbitrator import CPUResourceArbitrator


class TestArbitrator:
    def test_grants_demands_when_capacity_suffices(self):
        server = Server("s", SERVER_TYPE_A)  # quad 3.0 -> 12 GHz max
        arb = CPUResourceArbitrator(headroom=1.0)
        result = arb.arbitrate(server, {"v1": 2.0, "v2": 1.0})
        assert result.allocations_ghz == {"v1": 2.0, "v2": 1.0}
        assert not result.overloaded

    def test_picks_lowest_sufficient_frequency(self):
        server = Server("s", SERVER_TYPE_A)  # levels 1.5/2.0/2.5/3.0 x4 cores
        arb = CPUResourceArbitrator(headroom=1.0)
        result = arb.arbitrate(server, {"v1": 5.5})  # needs 5.5 -> 1.5*4=6 ok
        assert result.freq_ghz == 1.5
        assert server.freq_ghz == 1.5
        result = arb.arbitrate(server, {"v1": 6.5})  # needs 2.0 level (8)
        assert result.freq_ghz == 2.0

    def test_headroom_raises_frequency(self):
        server = Server("s", SERVER_TYPE_A)
        arb = CPUResourceArbitrator(headroom=0.5)  # need capacity >= 2x demand
        result = arb.arbitrate(server, {"v1": 5.0})  # 10 needed -> 2.5 level
        assert result.freq_ghz == 2.5

    def test_zero_demand_drops_to_lowest_level(self):
        server = Server("s", SERVER_TYPE_A)
        arb = CPUResourceArbitrator()
        result = arb.arbitrate(server, {"v1": 0.0})
        assert result.freq_ghz == SERVER_TYPE_A.cpu.min_freq_ghz
        assert result.allocations_ghz["v1"] == 0.0

    def test_overload_rations_proportionally(self):
        server = Server("s", SERVER_TYPE_B)  # 4 GHz max
        arb = CPUResourceArbitrator(headroom=1.0)
        result = arb.arbitrate(server, {"v1": 4.0, "v2": 2.0})
        assert result.overloaded
        assert result.freq_ghz == SERVER_TYPE_B.cpu.max_freq_ghz
        total = sum(result.allocations_ghz.values())
        assert total == pytest.approx(4.0)
        # 2:1 ratio preserved.
        assert result.allocations_ghz["v1"] == pytest.approx(2 * result.allocations_ghz["v2"])

    def test_sleeping_server_rejected(self):
        server = Server("s", SERVER_TYPE_A, active=False)
        with pytest.raises(ValueError):
            CPUResourceArbitrator().arbitrate(server, {"v1": 1.0})

    def test_negative_demand_rejected(self):
        server = Server("s", SERVER_TYPE_A)
        with pytest.raises(ValueError):
            CPUResourceArbitrator().arbitrate(server, {"v1": -1.0})

    def test_headroom_validation(self):
        with pytest.raises(ValueError):
            CPUResourceArbitrator(headroom=0.0)
        with pytest.raises(ValueError):
            CPUResourceArbitrator(headroom=1.5)

    def test_empty_demands(self):
        server = Server("s", SERVER_TYPE_A)
        result = CPUResourceArbitrator().arbitrate(server, {})
        assert result.total_demand_ghz == 0.0
        assert result.allocations_ghz == {}
