"""MPC core: tracking, constraints, terminal handling, closed loop."""

import numpy as np
import pytest

from repro.control.arx import ARXModel
from repro.control.mpc_core import MPCConfig, MPCController
from repro.control.stability import closed_loop_converges
from repro.core.controller.reference import exponential_reference


def _ref_fn(setpoint, P=8, period=15.0, tref=15.0):
    def fn(t_k):
        return exponential_reference(t_k, setpoint, P, period, tref)
    return fn


class TestConfigValidation:
    def test_horizon_ordering(self):
        with pytest.raises(ValueError):
            MPCConfig(prediction_horizon=2, control_horizon=3)

    def test_positive_weights(self):
        with pytest.raises(ValueError):
            MPCConfig(q_weight=0.0)
        with pytest.raises(ValueError):
            MPCConfig(r_weight=-1.0)

    def test_delta_max_positive(self):
        with pytest.raises(ValueError):
            MPCConfig(delta_max=0.0)

    def test_power_weight_non_negative(self):
        with pytest.raises(ValueError):
            MPCConfig(power_weight=-1.0)

    def test_r_weight_vector_wrong_length(self, simple_arx):
        with pytest.raises(ValueError):
            MPCController(simple_arx, MPCConfig(r_weight=[1.0, 2.0, 3.0]))


class TestSolve:
    def test_at_setpoint_does_nothing(self, simple_arx):
        """At steady state on the set point, the input change is ~0."""
        # Steady state: t = (g + sum(b) c) / (1 - a); choose c so t = Ts.
        c = np.array([0.6, 0.6])
        ts = float((simple_arx.g + simple_arx.b.sum(axis=0) @ c) / (1 - simple_arx.a.sum()))
        ctrl = MPCController(simple_arx, MPCConfig(r_weight=1e4))
        ref = np.full(8, ts)
        sol = ctrl.solve([ts], np.tile(c, (2, 1)), ref, ts, [0.1, 0.1], [3.0, 3.0])
        np.testing.assert_allclose(sol.delta_c, 0.0, atol=1e-6)

    def test_high_rt_increases_allocation(self, simple_arx):
        ctrl = MPCController(simple_arx, MPCConfig(r_weight=1e4))
        c = np.array([0.6, 0.6])
        ref = exponential_reference(2500.0, 1000.0, 8, 15.0, 15.0)
        sol = ctrl.solve([2500.0], np.tile(c, (2, 1)), ref, 1000.0, [0.1, 0.1], [3.0, 3.0])
        assert sol.delta_c.sum() > 0  # negative gains: more CPU lowers RT

    def test_low_rt_decreases_allocation(self, simple_arx):
        ctrl = MPCController(simple_arx, MPCConfig(r_weight=1e4))
        c = np.array([1.5, 1.5])
        ref = exponential_reference(300.0, 1000.0, 8, 15.0, 15.0)
        sol = ctrl.solve([300.0], np.tile(c, (2, 1)), ref, 1000.0, [0.1, 0.1], [3.0, 3.0])
        assert sol.delta_c.sum() < 0

    def test_bounds_respected(self, simple_arx):
        ctrl = MPCController(simple_arx, MPCConfig(r_weight=1.0))
        c = np.array([0.15, 0.15])
        ref = exponential_reference(3000.0, 100.0, 8, 15.0, 15.0)
        sol = ctrl.solve([3000.0], np.tile(c, (2, 1)), ref, 100.0, [0.1, 0.1], [0.3, 0.3])
        new_c = c + sol.input_trajectory.cumsum(axis=0)
        assert np.all(new_c <= 0.3 + 1e-5)
        assert np.all(new_c >= 0.1 - 1e-5)

    def test_rate_limit_respected(self, simple_arx):
        ctrl = MPCController(simple_arx, MPCConfig(r_weight=1.0, delta_max=0.05))
        c = np.array([0.5, 0.5])
        ref = exponential_reference(3000.0, 500.0, 8, 15.0, 15.0)
        sol = ctrl.solve([3000.0], np.tile(c, (2, 1)), ref, 500.0, [0.1, 0.1], [3.0, 3.0])
        assert np.all(np.abs(sol.input_trajectory) <= 0.05 + 1e-5)

    def test_terminal_constraint_hit_when_feasible(self, simple_arx):
        cfg = MPCConfig(r_weight=1.0, terminal_constraint=True)
        ctrl = MPCController(simple_arx, cfg)
        c = np.array([0.8, 0.8])
        ref = exponential_reference(1500.0, 1000.0, 8, 15.0, 15.0)
        sol = ctrl.solve([1500.0], np.tile(c, (2, 1)), ref, 1000.0, [0.1, 0.1], [3.0, 3.0])
        assert not sol.terminal_softened
        # Predicted output at the control horizon equals the set point.
        assert sol.predicted_outputs[cfg.control_horizon - 1] == pytest.approx(1000.0, abs=1e-5)

    def test_terminal_softens_when_unreachable(self, simple_arx):
        """A tiny rate limit makes the hard terminal equality infeasible."""
        cfg = MPCConfig(r_weight=1.0, terminal_constraint=True, delta_max=0.01)
        ctrl = MPCController(simple_arx, cfg)
        c = np.array([0.5, 0.5])
        ref = exponential_reference(3000.0, 500.0, 8, 15.0, 15.0)
        sol = ctrl.solve([3000.0], np.tile(c, (2, 1)), ref, 500.0, [0.1, 0.1], [3.0, 3.0])
        assert sol.terminal_softened
        assert np.all(np.abs(sol.input_trajectory) <= 0.01 + 1e-5)

    def test_total_cap_enforced(self, simple_arx):
        ctrl = MPCController(simple_arx, MPCConfig(r_weight=1.0))
        c = np.array([0.5, 0.5])
        ref = exponential_reference(3000.0, 200.0, 8, 15.0, 15.0)
        sol = ctrl.solve(
            [3000.0], np.tile(c, (2, 1)), ref, 200.0,
            [0.1, 0.1], [3.0, 3.0], total_cap_ghz=1.4,
        )
        new_c = c + sol.input_trajectory.cumsum(axis=0)
        assert np.all(new_c.sum(axis=1) <= 1.4 + 1e-7)

    def test_output_bias_shifts_predictions(self, simple_arx):
        ctrl = MPCController(simple_arx, MPCConfig(r_weight=1e4, terminal_constraint=False))
        c = np.tile([0.6, 0.6], (2, 1))
        ref = np.full(8, 1000.0)
        s0 = ctrl.solve([1000.0], c, ref, 1000.0, [0.1, 0.1], [3.0, 3.0], output_bias=0.0)
        s1 = ctrl.solve([1000.0], c, ref, 1000.0, [0.1, 0.1], [3.0, 3.0], output_bias=500.0)
        # Positive bias means "plant is slower than modeled" -> allocate more.
        assert s1.delta_c.sum() > s0.delta_c.sum()

    def test_power_weight_drains_excess(self, simple_arx):
        """With tracking satisfied and no terminal pin, a positive power
        weight pushes allocations down."""
        cfg = MPCConfig(r_weight=1e4, terminal_constraint=False, power_weight=500.0)
        ctrl = MPCController(simple_arx, cfg)
        c = np.array([0.6, 0.6])
        ts = float((simple_arx.g + simple_arx.b.sum(axis=0) @ c) / (1 - simple_arx.a.sum()))
        ref = np.full(8, ts)
        sol = ctrl.solve([ts], np.tile(c, (2, 1)), ref, ts, [0.1, 0.1], [3.0, 3.0])
        assert sol.delta_c.sum() < 0

    def test_reference_length_checked(self, simple_arx):
        ctrl = MPCController(simple_arx, MPCConfig())
        with pytest.raises(ValueError):
            ctrl.solve([1000.0], np.ones((2, 2)), np.ones(3), 1000.0, [0.1, 0.1], [3.0, 3.0])


class TestClosedLoop:
    def test_converges_from_above(self, simple_arx):
        ctrl = MPCController(simple_arx, MPCConfig(r_weight=1e4))
        assert closed_loop_converges(
            simple_arx, ctrl, setpoint=1000.0, t_initial=2200.0,
            c_initial=[0.4, 0.4], c_min=[0.1, 0.1], c_max=[3.0, 3.0],
            reference_fn=_ref_fn(1000.0),
        )

    def test_converges_from_below(self, simple_arx):
        ctrl = MPCController(simple_arx, MPCConfig(r_weight=1e4))
        assert closed_loop_converges(
            simple_arx, ctrl, setpoint=1000.0, t_initial=300.0,
            c_initial=[1.5, 1.5], c_min=[0.1, 0.1], c_max=[3.0, 3.0],
            reference_fn=_ref_fn(1000.0),
        )

    def test_raw_mpc_has_offset_under_model_mismatch(self, simple_arx):
        """Without the disturbance estimate, coefficient mismatch leaves a
        steady-state offset — the motivation for the bias correction."""
        perturbed = ARXModel(a=simple_arx.a * 0.7, b=simple_arx.b * 1.6, g=simple_arx.g)
        ctrl = MPCController(perturbed, MPCConfig(r_weight=1e4))
        assert not closed_loop_converges(
            simple_arx, ctrl, setpoint=1000.0, t_initial=2000.0,
            c_initial=[0.4, 0.4], c_min=[0.1, 0.1], c_max=[3.0, 3.0],
            reference_fn=_ref_fn(1000.0), n_steps=80, tol=0.05,
        )

    def test_bias_correction_removes_mismatch_offset(self, simple_arx):
        """The full response-time controller (offset-free MPC) shrinks the
        mismatch offset to a few percent — the raw MPC above sits ~80%
        away.  (A constant output-disturbance estimate cannot null the
        offset exactly when the autoregressive coefficient is wrong.)"""
        from repro.core.controller import ControllerConfig, ResponseTimeController

        perturbed = ARXModel(a=simple_arx.a * 0.7, b=simple_arx.b * 1.6, g=simple_arx.g)
        ctrl = ResponseTimeController(
            perturbed,
            ControllerConfig(
                setpoint_ms=1000.0,
                util_band=None,
                mpc=MPCConfig(r_weight=1e5, delta_max=0.3, power_weight=0.0),
            ),
            c_min=[0.1, 0.1], c_max=[3.0, 3.0], initial_alloc_ghz=[0.4, 0.4],
        )
        t_hist = [2000.0]
        c_hist = [np.array([0.4, 0.4])] * 2
        t_k = 2000.0
        for _ in range(80):
            c_next = ctrl.update(t_k)
            c_hist.insert(0, c_next)
            c_hist = c_hist[:2]
            t_k = simple_arx.one_step(t_hist, np.asarray(c_hist))
            t_hist = [t_k]
        assert t_k == pytest.approx(1000.0, rel=0.08)


class TestReferenceTrajectory:
    def test_starts_near_measurement_and_ends_at_setpoint(self):
        ref = exponential_reference(2000.0, 1000.0, 50, 15.0, 30.0)
        assert 1000.0 < ref[0] < 2000.0
        assert ref[-1] == pytest.approx(1000.0, abs=1.0)

    def test_monotone_approach(self):
        ref = exponential_reference(2000.0, 1000.0, 20, 15.0, 30.0)
        assert np.all(np.diff(ref) < 0)
        ref_up = exponential_reference(500.0, 1000.0, 20, 15.0, 30.0)
        assert np.all(np.diff(ref_up) > 0)

    def test_time_constant_controls_speed(self):
        fast = exponential_reference(2000.0, 1000.0, 5, 15.0, 10.0)
        slow = exponential_reference(2000.0, 1000.0, 5, 15.0, 100.0)
        assert fast[0] < slow[0]

    def test_at_setpoint_flat(self):
        ref = exponential_reference(1000.0, 1000.0, 5, 15.0, 30.0)
        np.testing.assert_allclose(ref, 1000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            exponential_reference(1.0, 1.0, 0, 15.0, 30.0)
        with pytest.raises(ValueError):
            exponential_reference(1.0, 1.0, 5, -1.0, 30.0)
