"""Request-path tracing and per-tier/per-VM energy attribution.

Pins the two guarantees the observability layer makes:

* **No perturbation** — enabling request tracing and power attribution
  must leave the simulated control loop bit-identical: the control
  events of a traced run match an untraced run exactly (same hash),
  because sampling is counter-based and attribution is read-only.
* **Reconciliation** — attributed energy plus the unattributed bucket
  recovers total datacenter energy within 1e-6 relative error, on both
  harnesses, and survives a checkpoint/resume round trip.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.control.arx import ARXModel
from repro.engine.kernel import CheckpointError
from repro.engine.largescale_backend import build_largescale_engine
from repro.obs import InMemoryBackend, Telemetry, use_telemetry
from repro.obs.attribution import EnergyAttributor
from repro.obs.reqtrace import RequestTracer
from repro.sim.largescale import LargeScaleConfig, run_largescale
from repro.sim.testbed import TestbedConfig, TestbedExperiment
from repro.traces.generator import TraceConfig, generate_trace

_TB_MODEL = ARXModel(a=[0.4], b=[[-800.0, -300.0], [-100.0, -50.0]], g=1800.0)

#: Event kinds that are pure observability output: allowed to differ
#: between a traced and an untraced run.  Everything else must match.
_OBS_ONLY = {
    "span", "metrics", "request_trace", "power_attribution",
    "attribution_summary",
}


def _tb_config(**overrides):
    base = dict(
        n_servers=2, n_apps=2, duration_s=120.0, warmup_s=20.0,
        concurrency=10, initial_alloc_ghz=0.6, mpc_warm_start=False, seed=77,
    )
    base.update(overrides)
    return TestbedConfig(**base)


def _control_hash(records):
    """Hash of the control-relevant event stream (observability excluded)."""
    lines = [
        json.dumps(r, sort_keys=True)
        for r in records
        if r.get("kind") not in _OBS_ONLY
    ]
    return hashlib.sha256("\n".join(lines).encode()).hexdigest(), len(lines)


class TestRequestTracer:
    def test_sample_every_validated(self):
        with pytest.raises(ValueError, match="sample_every"):
            RequestTracer("app0", 0)

    def test_counter_based_sampling_is_every_nth(self):
        tracer = RequestTracer("app0", 3)
        sampled = [tracer.begin() for _ in range(9)]
        assert sampled == [0, -1, -1, 3, -1, -1, 6, -1, -1]
        assert tracer.n_started == 9
        assert tracer.n_sampled == 3

    def test_sample_every_one_traces_everything(self):
        tracer = RequestTracer("a", 1)
        assert [tracer.begin() for _ in range(4)] == [0, 1, 2, 3]
        assert tracer.n_sampled == 4

    def test_finish_builds_trace_and_drain_clears(self):
        tracer = RequestTracer("app1", 2)
        idx = tracer.begin()
        trace = tracer.finish(
            idx, 10.0, 10.5, [("web", 0.3, 0.25), ("db", 0.2, 0.1)]
        )
        assert trace.trace_id == "app1/0"
        assert trace.rt_s == pytest.approx(0.5)
        assert [v.tier for v in trace.tiers] == ["web", "db"]
        event = trace.to_event()
        assert event["rt_ms"] == pytest.approx(500.0)
        assert event["tiers"][0]["sojourn_ms"] == pytest.approx(300.0)
        assert tracer.drain() == [trace]
        assert tracer.drain() == []


class TestEnergyAttributor:
    def test_splits_by_usage_share(self):
        attr = EnergyAttributor()
        per_app = attr.attribute(
            3600.0,
            {"s0": 100.0},
            {"s0": [("a", "web", 3.0), ("b", "db", 1.0)]},
        )
        assert per_app == pytest.approx({"a": 75.0, "b": 25.0})
        assert attr.total_wh == pytest.approx(100.0)
        assert attr.reconciliation_error <= 1e-12

    def test_zero_usage_splits_equally(self):
        attr = EnergyAttributor()
        attr.attribute(
            3600.0, {"s0": 60.0}, {"s0": [("a", "web", 0.0), ("a", "db", 0.0)]}
        )
        assert attr.energy_wh["a"]["web"] == pytest.approx(30.0)
        assert attr.energy_wh["a"]["db"] == pytest.approx(30.0)

    def test_unhosted_server_lands_unattributed(self):
        attr = EnergyAttributor()
        attr.attribute(3600.0, {"s0": 50.0, "s1": 20.0},
                       {"s0": [("a", "web", 1.0)]})
        assert attr.unattributed_wh == pytest.approx(20.0)
        assert attr.attributed_wh == pytest.approx(50.0)
        assert attr.reconciliation_error <= 1e-12
        summary = attr.summary()
        assert summary["per_app_wh"] == pytest.approx({"a": 50.0})
        assert summary["n_periods"] == 1


class TestTracingDoesNotPerturb:
    """The acceptance gate: observability must not change the run."""

    def _run(self, **overrides):
        backend = InMemoryBackend()
        with use_telemetry(Telemetry(backend), close=False):
            result = TestbedExperiment(_tb_config(**overrides), _TB_MODEL).run()
        return backend.records, result

    def test_traced_run_control_stream_is_bit_identical(self):
        plain_records, plain_res = self._run()
        traced_records, traced_res = self._run(
            trace_requests_every=3, attribute_power=True
        )
        assert _control_hash(traced_records) == _control_hash(plain_records)
        assert (
            traced_res.power_summary()["mean"]
            == plain_res.power_summary()["mean"]
        )
        np.testing.assert_array_equal(
            traced_res.recorder.values("rt/app0"),
            plain_res.recorder.values("rt/app0"),
        )
        # ... and the traced run actually produced observability output.
        kinds = {r["kind"] for r in traced_records}
        assert "request_trace" in kinds
        assert "power_attribution" in kinds

    def test_trace_events_carry_tier_spans(self):
        records, _ = self._run(trace_requests_every=5)
        traces = [r for r in records if r["kind"] == "request_trace"]
        assert traces
        for rec in traces:
            assert rec["trace_id"].startswith(rec["app"] + "/")
            tiers = rec["tiers"]
            assert len(tiers) >= 1
            # End-to-end RT can never be under the summed tier sojourns
            # (think time between tiers is zero in this plant).
            total_sojourn = sum(t["sojourn_ms"] for t in tiers)
            assert rec["rt_ms"] >= total_sojourn - 1e-9

    def test_config_rejects_negative_sampling(self):
        with pytest.raises(ValueError, match="trace_requests_every"):
            TestbedConfig(trace_requests_every=-1)


class TestTestbedAttribution:
    def test_reconciles_within_tolerance(self):
        backend = InMemoryBackend()
        with use_telemetry(Telemetry(backend), close=False):
            result = TestbedExperiment(
                _tb_config(attribute_power=True), _TB_MODEL
            ).run()
        attribution = result.attribution
        assert attribution is not None
        assert attribution["reconciliation_error"] <= 1e-6
        gap = (
            attribution["attributed_wh"] + attribution["unattributed_wh"]
            - attribution["total_wh"]
        )
        assert abs(gap) <= 1e-6 * attribution["total_wh"]
        # Every (app, tier) pair of the 2-app, 2-tier testbed is charged.
        pairs = {(e["app"], e["tier"]) for e in attribution["per_tier"]}
        assert pairs == {
            ("app0", "web"), ("app0", "db"), ("app1", "web"), ("app1", "db"),
        }
        summaries = [
            r for r in backend.records if r["kind"] == "attribution_summary"
        ]
        assert len(summaries) == 1
        assert summaries[0]["attribution"] == attribution

    def test_disabled_by_default(self):
        result = TestbedExperiment(_tb_config(duration_s=60.0), _TB_MODEL).run()
        assert result.attribution is None


class TestLargeScaleAttribution:
    def _trace(self):
        return generate_trace(TraceConfig(n_servers=40, n_days=1), rng=13)

    def _config(self, **overrides):
        base = dict(n_vms=30, n_servers=50, seed=5)
        base.update(overrides)
        return LargeScaleConfig(**base)

    def test_reconciles_and_never_changes_totals(self):
        plain = run_largescale(self._trace(), self._config())
        attributed = run_largescale(
            self._trace(), self._config(attribute_power=True)
        )
        # Read-only guarantee: identical energy/placement either way.
        assert attributed.total_energy_wh == plain.total_energy_wh
        assert attributed.migrations == plain.migrations
        np.testing.assert_array_equal(
            attributed.power_series_w, plain.power_series_w
        )
        attribution = attributed.attribution
        assert plain.attribution is None
        assert attribution is not None
        assert attribution["reconciliation_error"] <= 1e-6
        # Migration energy is a separate ledger: attributed + migration
        # recovers the result's grand total.
        assert (
            attribution["attributed_wh"] + attribution["migration_energy_wh"]
            == pytest.approx(attributed.total_energy_wh, rel=1e-6)
        )
        assert len(attribution["per_vm_wh"]) == 30  # n_vms <= 64: full map
        assert sum(attribution["per_vm_wh"].values()) == pytest.approx(
            attribution["attributed_wh"]
        )

    def test_attribution_survives_checkpoint_resume(self):
        trace, cfg = self._trace(), self._config(attribute_power=True)
        engine, plant = build_largescale_engine(trace, cfg)
        plant.start()
        engine.run()
        full = plant.result()

        engine1, plant1 = build_largescale_engine(trace, cfg)
        plant1.start()
        engine1.run(until_period=40)
        doc = json.loads(json.dumps(engine1.checkpoint()))
        engine2, plant2 = build_largescale_engine(trace, cfg)
        engine2.restore(doc)
        engine2.run()
        resumed = plant2.result()

        assert resumed.attribution["attributed_wh"] == (
            full.attribution["attributed_wh"]
        )
        assert resumed.attribution["per_vm_wh"] == full.attribution["per_vm_wh"]

    def test_resume_refuses_checkpoint_without_attribution(self):
        trace = self._trace()
        engine, plant = build_largescale_engine(trace, self._config())
        plant.start()
        engine.run(until_period=10)
        doc = json.loads(json.dumps(engine.checkpoint()))
        engine2, _ = build_largescale_engine(
            trace, self._config(attribute_power=True)
        )
        with pytest.raises(CheckpointError, match="vm_energy_wh"):
            engine2.restore(doc)
