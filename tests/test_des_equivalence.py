"""Fast DES kernel vs the preserved reference: bit-for-bit equivalence.

The optimized :class:`repro.sim.des.PSResource` (preallocated slot
array, vectorized advance, min-remaining cache) claims *bit-identical*
results to :class:`repro.sim.des_reference.ReferencePSResource` (the
original per-job dict implementation).  These tests drive both kernels
through the same operation sequences — random arrivals, capacity
changes, degradations, idle gaps — and compare every observable float
with ``==``, never with a tolerance.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.rubbos import AppSpec, MultiTierApp
from repro.sim.des import PSResource, Simulator
from repro.sim.des_reference import ReferencePSResource, ReferenceSimulator


def _drive(sim_cls, res_cls, capacity, ops):
    """Run one op sequence; return every observable as exact floats.

    Completions are recorded as ``(completion_time, sojourn)`` pairs in
    firing order — the full event log of the resource.  After the ops
    the capacity is restored to a positive value and the queue drained,
    so sequences that stall the resource (zero capacity, zero share)
    still produce comparable departure times for every job.
    """
    sim = sim_cls()
    res = res_cls(sim, capacity)
    completions = []
    n_submitted = 0
    for op in ops:
        kind, value = op
        if kind == "submit":
            ev = res.submit(value)
            ev.on_success(lambda rt: completions.append((sim.now, rt)))
            n_submitted += 1
        elif kind == "advance":
            sim.run_until(sim.now + value)
        elif kind == "capacity":
            res.set_capacity(value)
        elif kind == "degrade":
            res.degrade(value)
    res.degrade(1.0)
    res.set_capacity(max(res.nominal_capacity_ghz, 1.0))
    sim.run_until(sim.now + 1e6)
    assert res.queue_length == 0, "drain must complete every job"
    assert res.completed_jobs == n_submitted
    return completions, res.busy_time, res.work_done, sim.now


_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("submit"),
            st.floats(min_value=1e-6, max_value=5.0, allow_nan=False),
        ),
        st.tuples(
            st.just("advance"),
            st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
        ),
        # Capacity/degrade are exactly zero (the stall path) or far
        # enough from zero that completion delays stay finite; both
        # kernels reject subnormal capacities the same way, but that
        # raise would abort the sequence before any comparison.
        st.tuples(
            st.just("capacity"),
            st.one_of(
                st.just(0.0),
                st.floats(min_value=0.01, max_value=4.0, allow_nan=False),
            ),
        ),
        st.tuples(
            st.just("degrade"),
            st.one_of(
                st.just(0.0),
                st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
            ),
        ),
    ),
    min_size=1,
    max_size=50,
)


class TestPSBitIdentity:
    @settings(max_examples=200, deadline=None)
    @given(capacity=st.floats(min_value=0.1, max_value=4.0), ops=_OPS)
    def test_random_sequences(self, capacity, ops):
        fast = _drive(Simulator, PSResource, capacity, ops)
        ref = _drive(ReferenceSimulator, ReferencePSResource, capacity, ops)
        assert fast == ref  # exact float equality, element by element

    def test_single_job(self):
        ops = [("submit", 0.75), ("advance", 0.1)]
        assert _drive(Simulator, PSResource, 1.5, ops) == _drive(
            ReferenceSimulator, ReferencePSResource, 1.5, ops
        )

    def test_zero_share_stall_and_resume(self):
        # Capacity drops to zero mid-service: jobs hold their remaining
        # work through the stall, then finish after capacity returns.
        ops = [
            ("submit", 1.0),
            ("submit", 2.0),
            ("advance", 0.5),
            ("capacity", 0.0),
            ("advance", 3.0),
            ("submit", 0.25),
            ("capacity", 2.0),
        ]
        fast = _drive(Simulator, PSResource, 1.0, ops)
        ref = _drive(ReferenceSimulator, ReferencePSResource, 1.0, ops)
        assert fast == ref

    def test_full_degrade_is_zero_share(self):
        ops = [
            ("submit", 1.0),
            ("advance", 0.25),
            ("degrade", 0.0),
            ("advance", 5.0),
            ("degrade", 0.5),
            ("advance", 0.5),
        ]
        fast = _drive(Simulator, PSResource, 1.0, ops)
        ref = _drive(ReferenceSimulator, ReferencePSResource, 1.0, ops)
        assert fast == ref

    @settings(max_examples=50, deadline=None)
    @given(
        works=st.lists(
            st.floats(min_value=1e-6, max_value=2.0, allow_nan=False),
            min_size=65,
            max_size=80,
        )
    )
    def test_large_batch_vectorized_sweep(self, works):
        # More than 64 concurrent jobs takes the numpy completion-sweep
        # path in the fast kernel; the scalar path covers n <= 64.
        ops = [("submit", w) for w in works] + [("advance", 0.01)]
        fast = _drive(Simulator, PSResource, 2.0, ops)
        ref = _drive(ReferenceSimulator, ReferencePSResource, 2.0, ops)
        assert fast == ref


class TestAppBitIdentity:
    """Same app workload on both kernels: identical period statistics."""

    def _run(self, kernel):
        app = MultiTierApp(
            AppSpec.rubbos(),
            initial_allocations_ghz=[0.8, 0.6],
            concurrency=25,
            rng=np.random.default_rng(42),
            kernel=kernel,
        )
        app.warmup(10.0)
        out = []
        for alloc in ([0.8, 0.6], [1.2, 0.9], [0.5, 0.4]):
            app.set_allocations(alloc)
            stats = app.run_period(30.0)
            out.append(
                (
                    stats.completed,
                    stats.rt_mean_ms,
                    stats.rt_p50_ms,
                    stats.rt_p90_ms,
                    tuple(stats.utilizations),
                )
            )
        return out

    def test_period_stats_identical(self):
        assert self._run("fast") == self._run("reference")

    def test_fault_path_identical(self):
        def run(kernel):
            app = MultiTierApp(
                AppSpec.rubbos(),
                concurrency=20,
                rng=np.random.default_rng(7),
                kernel=kernel,
            )
            app.warmup(5.0)
            app.degrade_tier(1, 0.3)
            s1 = app.run_period(20.0)
            app.degrade_tier(1, 1.0)
            s2 = app.run_period(20.0)
            return (s1.completed, s1.rt_mean_ms, s2.completed, s2.rt_mean_ms)

        assert run("fast") == run("reference")
