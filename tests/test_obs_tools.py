"""The offline observability tools: audit, profile, watch, Prometheus.

These run against synthetic record streams (fast, fully controlled)
plus a couple of CLI-level smokes pinning exit-code semantics.
"""

import json
import math

import pytest

from repro.obs import (
    AuditConfig,
    InMemoryBackend,
    JsonlFollower,
    LiveDashboard,
    MetricsRegistry,
    Telemetry,
    audit_events,
    audit_jsonl,
    profile_events,
    profile_jsonl,
    prom_escape_label,
    prom_line,
    render_audit,
    render_profile,
    watch,
)


def _control_period(time_s, rts, setpoint=1000.0):
    return {
        "kind": "control_period",
        "time_s": time_s,
        "apps": {
            str(i): {"rt_ms": rt, "setpoint_ms": setpoint}
            for i, rt in enumerate(rts)
        },
    }


def _power(time_s, watts, active=2):
    return {
        "kind": "testbed.period", "time_s": time_s, "power_w": watts,
        "active_servers": active,
    }


class TestAuditConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="baseline_rule"):
            AuditConfig(baseline_rule="median")
        with pytest.raises(ValueError, match="violation_budget"):
            AuditConfig(violation_budget=1.5)
        with pytest.raises(ValueError, match="rolling_window"):
            AuditConfig(rolling_window=0)


class TestAuditPipeline:
    def _records(self):
        # app 0: clean run; app 1: one 2-period episode, then recovers.
        return [
            {"kind": "run_config", "harness": "testbed", "control_period_s": 30.0},
            _control_period(30.0, [900.0, 950.0]),
            _power(30.0, 500.0),
            _control_period(60.0, [950.0, 1200.0]),
            _power(60.0, 400.0),
            _control_period(90.0, [980.0, 1100.0]),
            _power(90.0, 300.0),
            _control_period(120.0, [920.0, 990.0]),
            _power(120.0, 300.0),
        ]

    def test_episode_detection(self):
        report = audit_events(self._records())
        app1 = report["apps"]["1"]
        assert app1["violations"] == 2
        assert app1["n_episodes"] == 1
        (episode,) = app1["episodes"]
        assert episode["start_s"] == 60.0
        assert episode["end_s"] == 90.0
        assert episode["periods"] == 2
        assert episode["worst_rt_ms"] == 1200.0
        assert episode["worst_excess_ms"] == pytest.approx(200.0)
        assert episode["open_at_end"] is False
        assert report["apps"]["0"]["n_episodes"] == 0

    def test_episode_open_at_end(self):
        records = self._records()[:4]  # run dies inside app 1's episode
        report = audit_events(records)
        (episode,) = report["apps"]["1"]["episodes"]
        assert episode["open_at_end"] is True

    def test_nan_rt_neither_opens_nor_closes(self):
        records = [
            {"kind": "run_config", "harness": "testbed", "control_period_s": 30.0},
            _control_period(30.0, [1500.0]),
            _control_period(60.0, [float("nan")]),
            _control_period(90.0, [1400.0]),
            _control_period(120.0, [800.0]),
        ]
        report = audit_events(records)
        app = report["apps"]["0"]
        # The unmeasured period bridges the episode: one episode, not two.
        assert app["n_episodes"] == 1
        assert app["measured"] == 3
        assert app["periods"] == 4

    def test_budget_pass_fail(self):
        records = self._records()
        lenient = audit_events(records, AuditConfig(violation_budget=0.5))
        assert lenient["slo"]["passed"] is True
        strict = audit_events(records, AuditConfig(violation_budget=0.1))
        assert strict["slo"]["passed"] is False
        assert strict["slo"]["n_failing"] == 1

    def test_power_savings_vs_peak_baseline(self):
        report = audit_events(self._records())
        power = report["power"]
        assert power["samples"] == 4
        assert power["baseline_rule"] == "peak"
        assert power["baseline_w"] == 500.0
        hours = 30.0 / 3600.0
        assert power["energy_wh"] == pytest.approx(1500.0 * hours)
        assert power["baseline_energy_wh"] == pytest.approx(2000.0 * hours)
        assert power["savings_fraction"] == pytest.approx(0.25)

    def test_baseline_rules(self):
        first = audit_events(
            self._records(), AuditConfig(baseline_rule="first")
        )
        assert first["power"]["baseline_w"] == 500.0
        fixed = audit_events(
            self._records(), AuditConfig(baseline_power_w=600.0)
        )
        assert fixed["power"]["baseline_rule"] == "fixed"
        assert fixed["power"]["baseline_w"] == 600.0

    def test_rolling_power_is_decimated(self):
        records = [{"kind": "run_config", "harness": "ls", "step_s": 60.0}]
        records += [_power(float(i), 300.0 + i) for i in range(1000)]
        report = audit_events(
            records, AuditConfig(rolling_window=10, max_rolling_points=50)
        )
        rolling = report["rolling_power"]
        assert len(rolling) <= 51
        assert rolling[-1]["time_s"] == 999.0  # last point always kept
        assert "savings_fraction" in rolling[-1]

    def test_counts_faults(self):
        records = self._records() + [
            {"kind": "fault_injected", "time_s": 50.0},
            {"kind": "fault_recovered", "time_s": 80.0},
        ]
        report = audit_events(records)
        assert report["faults"] == {"injected": 1, "recovered": 1}

    def test_jsonl_is_lenient(self, tmp_path):
        path = tmp_path / "run.jsonl"
        lines = [json.dumps(r) for r in self._records()]
        lines.insert(2, "garbage")
        path.write_text("\n".join(lines) + '\n{"kind": "trunc')
        report = audit_jsonl(path)
        assert report["n_malformed"] == 2
        assert report["power"]["samples"] == 4

    def test_render_contains_verdict_and_tables(self):
        report = audit_events(self._records(), AuditConfig(violation_budget=0.1))
        text = render_audit(report)
        assert "SLO FAIL" in text
        assert "Per-app SLO compliance" in text
        assert "Violation episodes" in text
        assert "Power audit" in text
        passing = audit_events(
            self._records(), AuditConfig(violation_budget=0.9)
        )
        assert "SLO PASS" in render_audit(passing)

    def test_empty_stream_reports_gracefully(self):
        report = audit_events([])
        assert report["slo"]["passed"] is True  # nothing measured, nothing failed
        assert math.isnan(report["power"]["mean_w"])
        assert "Power audit" in render_audit(report)


class TestProfile:
    def _span(self, phase, dur, cpu=0.0, alloc=0):
        return {
            "kind": "span", "name": f"phase.{phase}", "duration_s": dur,
            "depth": 0, "cpu_s": cpu, "alloc_blocks": alloc,
        }

    def test_aggregates_phase_spans(self):
        records = [
            self._span("sense", 0.01, cpu=0.008, alloc=100),
            self._span("sense", 0.03, cpu=0.02, alloc=50),
            self._span("control", 0.06, cpu=0.05, alloc=10),
            {"kind": "span", "name": "mpc.solve", "duration_s": 9.0},  # not a phase
        ]
        profile = profile_events(records)
        assert set(profile["phases"]) == {"sense", "control"}
        sense = profile["phases"]["sense"]
        assert sense["count"] == 2
        assert sense["wall_s"] == pytest.approx(0.04)
        assert sense["max_ms"] == pytest.approx(30.0)
        assert sense["cpu_s"] == pytest.approx(0.028)
        assert sense["alloc_blocks"] == 150
        assert profile["total_wall_s"] == pytest.approx(0.10)
        # sorted by wall time, heaviest first
        assert list(profile["phases"]) == ["control", "sense"]
        assert profile["sampled"] is False

    def test_metrics_histograms_override_sampled_records(self):
        # Tracer sampled 1-in-N records, but the span.phase.* histogram
        # saw every span: its exact figures must win.
        records = [
            self._span("sense", 0.01),
            {"kind": "metrics", "metrics": {"histograms": {
                "span.phase.sense": {"count": 40, "sum": 0.5, "max": 0.05},
            }}},
        ]
        profile = profile_events(records)
        sense = profile["phases"]["sense"]
        assert sense["count"] == 40
        assert sense["wall_s"] == pytest.approx(0.5)
        assert sense["max_ms"] == pytest.approx(50.0)
        assert sense["sampled_records"] == 1
        assert profile["sampled"] is True
        assert "estimates" in render_profile(profile)

    def test_empty_profile_renders_hint(self):
        text = render_profile(profile_events([]))
        assert "was telemetry enabled" in text

    def test_fleet_grouping_section(self):
        records = [
            self._span("control", 0.02),
            {"kind": "span", "name": "manager.fleet_control",
             "duration_s": 0.01, "depth": 1, "batch_groups": 2,
             "batch_group_sizes": [3, 3]},
            {"kind": "metrics", "metrics": {
                "counters": {"controller.batch_groups": 6.0},
                "histograms": {"controller.batch_size": {
                    "count": 6.0, "sum": 18.0, "mean": 3.0,
                    "min": 3.0, "max": 3.0,
                }},
            }},
        ]
        profile = profile_events(records)
        assert profile["fleet"] == {
            "batch_groups": 6.0,
            "spans": 1,
            "group_size": {
                "count": 6.0, "sum": 18.0, "mean": 3.0,
                "min": 3.0, "max": 3.0,
            },
        }
        text = render_profile(profile)
        assert "Fleet control grouping" in text
        assert "mean size" in text

    def test_no_fleet_section_without_batch_metrics(self):
        profile = profile_events([self._span("control", 0.02)])
        assert profile["fleet"] is None
        assert "Fleet control grouping" not in render_profile(profile)

    def test_jsonl_is_lenient(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            json.dumps(self._span("actuate", 0.02)) + "\nnot json\n"
        )
        profile = profile_jsonl(path)
        assert profile["n_malformed"] == 1
        assert "actuate" in profile["phases"]


class TestPrometheusRendering:
    def test_label_escaping_golden(self):
        assert prom_escape_label('he said "hi"\n\\x') == (
            'he said \\"hi\\"\\n\\\\x'
        )
        line = prom_line("rt_ms", {"app": 'a"b\nc'}, 1.5)
        assert line == 'rt_ms{app="a\\"b\\nc"} 1.5'

    def test_prom_line_sanitizes_metric_names(self):
        assert prom_line("des.events", None, 3.0) == "des_events 3"
        assert prom_line("9lives", {}, 1.0) == "_9lives 1"

    def test_histogram_bucket_rendering_golden(self):
        reg = MetricsRegistry()
        h = reg.histogram("rt_seconds", buckets=[0.1, 0.5, 1.0])
        for v in (0.05, 0.2, 0.3, 0.7, 2.0):
            h.observe(v)
        text = reg.to_prometheus()
        assert text == (
            "# TYPE rt_seconds histogram\n"
            'rt_seconds_bucket{le="0.1"} 1\n'
            'rt_seconds_bucket{le="0.5"} 3\n'
            'rt_seconds_bucket{le="1"} 4\n'
            'rt_seconds_bucket{le="+Inf"} 5\n'
            "rt_seconds_sum 3.25\n"
            "rt_seconds_count 5\n"
        )

    def test_bucketless_histogram_renders_summary(self):
        reg = MetricsRegistry()
        reg.histogram("x").observe(1.0)
        text = reg.to_prometheus()
        assert 'x{quantile="0.5"} 1' in text
        assert "_bucket" not in text


class TestSpanSampling:
    def test_every_nth_record_but_exact_histograms(self):
        backend = InMemoryBackend()
        tel = Telemetry(backend, span_sample_every=4)
        for _ in range(10):
            with tel.span("phase.sense"):
                pass
        spans = backend.of_kind("span")
        assert len(spans) == 3  # indices 0, 4, 8
        hist = tel.registry.histogram("span.phase.sense")
        assert hist.count == 10  # every span observed

    def test_first_span_always_recorded(self):
        backend = InMemoryBackend()
        tel = Telemetry(backend, span_sample_every=1000)
        with tel.span("bench.marker"):
            pass
        assert len(backend.of_kind("span")) == 1

    def test_error_spans_never_dropped(self):
        backend = InMemoryBackend()
        tel = Telemetry(backend, span_sample_every=1000)
        with tel.span("phase.sense"):
            pass
        with pytest.raises(RuntimeError):
            with tel.span("phase.sense"):
                raise RuntimeError("boom")
        errors = [r for r in backend.of_kind("span") if r.get("error")]
        assert len(errors) == 1


class TestJsonlFollower:
    def test_partial_final_line_stays_buffered(self, tmp_path):
        path = tmp_path / "run.jsonl"
        follower = JsonlFollower(path)
        assert follower.poll() == []  # file may not exist yet
        path.write_text('{"kind": "a"}\n{"kind": "b')
        records = follower.poll()
        assert [r["kind"] for r in records] == ["a"]
        # Writer finishes the line: the buffered prefix joins the tail.
        with open(path, "a") as fh:
            fh.write('2"}\n')
        records = follower.poll()
        assert [r["kind"] for r in records] == ["b2"]
        assert follower.n_malformed == 0

    def test_malformed_counted_not_raised(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"kind": "ok"}\nnot json\n[1, 2]\n')
        follower = JsonlFollower(path)
        records = follower.poll()
        assert [r["kind"] for r in records] == ["ok"]
        assert follower.n_malformed == 2


class TestLiveDashboard:
    def _feed_run(self, dash):
        dash.feed({"kind": "run_config", "harness": "testbed"})
        dash.feed(_power(30.0, 450.0, active=2))
        dash.feed(_control_period(30.0, [900.0, 1200.0]))
        dash.feed({"kind": "request_trace", "trace_id": "app0/0"})
        dash.feed({"kind": "fault_injected", "time_s": 40.0})

    def test_window_validated(self):
        with pytest.raises(ValueError, match="window"):
            LiveDashboard(window=1)

    def test_feed_and_render(self):
        dash = LiveDashboard(window=8)
        self._feed_run(dash)
        assert dash.power_w[-1] == 450.0
        assert dash.rt_ratio[-1] == pytest.approx(1.2)
        assert dash.active_faults == 1
        text = dash.render()
        assert "run[testbed]" in text
        assert "SLO VIOLATING" in text
        assert "datacenter power (W)" in text
        assert "<-- over" in text
        dash.feed({"kind": "fault_recovered", "time_s": 50.0})
        assert dash.active_faults == 0

    def test_rolling_window_bounds_memory(self):
        dash = LiveDashboard(window=4)
        for i in range(50):
            dash.feed(_power(float(i), 300.0 + i))
        assert len(dash.power_w) == 4
        assert dash.power_w[-1] == 349.0

    def test_metrics_record_ends_run(self):
        dash = LiveDashboard()
        assert dash.run_ended is False
        dash.feed({"kind": "metrics", "metrics": {}})
        assert dash.run_ended is True
        assert "ended" in dash.render()

    def test_prometheus_snapshot(self):
        dash = LiveDashboard()
        self._feed_run(dash)
        text = dash.prometheus_text()
        assert "repro_watch_power_watts 450" in text
        assert 'repro_watch_rt_ms{app="1"} 1200' in text
        assert "repro_watch_active_faults 1" in text
        assert text.endswith("\n")


class TestWatchDriver:
    def test_follows_growing_file_and_stops_at_run_end(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(json.dumps(_power(30.0, 400.0)) + "\n")
        outputs = []

        def fake_sleep(_):
            # The "run" finishes while the watcher sleeps.
            with open(path, "a") as fh:
                fh.write(json.dumps({"kind": "metrics", "metrics": {}}) + "\n")

        dash = watch(
            path, interval_s=0.0, out=outputs.append, sleep=fake_sleep
        )
        assert dash.run_ended is True
        assert len(outputs) == 2
        assert dash.power_w[-1] == 400.0

    def test_once_writes_prom_snapshot(self, tmp_path):
        path = tmp_path / "run.jsonl"
        prom = tmp_path / "metrics.prom"
        path.write_text(json.dumps(_power(30.0, 420.0)) + "\n")
        dash = watch(path, once=True, prom_path=prom, out=lambda s: None)
        assert dash.n_records == 1
        assert "repro_watch_power_watts 420" in prom.read_text()


class TestObsCli:
    def _write_run(self, tmp_path, rts=(900.0, 950.0)):
        path = tmp_path / "run.jsonl"
        records = [
            {"kind": "run_config", "harness": "testbed", "control_period_s": 30.0},
            _control_period(30.0, list(rts)),
            _power(30.0, 450.0),
            {"kind": "metrics", "metrics": {"histograms": {}}},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        return path

    def test_audit_exit_codes_follow_slo(self, tmp_path, capsys):
        from repro.cli import main_obs

        ok = self._write_run(tmp_path)
        assert main_obs(["audit", str(ok)]) == 0
        bad = self._write_run(tmp_path, rts=(1500.0, 900.0))
        assert main_obs(["audit", str(bad)]) == 1
        assert "SLO FAIL" in capsys.readouterr().out

    def test_audit_writes_report_file(self, tmp_path, capsys):
        from repro.cli import main_obs

        run = self._write_run(tmp_path)
        out = tmp_path / "audit.json"
        main_obs(["audit", str(run), "--output", str(out), "--json"])
        report = json.loads(out.read_text())
        assert report["power"]["samples"] == 1
        printed = json.loads(capsys.readouterr().out)
        assert printed["slo"]["passed"] is True

    def test_profile_and_summarize_run(self, tmp_path, capsys):
        from repro.cli import main_obs

        run = self._write_run(tmp_path)
        assert main_obs(["summarize", str(run)]) == 0
        assert main_obs(["profile", str(run)]) == 0
        out = capsys.readouterr().out
        assert "was telemetry enabled" in out  # no phase spans in this file

    def test_watch_once_empty_file_fails(self, tmp_path):
        from repro.cli import main_obs

        empty = tmp_path / "missing.jsonl"
        assert main_obs(["watch", str(empty), "--once"]) == 1
        run = self._write_run(tmp_path)
        assert main_obs(["watch", str(run), "--once"]) == 0


class TestTelemetryBenchCase:
    def test_overhead_case_runs_and_reports(self):
        # Tiny run: just proves the case wiring (records captured on the
        # instrumented side, none on the dark side).
        import repro.bench.perf_suite as ps

        n = ps._obs_testbed_run(30.0, instrumented=True)
        assert n > 0
        assert ps._obs_testbed_run(30.0, instrumented=False) == 0
