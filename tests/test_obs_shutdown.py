"""Event-log shutdown guarantees: atexit flush and SIGTERM unwind.

The bug these pin: a run terminated by SIGTERM (or an interpreter exit
that never reached ``backend.close()``) used to leave the JSONL event
log truncated mid-line.  Now every open :class:`JsonlBackend` is closed
at interpreter exit, and :func:`install_sigterm_flush` converts SIGTERM
into a ``SystemExit`` so ``with use_telemetry(...)`` blocks unwind and
close their backends on the way out.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

from repro.obs import JsonlBackend, close_open_backends

_ENV = dict(os.environ, PYTHONPATH="src")


def _valid_jsonl(path):
    lines = path.read_text(encoding="utf-8").splitlines()
    return [json.loads(line) for line in lines]


class TestCloseOpenBackends:
    def test_closes_every_tracked_backend(self, tmp_path):
        backends = [JsonlBackend(tmp_path / f"log{i}.jsonl") for i in range(3)]
        for i, backend in enumerate(backends):
            backend.emit({"kind": "event", "i": i})
        assert close_open_backends() >= 3
        for i in range(3):
            records = _valid_jsonl(tmp_path / f"log{i}.jsonl")
            assert records == [{"kind": "event", "i": i}]

    def test_idempotent_after_manual_close(self, tmp_path):
        backend = JsonlBackend(tmp_path / "log.jsonl")
        backend.emit({"kind": "event"})
        backend.close()
        close_open_backends()  # must not raise on the closed file
        backend.close()  # nor double-close


class TestInterpreterExit:
    def test_atexit_flushes_unclosed_backend(self, tmp_path):
        # A process that emits and exits WITHOUT closing: the atexit
        # hook must still produce a complete, parseable log.
        log = tmp_path / "exit.jsonl"
        script = textwrap.dedent(f"""
            from repro.obs import JsonlBackend
            backend = JsonlBackend({str(log)!r})
            for i in range(50):
                backend.emit({{"kind": "event", "i": i}})
            # no close(), no flush(): atexit must handle it
        """)
        subprocess.run(
            [sys.executable, "-c", script], env=_ENV, check=True,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        records = _valid_jsonl(log)
        assert [r["i"] for r in records] == list(range(50))


class TestSigterm:
    def test_sigterm_unwinds_and_flushes(self, tmp_path):
        # A long-running "CLI" loop inside use_telemetry: SIGTERM must
        # unwind the with-block so the log closes complete, and the
        # process must exit 143 (128 + SIGTERM) like a shell expects.
        log = tmp_path / "term.jsonl"
        ready = tmp_path / "ready"
        script = textwrap.dedent(f"""
            import pathlib, time
            from repro.obs import (JsonlBackend, Telemetry,
                                   install_sigterm_flush, use_telemetry)
            from repro.obs import get_telemetry
            assert install_sigterm_flush()
            with use_telemetry(Telemetry(JsonlBackend({str(log)!r}))):
                for i in range(10_000):
                    get_telemetry().event("tick", i=i)
                    if i == 99:
                        pathlib.Path({str(ready)!r}).touch()
                    if i >= 100:
                        time.sleep(0.01)
        """)
        proc = subprocess.Popen(
            [sys.executable, "-c", script], env=_ENV,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        try:
            deadline = time.monotonic() + 30
            while not ready.exists():
                assert time.monotonic() < deadline, "child never got going"
                assert proc.poll() is None, "child died early"
                time.sleep(0.02)
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert rc == 143
        records = _valid_jsonl(log)  # every line complete and parseable
        ticks = [r for r in records if r.get("kind") == "tick"]
        assert len(ticks) >= 100
        assert ticks[-1]["i"] == len(ticks) - 1  # nothing torn or lost
