"""ResultsStore: migrations, claims, idempotent submission, concurrency."""

import sqlite3
import threading

import pytest

from repro.service.store import (
    SCHEMA_VERSION,
    ResultsStore,
    StoreError,
    spec_hash,
)

SPEC = {"name": "t", "harness": "testbed", "params": {"seed": 1}}
SPEC2 = {"name": "t", "harness": "testbed", "params": {"seed": 2}}


@pytest.fixture
def store(tmp_path):
    s = ResultsStore(tmp_path / "svc.db")
    yield s
    s.close()


class TestMigrations:
    def test_fresh_db_migrates_to_current_version(self, store):
        assert store.schema_version == SCHEMA_VERSION
        tables = {
            r[0] for r in store.connect().execute(
                "SELECT name FROM sqlite_master WHERE type='table'"
            )
        }
        assert {"runs", "sweeps", "checkpoints", "audits"} <= tables

    def test_reopen_is_a_noop(self, tmp_path):
        path = tmp_path / "svc.db"
        ResultsStore(path).close()
        again = ResultsStore(path)
        assert again.schema_version == SCHEMA_VERSION
        again.close()

    def test_newer_schema_rejected(self, tmp_path):
        path = tmp_path / "svc.db"
        ResultsStore(path).close()
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 5}")
        conn.close()
        with pytest.raises(StoreError, match="newer"):
            ResultsStore(path)

    def test_wal_mode(self, store):
        mode = store.connect().execute("PRAGMA journal_mode").fetchone()[0]
        assert str(mode).lower() == "wal"

    def test_concurrent_first_open_race(self, tmp_path):
        path = tmp_path / "race.db"
        stores, errors = [], []

        def opener():
            try:
                stores.append(ResultsStore(path))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=opener) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert all(s.schema_version == SCHEMA_VERSION for s in stores)
        for s in stores:
            s.close()


class TestSubmission:
    def test_submit_and_get(self, store):
        run, cached = store.submit_run(SPEC)
        assert not cached
        assert run.status == "queued"
        assert run.spec == SPEC
        assert store.get_run(run.id).spec_hash == spec_hash(SPEC)

    def test_resubmit_identical_spec_is_cached(self, store):
        first, _ = store.submit_run(SPEC)
        again, cached = store.submit_run(SPEC)
        assert cached and again.id == first.id
        other, cached = store.submit_run(SPEC2)
        assert not cached and other.id != first.id

    def test_done_run_satisfies_resubmission(self, store):
        run, _ = store.submit_run(SPEC)
        claimed = store.claim_run("w0")
        store.finish_run(claimed.id, "done", result={"x": 1},
                        event_hash="abc", n_events=3)
        again, cached = store.submit_run(SPEC)
        assert cached and again.id == run.id
        assert again.result == {"x": 1}

    def test_failed_run_is_retried_not_cached(self, store):
        run, _ = store.submit_run(SPEC)
        store.claim_run("w0")
        store.finish_run(run.id, "failed", error="boom")
        retry, cached = store.submit_run(SPEC)
        assert not cached and retry.id != run.id

    def test_force_bypasses_dedupe(self, store):
        first, _ = store.submit_run(SPEC)
        dup, cached = store.submit_run(SPEC, dedupe=False)
        assert not cached and dup.id != first.id

    def test_unknown_run_raises_keyerror(self, store):
        with pytest.raises(KeyError):
            store.get_run(999)


class TestClaims:
    def test_claim_order_is_fifo(self, store):
        a, _ = store.submit_run(SPEC)
        b, _ = store.submit_run(SPEC2)
        first = store.claim_run("w0")
        second = store.claim_run("w1")
        assert (first.id, second.id) == (a.id, b.id)
        assert first.status == "running" and first.worker == "w0"
        assert store.claim_run("w2") is None

    def test_concurrent_claims_never_double_claim(self, tmp_path):
        store = ResultsStore(tmp_path / "claims.db")
        n = 24
        for i in range(n):
            store.submit_run({"name": "t", "harness": "testbed",
                              "params": {"seed": i}})
        claimed, lock = [], threading.Lock()

        def worker(name):
            while True:
                run = store.claim_run(name)
                if run is None:
                    return
                with lock:
                    claimed.append(run.id)

        threads = [threading.Thread(target=worker, args=(f"w{i}",))
                   for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(claimed) == list(range(1, n + 1))  # each exactly once
        store.close()

    def test_recover_stale_running(self, store):
        run, _ = store.submit_run(SPEC)
        store.claim_run("w0")
        assert store.recover_stale_running() == 1
        assert store.run_status(run.id) == "queued"
        assert store.get_run(run.id).worker is None


class TestLifecycle:
    def test_finish_rejects_non_terminal_status(self, store):
        run, _ = store.submit_run(SPEC)
        with pytest.raises(StoreError, match="terminal"):
            store.finish_run(run.id, "running")

    def test_cancel_queued_is_immediate(self, store):
        run, _ = store.submit_run(SPEC)
        assert store.request_cancel(run.id).status == "cancelled"
        assert store.claim_run("w0") is None

    def test_cancel_running_flags_cancelling(self, store):
        run, _ = store.submit_run(SPEC)
        store.claim_run("w0")
        assert store.request_cancel(run.id).status == "cancelling"
        store.finish_run(run.id, "cancelled")
        # terminal cancels are a no-op
        assert store.request_cancel(run.id).status == "cancelled"

    def test_counts_by_status_has_every_key(self, store):
        counts = store.counts_by_status()
        assert set(counts) == {"queued", "running", "cancelling",
                               "done", "failed", "cancelled"}
        store.submit_run(SPEC)
        assert store.counts_by_status()["queued"] == 1


class TestCheckpointsAndAudits:
    def test_checkpoint_upsert_and_latest(self, store):
        run, _ = store.submit_run(SPEC)
        store.save_checkpoint(run.id, 3, {"k": 3}, log_offset=100)
        store.save_checkpoint(run.id, 6, {"k": 6}, log_offset=200)
        store.save_checkpoint(run.id, 6, {"k": 6, "v": 2}, log_offset=222)
        latest = store.latest_checkpoint(run.id)
        assert latest.period == 6 and latest.log_offset == 222
        assert latest.doc == {"k": 6, "v": 2}
        assert [c.period for c in store.list_checkpoints(run.id)] == [3, 6]

    def test_latest_checkpoint_none_when_absent(self, store):
        run, _ = store.submit_run(SPEC)
        assert store.latest_checkpoint(run.id) is None

    def test_audit_upsert_roundtrip(self, store):
        run, _ = store.submit_run(SPEC)
        assert store.get_audit(run.id) is None
        store.save_audit(run.id, {"slo": {"passed": False}}, passed=False)
        store.save_audit(run.id, {"slo": {"passed": True}}, passed=True)
        audit = store.get_audit(run.id)
        assert audit.passed is True
        assert audit.report["slo"]["passed"] is True


class TestSweeps:
    def test_sweep_rows_and_progress(self, store):
        sweep = store.create_sweep("s", SPEC, {"params.seed": [1, 2]}, 2)
        for seed in (1, 2):
            doc = dict(SPEC, params={"seed": seed})
            store.submit_run(doc, sweep_id=sweep.id, dedupe=False)
        assert store.get_sweep(sweep.id).grid == {"params.seed": [1, 2]}
        progress = store.sweep_progress(sweep.id)
        assert progress["queued"] == 2
        assert len(store.list_runs(sweep_id=sweep.id)) == 2
        with pytest.raises(KeyError):
            store.sweep_progress(99)

    def test_list_runs_status_filter_validated(self, store):
        with pytest.raises(StoreError, match="unknown status"):
            store.list_runs(status="bogus")
