"""LTI views, tracking metrics, and packing lower bounds."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.arx import ARXModel
from repro.control.lti import (
    arx_to_state_space,
    dominant_time_constant,
    step_response,
)
from repro.core.controller.analysis import (
    settling_time_s,
    tracking_metrics,
    violation_ratio,
)
from repro.packing.bounds import capacity_bound_servers, l1_bound, l2_bound
from repro.packing import first_fit_decreasing


class TestLTI:
    def _model(self):
        return ARXModel(a=[0.5], b=[[-800.0, -300.0], [-100.0, -50.0]], g=1800.0)

    def test_state_space_matches_arx_simulation(self, rng):
        model = self._model()
        ss = arx_to_state_space(model)
        K = 40
        c_seq = rng.uniform(0.2, 1.5, size=(K, 2))
        y_eq = model.g / (1 - model.a.sum())
        arx_out = model.simulate(
            [y_eq] * model.na, c_seq,
            c_init=np.zeros((max(model.nb - 1, 1), 2)),
        )
        ss_out = ss.simulate(c_seq)
        np.testing.assert_allclose(ss_out, arx_out, rtol=1e-9, atol=1e-6)

    def test_state_space_rejects_integrator(self):
        with pytest.raises(ValueError):
            arx_to_state_space(ARXModel(a=[1.0], b=[[-1.0]], g=0.0))

    def test_step_response_converges_to_dc_gain(self):
        model = self._model()
        resp = step_response(model, input_index=0, step_size=0.1, n_steps=120)
        assert resp[-1] == pytest.approx(model.dc_gain()[0] * 0.1, rel=1e-6)

    def test_step_response_negative_gains_monotone_down(self):
        model = self._model()
        resp = step_response(model, 0, 0.5, 40)
        assert resp[-1] < 0
        assert np.all(np.diff(resp) <= 1e-9)

    def test_step_response_validation(self):
        model = self._model()
        with pytest.raises(ValueError):
            step_response(model, 5)
        with pytest.raises(ValueError):
            step_response(model, 0, n_steps=0)

    def test_dominant_time_constant(self):
        # |z| = 0.5, T = 15 s -> tau = -15/ln 0.5 ~ 21.6 s.
        m = ARXModel(a=[0.5], b=[[-1.0]], g=0.0)
        assert dominant_time_constant(m, 15.0) == pytest.approx(21.64, abs=0.05)

    def test_time_constant_edge_cases(self):
        assert dominant_time_constant(ARXModel(a=[1.0], b=[[-1.0]]), 1.0) == math.inf
        assert dominant_time_constant(ARXModel(a=[0.0], b=[[-1.0]]), 1.0) == 0.0


class TestTrackingMetrics:
    def test_settling_detects_convergence(self):
        values = [3000, 2000, 1400, 1100, 1000, 990, 1010, 1005, 995, 1000]
        assert settling_time_s(values, 1000.0, 15.0) == pytest.approx(2 * 15.0)

    def test_settling_nan_when_never(self):
        assert math.isnan(settling_time_s([5000] * 10, 1000.0, 15.0))

    def test_violation_ratio_counts_upward_only(self):
        values = [500, 900, 1100, 2000]  # two above the set point
        assert violation_ratio(values, 1000.0) == pytest.approx(0.5)
        assert violation_ratio(values, 1000.0, tolerance=0.5) == pytest.approx(0.25)

    def test_violation_counts_nan_as_violation(self):
        assert violation_ratio([float("nan"), 500.0], 1000.0) == pytest.approx(0.5)

    def test_tracking_metrics_composite(self):
        values = [2500, 1800, 1300, 1050, 1000, 980, 1020, 990, 1010, 1000]
        m = tracking_metrics(values, 1000.0, 15.0)
        assert m.steady_state_error_frac < 0.05
        assert m.settling_s <= 4 * 15.0
        assert m.overshoot_frac < 0.31  # 1300 reached after entering band? no: first inside at idx 3
        assert 0.0 <= m.violation_ratio <= 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            tracking_metrics([], 1000.0, 15.0)


class TestPackingBounds:
    def test_l1_simple(self):
        assert l1_bound([0.5, 0.5, 0.5, 0.5], 1.0) == 2
        assert l1_bound([], 1.0) == 0

    def test_l2_beats_l1_on_big_items(self):
        # Four items of 0.6: L1 = ceil(2.4) = 3, but none can share: L2 = 4.
        sizes = [0.6, 0.6, 0.6, 0.6]
        assert l1_bound(sizes, 1.0) == 3
        assert l2_bound(sizes, 1.0) == 4

    def test_item_too_big_rejected(self):
        with pytest.raises(ValueError):
            l1_bound([1.5], 1.0)

    def test_capacity_bound_heterogeneous(self):
        # Demand 10 with servers 8, 4, 2: biggest-first needs 2 servers.
        assert capacity_bound_servers([10.0], [8.0, 4.0, 2.0]) == 2
        assert capacity_bound_servers([1.0], [8.0, 4.0]) == 1
        assert capacity_bound_servers([], [8.0]) == 0

    def test_capacity_bound_infeasible(self):
        with pytest.raises(ValueError):
            capacity_bound_servers([100.0], [8.0, 4.0])

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_bounds_never_exceed_ffd(self, data):
        """L1 <= L2 <= bins used by FFD (a feasible packing)."""
        n = data.draw(st.integers(1, 15))
        sizes = [data.draw(st.floats(0.05, 1.0)) for _ in range(n)]
        caps = [[1.0]] * n
        assignment = first_fit_decreasing([[s] for s in sizes], caps)
        used = len({b for b in assignment if b is not None})
        lb1 = l1_bound(sizes, 1.0)
        lb2 = l2_bound(sizes, 1.0)
        assert lb1 <= lb2 <= used

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_l2_matches_bruteforce_optimum_lower(self, data):
        """L2 never exceeds the true optimum (brute force on tiny sets)."""
        n = data.draw(st.integers(1, 6))
        sizes = [data.draw(st.floats(0.05, 1.0)) for _ in range(n)]
        lb2 = l2_bound(sizes, 1.0)
        # Brute force: try all partitions via assignment vectors.
        best = n
        for combo in itertools.product(range(n), repeat=n):
            loads = {}
            ok = True
            for s, b in zip(sizes, combo):
                loads[b] = loads.get(b, 0.0) + s
                if loads[b] > 1.0 + 1e-9:
                    ok = False
                    break
            if ok:
                best = min(best, len(loads))
        assert lb2 <= best
