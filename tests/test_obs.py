"""Telemetry subsystem: registry math, spans, backends, summarize."""

import io
import json
import math

import numpy as np
import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    InMemoryBackend,
    JsonlBackend,
    MetricsRegistry,
    NullBackend,
    PrometheusTextBackend,
    Telemetry,
    get_telemetry,
    render_summary,
    set_telemetry,
    summarize_events,
    summarize_jsonl,
    use_telemetry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1.0)

    def test_reset(self):
        c = Counter("x")
        c.inc(5)
        c.reset()
        assert c.value == 0.0


class TestGauge:
    def test_nan_until_set(self):
        g = Gauge("x")
        assert math.isnan(g.value)
        g.set(4.0)
        assert g.value == 4.0

    def test_inc_from_unset_starts_at_zero(self):
        g = Gauge("x")
        g.inc(3.0)
        assert g.value == 3.0
        g.inc(-1.0)
        assert g.value == 2.0


class TestHistogram:
    def test_exact_aggregates(self):
        h = Histogram("h")
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        assert h.count == 4
        assert h.sum == 10.0
        assert h.mean == 2.5
        assert h.min == 1.0
        assert h.max == 4.0

    def test_quantiles_match_numpy(self):
        h = Histogram("h")
        values = list(range(101))
        for v in values:
            h.observe(v)
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(np.percentile(values, 100 * q))

    def test_empty_quantile_nan(self):
        assert math.isnan(Histogram("h").quantile(0.5))

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_nan_observations_ignored(self):
        h = Histogram("h")
        h.observe(float("nan"))
        assert h.count == 0

    def test_decimation_bounds_memory_but_keeps_exact_count(self):
        h = Histogram("h", max_samples=64)
        n = 10_000
        for v in range(n):
            h.observe(v)
        assert h.n_retained < 64
        assert h.count == n
        assert h.sum == sum(range(n))
        assert h.min == 0 and h.max == n - 1
        # retained samples span the full range, so the median stays close
        assert h.quantile(0.5) == pytest.approx(n / 2, rel=0.1)

    def test_summary_keys(self):
        h = Histogram("h")
        h.observe(1.0)
        assert set(h.summary()) == {
            "count", "sum", "mean", "min", "max", "p50", "p90", "p99",
        }


class TestMetricsRegistry:
    def test_create_on_demand_and_reuse(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("b") is reg.histogram("b")

    def test_name_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("x")

    def test_convenience_helpers(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.set_gauge("g", 7.0)
        reg.observe("h", 1.0)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 2.0
        assert snap["gauges"]["g"] == 7.0
        assert snap["histograms"]["h"]["count"] == 1.0

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.inc("mpc.solves", 3)
        reg.set_gauge("active servers", 2.0)
        reg.observe("span.mpc.solve", 0.5)
        text = reg.to_prometheus()
        assert "# TYPE mpc_solves counter" in text
        assert "mpc_solves 3" in text
        assert "active_servers 2" in text  # spaces sanitized
        assert 'span_mpc_solve{quantile="0.5"} 0.5' in text
        assert "span_mpc_solve_count 1" in text


class TestSpans:
    def test_nesting_depth_and_parent(self):
        backend = InMemoryBackend()
        tel = Telemetry(backend)
        with tel.span("outer"):
            with tel.span("inner", app=3):
                pass
        spans = backend.of_kind("span")
        inner, outer = spans[0], spans[1]  # inner closes first
        assert inner["name"] == "inner"
        assert inner["depth"] == 1
        assert inner["parent"] == "outer"
        assert inner["app"] == 3
        assert outer["name"] == "outer"
        assert outer["depth"] == 0
        assert "parent" not in outer

    def test_duration_feeds_span_histogram(self):
        tel = Telemetry(InMemoryBackend())
        with tel.span("work"):
            pass
        h = tel.registry.histogram("span.work")
        assert h.count == 1
        assert h.sum >= 0.0

    def test_annotate_lands_in_record(self):
        backend = InMemoryBackend()
        tel = Telemetry(backend)
        with tel.span("s") as sp:
            sp.annotate(nodes=42)
        assert backend.of_kind("span")[0]["nodes"] == 42

    def test_exception_marks_error_and_propagates(self):
        backend = InMemoryBackend()
        tel = Telemetry(backend)
        with pytest.raises(RuntimeError):
            with tel.span("boom"):
                raise RuntimeError("x")
        assert backend.of_kind("span")[0]["error"] is True


class TestNullBackend:
    def test_disabled_telemetry_is_inert(self):
        tel = Telemetry(NullBackend())
        assert tel.enabled is False
        span = tel.span("anything")
        with span:
            pass
        # disabled spans are the shared no-op singleton: no allocation
        assert tel.span("other") is span
        tel.count("c")
        tel.observe("h", 1.0)
        tel.event("e", x=1)
        assert tel.registry.names() == []

    def test_default_process_telemetry_is_disabled(self):
        assert get_telemetry().enabled is False


class TestTelemetryScope:
    def test_use_telemetry_installs_and_restores(self):
        before = get_telemetry()
        tel = Telemetry(InMemoryBackend())
        with use_telemetry(tel, close=False):
            assert get_telemetry() is tel
        assert get_telemetry() is before

    def test_set_telemetry_none_restores_null(self):
        prev = set_telemetry(Telemetry(InMemoryBackend()))
        try:
            assert get_telemetry().enabled
        finally:
            set_telemetry(None)
        assert get_telemetry().enabled is False
        assert prev.enabled is False

    def test_close_emits_metrics_snapshot_once(self):
        backend = InMemoryBackend()
        tel = Telemetry(backend)
        tel.count("c", 5)
        tel.close()
        tel.close()  # idempotent
        finals = backend.of_kind("metrics")
        assert len(finals) == 1
        assert finals[0]["metrics"]["counters"]["c"] == 5.0


class TestJsonlBackend:
    def test_round_trip_including_numpy(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with use_telemetry(Telemetry(JsonlBackend(path))) as tel:
            tel.event("control_period", rts=np.array([1.0, 2.0]), n=np.int64(3))
            with tel.span("mpc.solve"):
                pass
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        kinds = [r["kind"] for r in records]
        assert kinds == ["control_period", "span", "metrics"]
        assert records[0]["rts"] == [1.0, 2.0]
        assert records[0]["n"] == 3

    def test_stream_target_left_open(self):
        buf = io.StringIO()
        backend = JsonlBackend(buf)
        backend.emit({"kind": "e"})
        backend.close()
        assert not buf.closed
        assert json.loads(buf.getvalue()) == {"kind": "e"}


class TestPrometheusTextBackend:
    def test_writes_registry_on_close(self, tmp_path):
        path = tmp_path / "metrics.prom"
        with use_telemetry(Telemetry(PrometheusTextBackend(path))) as tel:
            tel.count("mpc.solves", 4)
        text = path.read_text()
        assert "mpc_solves 4" in text


class TestSummarize:
    def _records(self):
        return [
            {"kind": "run_config", "harness": "testbed", "n_apps": 2},
            {
                "kind": "control_period",
                "time_s": 30.0,
                "apps": {
                    "0": {"rt_ms": 900.0, "setpoint_ms": 1000.0},
                    "1": {"rt_ms": 1200.0, "setpoint_ms": 1000.0},
                },
            },
            {"kind": "span", "name": "mpc.solve", "duration_s": 0.01, "depth": 1},
            {"kind": "span", "name": "mpc.solve", "duration_s": 0.03, "depth": 1},
            {
                "kind": "optimizer_invocation",
                "time_s": 30.0, "moves": 2, "wake": 0, "sleep": 1, "unplaced": 0,
                "info": {"drain_rounds_accepted": 1},
            },
            {"kind": "migration", "vm": 1, "source": 0, "target": 1},
            {"kind": "server_power", "server": 3, "state": "off"},
            {"kind": "testbed.period", "time_s": 30.0, "power_w": 400.0,
             "active_servers": 3},
        ]

    def test_summarize_events(self):
        s = summarize_events(self._records())
        app0 = s["apps"]["0"]
        assert app0["rt_mean_ms"] == pytest.approx(900.0)
        assert app0["mean_abs_error_ms"] == pytest.approx(100.0)
        span = s["spans"]["mpc.solve"]
        assert span["count"] == 2
        assert span["total_s"] == pytest.approx(0.04)
        opt = s["optimizer"]
        assert opt["invocations"] == 1
        assert opt["migrations"] == 2
        assert opt["info_totals"]["drain_rounds_accepted"] == 1
        assert s["server_transitions"]["off"] == 1
        assert s["migration_events"] == 1
        assert s["power"]["samples"] == 1
        assert s["power"]["mean_w"] == pytest.approx(400.0)

    def test_jsonl_file_round_trip_and_render(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with path.open("w") as fh:
            for r in self._records():
                fh.write(json.dumps(r) + "\n")
        summary = summarize_jsonl(path)
        text = render_summary(summary, title="t")
        assert "mpc.solve" in text
        assert "app" in text

    def test_strict_reader_reports_line_number(self, tmp_path):
        from repro.obs import read_jsonl

        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "span"}\nnot json\n')
        with pytest.raises(ValueError, match=r":2:"):
            read_jsonl(path)

    def test_summarize_skips_and_counts_malformed_lines(self, tmp_path):
        # A run killed mid-write truncates the last record; mid-file
        # corruption (here: a cut-off record and a bare scalar) must be
        # skipped and counted, not abort the analysis.
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"kind": "testbed.period", "time_s": 15.0, "power_w": 400.0}\n'
            'not json\n'
            '42\n'
            '{"kind": "testbed.period", "time_s": 30.0, "power_w": 500.0}\n'
            '{"kind": "testbed.per'
        )
        summary = summarize_jsonl(path)
        assert summary["n_malformed"] == 3
        assert summary["n_records"] == 2
        assert summary["power"]["samples"] == 2
        assert summary["power"]["mean_w"] == pytest.approx(450.0)

    def test_lenient_reader_counts_nothing_on_clean_file(self, tmp_path):
        from repro.obs import read_jsonl_lenient

        path = tmp_path / "ok.jsonl"
        path.write_text('{"kind": "metrics"}\n\n{"kind": "span"}\n')
        records, n_malformed = read_jsonl_lenient(path)
        assert n_malformed == 0
        assert [r["kind"] for r in records] == ["metrics", "span"]


class TestInstrumentationIntegration:
    """The instrumented hot paths emit real events end to end."""

    def test_testbed_run_emits_periods_and_spans(self):
        from repro.sim.testbed import TestbedConfig, TestbedExperiment

        backend = InMemoryBackend()
        with use_telemetry(Telemetry(backend), close=False):
            TestbedExperiment(
                TestbedConfig(n_apps=2, duration_s=60.0, seed=1)
            ).run()
        kinds = {r["kind"] for r in backend.records}
        assert "run_config" in kinds
        assert "control_period" in kinds
        assert "span" in kinds
        span_names = {r["name"] for r in backend.of_kind("span")}
        # The default (fleet) control path batches MPC solves under its
        # own span; scalar mode would emit per-app "mpc.solve" instead.
        assert "manager.fleet_control" in span_names
        assert "manager.control_step" in span_names

    def test_disabled_run_leaves_no_trace(self):
        from repro.sim.testbed import TestbedConfig, TestbedExperiment

        assert get_telemetry().enabled is False
        TestbedExperiment(TestbedConfig(n_apps=2, duration_s=30.0, seed=1)).run()
        assert get_telemetry().registry.names() == []
