"""Fleet-batched control path: equivalence, edge paths, telemetry.

The fleet path (``control_mode="fleet"``, the default) runs every app's
sysid/MPC through the grouped batch kernels; the scalar path is the
bit-reproducible per-app reference loop.  Batched linear algebra
reorders floating-point sums (stacked multi-RHS LAPACK, einsums), so
the two paths are *allclose*, not bit-identical — these tests pin the
tolerance explicitly and assert exact parity for everything discrete
(counters, hold decisions, validation, checkpoint determinism).
"""

import dataclasses
import hashlib
import json

import numpy as np
import pytest

from repro.cluster import Application, DataCenter, Server, VM
from repro.cluster.catalog import TESTBED_SERVER
from repro.control.arx import ARXModel
from repro.core import (
    ControllerConfig,
    PowerManager,
    ResponseTimeController,
)
from repro.core.controller.adaptive import AdaptiveResponseTimeController
from repro.core.fleet import FleetControlStep
from repro.engine.scenario import builtin_registry
from repro.obs import InMemoryBackend, Telemetry, use_telemetry

#: Pinned fleet-vs-scalar tolerance for demand/state trajectories.
#: Stacked multi-RHS solves differ from single-RHS at the ~1 ulp level
#: per solve; over tens of closed (arbitrated, anti-windup) periods the
#: drift stays far below this.  Anything above it is a real divergence.
RTOL = 1e-9
ATOL = 1e-9

_MODEL = ARXModel(a=[0.4], b=[[-800.0, -300.0], [-100.0, -50.0]], g=1800.0)
_MODEL_B = ARXModel(a=[0.35], b=[[-700.0, -250.0], [-120.0, -60.0]], g=1700.0)


def _eventlog_hash(records):
    """The golden event-log hash (same formula as the service runner)."""
    events = [r for r in records if r.get("kind") not in ("span", "metrics")]
    return (
        hashlib.sha256(
            json.dumps(events, sort_keys=True, default=str).encode()
        ).hexdigest(),
        len(events),
    )


def _fleet_dc(n_apps):
    """n_apps two-tier apps spread over a pair of big hosts."""
    dc = DataCenter()
    dc.add_server(Server("T0", TESTBED_SERVER))
    dc.add_server(Server("T1", TESTBED_SERVER))
    for i in range(n_apps):
        web, db = f"app{i}-web", f"app{i}-db"
        for j, vm_id in enumerate((web, db)):
            dc.add_vm(VM(vm_id, app_id=f"app{i}", tier_index=j,
                         memory_mb=512, demand_ghz=0.8))
            dc.place(vm_id, f"T{j}")
        dc.add_application(Application(f"app{i}", [web, db]))
    return dc


def _controller(model=_MODEL, adaptive=False, **cfg_overrides):
    cfg = ControllerConfig(**cfg_overrides)
    cls = AdaptiveResponseTimeController if adaptive else ResponseTimeController
    return cls(
        model, cfg,
        c_min=[0.2, 0.2], c_max=[3.0, 3.0], initial_alloc_ghz=[0.8, 0.8],
    )


def _build_manager(n_apps, control_mode, adaptive=False, heterogeneous=False,
                   **cfg_overrides):
    dc = _fleet_dc(n_apps)
    mgr = PowerManager(dc, control_mode=control_mode)
    for i in range(n_apps):
        model = _MODEL_B if (heterogeneous and i % 2) else _MODEL
        mgr.register_controller(
            f"app{i}", _controller(model, adaptive=adaptive, **cfg_overrides)
        )
    return dc, mgr


def _drive(mgr, n_apps, n_periods, seed=3, nan_for=()):
    """Deterministic measurement/usage sequences -> granted series."""
    rng = np.random.default_rng(seed)
    series = []
    for k in range(n_periods):
        meas, used = {}, {}
        for i in range(n_apps):
            rt = 600.0 + 150.0 * np.sin(k / 4.0 + i) + rng.normal(0.0, 20.0)
            if (i, k) in nan_for:
                rt = float("nan")
            meas[f"app{i}"] = rt
            used[f"app{i}"] = np.abs(rng.normal(0.5, 0.1, size=2))
        result = mgr.control_step(meas, used_ghz=used)
        series.append(np.concatenate(
            [result.granted_ghz[f"app{i}"] for i in range(n_apps)]
        ))
    return np.asarray(series)


class TestFleetScalarEquivalence:
    """Same inputs, both modes: demands match at the pinned tolerance."""

    def test_homogeneous_fleet_matches_scalar(self):
        out = {}
        for mode in ("scalar", "fleet"):
            _, mgr = _build_manager(6, mode)
            out[mode] = _drive(mgr, 6, 25)
        np.testing.assert_allclose(
            out["fleet"], out["scalar"], rtol=RTOL, atol=ATOL
        )

    def test_heterogeneous_models_group_and_match(self):
        out, mgrs = {}, {}
        for mode in ("scalar", "fleet"):
            _, mgr = _build_manager(6, mode, heterogeneous=True)
            out[mode] = _drive(mgr, 6, 20)
            mgrs[mode] = mgr
        np.testing.assert_allclose(
            out["fleet"], out["scalar"], rtol=RTOL, atol=ATOL
        )
        # Two model populations -> two MPC groups of three.
        assert mgrs["fleet"].last_fleet_stats["mpc_groups"] == [3, 3]

    def test_adaptive_fleet_batches_rls_and_matches_scalar(self):
        out, mgrs = {}, {}
        for mode in ("scalar", "fleet"):
            _, mgr = _build_manager(5, mode, adaptive=True)
            out[mode] = _drive(mgr, 5, 25)
            mgrs[mode] = mgr
        np.testing.assert_allclose(
            out["fleet"], out["scalar"], rtol=RTOL, atol=ATOL
        )
        # Exact gate parity: the same samples were learned in both modes.
        total = 0
        for i in range(5):
            a = mgrs["fleet"].controllers[f"app{i}"]
            b = mgrs["scalar"].controllers[f"app{i}"]
            assert a.rls_samples == b.rls_samples
            assert a.estimator.n_updates == b.estimator.n_updates
            # Estimator internals get a looser pin than the demands:
            # the P-matrix recursion amplifies ulp-level reduction
            # differences faster than the (regularized) MPC solution.
            np.testing.assert_allclose(
                a.estimator.theta, b.estimator.theta, rtol=1e-6, atol=1e-6
            )
            total += a.estimator.n_updates
        assert total > 0, "RLS never consumed a sample in either mode"

    def test_controller_state_dicts_match_across_modes(self):
        states = {}
        for mode in ("scalar", "fleet"):
            _, mgr = _build_manager(4, mode)
            _drive(mgr, 4, 15)
            states[mode] = [
                mgr.controllers[f"app{i}"].state_dict() for i in range(4)
            ]
        for sf, ss in zip(states["fleet"], states["scalar"]):
            assert sf.keys() == ss.keys()
            np.testing.assert_allclose(
                sf["t_hist"], ss["t_hist"], rtol=RTOL, atol=ATOL
            )
            np.testing.assert_allclose(
                sf["c_hist"], ss["c_hist"], rtol=RTOL, atol=ATOL
            )
            np.testing.assert_allclose(
                sf["bias"], ss["bias"], rtol=RTOL, atol=ATOL
            )
            assert sf["consecutive_missing"] == ss["consecutive_missing"]
            assert sf["held_updates"] == ss["held_updates"]


class TestEdgePathsBothModes:
    """PowerManager.control_step edge paths under fleet and scalar."""

    @pytest.mark.parametrize("mode", ["fleet", "scalar"])
    def test_unregistered_app_all_or_nothing(self, mode):
        dc, mgr = _build_manager(2, mode)
        before = {vm_id: vm.demand_ghz for vm_id, vm in dc.vms.items()}
        with pytest.raises(KeyError, match="ghost"):
            mgr.control_step({"app0": 900.0, "ghost": 500.0})
        after = {vm_id: vm.demand_ghz for vm_id, vm in dc.vms.items()}
        assert after == before  # nothing written before the abort

    def test_nan_hold_counter_parity(self):
        """NaN measurements under missing_policy=hold: identical hold
        decisions, counters, and demands in both modes."""
        nan_at = {(0, 3), (0, 4), (1, 7)}
        out, mgrs = {}, {}
        for mode in ("scalar", "fleet"):
            _, mgr = _build_manager(
                3, mode, missing_policy="hold", max_hold_periods=2
            )
            out[mode] = _drive(mgr, 3, 12, nan_for=nan_at)
            mgrs[mode] = mgr
        np.testing.assert_allclose(
            out["fleet"], out["scalar"], rtol=RTOL, atol=ATOL
        )
        for i in range(3):
            a = mgrs["fleet"].controllers[f"app{i}"]
            b = mgrs["scalar"].controllers[f"app{i}"]
            assert a.held_updates == b.held_updates
            assert a._consecutive_missing == b._consecutive_missing
        assert mgrs["fleet"].controllers["app0"].held_updates == 2
        assert mgrs["fleet"].controllers["app1"].held_updates == 1

    def test_hold_escalates_pessimistically_in_both_modes(self):
        """Past max_hold_periods the fleet must also fall back to the
        clamp-limit substitution, not keep holding."""
        for mode in ("scalar", "fleet"):
            _, mgr = _build_manager(
                1, mode, missing_policy="hold", max_hold_periods=2
            )
            nan_at = {(0, k) for k in range(2, 8)}
            _drive(mgr, 1, 8, nan_for=nan_at)
            ctrl = mgr.controllers["app0"]
            assert ctrl.held_updates == 2, mode
            # Escalated periods consumed the pessimistic substitution.
            assert ctrl._t_hist[0] == ctrl.config.measurement_limit_ms, mode

    def test_used_ghz_band_guard_equivalence(self):
        """The utilization-band bounds tighten identically in both
        modes (used_ghz flows through prepare() untouched)."""
        out = {}
        for mode in ("scalar", "fleet"):
            _, mgr = _build_manager(
                4, mode, util_band=(0.75, 0.985), util_band_headroom_ghz=0.1
            )
            out[mode] = _drive(mgr, 4, 15, seed=11)
        np.testing.assert_allclose(
            out["fleet"], out["scalar"], rtol=RTOL, atol=ATOL
        )

    def test_invalid_control_mode_rejected(self):
        dc = _fleet_dc(1)
        with pytest.raises(ValueError, match="control_mode"):
            PowerManager(dc, control_mode="batched")


class TestFleetStepUnit:
    def test_held_apps_skip_the_solve_batch(self):
        ctrls = {
            "a": _controller(missing_policy="hold"),
            "b": _controller(missing_policy="hold"),
        }
        step = FleetControlStep(ctrls)
        demands, stats = step.run({"a": float("nan"), "b": 700.0})
        assert stats["held"] == 1 and stats["solved"] == 1
        np.testing.assert_array_equal(demands["a"], [0.8, 0.8])
        assert ctrls["a"].held_updates == 1
        assert ctrls["b"].last_solution is not None

    def test_registration_after_construction_is_picked_up(self):
        dc, mgr = _build_manager(1, "fleet")
        web, db = "app9-web", "app9-db"
        for j, vm_id in enumerate((web, db)):
            dc.add_vm(VM(vm_id, app_id="app9", tier_index=j,
                         memory_mb=512, demand_ghz=0.8))
            dc.place(vm_id, f"T{j}")
        dc.add_application(Application("app9", [web, db]))
        mgr.register_controller("app9", _controller())
        result = mgr.control_step({"app0": 800.0, "app9": 900.0})
        assert set(result.granted_ghz) == {"app0", "app9"}
        assert mgr.last_fleet_stats["mpc_groups"] == [2]


class TestFleetTelemetry:
    def test_batch_metrics_and_span_fields(self):
        backend = InMemoryBackend()
        with use_telemetry(Telemetry(backend), close=False) as tel:
            _, mgr = _build_manager(6, "fleet", heterogeneous=True)
            _drive(mgr, 6, 3)
            snap = tel.registry.snapshot()
        # Two model groups per step, three steps.
        assert snap["counters"]["controller.batch_groups"] == 6
        hist = snap["histograms"]["controller.batch_size"]
        assert hist["count"] == 6
        assert hist["max"] == 3.0
        spans = [r for r in backend.of_kind("span")
                 if r["name"] == "manager.fleet_control"]
        assert spans, "no manager.fleet_control span emitted"
        assert spans[0]["batch_groups"] == 2
        assert sorted(spans[0]["batch_group_sizes"], reverse=True) == [3, 3]
        assert spans[0]["held"] == 0

    def test_scalar_mode_emits_no_fleet_span(self):
        backend = InMemoryBackend()
        with use_telemetry(Telemetry(backend), close=False):
            _, mgr = _build_manager(2, "scalar")
            _drive(mgr, 2, 2)
        names = {r["name"] for r in backend.of_kind("span")}
        assert "manager.fleet_control" not in names
        assert "mpc.solve" in names


class TestBuiltinScenariosFleet:
    """Fleet mode over the builtin scenarios: runs, faults, resume."""

    def _spec(self, name, mode="fleet"):
        spec = builtin_registry().get(name)
        return dataclasses.replace(
            spec, params={**spec.params, "control_mode": mode}
        )

    def _run(self, spec):
        mem = InMemoryBackend()
        with use_telemetry(Telemetry(mem)):
            engine, backend = spec.build()
            try:
                backend.start()
                engine.run()
                result = backend.result()
            finally:
                closer = getattr(backend, "close", None)
                if closer is not None:
                    closer()
        return result, _eventlog_hash(mem.records)

    @pytest.mark.parametrize("name", ["testbed-small", "testbed-faulted"])
    def test_fleet_run_is_deterministic(self, name):
        spec = self._spec(name)
        res_a, hash_a = self._run(spec)
        res_b, hash_b = self._run(spec)
        assert hash_a == hash_b
        assert res_a.power_summary() == res_b.power_summary()

    @pytest.mark.parametrize("name", ["testbed-small", "testbed-faulted"])
    def test_fleet_checkpoint_resume_bit_identical(self, name):
        """Replay-resume reproduces the uninterrupted fleet run exactly
        (the fleet path is deterministic within a process)."""
        spec = self._spec(name)
        _, full_hash = self._run(spec)

        split = InMemoryBackend()
        engine1, plant1 = spec.build()
        with use_telemetry(Telemetry(split)):
            plant1.start()
            engine1.run(until_period=5)
            doc = json.loads(json.dumps(engine1.checkpoint()))
        engine2, plant2 = spec.build()
        with use_telemetry(Telemetry(split)):
            engine2.restore(doc)
            assert engine2.k == 5
            engine2.run()
            plant2.result()
        assert _eventlog_hash(split.records) == full_hash

    @pytest.mark.parametrize("name", ["largescale-small", "largescale-faulted"])
    def test_largescale_control_mode_is_hash_identical(self, name):
        """The large-scale backend is fleet-vectorized by construction:
        both control modes must produce the same golden event log."""
        res_f, hash_f = self._run(self._spec(name, "fleet"))
        res_s, hash_s = self._run(self._spec(name, "scalar"))
        assert hash_f == hash_s
        assert res_f.total_energy_wh == res_s.total_energy_wh

    def test_sharded_small_runs_in_fleet_mode(self):
        result, (_, n_events) = self._run(self._spec("sharded-small"))
        assert result.total_energy_wh > 0
        assert n_events > 0
