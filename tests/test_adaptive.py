"""Online adaptation: RLS estimator and the supervised adaptive controller."""

import numpy as np
import pytest

from repro.control.arx import ARXModel
from repro.core.controller import (
    AdaptiveResponseTimeController,
    ControllerConfig,
    ResponseTimeController,
)
from repro.sysid import RecursiveARXEstimator
from repro.sysid.excitation import excitation_trajectory


def _simulate_plant(model, c_seq, t0, noise_std, rng):
    """Generate (t, aligned histories) from an ARX plant."""
    t_hist = [t0] * model.na
    c_hist = [c_seq[0]] * model.nb
    ts = []
    for k in range(c_seq.shape[0]):
        c_hist.insert(0, c_seq[k])
        c_hist = c_hist[: model.nb]
        t = model.one_step(t_hist, np.asarray(c_hist)) + rng.normal(0, noise_std)
        ts.append(t)
        t_hist.insert(0, t)
        t_hist = t_hist[: model.na]
    return np.asarray(ts)


class TestRLS:
    def _true_model(self):
        return ARXModel(a=[0.4], b=[[-900.0, -300.0], [-120.0, -60.0]], g=1700.0)

    def test_converges_to_true_parameters(self, rng):
        true = self._true_model()
        start = ARXModel(a=true.a * 0.5, b=true.b * 0.5, g=true.g * 1.3)
        est = RecursiveARXEstimator(start, forgetting=0.99)
        c_seq = excitation_trajectory(600, [0.3, 0.3], [1.2, 1.2], rng)
        t = _simulate_plant(true, c_seq, 1000.0, 5.0, rng)
        for k in range(2, 600):
            t_hist = t[k - 1 :: -1][: true.na]
            c_hist = c_seq[k::-1][: true.nb]
            est.update(t[k], t_hist, c_hist)
        learned = est.model
        np.testing.assert_allclose(learned.a, true.a, atol=0.08)
        np.testing.assert_allclose(learned.b, true.b, rtol=0.25, atol=40.0)

    def test_tracks_parameter_drift(self, rng):
        # Drifted plant: gains x1.8 with the offset raised so the output
        # stays in a physical (positive) range.
        true = self._true_model()
        drifted = ARXModel(a=true.a, b=true.b * 1.8, g=3600.0)
        est = RecursiveARXEstimator(true, forgetting=0.99)
        c_seq = excitation_trajectory(1500, [0.3, 0.3], [1.2, 1.2], rng)
        t = _simulate_plant(drifted, c_seq, 1000.0, 5.0, rng)
        for k in range(2, 1500):
            est.update(t[k], t[k - 1 :: -1][:1], c_seq[k::-1][:2])
        np.testing.assert_allclose(est.model.b, drifted.b, rtol=0.35, atol=100.0)

    def test_projection_keeps_physical_signs(self, rng):
        start = self._true_model()
        est = RecursiveARXEstimator(start)
        # Feed pure noise; parameters must stay physical throughout.
        for _ in range(100):
            est.update(
                float(rng.uniform(100, 3000)),
                [float(rng.uniform(100, 3000))],
                rng.uniform(0.2, 2.0, size=(2, 2)),
            )
            assert np.all(est.model.b <= 1e-12)
            assert np.all(est.model.a >= -1e-12)
            assert np.all(est.model.a <= 0.98)

    def test_step_clipping_bounds_single_update(self):
        start = self._true_model()
        est = RecursiveARXEstimator(start, max_relative_step=0.1)
        before = est.theta.copy()
        # One wildly inconsistent sample.
        est.update(1e6, [1000.0], np.array([[1.0, 1.0], [1.0, 1.0]]))
        delta = np.abs(est.theta - before)
        assert np.all(delta <= 0.1 * est.scale + 1e-9)

    def test_nonfinite_measurement_ignored(self):
        est = RecursiveARXEstimator(self._true_model())
        before = est.theta.copy()
        est.update(float("nan"), [1000.0], np.ones((2, 2)))
        np.testing.assert_array_equal(est.theta, before)
        assert est.n_updates == 0

    def test_covariance_trace_capped(self, rng):
        est = RecursiveARXEstimator(self._true_model(), forgetting=0.9)
        cap = est._trace_cap
        for _ in range(300):
            # Identical regressors -> covariance inflates along unexcited
            # directions under forgetting; the cap must hold it.
            est.update(1000.0, [1000.0], np.ones((2, 2)))
        assert float(np.trace(est.P)) <= cap * 1.001

    def test_validation(self):
        with pytest.raises(ValueError):
            RecursiveARXEstimator(self._true_model(), forgetting=0.5)
        with pytest.raises(ValueError):
            RecursiveARXEstimator(self._true_model(), max_relative_step=0.0)


class TestAdaptiveController:
    def _base(self):
        return ARXModel(a=[0.4], b=[[-800.0, -300.0], [-100.0, -50.0]], g=1800.0)

    def _closed_loop(self, ctrl, plant_model, periods, rng, setpoint=1000.0):
        t_hist = [setpoint]
        c_hist = [ctrl.current_demand_ghz] * 2
        t_k = setpoint
        history = []
        for _ in range(periods):
            c_next = ctrl.update(t_k)
            c_hist.insert(0, c_next)
            c_hist = c_hist[:2]
            t_k = plant_model.one_step(t_hist, np.asarray(c_hist)) + rng.normal(0, 20.0)
            t_hist = [t_k]
            history.append(t_k)
        return np.asarray(history)

    def test_matches_static_on_nominal_plant(self, rng):
        base = self._base()
        cfg = ControllerConfig(util_band=None)
        adaptive = AdaptiveResponseTimeController(
            base, cfg, [0.1, 0.1], [3.0, 3.0], [1.0, 1.0]
        )
        rts = self._closed_loop(adaptive, base, 60, rng)
        assert abs(np.mean(rts[30:]) - 1000.0) < 120.0

    def test_candidate_takes_over_when_base_is_wrong(self, rng):
        """Plant gains differ 2x from the base model: the shadow RLS
        improves the *combined* gain estimate and the supervisor engages
        the candidate for at least part of the run.  (Per-tier gains are
        not identifiable from closed-loop data — the controller moves the
        tiers together — so only the summed-gain direction is asserted;
        the plant's offset is raised to keep its operating range
        positive.)"""
        base = self._base()
        true = ARXModel(a=[0.4], b=base.b * 2.0, g=3600.0)
        cfg = ControllerConfig(util_band=None)
        adaptive = AdaptiveResponseTimeController(
            base, cfg, [0.1, 0.1], [3.0, 3.0], [1.0, 1.0],
            min_input_change_ghz=0.01,
        )
        rts = self._closed_loop(adaptive, true, 120, rng)
        assert adaptive.rls_samples > 10
        assert adaptive.candidate_periods > 0
        true_sum = true.b.sum()
        cand_err = abs(adaptive.estimator.model.b.sum() - true_sum)
        base_err = abs(base.b.sum() - true_sum)
        assert cand_err < base_err
        assert abs(np.mean(rts[80:]) - 1000.0) < 200.0

    def test_supervisor_rejects_bad_candidate(self, rng):
        """When clean samples are scarce the candidate cannot out-predict
        the base; the controller must keep using the base model."""
        base = self._base()
        cfg = ControllerConfig(util_band=None)
        adaptive = AdaptiveResponseTimeController(
            base, cfg, [0.1, 0.1], [3.0, 3.0], [1.0, 1.0],
            min_input_change_ghz=10.0,  # gate excludes everything
        )
        self._closed_loop(adaptive, base, 40, rng)
        assert adaptive.rls_samples == 0
        assert not adaptive.using_candidate
        assert adaptive.model is adaptive.base_model

    def test_worst_case_degrades_to_static(self, rng):
        """With supervision active, the adaptive controller's tracking on
        the nominal plant stays close to the static controller's."""
        base = self._base()
        cfg = ControllerConfig(util_band=None)
        static = ResponseTimeController(base, cfg, [0.1, 0.1], [3.0, 3.0], [1.0, 1.0])
        adaptive = AdaptiveResponseTimeController(
            base, cfg, [0.1, 0.1], [3.0, 3.0], [1.0, 1.0]
        )
        rng2 = np.random.default_rng(7)
        rng3 = np.random.default_rng(7)
        rts_static = self._closed_loop(static, base, 80, rng2)
        rts_adaptive = self._closed_loop(adaptive, base, 80, rng3)
        err_static = np.abs(rts_static[40:] - 1000.0).mean()
        err_adaptive = np.abs(rts_adaptive[40:] - 1000.0).mean()
        assert err_adaptive < err_static * 2.0 + 20.0

    def test_validation(self):
        base = self._base()
        cfg = ControllerConfig()
        with pytest.raises(ValueError):
            AdaptiveResponseTimeController(
                base, cfg, [0.1, 0.1], [3.0, 3.0], [1.0, 1.0], switch_margin=0.0
            )
        with pytest.raises(ValueError):
            AdaptiveResponseTimeController(
                base, cfg, [0.1, 0.1], [3.0, 3.0], [1.0, 1.0], error_forgetting=1.0
            )