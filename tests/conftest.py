"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.arx import ARXModel
from repro.core.optimizer.types import PlacementProblem, ServerInfo, VMInfo


@pytest.fixture
def rng():
    """A deterministic generator; reseed per test for isolation."""
    return np.random.default_rng(12345)


@pytest.fixture
def simple_arx():
    """A stable two-input ARX model with negative gains (response-time-like)."""
    return ARXModel(a=[0.4], b=[[-800.0, -300.0], [-100.0, -50.0]], g=1800.0)


def make_server_info(
    server_id: str,
    capacity: float = 8.0,
    memory: float = 8192.0,
    efficiency: float = 0.04,
    active: bool = True,
    idle_w: float = 100.0,
    busy_w: float = 200.0,
    sleep_w: float = 8.0,
) -> ServerInfo:
    """Terse ServerInfo factory for optimizer tests."""
    return ServerInfo(
        server_id=server_id,
        max_capacity_ghz=capacity,
        memory_mb=memory,
        efficiency=efficiency,
        active=active,
        idle_w=idle_w,
        busy_w=busy_w,
        sleep_w=sleep_w,
    )


def make_vm_info(vm_id: str, demand: float = 1.0, memory: float = 1024.0) -> VMInfo:
    """Terse VMInfo factory for optimizer tests."""
    return VMInfo(vm_id=vm_id, demand_ghz=demand, memory_mb=memory)


@pytest.fixture
def heterogeneous_problem():
    """Three server classes with distinct efficiencies, six VMs, unplaced."""
    servers = (
        make_server_info("sA", capacity=12.0, memory=16384, efficiency=0.040),
        make_server_info("sB", capacity=4.0, memory=8192, efficiency=0.027, active=False),
        make_server_info("sC", capacity=3.0, memory=4096, efficiency=0.022, active=False),
    )
    vms = tuple(
        make_vm_info(f"vm{i}", demand=d, memory=m)
        for i, (d, m) in enumerate(
            [(1.5, 2048), (1.0, 1024), (0.8, 1024), (0.5, 512), (0.4, 512), (0.3, 512)]
        )
    )
    return PlacementProblem(servers=servers, vms=vms, mapping={})


def check_plan_feasible(problem: PlacementProblem, plan) -> None:
    """Assert a placement plan respects CPU and memory capacities."""
    for sid in set(plan.final_mapping.values()):
        server = problem.server_by_id(sid)
        vms = [v for v in problem.vms if plan.final_mapping.get(v.vm_id) == sid]
        load = sum(v.demand_ghz for v in vms)
        mem = sum(v.memory_mb for v in vms)
        assert load <= server.max_capacity_ghz + 1e-9, (
            f"{sid} CPU overcommitted: {load} > {server.max_capacity_ghz}"
        )
        assert mem <= server.memory_mb + 1e-9, (
            f"{sid} memory overcommitted: {mem} > {server.memory_mb}"
        )
