"""Extension features: approximate MVA, trace analytics, SLA metrics, CLI."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import approx_mva_closed_network, mva_closed_network
from repro.sim.metrics import PeriodStats
from repro.traces import (
    TraceConfig,
    UtilizationTrace,
    generate_trace,
    sector_statistics,
    trace_statistics,
)
from repro.traces.stats import aggregate_demand_profile


class TestApproxMVA:
    @settings(max_examples=30, deadline=None)
    @given(
        data=st.data(),
        n=st.integers(1, 200),
        z=st.floats(0.0, 3.0),
    )
    def test_close_to_exact(self, data, n, z):
        m = data.draw(st.integers(1, 4))
        s = [data.draw(st.floats(0.005, 0.1)) for _ in range(m)]
        exact = mva_closed_network(s, n, z)
        approx = approx_mva_closed_network(s, n, z)
        # Schweitzer's documented worst case in unbalanced networks is
        # roughly 25% (empirical worst over 3000 random instances of this
        # family: 24.7%); assert a 30% envelope.
        rel = 0.30
        if exact.response_time_s > 0:
            assert approx.response_time_s == pytest.approx(
                exact.response_time_s, rel=rel
            )
        assert approx.throughput_rps == pytest.approx(
            exact.throughput_rps, rel=rel
        )
        # Physical sanity regardless of population size.
        assert approx.response_time_s >= sum(s) - 1e-9
        assert np.all(approx.station_utilization <= 1.0 + 1e-9)

    def test_zero_clients(self):
        res = approx_mva_closed_network([0.1], 0, 1.0)
        assert res.response_time_s == 0.0
        assert res.throughput_rps == 0.0

    def test_exact_for_one_client(self):
        exact = mva_closed_network([0.05, 0.02], 1, 1.0)
        approx = approx_mva_closed_network([0.05, 0.02], 1, 1.0)
        assert approx.response_time_s == pytest.approx(exact.response_time_s, rel=1e-6)

    def test_utilization_bounded(self):
        res = approx_mva_closed_network([0.02, 0.015], 500, 1.0)
        assert np.all(res.station_utilization <= 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            approx_mva_closed_network([], 1, 1.0)
        with pytest.raises(ValueError):
            approx_mva_closed_network([0.1], -1, 1.0)


class TestTraceStats:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(TraceConfig(n_servers=300, n_days=2), rng=17)

    def test_basic_ranges(self, trace):
        stats = trace_statistics(trace)
        assert stats.n_series == 300
        assert 0.0 < stats.mean < 1.0
        assert stats.p95 > stats.mean
        assert stats.peak_to_mean >= 1.0
        assert -1.0 <= stats.lag1_autocorr <= 1.0
        assert stats.diurnal_range > 0.0

    def test_trace_is_strongly_autocorrelated(self, trace):
        """15-minute utilization averages are smooth — consolidation's
        'demand now predicts demand soon' assumption holds."""
        assert trace_statistics(trace).lag1_autocorr > 0.5

    def test_sector_breakdown_covers_all(self, trace):
        per_sector = sector_statistics(trace)
        assert set(per_sector) == {"manufacturing", "telecom", "financial", "retail"}
        assert sum(s.n_series for s in per_sector.values()) == 300

    def test_sector_requires_labels(self):
        anon = UtilizationTrace(np.full((3, 8), 0.5))
        with pytest.raises(ValueError):
            sector_statistics(anon)

    def test_aggregate_profile(self, trace):
        profile = aggregate_demand_profile(trace, peak_ghz=2.0)
        assert profile.shape == (trace.n_samples,)
        assert np.all(profile >= 0)
        np.testing.assert_allclose(
            profile, trace.utilization.sum(axis=0) * 2.0
        )


class TestSLAMetrics:
    def test_period_stats_metric_lookup(self):
        s = PeriodStats(900.0, 400.0, 10, 2.0, (0.5,), rt_p50_ms=350.0, rt_max_ms=2000.0)
        assert s.metric("p90") == 900.0
        assert s.metric("p50") == 350.0
        assert s.metric("mean") == 400.0
        assert s.metric("max") == 2000.0
        with pytest.raises(ValueError):
            s.metric("p99")

    def test_plant_reports_ordered_metrics(self):
        from repro.apps import AppSpec, MultiTierApp

        app = MultiTierApp(AppSpec.rubbos(), [1.0, 1.0], concurrency=30, rng=3)
        app.warmup(60)
        stats = app.run_period(120.0)
        assert stats.rt_p50_ms <= stats.rt_p90_ms <= stats.rt_max_ms
        assert stats.rt_p50_ms <= stats.rt_mean_ms <= stats.rt_max_ms

    def test_testbed_config_rejects_unknown_metric(self):
        from repro.sim.testbed import TestbedConfig

        with pytest.raises(ValueError):
            TestbedConfig(sla_metric="p99")

    def test_mean_rt_control_tracks(self):
        """Paper §III: 'can be extended to control other SLAs such as
        average ... response times.'"""
        from repro.sim.testbed import TestbedConfig, TestbedExperiment

        config = TestbedConfig(
            n_apps=2, duration_s=450.0, sla_metric="mean", setpoint_ms=500.0
        )
        result = TestbedExperiment(config).run()
        for i in range(2):
            tail = result.recorder.values(f"rt/app{i}")[12:]
            assert np.nanmean(tail) == pytest.approx(500.0, rel=0.2)


class TestCLI:
    def test_testbed_cli(self, capsys):
        from repro.cli import main_testbed

        rc = main_testbed(["--duration", "120", "--apps", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Response-time tracking" in out
        assert "Cluster power" in out

    def test_largescale_cli(self, capsys):
        from repro.cli import main_largescale

        rc = main_largescale(["--vms", "20", "40", "--servers", "60", "--days", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Energy per VM" in out
        assert "ipac Wh/VM" in out

    def test_trace_cli(self, tmp_path, capsys):
        from repro.cli import main_trace
        from repro.traces import UtilizationTrace

        path = str(tmp_path / "t.csv")
        rc = main_trace([path, "--servers", "12", "--days", "1"])
        assert rc == 0
        assert "Wrote" in capsys.readouterr().out
        back = UtilizationTrace.from_csv(path)
        assert back.n_series == 12
        assert back.n_samples == 96
