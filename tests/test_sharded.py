"""ShardedBackend: determinism contract, pool plumbing, scenarios."""

import hashlib
import json

import numpy as np
import pytest

from repro.engine.kernel import ControlPlane
from repro.engine.largescale_backend import LargeScaleBackend, build_largescale_engine
from repro.engine.scenario import builtin_registry
from repro.engine.sharded_backend import (
    ShardedConfig,
    _filter_faults,
    build_sharded_engine,
    partition_pods,
    run_sharded,
)
from repro.faults import FaultEvent, FaultSchedule
from repro.obs import InMemoryBackend, Telemetry, use_telemetry
from repro.sim.largescale import LargeScaleConfig
from repro.traces.generator import TraceConfig, generate_trace


def _events_hash(records):
    """The golden event-log hash (same formula as the service runner)."""
    events = [r for r in records if r.get("kind") not in ("span", "metrics")]
    return (
        hashlib.sha256(
            json.dumps(events, sort_keys=True, default=str).encode()
        ).hexdigest(),
        len(events),
    )


def _trace(n_series=40, seed=13):
    return generate_trace(TraceConfig(n_servers=n_series, n_days=1), rng=seed)


def _base_config(**overrides):
    params = dict(n_vms=24, n_servers=40, seed=5, incremental=True)
    params.update(overrides)
    return LargeScaleConfig(**params)


_FAULTS = FaultSchedule(
    events=(
        FaultEvent(time_s=3600.0, kind="server_crash", target="S0005",
                   duration_s=7200.0),
        FaultEvent(time_s=10800.0, kind="thermal_throttle", target="S0025",
                   duration_s=7200.0, fraction=0.5),
        FaultEvent(time_s=14400.0, kind="migration_failure", target=None,
                   duration_s=21600.0, probability=0.5),
    ),
    seed=11,
)


def _run_observed(build):
    """Run an engine/backend pair under an in-memory telemetry scope."""
    backend_mem = InMemoryBackend()
    with use_telemetry(Telemetry(backend_mem)):
        engine, backend = build()
        try:
            backend.start()
            engine.run()
            result = backend.result()
        finally:
            closer = getattr(backend, "close", None)
            if closer is not None:
                closer()
    return result, backend_mem.records


class TestSingleProcessIdentity:
    def test_one_pod_bit_identical_to_plain_backend(self):
        trace = _trace()
        cfg = _base_config(attribute_power=True)
        plain_res, plain_records = _run_observed(
            lambda: build_largescale_engine(trace, cfg)
        )
        sharded_res, sharded_records = _run_observed(
            lambda: build_sharded_engine(
                trace, ShardedConfig(base=cfg, n_pods=1, workers=1)
            )
        )
        assert _events_hash(plain_records) == _events_hash(sharded_records)
        assert plain_res.total_energy_wh == sharded_res.total_energy_wh
        assert np.array_equal(plain_res.power_series_w, sharded_res.power_series_w)
        assert np.array_equal(plain_res.active_series, sharded_res.active_series)

    def test_two_pods_match_podwise_single_process_runs(self):
        trace = _trace()
        cfg = _base_config(attribute_power=True, faults=_FAULTS)
        scfg = ShardedConfig(base=cfg, n_pods=2, workers=1)

        sharded_res, _ = _run_observed(
            lambda: build_sharded_engine(trace, scfg)
        )
        engine, backend = build_sharded_engine(trace, scfg)
        try:
            backend.start()
            engine.run()
            backend.result()
            sharded_ledger = backend.vm_energy_ledger()
        finally:
            backend.close()

        # Reference: each pod's slice through a plain backend.
        pod_power = []
        pod_ledgers = []
        pod_energy = 0.0
        for spec in partition_pods(trace, scfg):
            pb = LargeScaleBackend(
                spec.trace,
                spec.config,
                servers=spec.servers,
                vm_peaks=spec.vm_peaks,
                vm_memories=spec.vm_memories,
                vm_id_start=spec.vm_id_start,
            )
            pe = ControlPlane(
                period_s=pb.period_s,
                n_periods=pb.n_periods,
                phases=pb.phases(),
                checkpointables={"plant": pb},
                name="largescale",
            )
            pb.start()
            pe.run()
            pres = pb.result()
            pod_energy += pres.total_energy_wh
            pod_power.append(pres.power_series_w)
            pod_ledgers.append(pb.vm_energy_wh)

        assert sharded_res.total_energy_wh == pod_energy
        assert np.array_equal(sharded_res.power_series_w, sum(pod_power))
        assert np.array_equal(sharded_ledger, np.concatenate(pod_ledgers))

    def test_pod_faults_follow_their_servers(self):
        trace = _trace()
        cfg = _base_config(faults=_FAULTS)
        specs = partition_pods(trace, ShardedConfig(base=cfg, n_pods=2))
        kinds = [
            sorted(ev.kind for ev in spec.config.faults.events)
            for spec in specs
        ]
        # Crash (S0005) stays in pod 0, throttle (S0025) in pod 1; the
        # untargeted migration failure lands in both.
        assert kinds[0] == ["migration_failure", "server_crash"]
        assert kinds[1] == ["migration_failure", "thermal_throttle"]
        for spec in specs:
            assert spec.config.faults.seed == _FAULTS.seed

    def test_filter_faults_preserves_none(self):
        assert _filter_faults(None, ["S0000"]) is None


class TestWorkerPool:
    def test_pooled_run_bit_identical_to_inline(self):
        trace = _trace()
        cfg = _base_config(attribute_power=True, faults=_FAULTS)
        inline_res, inline_records = _run_observed(
            lambda: build_sharded_engine(
                trace, ShardedConfig(base=cfg, n_pods=2, workers=1)
            )
        )
        pooled_res, pooled_records = _run_observed(
            lambda: build_sharded_engine(
                trace, ShardedConfig(base=cfg, n_pods=2, workers=2)
            )
        )
        assert _events_hash(inline_records) == _events_hash(pooled_records)
        assert inline_res.total_energy_wh == pooled_res.total_energy_wh
        assert np.array_equal(inline_res.power_series_w, pooled_res.power_series_w)

    def test_pooled_ledger_matches_inline(self):
        trace = _trace()
        cfg = _base_config(attribute_power=True)
        ledgers = {}
        for workers in (1, 2):
            engine, backend = build_sharded_engine(
                trace, ShardedConfig(base=cfg, n_pods=2, workers=workers)
            )
            try:
                backend.start()
                engine.run()
                backend.result()
                ledgers[workers] = backend.vm_energy_ledger()
            finally:
                backend.close()
        assert np.array_equal(ledgers[1], ledgers[2])

    @pytest.mark.parametrize("workers", [1, 2])
    def test_build_before_telemetry_scope_still_traces_pods(self, workers):
        # The repro-sim CLI builds the engine first and enters its
        # telemetry scope afterwards; pod telemetry state must be
        # captured lazily at first pod build, not at backend __init__.
        engine, backend = build_sharded_engine(
            _trace(), ShardedConfig(base=_base_config(), n_pods=2, workers=workers)
        )
        mem = InMemoryBackend()
        with use_telemetry(Telemetry(mem)):
            try:
                backend.start()
                engine.run(until_period=1)
            finally:
                backend.close()
        assert any("pod" in r for r in mem.records)

    def test_closed_pool_refuses_further_work(self):
        trace = _trace()
        engine, backend = build_sharded_engine(
            _trace(), ShardedConfig(base=_base_config(), n_pods=2, workers=2)
        )
        backend.start()
        engine.run(until_period=1)
        backend.close()
        with pytest.raises(RuntimeError):
            engine.run()


class TestCheckpointResume:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_resume_reproduces_straight_run(self, workers):
        trace = _trace()
        cfg = _base_config(attribute_power=True, faults=_FAULTS)
        scfg = ShardedConfig(base=cfg, n_pods=2, workers=workers)

        engine, backend = build_sharded_engine(trace, scfg)
        try:
            backend.start()
            engine.run()
            ref = backend.result()
            ref_ledger = backend.vm_energy_ledger()
        finally:
            backend.close()

        engine, backend = build_sharded_engine(trace, scfg)
        try:
            backend.start()
            engine.run(until_period=2)
            doc = json.loads(json.dumps(engine.checkpoint()))
        finally:
            backend.close()

        fresh_engine, fresh_backend = build_sharded_engine(trace, scfg)
        try:
            fresh_engine.restore(doc)
            fresh_engine.run()
            res = fresh_backend.result()
            ledger = fresh_backend.vm_energy_ledger()
        finally:
            fresh_backend.close()

        assert res.total_energy_wh == ref.total_energy_wh
        assert np.array_equal(res.power_series_w, ref.power_series_w)
        assert np.array_equal(ledger, ref_ledger)


class TestConfigAndScenarios:
    def test_config_validation(self):
        base = _base_config()
        with pytest.raises(ValueError):
            ShardedConfig(base=base, n_pods=0)
        with pytest.raises(ValueError):
            ShardedConfig(base=base, n_pods=2, workers=0)
        with pytest.raises(ValueError):
            ShardedConfig(base=base, n_pods=2, sync_every_steps=0)
        with pytest.raises(ValueError):
            ShardedConfig(base=base, n_pods=base.n_vms + 1)
        with pytest.raises(ValueError):
            ShardedConfig(base=base, n_pods=base.n_servers + 1)

    def test_partition_requires_enough_trace_series(self):
        trace = _trace(n_series=8)
        with pytest.raises(ValueError):
            partition_pods(trace, ShardedConfig(base=_base_config(), n_pods=2))

    def test_run_sharded_returns_merged_result(self):
        result = run_sharded(
            _trace(), ShardedConfig(base=_base_config(), n_pods=2, workers=1)
        )
        assert result.info["n_pods"] == 2
        assert result.info["workers"] == 1
        assert np.all(np.isfinite(result.power_series_w))

    def test_sharded_small_scenario_builds_and_steps(self):
        spec = builtin_registry().get("sharded-small")
        engine, backend = spec.build()
        try:
            backend.start()
            engine.run(until_period=1)
            assert engine.k == 1
        finally:
            backend.close()

    def test_sharded_paper_scenario_registered(self):
        spec = builtin_registry().get("sharded-paper")
        assert spec.harness == "sharded"
        assert spec.params["n_vms"] == 20000
        assert spec.params["n_servers"] == 5415
