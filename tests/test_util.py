"""Utilities: RNG plumbing, validation, tables, ASCII charts."""

import math

import numpy as np
import pytest

from repro.util import (
    ascii_bars,
    ascii_series,
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    ensure_rng,
    format_table,
    spawn_rngs,
)
from repro.util.validation import check_monotone_increasing, check_probability, is_close


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert ensure_rng(g) is g

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_spawn_count(self):
        children = spawn_rngs(7, 4)
        assert len(children) == 4

    def test_spawn_streams_differ(self):
        a, b = spawn_rngs(7, 2)
        assert not np.array_equal(a.random(8), b.random(8))

    def test_spawn_deterministic(self):
        a1, _ = spawn_rngs(7, 2)
        a2, _ = spawn_rngs(7, 2)
        assert np.array_equal(a1.random(8), a2.random(8))

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(7, -1)


class TestValidation:
    def test_check_positive_ok(self):
        assert check_positive("x", 1.5) == 1.5

    def test_check_positive_zero_rejected(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0.0)

    def test_check_non_negative_zero_ok(self):
        assert check_non_negative("x", 0.0) == 0.0

    def test_check_non_negative_rejects(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -0.1)

    def test_check_in_range_bounds_inclusive(self):
        assert check_in_range("x", 1.0, 1.0, 2.0) == 1.0
        assert check_in_range("x", 2.0, 1.0, 2.0) == 2.0

    def test_check_in_range_rejects(self):
        with pytest.raises(ValueError):
            check_in_range("x", 2.1, 1.0, 2.0)

    def test_check_finite_array(self):
        check_finite("x", [1.0, 2.0])
        with pytest.raises(ValueError):
            check_finite("x", [1.0, np.nan])
        with pytest.raises(ValueError):
            check_finite("x", [np.inf])

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_monotone_increasing(self):
        check_monotone_increasing("x", [1, 2, 3])
        with pytest.raises(ValueError):
            check_monotone_increasing("x", [1, 2, 2])

    def test_is_close(self):
        assert is_close(1.0, 1.0 + 1e-13)
        assert not is_close(1.0, 1.1)


class TestTables:
    def test_basic_layout(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 0.001]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "bb" in lines[0]

    def test_title(self):
        out = format_table(["a"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_large_numbers_have_commas(self):
        out = format_table(["a"], [[12345.6]])
        assert "12,345.6" in out


class TestAsciiCharts:
    def test_series_has_height_rows(self):
        out = ascii_series([1, 2, 3, 2, 1], height=6)
        assert len(out.splitlines()) == 6

    def test_series_with_label(self):
        out = ascii_series([1, 2], label="L")
        assert out.splitlines()[0] == "L"

    def test_series_empty(self):
        assert "(empty)" in ascii_series([], label="x")

    def test_series_constant_no_crash(self):
        ascii_series([5.0, 5.0, 5.0])

    def test_bars_scaled(self):
        out = ascii_bars(["a", "b"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[1].count("#") == 10  # max bar fills width

    def test_bars_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_bars(["a"], [1.0, 2.0])
