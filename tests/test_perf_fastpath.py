"""Fast-lane regression tests.

Pins the three hot-path optimizations to their correctness contracts:

* **Golden bit-identity** — with the fast modes disabled (and for the
  pruned default, which preserves results when no step budget binds),
  the simulators reproduce event logs and aggregates captured on the
  pre-fast-lane revision, bit for bit.
* **QP warm starting** — a warm-started solve agrees with the cold
  solve on the same problem (objective within 1e-9), survives garbage
  and inconsistent seeds, and degrades to the SciPy fallback exactly
  like a cold solve.
* **MPC matrix caching** — cached prediction/Hessian matrices are
  bitwise equal to freshly derived ones, and solutions are unchanged.
* **Incremental packing** — incumbent seeding never worsens a search,
  replays the previous placement on an unchanged problem, and the
  pruned search returns the unpruned search's selection.
* **Benchmark harness** — report schema, scale-aware baseline
  comparison, and the merge behavior of the committed report file.
"""

import hashlib
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.arx import ARXModel
from repro.control.mpc_core import MPCConfig, MPCController
from repro.control.qp import solve_qp
from repro.core.optimizer.minslack import MinSlackConfig, select_vms_for_server
from repro.core.optimizer.pac import PACConfig, pac
from repro.core.optimizer.types import PlacementProblem, make_vm_infos
from repro.obs import InMemoryBackend, Telemetry, use_telemetry
from repro.packing.mbs import MemoryConstraint, minimum_bin_slack
from repro.sim.largescale import LargeScaleConfig, run_largescale
from repro.sim.testbed import TestbedConfig, TestbedExperiment
from repro.traces.generator import TraceConfig, generate_trace
from tests.conftest import make_server_info


def _eventlog_hash(records):
    events = [r for r in records if r.get("kind") not in ("span", "metrics")]
    digest = hashlib.sha256(
        json.dumps(events, sort_keys=True, default=str).encode()
    ).hexdigest()
    return digest, len(events)


# Captured on the pre-fast-lane revision (seed of this PR); the fast
# lanes must not move any of these.
_LS_GOLDEN = {
    "energy_wh": 13631.487937070524,
    "migrations": 3,
    "mean_active": 4.0,
    "power_sha": "6abedb859fbca99c36dbbba6c6970ecf1806b8cede2ba02d6a0b5f7e2f1d3762",
    "eventlog_sha": "f9a97723c15599b1553e2ad385bea2bc42e26deff5279f9e611949f555d46e83",
    "n_events": 107,
}
_TB_GOLDEN = {
    "eventlog_sha": "a4ae4a9006785b8e0898af5df2bc1ff973350d82380b8d0b5be7c122018478fc",
    "n_events": 25,
    "power_mean": 169.79611818874358,
}


class TestGoldenBitIdentity:
    def _run_largescale(self, **overrides):
        backend = InMemoryBackend()
        trace = generate_trace(TraceConfig(n_servers=40, n_days=1), rng=13)
        with use_telemetry(Telemetry(backend)):
            res = run_largescale(
                trace,
                LargeScaleConfig(n_vms=30, n_servers=50, seed=5, **overrides),
            )
        return res, backend

    def _check_largescale(self, res, backend):
        assert res.total_energy_wh == _LS_GOLDEN["energy_wh"]
        assert res.migrations == _LS_GOLDEN["migrations"]
        assert float(np.mean(res.active_series)) == _LS_GOLDEN["mean_active"]
        power_sha = hashlib.sha256(
            np.asarray(res.power_series_w).tobytes()
        ).hexdigest()
        assert power_sha == _LS_GOLDEN["power_sha"]
        digest, n = _eventlog_hash(backend.records)
        assert (digest, n) == (
            _LS_GOLDEN["eventlog_sha"],
            _LS_GOLDEN["n_events"],
        )

    def test_largescale_default_config_matches_golden(self):
        # prune=True is the default; on this instance no step budget
        # binds, so results must be bitwise identical to the unpruned
        # pre-fast-lane run.
        self._check_largescale(*self._run_largescale())

    def test_largescale_fast_modes_off_matches_golden(self):
        self._check_largescale(
            *self._run_largescale(minslack_prune=False, incremental=False)
        )

    def test_testbed_warm_start_off_matches_golden(self):
        backend = InMemoryBackend()
        model = ARXModel(
            a=[0.4], b=[[-800.0, -300.0], [-100.0, -50.0]], g=1800.0
        )
        cfg = TestbedConfig(
            n_servers=2,
            n_apps=2,
            duration_s=180.0,
            warmup_s=20.0,
            concurrency=10,
            initial_alloc_ghz=0.6,
            mpc_warm_start=False,
            # The golden was captured on the per-app loop; the fleet
            # path is allclose, not bit-identical (tests/test_fleet.py).
            control_mode="scalar",
            seed=77,
        )
        with use_telemetry(Telemetry(backend)):
            result = TestbedExperiment(cfg, model).run()
        digest, n = _eventlog_hash(backend.records)
        assert (digest, n) == (
            _TB_GOLDEN["eventlog_sha"],
            _TB_GOLDEN["n_events"],
        )
        summary = result.power_summary()
        assert summary["mean"] == _TB_GOLDEN["power_mean"]


def _box_qp(data, n):
    """A strictly convex QP with box constraints, always feasible."""
    A = np.asarray(
        [[data.draw(st.floats(-1.0, 1.0)) for _ in range(n)] for _ in range(n)]
    )
    H = A @ A.T + n * np.eye(n)
    g = np.asarray([data.draw(st.floats(-5.0, 5.0)) for _ in range(n)])
    lo = np.asarray([data.draw(st.floats(-1.0, 0.0)) for _ in range(n)])
    hi = np.asarray([data.draw(st.floats(0.1, 1.0)) for _ in range(n)])
    A_ub = np.vstack([np.eye(n), -np.eye(n)])
    b_ub = np.concatenate([hi, -lo])
    return H, g, A_ub, b_ub


def _objective(H, g, x):
    return 0.5 * x @ H @ x + g @ x


class TestQPWarmStart:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_warm_agrees_with_cold(self, data):
        n = data.draw(st.integers(2, 6))
        H, g, A_ub, b_ub = _box_qp(data, n)
        cold = solve_qp(H, g, A_ub=A_ub, b_ub=b_ub)
        assert cold.ok
        assert not cold.warm_started
        # Seed from the cold active set on a slightly perturbed problem:
        # the receding-horizon usage pattern.
        g2 = g + np.asarray(
            [data.draw(st.floats(-0.05, 0.05)) for _ in range(n)]
        )
        cold2 = solve_qp(H, g2, A_ub=A_ub, b_ub=b_ub)
        warm2 = solve_qp(
            H, g2, A_ub=A_ub, b_ub=b_ub, warm_start=cold.active_set
        )
        assert cold2.ok and warm2.ok
        assert _objective(H, g2, warm2.x) == pytest.approx(
            _objective(H, g2, cold2.x), abs=1e-9
        )
        assert np.all(A_ub @ warm2.x <= b_ub + 1e-6)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_inconsistent_seed_falls_back_to_cold_result(self, data):
        n = data.draw(st.integers(2, 5))
        H, g, A_ub, b_ub = _box_qp(data, n)
        cold = solve_qp(H, g, A_ub=A_ub, b_ub=b_ub)
        # Seeding EVERY box row pins x to lower and upper bounds at
        # once — an inconsistent working set the verification step must
        # throw away, leaving exactly the cold result.
        warm = solve_qp(
            H, g, A_ub=A_ub, b_ub=b_ub, warm_start=range(2 * n)
        )
        assert warm.ok
        assert np.array_equal(warm.x, cold.x)
        assert warm.active_set == cold.active_set

    def test_out_of_range_seed_indices_ignored(self):
        H = np.eye(2)
        g = np.array([-1.0, -1.0])
        A_ub = np.vstack([np.eye(2), -np.eye(2)])
        b_ub = np.array([0.5, 0.5, 0.0, 0.0])
        res = solve_qp(
            H, g, A_ub=A_ub, b_ub=b_ub, warm_start=[99, -3, 0, 0]
        )
        assert res.ok
        assert res.x == pytest.approx([0.5, 0.5])

    def test_empty_seed_is_a_cold_solve(self):
        H = np.eye(2)
        g = np.array([-1.0, 0.0])
        res = solve_qp(H, g, warm_start=[])
        assert not res.warm_started
        assert res.x == pytest.approx([1.0, 0.0])

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_scipy_fallback_path_with_warm_seed(self, data):
        n = data.draw(st.integers(2, 4))
        H, g, A_ub, b_ub = _box_qp(data, n)
        exact = solve_qp(H, g, A_ub=A_ub, b_ub=b_ub)
        # max_iter=1 cannot settle an active set; warm or cold, the
        # solve must still produce the optimum via the SciPy fallback.
        starved = solve_qp(
            H, g, A_ub=A_ub, b_ub=b_ub, max_iter=1, warm_start=[0]
        )
        assert starved.ok
        assert _objective(H, g, starved.x) == pytest.approx(
            _objective(H, g, exact.x), abs=1e-6
        )


class TestMPCFastLane:
    def _controller(self, warm=True):
        model = ARXModel(
            a=[0.4], b=[[-800.0, -300.0], [-100.0, -50.0]], g=1800.0
        )
        return MPCController(
            model,
            MPCConfig(
                prediction_horizon=10,
                control_horizon=4,
                q_weight=1.0,
                r_weight=1e3,
                delta_max=0.03,
                power_weight=200.0,
                warm_start=warm,
            ),
        )

    def _drive(self, ctrl, n=20):
        rng = np.random.default_rng(3)
        t_hist = [900.0, 950.0]
        c_hist = np.array([[0.8, 0.6], [0.8, 0.6]])
        ref = np.full(10, 1000.0)
        out = []
        for k in range(n):
            t_now = 900.0 + 200.0 * np.sin(k / 6.0) + rng.normal(0, 25)
            t_hist = [t_now] + t_hist[:1]
            sol = ctrl.solve(
                t_hist, c_hist, ref, 1000.0, [0.2, 0.2], [3.0, 3.0]
            )
            out.append(sol)
            c_hist = np.vstack(
                [np.clip(c_hist[0] + sol.delta_c, 0.2, 3.0), c_hist[0]]
            )
        return out

    def test_cached_matrices_match_fresh_derivation(self):
        ctrl = self._controller(warm=False)
        sols_cached = self._drive(ctrl)
        busted = self._controller(warm=False)
        # Busting the key before every period forces a fresh derivation
        # of psi / Hessian / constraint stack each time.
        rng = np.random.default_rng(3)
        t_hist = [900.0, 950.0]
        c_hist = np.array([[0.8, 0.6], [0.8, 0.6]])
        ref = np.full(10, 1000.0)
        for k, cached_sol in enumerate(sols_cached):
            t_now = 900.0 + 200.0 * np.sin(k / 6.0) + rng.normal(0, 25)
            t_hist = [t_now] + t_hist[:1]
            busted._cache_key = None
            sol = busted.solve(
                t_hist, c_hist, ref, 1000.0, [0.2, 0.2], [3.0, 3.0]
            )
            assert np.array_equal(sol.delta_c, cached_sol.delta_c)
            c_hist = np.vstack(
                [np.clip(c_hist[0] + sol.delta_c, 0.2, 3.0), c_hist[0]]
            )

    def test_warm_start_hits_and_solution_parity(self):
        warm = self._controller(warm=True)
        cold = self._controller(warm=False)
        # Feed both controllers the SAME closed-loop trajectory (driven
        # by the cold solutions) so every period is a like-for-like
        # solve: identical solutions, not just similar cost, is the
        # acceptance bar for enabling warm starts by default.
        rng = np.random.default_rng(3)
        t_hist = [900.0, 950.0]
        c_hist = np.array([[0.8, 0.6], [0.8, 0.6]])
        ref = np.full(10, 1000.0)
        warm_started_any = False
        for k in range(20):
            t_now = 900.0 + 200.0 * np.sin(k / 6.0) + rng.normal(0, 25)
            t_hist = [t_now] + t_hist[:1]
            cs = cold.solve(t_hist, c_hist, ref, 1000.0, [0.2, 0.2], [3.0, 3.0])
            ws = warm.solve(t_hist, c_hist, ref, 1000.0, [0.2, 0.2], [3.0, 3.0])
            assert not cs.qp.warm_started
            warm_started_any = warm_started_any or ws.qp.warm_started
            assert ws.delta_c == pytest.approx(cs.delta_c, abs=1e-9)
            c_hist = np.vstack(
                [np.clip(c_hist[0] + cs.delta_c, 0.2, 3.0), c_hist[0]]
            )
        assert warm_started_any
        assert warm.warm_hits > 0
        assert cold.warm_hits == 0

    def test_adopted_warm_state_survives_first_solve(self):
        donor = self._controller(warm=True)
        self._drive(donor, n=10)
        assert donor._warm_active  # non-empty working sets to hand over
        heir = self._controller(warm=True)
        heir.adopt_warm_state(donor)
        sols = self._drive(heir, n=1)
        assert sols[0].qp.warm_started
        assert heir.warm_hits >= 1

    def test_cache_invalidated_on_model_change(self):
        ctrl = self._controller(warm=False)
        self._drive(ctrl, n=1)
        key_before = ctrl._cache_key
        ctrl.model = ARXModel(
            a=[0.5], b=[[-700.0, -250.0], [-90.0, -40.0]], g=1700.0
        )
        self._drive(ctrl, n=1)
        assert ctrl._cache_key != key_before


class _RecordingConstraint(MemoryConstraint):
    """MemoryConstraint that logs protocol calls (generic dispatch)."""

    def __init__(self, sizes, capacity):
        super().__init__(sizes, capacity)
        self.log = []

    def accepts(self, idx):
        self.log.append(("accepts", idx))
        return super().accepts(idx)

    def push(self, idx):
        self.log.append(("push", idx))
        super().push(idx)

    def pop(self, idx):
        self.log.append(("pop", idx))
        super().pop(idx)


class TestPackingFastLane:
    def test_memory_constraint_rejects_nan_and_inf(self):
        with pytest.raises(ValueError, match="finite"):
            MemoryConstraint([1.0, float("nan")], 10.0)
        with pytest.raises(ValueError, match="finite"):
            MemoryConstraint([1.0, float("inf")], 10.0)
        with pytest.raises(ValueError, match="finite"):
            MemoryConstraint([1.0, 2.0], float("nan"))

    def test_protocol_balance_and_ordering(self):
        sizes = [4.0, 3.0, 2.0, 1.0]
        cons = _RecordingConstraint([1.0] * 4, 100.0)
        minimum_bin_slack(sizes, 6.0, constraint=cons, epsilon=0.0)
        assert cons.used == 0.0  # balanced: state restored
        pushes = [e for e in cons.log if e[0] == "push"]
        pops = [e for e in cons.log if e[0] == "pop"]
        assert len(pushes) == len(pops)
        # Every push is preceded by an accepts for the same item.
        for i, (kind, idx) in enumerate(cons.log):
            if kind == "push":
                assert ("accepts", idx) in cons.log[:i]

    def test_subclass_takes_generic_path_with_identical_results(self):
        rng = np.random.default_rng(5)
        sizes = rng.uniform(0.2, 1.0, size=12)
        mems = rng.uniform(100.0, 900.0, size=12)
        fast = minimum_bin_slack(
            sizes, 3.0, constraint=MemoryConstraint(mems, 3000.0), epsilon=0.0
        )
        generic = minimum_bin_slack(
            sizes,
            3.0,
            constraint=_RecordingConstraint(mems, 3000.0),
            epsilon=0.0,
        )
        assert fast.selected == generic.selected
        assert fast.slack == generic.slack
        assert fast.steps == generic.steps

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_prune_returns_unpruned_selection(self, data):
        n = data.draw(st.integers(1, 10))
        sizes = [data.draw(st.floats(0.1, 2.0)) for _ in range(n)]
        capacity = data.draw(st.floats(0.5, 5.0))
        eps = data.draw(st.sampled_from([0.0, 0.05, 0.3]))
        pruned = minimum_bin_slack(
            sizes, capacity, epsilon=eps, max_steps=10**6, prune=True
        )
        full = minimum_bin_slack(
            sizes, capacity, epsilon=eps, max_steps=10**6, prune=False
        )
        assert pruned.selected == full.selected
        # Slack may differ in the last float bits (the pruned search
        # accumulates the running fill in a different order); the
        # selection — what downstream placement consumes — is exact.
        assert pruned.slack == pytest.approx(full.slack, abs=1e-12)
        assert pruned.steps <= full.steps

    def test_step_budget_escalation_boundary(self):
        # Escalation must fire after *exactly* max_steps evaluations:
        # epsilon_used == epsilon + epsilon_step * (steps // max_steps).
        sizes = list(np.linspace(0.31, 0.97, 12))
        res = minimum_bin_slack(
            sizes, 2.0001, epsilon=0.0, max_steps=7, epsilon_step=0.01
        )
        assert res.steps >= 7
        assert res.epsilon_used == pytest.approx(
            0.0 + 0.01 * (res.steps // 7)
        )

    def test_hard_step_cap_is_exact(self):
        sizes = [0.5] * 30
        res = minimum_bin_slack(
            sizes,
            7.77,  # unreachable exactly: search would run long
            epsilon=0.0,
            max_steps=10,
            epsilon_step=1e-12,  # escalations never unlock an early exit
            hard_step_cap=23,
        )
        assert res.steps == 23

    def test_incumbent_seeds_and_never_worsens(self):
        rng = np.random.default_rng(9)
        sizes = rng.uniform(0.2, 1.0, size=14)
        capacity = float(sizes[:5].sum()) + 0.003
        cold = minimum_bin_slack(sizes, capacity, epsilon=0.005)
        seeded = minimum_bin_slack(
            sizes, capacity, epsilon=0.005, incumbent=cold.selected
        )
        assert seeded.seeded
        assert seeded.early_exit
        assert seeded.steps == 0  # the seed already meets epsilon
        assert seeded.slack <= cold.slack + 1e-9

    def test_incumbent_out_of_range_raises(self):
        with pytest.raises(ValueError, match="out of range"):
            minimum_bin_slack([1.0, 2.0], 3.0, incumbent=[0, 7])

    def test_incumbent_items_that_no_longer_fit_are_dropped(self):
        # Item 0 alone overflows the bin: the seed reduces to item 1.
        res = minimum_bin_slack(
            [5.0, 1.0], 2.0, epsilon=1.5, incumbent=[0, 1]
        )
        assert res.seeded
        assert res.selected == (1,)


class TestIncrementalPAC:
    def _problem(self, seed, n_vms=24, n_servers=6):
        rng = np.random.default_rng(seed)
        servers = tuple(
            make_server_info(
                f"s{j}",
                capacity=8.0,
                memory=32768.0,
                efficiency=0.05 - 0.002 * j,
            )
            for j in range(n_servers)
        )
        vms = make_vm_infos(
            [f"vm{i}" for i in range(n_vms)],
            rng.uniform(0.3, 1.4, size=n_vms),
            rng.uniform(256.0, 2048.0, size=n_vms),
        )
        return PlacementProblem(servers=servers, vms=vms, mapping={})

    def test_unchanged_problem_replays_previous_placement(self):
        for seed in range(5):
            problem = self._problem(seed)
            scratch = pac(problem, config=PACConfig())
            again = PlacementProblem(
                servers=problem.servers,
                vms=problem.vms,
                mapping=scratch.final_mapping,
            )
            incr = pac(again, config=PACConfig(incremental=True))
            assert incr.final_mapping == scratch.final_mapping
            assert incr.migrations == []

    def test_incremental_never_uses_more_active_servers(self):
        for seed in range(8):
            problem = self._problem(seed)
            base = pac(problem, config=PACConfig())
            # Drift demands a little, as between optimizer periods.
            rng = np.random.default_rng(100 + seed)
            drifted_vms = make_vm_infos(
                [v.vm_id for v in problem.vms],
                [
                    v.demand_ghz * rng.uniform(0.98, 1.02)
                    for v in problem.vms
                ],
                [v.memory_mb for v in problem.vms],
            )
            drifted = PlacementProblem(
                servers=problem.servers,
                vms=drifted_vms,
                mapping=base.final_mapping,
            )
            scratch = pac(drifted, config=PACConfig())
            incr = pac(drifted, config=PACConfig(incremental=True))
            assert not incr.unplaced and not scratch.unplaced
            assert len(set(incr.final_mapping.values())) <= len(
                set(scratch.final_mapping.values())
            )

    def test_ipac_incremental_matches_scratch_active_servers(self):
        from repro.core.optimizer.ipac import IPACConfig, ipac

        for seed in range(4):
            base = self._problem(seed)
            start = pac(base, config=PACConfig())
            problem = PlacementProblem(
                servers=base.servers,
                vms=base.vms,
                mapping=start.final_mapping,
            )
            scratch = ipac(problem, config=IPACConfig())
            incr = ipac(
                problem, config=IPACConfig(pac=PACConfig(incremental=True))
            )
            assert len(set(incr.final_mapping.values())) <= len(
                set(scratch.final_mapping.values())
            )

    def test_minslack_incumbent_ids_filter_unknown(self):
        vms = make_vm_infos(
            ["a", "b", "c"], [1.0, 0.8, 0.5], [256.0, 256.0, 256.0]
        )
        chosen, res = select_vms_for_server(
            1.9,
            10_000.0,
            vms,
            MinSlackConfig(epsilon_ghz=0.2),
            incumbent_ids=["a", "ghost", "c"],
        )
        assert res.seeded
        assert {vm.vm_id for vm in chosen} <= {"a", "b", "c"}


class TestBenchHarness:
    def test_run_suite_rejects_unknown_inputs(self):
        from repro.bench import run_suite

        with pytest.raises(ValueError, match="scale"):
            run_suite(scale="huge")
        with pytest.raises(KeyError, match="unknown case"):
            run_suite(scale="smoke", cases=["nope"])

    def test_minslack_case_reports_schema(self):
        from repro.bench import run_suite

        report = run_suite(scale="smoke", cases=["minslack"])
        assert report["schema"] == 1
        assert report["scale"] == "smoke"
        case = report["cases"]["minslack"]
        for key in ("wall_s", "reference_wall_s", "speedup", "iters",
                    "warm_hit_rate"):
            assert key in case
        assert case["wall_s"] > 0 and case["reference_wall_s"] > 0

    def test_compare_to_baseline_is_scale_aware(self):
        from repro.bench import compare_to_baseline

        report = {
            "schema": 1,
            "scale": "smoke",
            "cases": {"mpc_solve": {"speedup": 2.0}},
        }
        baseline = {
            "schema": 1,
            "scales": {
                "smoke": {"cases": {"mpc_solve": {"speedup": 2.1}}},
                "full": {"cases": {"mpc_solve": {"speedup": 50.0}}},
            },
        }
        # 2.0 vs smoke-baseline 2.1 is within 25%; the full-scale 50.0
        # must not be consulted.
        assert compare_to_baseline(report, baseline) == []
        baseline["scales"]["smoke"]["cases"]["mpc_solve"]["speedup"] = 4.0
        failures = compare_to_baseline(report, baseline)
        assert len(failures) == 1 and "mpc_solve" in failures[0]
        # Cases missing from the baseline are skipped, not errors.
        report["cases"]["brand_new"] = {"speedup": 0.1}
        assert len(compare_to_baseline(report, baseline)) == 1

    def test_write_report_merges_scales(self, tmp_path):
        from repro.bench import write_report

        path = str(tmp_path / "bench.json")
        write_report(
            {"schema": 1, "scale": "full", "cases": {"a": {"speedup": 3.0}}},
            path,
        )
        write_report(
            {"schema": 1, "scale": "smoke", "cases": {"a": {"speedup": 2.0}}},
            path,
        )
        with open(path) as fh:
            doc = json.load(fh)
        assert set(doc["scales"]) == {"full", "smoke"}
        assert doc["scales"]["full"]["cases"]["a"]["speedup"] == 3.0
