"""Stateful property testing of the DataCenter placement authority.

Hypothesis drives random interleavings of place / migrate / unplace /
sleep / wake / demand-change operations and checks the global invariants
after every step: mapping consistency, memory feasibility, no VM on a
sleeping server, and power accounting staying within physical bounds.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule
from hypothesis import strategies as st

from repro.cluster import DataCenter, Server, VM
from repro.cluster.catalog import SERVER_TYPE_A, SERVER_TYPE_B, SERVER_TYPE_C

SERVER_IDS = ["sA", "sB", "sC"]
VM_IDS = [f"v{i}" for i in range(8)]


class DataCenterMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.dc = DataCenter()
        for sid, spec in zip(SERVER_IDS, (SERVER_TYPE_A, SERVER_TYPE_B, SERVER_TYPE_C)):
            self.dc.add_server(Server(sid, spec))
        for vm_id in VM_IDS:
            self.dc.add_vm(VM(vm_id, memory_mb=1024, demand_ghz=0.5))

    # -- operations ---------------------------------------------------

    @rule(vm=st.sampled_from(VM_IDS), sid=st.sampled_from(SERVER_IDS))
    def place_or_migrate(self, vm, sid):
        server = self.dc.servers[sid]
        if not server.active:
            return
        current = self.dc.server_of(vm)
        fits = (
            self.dc.total_memory_mb(sid) + self.dc.vms[vm].memory_mb
            <= server.spec.memory_mb
        )
        if current is None:
            if fits:
                self.dc.place(vm, sid)
        elif current != sid:
            if fits:
                self.dc.migrate(vm, sid)

    @rule(vm=st.sampled_from(VM_IDS))
    def unplace(self, vm):
        self.dc.unplace(vm)

    @rule(sid=st.sampled_from(SERVER_IDS))
    def sleep_if_empty(self, sid):
        if not self.dc.vms_on(sid):
            self.dc.sleep_server(sid)

    @rule(sid=st.sampled_from(SERVER_IDS))
    def wake(self, sid):
        self.dc.wake_server(sid)

    @rule(vm=st.sampled_from(VM_IDS), demand=st.floats(0.0, 3.0))
    def set_demand(self, vm, demand):
        self.dc.vms[vm].set_demand(demand)

    @rule(sid=st.sampled_from(SERVER_IDS), level=st.integers(0, 3))
    def set_frequency(self, sid, level):
        server = self.dc.servers[sid]
        levels = server.spec.cpu.freq_levels_ghz
        server.set_frequency(levels[min(level, len(levels) - 1)])

    # -- invariants ------------------------------------------------------

    @invariant()
    def mapping_is_consistent(self):
        for vm_id, vm in self.dc.vms.items():
            sid = self.dc.server_of(vm_id)
            if sid is not None:
                assert vm_id in {v.vm_id for v in self.dc.vms_on(sid)}
        for sid in SERVER_IDS:
            for vm in self.dc.vms_on(sid):
                assert self.dc.server_of(vm.vm_id) == sid

    @invariant()
    def no_vm_on_sleeping_server(self):
        for sid, server in self.dc.servers.items():
            if not server.active:
                assert self.dc.vms_on(sid) == []

    @invariant()
    def memory_never_overcommitted(self):
        assert self.dc.memory_violations() == []

    @invariant()
    def power_within_physical_bounds(self):
        total = self.dc.total_power_w()
        upper = sum(s.spec.power.busy_w for s in self.dc.servers.values())
        lower = sum(s.spec.power.sleep_w for s in self.dc.servers.values())
        assert lower - 1e-9 <= total <= upper + 1e-9

    @invariant()
    def migration_log_is_append_only_and_coherent(self):
        for record in self.dc.migration_log:
            assert record.source_id != record.target_id
            assert record.duration_s > 0


TestDataCenterStateful = DataCenterMachine.TestCase
TestDataCenterStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
