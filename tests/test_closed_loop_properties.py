"""Property tests of the full controller across random plants.

The strongest claim the controller design makes: for *any* stable
response-time-like plant (negative input gains, bounded AR term) within
the actuator range, the loop converges to the set point and respects all
constraints along the way.  Hypothesis samples that plant family.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.control.arx import ARXModel
from repro.control.mpc_core import MPCConfig
from repro.core.controller import ControllerConfig, ResponseTimeController


def _random_plant(data, m):
    """A stable plant with negative gains and a reachable 1000 ms point."""
    a = data.draw(st.floats(0.0, 0.7))
    gains = np.asarray(
        [data.draw(st.floats(-3000.0, -300.0)) for _ in range(m)]
    )
    split = data.draw(st.floats(0.5, 1.0))
    b = np.vstack([gains * split, gains * (1.0 - split)])
    # Choose g so t = 1000 is achieved at some c* inside [0.3, 2.0]^m.
    c_star = np.asarray([data.draw(st.floats(0.4, 1.8)) for _ in range(m)])
    g = 1000.0 * (1.0 - a) - float(b.sum(axis=0) @ c_star)
    return ARXModel(a=[a], b=b, g=g), c_star


class TestRandomPlantConvergence:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_loop_reaches_setpoint_and_respects_constraints(self, data):
        m = data.draw(st.integers(1, 3))
        plant, c_star = _random_plant(data, m)
        noise_rng = np.random.default_rng(data.draw(st.integers(0, 10_000)))
        t0 = data.draw(st.floats(300.0, 2800.0))
        c0 = np.asarray([data.draw(st.floats(0.3, 2.0)) for _ in range(m)])

        ctrl = ResponseTimeController(
            plant,
            ControllerConfig(
                setpoint_ms=1000.0,
                util_band=None,
                mpc=MPCConfig(r_weight=1e5, delta_max=0.3, power_weight=0.0),
            ),
            c_min=[0.1] * m,
            c_max=[3.0] * m,
            initial_alloc_ghz=c0,
        )
        t_hist = [t0]
        c_hist = [c0.copy(), c0.copy()]
        t_k = t0
        trajectory = []
        for _ in range(60):
            c_next = ctrl.update(t_k)
            # Constraint check on every emitted allocation.
            assert np.all(c_next >= 0.1 - 1e-6)
            assert np.all(c_next <= 3.0 + 1e-6)
            assert np.all(np.abs(c_next - c_hist[0]) <= 0.3 + 1e-5)
            c_hist.insert(0, c_next)
            c_hist = c_hist[:2]
            t_k = plant.one_step(t_hist, np.asarray(c_hist)) + noise_rng.normal(0, 10.0)
            t_hist = [t_k]
            trajectory.append(t_k)
        tail = np.asarray(trajectory[-15:])
        assert np.abs(tail.mean() - 1000.0) < 120.0, (
            f"did not converge: tail mean {tail.mean():.0f}, plant a={plant.a}, "
            f"b={plant.b}, g={plant.g}"
        )

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_setpoint_changes_are_followed(self, data):
        """Mid-run set-point changes (Fig. 5's sweep, online) are tracked."""
        plant, _ = _random_plant(data, 2)
        ctrl = ResponseTimeController(
            plant,
            ControllerConfig(setpoint_ms=1000.0, util_band=None),
            c_min=[0.1, 0.1], c_max=[3.0, 3.0], initial_alloc_ghz=[1.0, 1.0],
        )
        # Switch the set point by rebuilding the controller mid-run, as the
        # testbed harness does; state (histories) is deliberately fresh.
        for setpoint in (1000.0, data.draw(st.sampled_from([700.0, 1300.0]))):
            ctrl = ResponseTimeController(
                plant,
                ControllerConfig(setpoint_ms=setpoint, util_band=None),
                c_min=[0.1, 0.1], c_max=[3.0, 3.0],
                initial_alloc_ghz=ctrl.current_demand_ghz,
            )
            t_hist = [setpoint * 1.5]
            c_hist = [ctrl.current_demand_ghz] * 2
            t_k = t_hist[0]
            out = []
            for _ in range(50):
                c_next = ctrl.update(t_k)
                c_hist.insert(0, c_next)
                c_hist = c_hist[:2]
                t_k = plant.one_step(t_hist, np.asarray(c_hist))
                t_hist = [t_k]
                out.append(t_k)
            assert abs(np.mean(out[-10:]) - setpoint) < 0.15 * setpoint
