"""Metrics containers: recorder, period stats, energy meter."""

import math

import numpy as np
import pytest

from repro.sim.metrics import EnergyMeter, PeriodStats, SeriesRecorder


class TestSeriesRecorder:
    def test_record_and_read_back(self):
        r = SeriesRecorder()
        r.record("x", 0.0, 1.0)
        r.record("x", 1.0, 2.0)
        np.testing.assert_array_equal(r.values("x"), [1.0, 2.0])
        np.testing.assert_array_equal(r.times("x"), [0.0, 1.0])

    def test_names_insertion_ordered(self):
        r = SeriesRecorder()
        r.record("b", 0, 1)
        r.record("a", 0, 1)
        assert list(r.names()) == ["b", "a"]

    def test_missing_series_empty(self):
        r = SeriesRecorder()
        assert r.values("nope").shape == (0,)
        assert math.isnan(r.last("nope"))
        assert r.last("nope", default=7.0) == 7.0

    def test_summary_ignores_nan(self):
        r = SeriesRecorder()
        for v in [1.0, float("nan"), 3.0]:
            r.record("x", 0, v)
        s = r.summary("x")
        assert s["mean"] == pytest.approx(2.0)
        assert s["n"] == 2
        assert s["min"] == 1.0
        assert s["max"] == 3.0

    def test_summary_empty(self):
        s = SeriesRecorder().summary("void")
        assert math.isnan(s["mean"])
        assert s["n"] == 0

    def test_max_points_bounds_memory(self):
        r = SeriesRecorder(max_points=16)
        for i in range(10_000):
            r.record("x", float(i), float(i))
        assert len(r.values("x")) < 16
        assert r.count("x") == 10_000

    def test_max_points_keeps_even_spacing(self):
        r = SeriesRecorder(max_points=16)
        for i in range(1024):
            r.record("x", float(i), float(i))
        t = r.times("x")
        # decimation keeps a uniform stride, so gaps are all equal
        gaps = np.diff(t)
        assert len(set(gaps.tolist())) == 1
        assert t[0] == 0.0

    def test_max_points_below_cap_is_lossless(self):
        r = SeriesRecorder(max_points=100)
        for i in range(50):
            r.record("x", float(i), float(i) * 2)
        np.testing.assert_array_equal(r.values("x"), np.arange(50) * 2.0)

    def test_max_points_validation(self):
        with pytest.raises(ValueError):
            SeriesRecorder(max_points=1)
        with pytest.raises(ValueError):
            SeriesRecorder(max_points=0)

    def test_max_points_two_is_the_smallest_cap(self):
        r = SeriesRecorder(max_points=2)
        for i in range(1000):
            r.record("x", float(i), float(i))
        assert len(r.values("x")) < 2
        assert r.count("x") == 1000
        # The retained sample is the series start, never a random point.
        assert r.times("x")[0] == 0.0

    def test_decimated_recorder_with_no_samples_is_empty(self):
        r = SeriesRecorder(max_points=8)
        assert r.values("void").shape == (0,)
        assert r.count("void") == 0
        assert math.isnan(r.summary("void")["mean"])

    def test_clear(self):
        r = SeriesRecorder(max_points=8)
        for i in range(100):
            r.record("x", float(i), float(i))
        r.clear()
        assert r.values("x").shape == (0,)
        assert r.count("x") == 0
        assert list(r.names()) == []


class TestEnergyMeter:
    def test_integration(self):
        m = EnergyMeter()
        m.add_interval(100.0, 3600.0)  # 100 W for an hour
        assert m.energy_wh == pytest.approx(100.0)
        m.add_interval(50.0, 1800.0)
        assert m.energy_wh == pytest.approx(125.0)

    def test_mean_power(self):
        m = EnergyMeter()
        m.add_interval(100.0, 10.0)
        m.add_interval(200.0, 10.0)
        assert m.mean_power_w == pytest.approx(150.0)

    def test_empty_mean_nan(self):
        assert math.isnan(EnergyMeter().mean_power_w)

    def test_validation(self):
        m = EnergyMeter()
        with pytest.raises(ValueError):
            m.add_interval(-1.0, 10.0)
        with pytest.raises(ValueError):
            m.add_interval(1.0, -10.0)


class TestPeriodStats:
    def test_frozen(self):
        s = PeriodStats(1.0, 0.5, 10, 2.0, (0.5, 0.6))
        with pytest.raises(Exception):
            s.rt_p90_ms = 2.0

    def test_metric_lookup(self):
        s = PeriodStats(90.0, 50.0, 10, 2.0, (0.5,), rt_p50_ms=45.0, rt_max_ms=99.0)
        assert s.metric("p90") == 90.0
        assert s.metric("p50") == 45.0
        assert s.metric("mean") == 50.0
        assert s.metric("max") == 99.0

    def test_metric_unknown_name_raises(self):
        s = PeriodStats(90.0, 50.0, 10, 2.0, (0.5,))
        with pytest.raises(ValueError, match="unknown SLA metric"):
            s.metric("p95")
