"""Regenerate every figure of the paper in one run (no pytest needed).

Prints the series behind Figs. 2-6 of Wang & Wang (ICPP 2010) at reduced
scale — the benchmark suite (`pytest benchmarks/ --benchmark-only`) runs
the same experiments with shape assertions and a full-scale mode.

Run:  python examples/reproduce_paper.py        (~2 minutes)
"""

import numpy as np

from repro.apps.workload import StepWorkload
from repro.sim.largescale import LargeScaleConfig, run_largescale
from repro.sim.testbed import TestbedConfig, TestbedExperiment
from repro.traces import TraceConfig, generate_trace
from repro.util.ascii_chart import ascii_series
from repro.util.tables import format_table


def fig2(model):
    print("\n================ Figure 2: eight applications at 1000 ms ================")
    result = TestbedExperiment(TestbedConfig(n_apps=8, duration_s=600.0), model=model).run()
    rows = []
    for i in range(8):
        rts = result.recorder.values(f"rt/app{i}")[10:]
        rows.append([f"App{i+1}", float(np.nanmean(rts)), float(np.nanstd(rts))])
    print(format_table(["application", "rt mean (ms)", "std (ms)"], rows))


def fig3(model):
    print("\n===== Figure 3: workload step 40->80 on App5 (t in [600, 1200) s) =====")
    config = TestbedConfig(
        n_apps=8, duration_s=1500.0,
        workloads={5: StepWorkload(40, 80, 600.0, 1200.0)},
    )
    result = TestbedExperiment(config, model=model).run()
    rts = result.recorder.values("rt/app5")
    power = result.recorder.values("power/total")
    print(ascii_series(rts, label="(a) App5 90-percentile response time (ms)"))
    print(ascii_series(power, label="(b) cluster power (W)"))


def fig4(model):
    print("\n========= Figure 4: App5 response time vs concurrency level =========")
    from repro.apps.workload import ConstantWorkload
    rows = []
    for level in (30, 40, 50, 60, 70, 80):
        config = TestbedConfig(
            n_apps=8, duration_s=450.0, seed=2010 + level,
            workloads={5: ConstantWorkload(level)},
        )
        result = TestbedExperiment(config, model=model).run()
        rts = result.recorder.values("rt/app5")[12:]
        rows.append([level, float(np.nanmean(rts)), float(np.nanstd(rts))])
    print(format_table(["concurrency", "rt mean (ms)", "std (ms)"], rows))


def fig5(model):
    print("\n============ Figure 5: App5 response time vs set point ============")
    rows = []
    for sp in (600, 700, 800, 900, 1000, 1100, 1200, 1300):
        config = TestbedConfig(
            n_apps=8, duration_s=450.0, seed=2010 + sp, setpoints_ms={5: float(sp)},
        )
        result = TestbedExperiment(config, model=model).run()
        rts = result.recorder.values("rt/app5")[12:]
        rows.append([sp, float(np.nanmean(rts)), float(np.nanstd(rts))])
    print(format_table(["set point (ms)", "achieved (ms)", "std (ms)"], rows))


def fig6():
    print("\n====== Figure 6: energy per VM, IPAC vs pMapper (3-day trace) ======")
    trace = generate_trace(TraceConfig(n_servers=2100, n_days=3), rng=2008)
    rows = []
    for n in (30, 130, 530, 1030, 2030):
        per = {}
        for scheme in ("ipac", "pmapper"):
            per[scheme] = run_largescale(
                trace, LargeScaleConfig(n_vms=n, n_servers=3000, scheme=scheme, seed=7)
            )
        saving = 1 - per["ipac"].energy_per_vm_wh / per["pmapper"].energy_per_vm_wh
        rows.append([
            n, per["ipac"].energy_per_vm_wh, per["pmapper"].energy_per_vm_wh,
            f"{100 * saving:.1f}%",
        ])
    print(format_table(["#VMs", "IPAC Wh/VM", "pMapper Wh/VM", "saving"], rows))


def main() -> None:
    print("system identification (shared by all testbed figures)...")
    experiment = TestbedExperiment(TestbedConfig())
    model = experiment.identify_model()
    print(f"  identified: t(k) = {model.a[0]:.3f} t(k-1) "
          f"+ {np.round(model.b[0], 0)}.c(k) + {model.g:.0f}")
    fig2(model)
    fig3(model)
    fig4(model)
    fig5(model)
    fig6()
    print("\nDone.  See EXPERIMENTS.md for the paper-vs-measured record.")


if __name__ == "__main__":
    main()
