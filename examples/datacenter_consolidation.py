"""Large-scale trace-driven consolidation: IPAC vs pMapper (paper Fig. 6).

Generates a synthetic utilization trace (the stand-in for the paper's
5,415-server trace), replays two days of it over a 600-server data
center at several sizes, and compares the energy per VM of IPAC against
the pMapper baseline — the paper's headline experiment at laptop scale.

Run:  python examples/datacenter_consolidation.py
"""

from repro.sim.largescale import LargeScaleConfig, run_largescale
from repro.traces import TraceConfig, generate_trace
from repro.util.ascii_chart import ascii_series
from repro.util.tables import format_table


def main() -> None:
    print("generating synthetic utilization trace (800 series, 2 days)...")
    trace = generate_trace(TraceConfig(n_servers=800, n_days=2), rng=2008)

    sizes = (30, 100, 300, 800)
    rows = []
    for n_vms in sizes:
        results = {}
        for scheme in ("ipac", "pmapper"):
            results[scheme] = run_largescale(
                trace,
                LargeScaleConfig(
                    n_vms=n_vms, n_servers=600, scheme=scheme, seed=7
                ),
            )
        ipac_res, pm_res = results["ipac"], results["pmapper"]
        rows.append([
            n_vms,
            ipac_res.energy_per_vm_wh,
            pm_res.energy_per_vm_wh,
            100.0 * (1.0 - ipac_res.energy_per_vm_wh / pm_res.energy_per_vm_wh),
            ipac_res.migrations,
            ipac_res.mean_active_servers,
        ])

    print(format_table(
        ["#VMs", "IPAC Wh/VM", "pMapper Wh/VM", "saving %", "IPAC moves",
         "mean active"],
        rows,
        title="Energy per VM over 2 days (IPAC = Minimum-Slack consolidation "
        "+ DVFS; pMapper = FFD, no DVFS)",
    ))

    # Power profile of the largest run: diurnal load should be visible.
    biggest = run_largescale(
        trace, LargeScaleConfig(n_vms=800, n_servers=600, scheme="ipac", seed=7)
    )
    print()
    print(ascii_series(
        biggest.power_series_w,
        label="IPAC total power (W) across the 2-day trace (15-min steps)",
    ))


if __name__ == "__main__":
    main()
