"""Administrator-defined migration cost policies (paper §V).

"the cost function can be highly different for different data centers.
As a result, we provide an interface for data center administrators to
define their own cost functions based on their various policies."

This example implements that interface twice:

* ``PinnedTierPolicy`` — never live-migrate database-tier VMs (their
  dirty-page rate makes pre-copy expensive), unless the move is
  mandatory overload relief;
* ``NightShiftPolicy`` — allow optional consolidations only in a
  maintenance window.

Run:  python examples/custom_cost_function.py
"""

import numpy as np

from repro.cluster import DataCenter, Server, VM, make_server_pool
from repro.core.optimizer import (
    IPACConfig,
    MigrationContext,
    MigrationCostPolicy,
    apply_plan,
    ipac,
    snapshot_datacenter,
)
from repro.util.tables import format_table


class PinnedTierPolicy(MigrationCostPolicy):
    """Reject optional migrations of VMs whose id marks them as DB tiers."""

    def __init__(self, pinned_suffix: str = "-db"):
        self.pinned_suffix = pinned_suffix
        self.rejected = []

    def allow(self, context: MigrationContext) -> bool:
        if context.mandatory:
            return True
        if context.vm.vm_id.endswith(self.pinned_suffix):
            self.rejected.append(context.vm.vm_id)
            return False
        return True


class NightShiftPolicy(MigrationCostPolicy):
    """Allow optional migrations only inside a maintenance window."""

    def __init__(self, window_open: bool):
        self.window_open = window_open

    def allow(self, context: MigrationContext) -> bool:
        return context.mandatory or self.window_open


def build_cluster(seed: int = 5) -> DataCenter:
    rng = np.random.default_rng(seed)
    dc = DataCenter()
    pool = make_server_pool(6, rng=rng, active=True)
    for server in pool:
        dc.add_server(server)
    servers = sorted(dc.servers)
    for i in range(4):
        for tier in ("web", "db"):
            vm = dc.add_vm(VM(
                f"app{i}-{tier}",
                app_id=f"app{i}",
                demand_ghz=float(rng.uniform(0.4, 1.0)),
                memory_mb=2048 if tier == "db" else 1024,
            ))
            dc.place(vm.vm_id, servers[(2 * i + (tier == "db")) % len(servers)])
    return dc


def run_with_policy(name: str, policy: MigrationCostPolicy) -> list:
    dc = build_cluster()
    before_power = dc.total_power_w()
    plan = ipac(snapshot_datacenter(dc), IPACConfig(cost_policy=policy))
    apply_plan(dc, plan)
    after_power = dc.total_power_w()
    return [
        name,
        plan.n_moves,
        int(plan.info["migrations_rejected"]),
        before_power,
        after_power,
    ]


def main() -> None:
    rows = [
        run_with_policy("allow everything", NightShiftPolicy(window_open=True)),
        run_with_policy("pin db tiers", PinnedTierPolicy()),
        run_with_policy("outside window", NightShiftPolicy(window_open=False)),
    ]
    print(format_table(
        ["policy", "moves executed", "moves rejected", "power before (W)",
         "power after (W)"],
        rows,
        title="IPAC under administrator-defined migration cost policies",
    ))
    print(
        "\nPinning or closing the window trades consolidation savings for "
        "migration safety; mandatory overload relief always passes."
    )


if __name__ == "__main__":
    main()
