"""System-identification workflow with validation diagnostics.

Shows the full modeling loop the paper's §IV-B summarizes in one
sentence: design the excitation, collect data from the (simulated)
application, fit candidate ARX structures, and validate them on held-out
data — one-step R^2, free-run RMSE, and residual whiteness.

Run:  python examples/sysid_workflow.py
"""

import numpy as np

from repro.apps import AppSpec, MultiTierApp
from repro.control.stability import arx_poles, is_stable_arx
from repro.sysid import (
    fit_arx,
    one_step_r2,
    residual_autocorrelation,
    run_identification_experiment,
    simulation_rmse,
)
from repro.util.tables import format_table


def collect(seed_app: int, seed_input: int, n_periods: int = 200):
    app = MultiTierApp(AppSpec.rubbos(), [1.0, 1.0], concurrency=40, rng=seed_app)
    return run_identification_experiment(
        app, n_periods=n_periods, period_s=15.0,
        alloc_lower=[0.45, 0.45], alloc_upper=[0.9, 0.9], rng=seed_input,
    )


def main() -> None:
    print("collecting identification and validation datasets...")
    train = collect(seed_app=21, seed_input=22)
    valid = collect(seed_app=23, seed_input=24)

    rows = []
    fits = {}
    for na, nb in [(1, 1), (1, 2), (2, 2)]:
        fit = fit_arx(train.t, train.c, na=na, nb=nb)
        fits[(na, nb)] = fit
        rho = residual_autocorrelation(fit.model, valid.t, valid.c, max_lag=3)
        rows.append([
            f"na={na}, nb={nb}",
            fit.r_squared,
            one_step_r2(fit.model, valid.t, valid.c),
            simulation_rmse(fit.model, valid.t, valid.c),
            float(np.max(np.abs(rho))),
            "yes" if is_stable_arx(fit.model) else "NO",
        ])
    print(format_table(
        ["structure", "train R^2", "held-out R^2", "free-run RMSE (ms)",
         "max |resid. rho|", "stable"],
        rows,
        title="ARX structure comparison (paper uses na=1, nb=2)",
    ))

    model = fits[(1, 2)].model
    print(f"\nselected model (na=1, nb=2):")
    print(f"  t(k) = {model.a[0]:.3f} t(k-1) + {np.round(model.b[0], 1)}·c(k) "
          f"+ {np.round(model.b[1], 1)}·c(k-1) + {model.g:.0f}")
    print(f"  poles: {np.round(arx_poles(model), 3)}")
    print(f"  steady-state gain (ms per GHz): {np.round(model.dc_gain(), 0)}")
    print("  negative gains confirm: more CPU -> lower response time.")


if __name__ == "__main__":
    main()
