"""Quickstart: consolidate a small virtualized cluster with IPAC.

Builds a 6-server data center hosting 10 VMs spread carelessly across
every machine, runs one IPAC invocation, and prints the placement and
power before and after — the paper's §V machinery in ~40 lines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cluster import DataCenter, Server, VM, make_server_pool
from repro.core.optimizer import IPACConfig, ipac, snapshot_datacenter, apply_plan
from repro.util.tables import format_table


def main() -> None:
    rng = np.random.default_rng(42)

    # A heterogeneous pool: the catalog mixes 3 GHz quad-cores with 2 GHz
    # and 1.5 GHz dual-cores of decreasing power efficiency.
    dc = DataCenter()
    for server in make_server_pool(6, rng=rng, active=True):
        dc.add_server(server)
    servers = sorted(dc.servers)

    # Ten VMs scattered round-robin — the "grew organically" placement.
    for j in range(10):
        vm = dc.add_vm(VM(
            f"vm{j}",
            demand_ghz=float(rng.uniform(0.3, 1.2)),
            memory_mb=int(rng.choice([512, 1024, 2048])),
        ))
        dc.place(vm.vm_id, servers[j % len(servers)])

    def state_rows():
        rows = []
        for sid in servers:
            s = dc.servers[sid]
            rows.append([
                sid,
                s.spec.name,
                "active" if s.active else "sleeping",
                dc.total_demand_ghz(sid),
                s.power_w(min(dc.total_demand_ghz(sid), s.capacity_ghz)),
            ])
        return rows

    print(format_table(
        ["server", "type", "state", "load (GHz)", "power (W)"],
        state_rows(), title="Before consolidation",
    ))
    print(f"total power: {dc.total_power_w():.1f} W\n")

    plan = ipac(snapshot_datacenter(dc), IPACConfig())
    apply_plan(dc, plan)

    print(format_table(
        ["server", "type", "state", "load (GHz)", "power (W)"],
        state_rows(), title="After one IPAC invocation",
    ))
    print(f"total power: {dc.total_power_w():.1f} W")
    print(f"migrations executed: {len(dc.migration_log)}, "
          f"servers put to sleep: {dc.sleep_count}")


if __name__ == "__main__":
    main()
