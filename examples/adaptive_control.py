"""Supervised online adaptation under plant drift.

A long-running application's characteristics change — the request mix
shifts, the database grows — and the once-identified ARX model goes
stale.  This example compares the paper's static controller with the
supervised adaptive controller (shadow RLS + model supervision) while
the plant's per-request CPU demands grow 75% mid-run.

The takeaway has two halves:

* the static controller *also* survives (offset-free feedback absorbs
  most drift — reassuring for the paper's design);
* the adaptive controller additionally repairs its gain estimate, and
  its supervisor guarantees it never does worse than the static one —
  naive closed-loop RLS without supervision, by contrast, can talk a
  controller into instability.

Run:  python examples/adaptive_control.py
"""

import numpy as np

from repro.apps import AppSpec, MultiTierApp
from repro.core.controller import (
    AdaptiveResponseTimeController,
    ControllerConfig,
    ResponseTimeController,
)
from repro.sysid import fit_arx, run_identification_experiment
from repro.util.tables import format_table

PERIOD_S = 15.0
DRIFT_AT = 40
PERIODS = 110


def drifted_plant(alloc, seed):
    """The same app after 'software aging': demands up 75%."""
    spec = AppSpec.rubbos(web_demand_ghz_s=0.035, db_demand_ghz_s=0.026)
    plant = MultiTierApp(spec, alloc, concurrency=40, rng=seed)
    plant.warmup(90.0)
    return plant


def closed_loop(ctrl, seed):
    plant = MultiTierApp(AppSpec.rubbos(), [1.0, 1.0], concurrency=40, rng=seed)
    plant.warmup(90.0)
    rts = []
    for k in range(PERIODS):
        if k == DRIFT_AT:
            plant = drifted_plant(plant.allocations_ghz, seed + 1)
        stats = plant.run_period(PERIOD_S)
        alloc = ctrl.update(stats.rt_p90_ms, used_ghz=plant.used_ghz(PERIOD_S))
        plant.set_allocations(alloc)
        rts.append(stats.rt_p90_ms)
    return np.asarray(rts)


def main() -> None:
    print("identifying the nominal plant (the model both controllers share)...")
    ident = MultiTierApp(AppSpec.rubbos(), [1.0, 1.0], concurrency=40, rng=11)
    data = run_identification_experiment(
        ident, n_periods=180, period_s=PERIOD_S,
        alloc_lower=[0.45, 0.45], alloc_upper=[0.9, 0.9], rng=12,
    )
    model = fit_arx(data.t, data.c).model

    rows = []
    for label, cls in [("static (paper)", ResponseTimeController),
                       ("adaptive (supervised RLS)", AdaptiveResponseTimeController)]:
        ctrl = cls(model, ControllerConfig(), c_min=[0.2, 0.2], c_max=[3.0, 3.0],
                   initial_alloc_ghz=[1.0, 1.0])
        rts = closed_loop(ctrl, seed=31)
        pre = rts[20:DRIFT_AT]
        post = rts[DRIFT_AT + 20:]
        extra = ""
        if isinstance(ctrl, AdaptiveResponseTimeController):
            extra = (f"{ctrl.rls_samples} clean RLS samples, candidate used "
                     f"{ctrl.candidate_periods} periods")
        rows.append([
            label,
            float(np.nanmean(pre)), float(np.nanstd(pre)),
            float(np.nanmean(post)), float(np.nanstd(post)),
            extra,
        ])
    print(format_table(
        ["controller", "rt pre-drift", "std", "rt post-drift", "std", "adaptation"],
        rows,
        title="Tracking a 1000 ms set point through a 75% demand drift at t=600 s",
    ))


if __name__ == "__main__":
    main()
