"""Response-time control of a two-tier web application (paper §IV).

The full application-level workflow on one simulated RUBBoS instance:

1. system identification — excite the CPU allocations with an APRBS and
   fit the ARX response-time model (paper Eq. 1);
2. closed-loop control — the MIMO MPC tracks a 1000 ms 90-percentile
   set point;
3. a Fig. 3-style stress test — the concurrency level doubles mid-run
   and the controller re-allocates CPU to absorb it.

Run:  python examples/response_time_control.py
"""

import numpy as np

from repro.apps import AppSpec, MultiTierApp
from repro.core.controller import ControllerConfig, ResponseTimeController
from repro.sysid import fit_arx, run_identification_experiment
from repro.util.ascii_chart import ascii_series

PERIOD_S = 15.0
SETPOINT_MS = 1000.0


def main() -> None:
    # --- 1. system identification -----------------------------------
    print("== System identification (APRBS excitation, 200 periods) ==")
    ident_app = MultiTierApp(
        AppSpec.rubbos(), [1.0, 1.0], concurrency=40, rng=11
    )
    data = run_identification_experiment(
        ident_app, n_periods=200, period_s=PERIOD_S,
        alloc_lower=[0.45, 0.45], alloc_upper=[0.9, 0.9], rng=12,
    )
    fit = fit_arx(data.t, data.c, na=1, nb=2)
    model = fit.model
    print(f"model: t(k) = {model.a[0]:.3f} t(k-1) "
          f"+ {model.b[0]}·c(k) + {model.b[1]}·c(k-1) + {model.g:.0f}")
    print(f"one-step R^2 = {fit.r_squared:.3f}, rmse = {fit.rmse:.0f} ms\n")

    # --- 2 & 3. closed loop with a workload step --------------------
    print("== Closed loop: 40 clients, step to 80 at t=450 s, back at 900 s ==")
    plant = MultiTierApp(AppSpec.rubbos(), [1.0, 1.0], concurrency=40, rng=13)
    plant.warmup(90.0)
    controller = ResponseTimeController(
        model,
        ControllerConfig(setpoint_ms=SETPOINT_MS, period_s=PERIOD_S),
        c_min=[0.2, 0.2], c_max=[3.0, 3.0], initial_alloc_ghz=[1.0, 1.0],
    )
    rts, webs, dbs = [], [], []
    n_periods = 90
    for k in range(n_periods):
        now = k * PERIOD_S
        if now == 450.0:
            plant.set_concurrency(80)
        if now == 900.0:
            plant.set_concurrency(40)
        stats = plant.run_period(PERIOD_S)
        alloc = controller.update(stats.rt_p90_ms, used_ghz=plant.used_ghz(PERIOD_S))
        plant.set_allocations(alloc)
        rts.append(stats.rt_p90_ms)
        webs.append(alloc[0])
        dbs.append(alloc[1])

    rts_arr = np.asarray(rts)
    print(ascii_series(rts, label="90-percentile response time (ms); "
                                  "step up at 450 s, down at 900 s"))
    print(ascii_series(webs, label="web-tier allocation (GHz)"))
    for name, lo, hi in [("base", 10, 30), ("overload", 35, 60), ("recovered", 70, 90)]:
        seg = rts_arr[lo:hi]
        print(f"{name:>10}: rt {np.nanmean(seg):6.0f} ± {np.nanstd(seg):4.0f} ms")
    print(f"final allocations: web {webs[-1]:.2f} GHz, db {dbs[-1]:.2f} GHz")


if __name__ == "__main__":
    main()
