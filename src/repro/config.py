"""One-stop import for every experiment/config dataclass.

The configs live next to the code they parameterize; this module
re-exports them so scripts can do ``from repro.config import ...``
without memorizing the package layout.
"""

from repro.control.mpc_core import MPCConfig
from repro.core.controller.response_time_controller import ControllerConfig
from repro.core.manager import PowerManagerConfig
from repro.core.optimizer.ipac import IPACConfig
from repro.core.optimizer.minslack import MinSlackConfig
from repro.core.optimizer.pac import PACConfig
from repro.core.optimizer.pmapper import PMapperConfig
from repro.sim.largescale import LargeScaleConfig
from repro.sim.testbed import TestbedConfig
from repro.traces.generator import TraceConfig

__all__ = [
    "MPCConfig",
    "ControllerConfig",
    "PowerManagerConfig",
    "IPACConfig",
    "MinSlackConfig",
    "PACConfig",
    "PMapperConfig",
    "LargeScaleConfig",
    "TestbedConfig",
    "TraceConfig",
]
