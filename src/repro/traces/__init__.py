"""Utilization-trace substrate.

The paper's large-scale evaluation replays a proprietary trace: "the
utilization data of 5415 servers from ten large companies covering the
manufacturing, telecommunications, financial, and retail sectors ...
average CPU utilization of each server every 15 minutes from 00:00 on
July 14th (Monday) to 23:45 on July 20th (Sunday) in 2008" (§VI-B).
We cannot ship that trace, so :func:`generate_trace` synthesizes one
with the same dimensions and the workload structure those sectors
exhibit (diurnal peaks, business-hour vs. evening shapes, weekend
troughs, noise, and occasional spikes).  See DESIGN.md §5.
"""

from repro.traces.trace import UtilizationTrace
from repro.traces.generator import SECTORS, TraceConfig, generate_trace
from repro.traces.forecast import DemandForecaster, EwmaPeakForecaster, HoltForecaster
from repro.traces.stats import TraceStats, sector_statistics, trace_statistics

__all__ = [
    "UtilizationTrace",
    "SECTORS",
    "TraceConfig",
    "generate_trace",
    "TraceStats",
    "DemandForecaster",
    "EwmaPeakForecaster",
    "HoltForecaster",
    "sector_statistics",
    "trace_statistics",
]
