"""Per-VM demand forecasting for proactive provisioning.

The paper's optimizer packs servers against the VM demands measured *at
invocation time*; demand that grows during the hours until the next
invocation overloads servers (relieved only reactively).  A forecaster
closes that gap: consolidation provisions for the predicted *peak* over
the coming inter-invocation window instead of the instantaneous value.

Both forecasters are fully vectorized across series and O(n) per step.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Mapping

import numpy as np

from repro.util.validation import check_in_range, check_non_negative, check_positive

__all__ = ["DemandForecaster", "EwmaPeakForecaster", "HoltForecaster"]


class DemandForecaster(ABC):
    """Online forecaster over a fixed set of demand series."""

    @abstractmethod
    def update(self, demands: np.ndarray) -> None:
        """Consume one step of observed demands, shape ``(n_series,)``."""

    @abstractmethod
    def forecast_peak(self, horizon_steps: int) -> np.ndarray:
        """Predicted per-series demand peak over the next *horizon* steps."""

    @abstractmethod
    def state_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot of the smoothing state (engine checkpoints)."""

    @abstractmethod
    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Restore a snapshot so forecasting continues bit-identically."""


class EwmaPeakForecaster(DemandForecaster):
    """EWMA level plus an EWMA of upward deviations.

    ``forecast = level + safety * upward_dev`` — a simple, robust
    "recent typical value plus recent burst size" rule.  The horizon
    argument is ignored (the deviation estimate already captures
    within-window bursts at the update cadence).
    """

    def __init__(self, n_series: int, alpha: float = 0.25, safety: float = 2.0):
        if n_series < 1:
            raise ValueError(f"n_series must be >= 1, got {n_series}")
        check_in_range("alpha", alpha, 0.01, 1.0)
        check_non_negative("safety", safety)
        self.alpha = float(alpha)
        self.safety = float(safety)
        self.level = np.zeros(n_series)
        self.upward_dev = np.zeros(n_series)
        self._initialized = False

    def update(self, demands: np.ndarray) -> None:
        d = np.asarray(demands, dtype=float)
        if d.shape != self.level.shape:
            raise ValueError(f"expected shape {self.level.shape}, got {d.shape}")
        if not self._initialized:
            self.level[:] = d
            self._initialized = True
            return
        excess = np.maximum(d - self.level, 0.0)
        self.level += self.alpha * (d - self.level)
        self.upward_dev += self.alpha * (excess - self.upward_dev)

    def forecast_peak(self, horizon_steps: int) -> np.ndarray:
        if horizon_steps < 1:
            raise ValueError(f"horizon_steps must be >= 1, got {horizon_steps}")
        return np.maximum(self.level + self.safety * self.upward_dev, 0.0)

    def state_dict(self) -> Dict[str, Any]:
        return {
            "kind": "ewma_peak",
            "level": self.level.tolist(),
            "upward_dev": self.upward_dev.tolist(),
            "initialized": self._initialized,
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        level = np.asarray(state["level"], dtype=float)
        if level.shape != self.level.shape:
            raise ValueError(
                f"checkpoint has {level.shape[0]} series, forecaster has "
                f"{self.level.shape[0]}"
            )
        self.level = level
        self.upward_dev = np.asarray(state["upward_dev"], dtype=float)
        self._initialized = bool(state["initialized"])


class HoltForecaster(DemandForecaster):
    """Holt's linear (level + damped trend) exponential smoothing.

    Extrapolates each series ``h`` steps ahead and returns the maximum
    over the horizon plus a safety margin of the smoothed absolute
    one-step error — so rising demands are provisioned for their end-of-
    window value, not their current one.
    """

    def __init__(
        self,
        n_series: int,
        alpha: float = 0.3,
        beta: float = 0.1,
        damping: float = 0.9,
        safety: float = 1.5,
    ):
        if n_series < 1:
            raise ValueError(f"n_series must be >= 1, got {n_series}")
        check_in_range("alpha", alpha, 0.01, 1.0)
        check_in_range("beta", beta, 0.01, 1.0)
        check_in_range("damping", damping, 0.0, 1.0)
        check_non_negative("safety", safety)
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.damping = float(damping)
        self.safety = float(safety)
        self.level = np.zeros(n_series)
        self.trend = np.zeros(n_series)
        self.abs_err = np.zeros(n_series)
        self._initialized = False

    def update(self, demands: np.ndarray) -> None:
        d = np.asarray(demands, dtype=float)
        if d.shape != self.level.shape:
            raise ValueError(f"expected shape {self.level.shape}, got {d.shape}")
        if not self._initialized:
            self.level[:] = d
            self._initialized = True
            return
        predicted = self.level + self.damping * self.trend
        self.abs_err += self.alpha * (np.abs(d - predicted) - self.abs_err)
        prev_level = self.level.copy()
        self.level = self.alpha * d + (1 - self.alpha) * predicted
        self.trend = (
            self.beta * (self.level - prev_level)
            + (1 - self.beta) * self.damping * self.trend
        )

    def forecast_peak(self, horizon_steps: int) -> np.ndarray:
        if horizon_steps < 1:
            raise ValueError(f"horizon_steps must be >= 1, got {horizon_steps}")
        # Damped-trend cumulative factor per step: phi + phi^2 + ... .
        phi = self.damping
        factors = np.cumsum(phi ** np.arange(1, horizon_steps + 1))
        # Peak over the horizon: depends on trend sign per series.
        best = np.where(
            self.trend >= 0,
            self.trend * factors[-1],   # rising: peak at the end
            self.trend * factors[0],    # falling: peak (highest) first step
        )
        return np.maximum(self.level + best + self.safety * self.abs_err, 0.0)

    def state_dict(self) -> Dict[str, Any]:
        return {
            "kind": "holt",
            "level": self.level.tolist(),
            "trend": self.trend.tolist(),
            "abs_err": self.abs_err.tolist(),
            "initialized": self._initialized,
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        level = np.asarray(state["level"], dtype=float)
        if level.shape != self.level.shape:
            raise ValueError(
                f"checkpoint has {level.shape[0]} series, forecaster has "
                f"{self.level.shape[0]}"
            )
        self.level = level
        self.trend = np.asarray(state["trend"], dtype=float)
        self.abs_err = np.asarray(state["abs_err"], dtype=float)
        self._initialized = bool(state["initialized"])
