"""Container for multi-series CPU utilization traces."""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

__all__ = ["UtilizationTrace"]


@dataclass
class UtilizationTrace:
    """A matrix of CPU utilization series.

    Attributes
    ----------
    utilization:
        Shape ``(n_series, n_samples)``, values in [0, 1].  Row *i* is
        the average CPU utilization of source server *i* per interval.
    interval_s:
        Sampling interval in seconds (paper: 900 = 15 minutes).
    labels:
        Optional per-series labels (e.g. ``"financial/company3"``).
    """

    utilization: np.ndarray
    interval_s: float = 900.0
    labels: List[str] = field(default_factory=list)

    def __post_init__(self):
        arr = np.atleast_2d(np.asarray(self.utilization, dtype=float))
        if arr.ndim != 2:
            raise ValueError(f"utilization must be 2-D, got shape {arr.shape}")
        if np.any(~np.isfinite(arr)):
            raise ValueError("utilization contains non-finite values")
        if np.any(arr < 0) or np.any(arr > 1):
            raise ValueError("utilization values must lie in [0, 1]")
        if self.interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {self.interval_s}")
        self.utilization = arr
        if self.labels and len(self.labels) != arr.shape[0]:
            raise ValueError(
                f"{len(self.labels)} labels for {arr.shape[0]} series"
            )

    @property
    def n_series(self) -> int:
        """Number of utilization series (source servers / VMs)."""
        return self.utilization.shape[0]

    @property
    def n_samples(self) -> int:
        """Number of samples per series."""
        return self.utilization.shape[1]

    @property
    def duration_s(self) -> float:
        """Covered wall-clock duration."""
        return self.n_samples * self.interval_s

    def subset(self, n: int, rng: np.random.Generator | None = None) -> "UtilizationTrace":
        """First *n* series (deterministic) or a random sample of *n*.

        The paper simulates "54 data centers with different number of
        VMs, ranging from 30 to 5,415" by taking subsets of the trace.
        """
        if not 0 < n <= self.n_series:
            raise ValueError(f"n must be in [1, {self.n_series}], got {n}")
        if rng is None:
            idx = np.arange(n)
        else:
            idx = np.sort(rng.choice(self.n_series, size=n, replace=False))
        labels = [self.labels[i] for i in idx] if self.labels else []
        return UtilizationTrace(self.utilization[idx].copy(), self.interval_s, labels)

    def demands_ghz(self, peak_ghz: Sequence[float] | float) -> np.ndarray:
        """Convert utilization to absolute CPU demand.

        "We treat the utilization data of each server as the CPU demand
        of a VM" (§VI-B): demand = utilization × the VM's peak GHz.
        Returns shape ``(n_series, n_samples)``.
        """
        peak = np.asarray(peak_ghz, dtype=float)
        if peak.ndim == 0:
            peak = np.full(self.n_series, float(peak))
        if peak.shape != (self.n_series,):
            raise ValueError(
                f"peak_ghz must be scalar or length {self.n_series}, got {peak.shape}"
            )
        if np.any(peak < 0):
            raise ValueError("peak_ghz must be non-negative")
        return self.utilization * peak[:, None]

    # -- persistence ---------------------------------------------------

    def to_csv(self, path: str) -> None:
        """Write as CSV: header row of labels, one column per series."""
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            labels = self.labels or [f"series{i}" for i in range(self.n_series)]
            writer.writerow(["interval_s"] + labels)
            writer.writerow([self.interval_s] + [""] * self.n_series)
            for k in range(self.n_samples):
                writer.writerow([k] + [f"{u:.4f}" for u in self.utilization[:, k]])

    @classmethod
    def from_csv(cls, path: str) -> "UtilizationTrace":
        """Read a trace written by :meth:`to_csv`."""
        with open(path, newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader)
            labels = header[1:]
            meta = next(reader)
            interval_s = float(meta[0])
            rows = [[float(v) for v in row[1:]] for row in reader]
        data = np.asarray(rows, dtype=float).T
        return cls(utilization=data, interval_s=interval_s, labels=labels)
