"""Synthetic data-center utilization trace generator.

Reproduces the *structure* of the paper's proprietary trace (DESIGN.md
§5): 5,415 series, 7 days starting on a Monday, 15-minute averages, ten
companies spread over four sectors.  Each sector gets a characteristic
shape:

* **financial** — sharp business-hours peak, deep weekend trough;
* **retail** — evening-leaning peak, weekends *busier* than weekdays;
* **telecom** — broad day-long plateau, mild weekend effect;
* **manufacturing** — shift-driven double hump, moderate weekend drop.

On top of the deterministic shape every series carries AR(1)-correlated
noise and occasional load spikes (the "breaking news" events §VII-A
motivates).  Everything is vectorized and driven by a seeded generator,
so any trace is reproducible from its config + seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.traces.trace import UtilizationTrace
from repro.util.rng import RngLike, ensure_rng

__all__ = ["SECTORS", "SectorProfile", "TraceConfig", "generate_trace"]


@dataclass(frozen=True)
class SectorProfile:
    """Shape parameters of one industry sector.

    ``peak_hours`` are the centers of the daily load bumps (may be two,
    e.g. manufacturing shifts); ``weekend_factor`` multiplies the
    *daily-varying* load component on Saturday/Sunday.
    """

    name: str
    base_range: Tuple[float, float]
    amplitude_range: Tuple[float, float]
    peak_hours: Tuple[float, ...]
    peak_width_h: float
    weekend_factor: float


SECTORS: Tuple[SectorProfile, ...] = (
    SectorProfile("manufacturing", (0.10, 0.35), (0.15, 0.45), (9.0, 21.0), 4.5, 0.55),
    SectorProfile("telecom", (0.15, 0.40), (0.10, 0.30), (14.0,), 7.0, 0.85),
    SectorProfile("financial", (0.08, 0.30), (0.25, 0.60), (11.0,), 3.0, 0.30),
    SectorProfile("retail", (0.10, 0.30), (0.20, 0.50), (19.0,), 4.0, 1.25),
)


@dataclass(frozen=True)
class TraceConfig:
    """Dimensions and stochastic parameters of a generated trace."""

    n_servers: int = 5415
    n_days: int = 7
    interval_s: float = 900.0
    n_companies: int = 10
    noise_std: float = 0.03
    noise_ar1: float = 0.6
    spike_probability: float = 0.002
    spike_magnitude: float = 0.35
    spike_duration_samples: int = 8
    min_utilization: float = 0.02
    max_utilization: float = 1.0

    def __post_init__(self):
        if self.n_servers < 1:
            raise ValueError(f"n_servers must be >= 1, got {self.n_servers}")
        if self.n_days < 1:
            raise ValueError(f"n_days must be >= 1, got {self.n_days}")
        if self.interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {self.interval_s}")
        if self.n_companies < 1:
            raise ValueError(f"n_companies must be >= 1, got {self.n_companies}")
        if not 0 <= self.noise_ar1 < 1:
            raise ValueError(f"noise_ar1 must be in [0, 1), got {self.noise_ar1}")
        if not 0 <= self.spike_probability <= 1:
            raise ValueError("spike_probability must be a probability")

    @property
    def samples_per_day(self) -> int:
        """Number of intervals per day (96 for 15-minute sampling)."""
        return int(round(86400.0 / self.interval_s))

    @property
    def n_samples(self) -> int:
        """Total samples per series."""
        return self.samples_per_day * self.n_days


def _daily_shape(hours: np.ndarray, profile: SectorProfile) -> np.ndarray:
    """Normalized daily bump pattern in [0, 1] for given hour-of-day values."""
    shape = np.zeros_like(hours)
    for peak in profile.peak_hours:
        # Circular distance in hours, Gaussian bump.
        delta = np.minimum(np.abs(hours - peak), 24.0 - np.abs(hours - peak))
        shape += np.exp(-0.5 * (delta / profile.peak_width_h) ** 2)
    top = shape.max()
    return shape / top if top > 0 else shape


def generate_trace(config: TraceConfig | None = None, rng: RngLike = None) -> UtilizationTrace:
    """Generate a synthetic utilization trace.

    Companies are assigned round-robin to sectors; servers are split
    evenly across companies; all randomness flows from *rng*.
    """
    config = config or TraceConfig()
    generator = ensure_rng(rng)
    n = config.n_servers
    k = config.n_samples

    # Hour-of-day and weekday for every sample (trace starts Monday 00:00).
    t_idx = np.arange(k)
    hours = (t_idx * config.interval_s / 3600.0) % 24.0
    day = (t_idx * config.interval_s // 86400).astype(int)
    is_weekend = (day % 7) >= 5  # days 5, 6 of each week = Sat, Sun

    # Assign servers -> companies -> sectors.
    company_of = generator.integers(config.n_companies, size=n)
    sector_of_company = np.arange(config.n_companies) % len(SECTORS)
    sector_of = sector_of_company[company_of]

    labels: List[str] = [
        f"{SECTORS[sector_of[i]].name}/company{company_of[i]}" for i in range(n)
    ]

    util = np.empty((n, k))
    # Per-company phase jitter so companies in the same sector differ.
    company_phase = generator.uniform(-1.5, 1.5, size=config.n_companies)

    for s_idx, profile in enumerate(SECTORS):
        members = np.flatnonzero(sector_of == s_idx)
        if members.size == 0:
            continue
        base = generator.uniform(*profile.base_range, size=members.size)
        amp = generator.uniform(*profile.amplitude_range, size=members.size)
        phase = company_phase[company_of[members]] + generator.uniform(
            -0.5, 0.5, size=members.size
        )
        # (members, k) daily shape with per-server phase shift.
        shifted_hours = (hours[None, :] - phase[:, None]) % 24.0
        shape = _daily_shape(shifted_hours, profile)
        weekend_scale = np.where(is_weekend, profile.weekend_factor, 1.0)
        util[members] = base[:, None] + amp[:, None] * shape * weekend_scale[None, :]

    # AR(1)-correlated noise, vectorized over series.
    white = generator.normal(0.0, config.noise_std, size=(n, k))
    noise = np.empty_like(white)
    noise[:, 0] = white[:, 0]
    rho = config.noise_ar1
    scale = np.sqrt(1.0 - rho * rho)
    for j in range(1, k):
        noise[:, j] = rho * noise[:, j - 1] + scale * white[:, j]
    util += noise

    # Sparse spikes with exponential-ish decay over a few samples.
    spikes = generator.random((n, k)) < config.spike_probability
    if spikes.any() and config.spike_duration_samples > 0:
        magnitudes = generator.uniform(
            0.5 * config.spike_magnitude, 1.5 * config.spike_magnitude, size=(n, k)
        )
        impulse = np.where(spikes, magnitudes, 0.0)
        decay = np.exp(-np.arange(config.spike_duration_samples) / max(config.spike_duration_samples / 3.0, 1.0))
        for d, w in enumerate(decay):
            if d == 0:
                util += impulse * w
            else:
                util[:, d:] += impulse[:, :-d] * w

    np.clip(util, config.min_utilization, config.max_utilization, out=util)
    return UtilizationTrace(util, interval_s=config.interval_s, labels=labels)
