"""Trace analytics: the statistics consolidation algorithms care about.

Utilization traces drive every large-scale result, so a reproduction
needs to *characterize* the synthetic trace it substitutes for the
paper's proprietary one: how bursty, how diurnal, how correlated — the
properties that decide how much DVFS and consolidation can save.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.traces.trace import UtilizationTrace

__all__ = ["TraceStats", "trace_statistics", "sector_statistics", "aggregate_demand_profile"]


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one trace (or one subset of its series).

    ``peak_to_mean`` is the aggregate-demand peak divided by its mean —
    the headroom consolidation must provision for; ``lag1_autocorr`` is
    the mean per-series lag-1 autocorrelation — how predictable one step
    ahead is (relevant to the optimizer invocation period);
    ``diurnal_range`` is the max-min spread of the average day profile.
    """

    n_series: int
    n_samples: int
    mean: float
    std: float
    p95: float
    peak_to_mean: float
    lag1_autocorr: float
    diurnal_range: float


def _lag1_autocorr(matrix: np.ndarray) -> float:
    x = matrix - matrix.mean(axis=1, keepdims=True)
    num = np.sum(x[:, 1:] * x[:, :-1], axis=1)
    den = np.sum(x * x, axis=1)
    valid = den > 0
    if not valid.any():
        return 0.0
    return float(np.mean(num[valid] / den[valid]))


def trace_statistics(trace: UtilizationTrace) -> TraceStats:
    """Compute :class:`TraceStats` over all series of *trace*."""
    u = trace.utilization
    aggregate = u.sum(axis=0)
    samples_per_day = max(int(round(86400.0 / trace.interval_s)), 1)
    n_days = u.shape[1] // samples_per_day
    if n_days >= 1:
        daily = u.mean(axis=0)[: n_days * samples_per_day]
        profile = daily.reshape(n_days, samples_per_day).mean(axis=0)
        diurnal_range = float(profile.max() - profile.min())
    else:
        diurnal_range = float(u.mean(axis=0).max() - u.mean(axis=0).min())
    agg_mean = float(aggregate.mean())
    return TraceStats(
        n_series=trace.n_series,
        n_samples=trace.n_samples,
        mean=float(u.mean()),
        std=float(u.std()),
        p95=float(np.percentile(u, 95.0)),
        peak_to_mean=float(aggregate.max()) / agg_mean if agg_mean > 0 else float("nan"),
        lag1_autocorr=_lag1_autocorr(u),
        diurnal_range=diurnal_range,
    )


def sector_statistics(trace: UtilizationTrace) -> Dict[str, TraceStats]:
    """Per-sector statistics, keyed by the label prefix before ``/``.

    Requires labels of the form ``sector/company`` (as produced by
    :func:`repro.traces.generator.generate_trace`).
    """
    if not trace.labels:
        raise ValueError("trace has no labels; sector breakdown unavailable")
    groups: Dict[str, List[int]] = {}
    for i, label in enumerate(trace.labels):
        sector = label.split("/")[0]
        groups.setdefault(sector, []).append(i)
    out = {}
    for sector, idx in sorted(groups.items()):
        sub = UtilizationTrace(
            trace.utilization[idx], trace.interval_s,
            [trace.labels[i] for i in idx],
        )
        out[sector] = trace_statistics(sub)
    return out


def aggregate_demand_profile(
    trace: UtilizationTrace, peak_ghz: float | np.ndarray = 1.0
) -> np.ndarray:
    """Total GHz demand per interval — the curve the data center must host."""
    return trace.demands_ghz(peak_ghz).sum(axis=0)
