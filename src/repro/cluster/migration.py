"""Live-migration mechanics and bookkeeping.

The paper treats migration as expensive (seconds to minutes) relative to
CPU re-allocation and DVFS, which is why the optimizer runs on a long
time scale and filters migrations through a cost function (§V).  This
module provides the standard pre-copy live-migration cost model used to
parameterize those decisions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_in_range, check_positive

__all__ = ["LiveMigrationModel", "MigrationRecord", "MigrationFailedError"]


class MigrationFailedError(RuntimeError):
    """A live migration attempt was disrupted before completing.

    Raised by :meth:`repro.cluster.datacenter.DataCenter.migrate` when a
    fault-injection disruptor aborts the transfer.  The failure is
    atomic: the VM is still on its source host, so callers may simply
    retry (:func:`repro.core.optimizer.types.apply_plan` does, with
    backoff) or leave the VM where it is.
    """

    def __init__(self, vm_id: str, source_id: str, target_id: str, attempt: int = 1):
        super().__init__(
            f"migration of {vm_id} from {source_id} to {target_id} failed "
            f"(attempt {attempt})"
        )
        self.vm_id = vm_id
        self.source_id = source_id
        self.target_id = target_id
        self.attempt = attempt


@dataclass(frozen=True)
class MigrationRecord:
    """One completed VM migration (for logs and cost accounting)."""

    vm_id: str
    source_id: str
    target_id: str
    time_s: float
    duration_s: float
    bytes_moved_mb: float


@dataclass(frozen=True)
class LiveMigrationModel:
    """Pre-copy live migration cost estimates.

    Parameters
    ----------
    bandwidth_mbps:
        Network bandwidth dedicated to migration traffic (megabits/s).
    dirty_factor:
        Total traffic as a multiple of the VM's memory footprint
        (pre-copy rounds re-send dirtied pages; 1.0 = a single pass).
    downtime_s:
        Stop-and-copy downtime added at the end of the transfer.
    """

    bandwidth_mbps: float = 1000.0
    dirty_factor: float = 1.3
    downtime_s: float = 0.2

    def __post_init__(self):
        check_positive("bandwidth_mbps", self.bandwidth_mbps)
        check_in_range("dirty_factor", self.dirty_factor, 1.0, 10.0)
        check_in_range("downtime_s", self.downtime_s, 0.0, 60.0)

    def bytes_moved_mb(self, memory_mb: float) -> float:
        """Total megabytes transferred for a VM of the given footprint."""
        return float(memory_mb) * self.dirty_factor

    def duration_s(self, memory_mb: float) -> float:
        """Wall-clock duration of the migration in seconds."""
        megabits = self.bytes_moved_mb(memory_mb) * 8.0
        return megabits / self.bandwidth_mbps + self.downtime_s
