"""Multi-tier application record linking VMs to a running workload."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.apps.rubbos import MultiTierApp

__all__ = ["Application"]


class Application:
    """An application deployed in the data center.

    Bundles the per-tier VM ids (in tier order) with, optionally, the
    live :class:`~repro.apps.rubbos.MultiTierApp` plant that produces its
    response-time measurements.  Large-scale simulations that drive VM
    demands from a utilization trace leave ``plant`` as ``None``.
    """

    __slots__ = ("app_id", "name", "vm_ids", "plant", "rt_setpoint_ms")

    def __init__(
        self,
        app_id: str,
        vm_ids: Sequence[str],
        name: str = "",
        plant: Optional[MultiTierApp] = None,
        rt_setpoint_ms: float = 1000.0,
    ):
        if not vm_ids:
            raise ValueError("an application needs at least one VM")
        if plant is not None and plant.spec.n_tiers != len(vm_ids):
            raise ValueError(
                f"plant has {plant.spec.n_tiers} tiers but {len(vm_ids)} VM ids given"
            )
        if rt_setpoint_ms <= 0:
            raise ValueError(f"rt_setpoint_ms must be positive, got {rt_setpoint_ms}")
        self.app_id = app_id
        self.name = name or app_id
        self.vm_ids: List[str] = list(vm_ids)
        self.plant = plant
        self.rt_setpoint_ms = float(rt_setpoint_ms)

    @property
    def n_tiers(self) -> int:
        """Number of tiers (VMs) of this application."""
        return len(self.vm_ids)

    def __repr__(self) -> str:
        return f"Application({self.app_id}, tiers={self.n_tiers})"
