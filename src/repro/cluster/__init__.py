"""Virtualized cluster model: servers, VMs, power, DVFS, migration.

This package is the synthetic equivalent of the paper's physical
infrastructure: Xen hosts with DVFS-capable CPUs, VMs with GHz CPU
allocations, live migration, and sleep states (DESIGN.md §5).
"""

from repro.cluster.power import MeasuredPowerCurve, ServerPowerModel
from repro.cluster.server import CPUSpec, ServerSpec, Server
from repro.cluster.vm import VM
from repro.cluster.application import Application
from repro.cluster.migration import LiveMigrationModel, MigrationRecord
from repro.cluster.datacenter import DataCenter
from repro.cluster.catalog import (
    CPU_3GHZ_QUAD,
    CPU_2GHZ_DUAL,
    CPU_1P5GHZ_DUAL,
    SERVER_TYPE_A,
    SERVER_TYPE_B,
    SERVER_TYPE_C,
    STANDARD_SERVER_TYPES,
    TESTBED_SERVER,
    make_server_pool,
)

__all__ = [
    "ServerPowerModel",
    "MeasuredPowerCurve",
    "CPUSpec",
    "ServerSpec",
    "Server",
    "VM",
    "Application",
    "LiveMigrationModel",
    "MigrationRecord",
    "DataCenter",
    "CPU_3GHZ_QUAD",
    "CPU_2GHZ_DUAL",
    "CPU_1P5GHZ_DUAL",
    "SERVER_TYPE_A",
    "SERVER_TYPE_B",
    "SERVER_TYPE_C",
    "STANDARD_SERVER_TYPES",
    "TESTBED_SERVER",
    "make_server_pool",
]
