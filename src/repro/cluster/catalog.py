"""Standard server catalog matching the paper's simulation setup.

The paper's large-scale simulator assigns each of 3000 servers "one of 3
types of CPUs: 3 GHz quad-core CPU, 2 GHz dual-core CPU and 1.5 GHz
dual-core CPU" (§VI-B).  Power constants are representative 2008-class
values chosen so the three types have clearly different power
efficiencies (GHz/W) — the heterogeneity both PAC and pMapper exploit.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cluster.power import ServerPowerModel
from repro.cluster.server import CPUSpec, Server, ServerSpec
from repro.util.rng import RngLike, ensure_rng

__all__ = [
    "CPU_3GHZ_QUAD",
    "CPU_2GHZ_DUAL",
    "CPU_1P5GHZ_DUAL",
    "SERVER_TYPE_A",
    "SERVER_TYPE_B",
    "SERVER_TYPE_C",
    "STANDARD_SERVER_TYPES",
    "TESTBED_SERVER",
    "make_server_pool",
]

CPU_3GHZ_QUAD = CPUSpec("xeon-3.0-quad", cores=4, freq_levels_ghz=(1.5, 2.0, 2.5, 3.0))
CPU_2GHZ_DUAL = CPUSpec("opteron-2.0-dual", cores=2, freq_levels_ghz=(1.0, 1.4, 1.7, 2.0))
CPU_1P5GHZ_DUAL = CPUSpec("xeon-1.5-dual", cores=2, freq_levels_ghz=(0.75, 1.0, 1.25, 1.5))

# Efficiency (max GHz / busy W): A = 12/300 = 0.040, B = 4/150 ~= 0.027,
# C = 3/135 ~= 0.022 — strictly decreasing, so "most efficient first" has
# a well-defined order.
SERVER_TYPE_A = ServerSpec(
    name="typeA-3.0x4",
    cpu=CPU_3GHZ_QUAD,
    memory_mb=16384,
    power=ServerPowerModel(sleep_w=10.0, idle_w=180.0, busy_w=300.0),
)
SERVER_TYPE_B = ServerSpec(
    name="typeB-2.0x2",
    cpu=CPU_2GHZ_DUAL,
    memory_mb=8192,
    power=ServerPowerModel(sleep_w=8.0, idle_w=95.0, busy_w=150.0),
)
SERVER_TYPE_C = ServerSpec(
    name="typeC-1.5x2",
    cpu=CPU_1P5GHZ_DUAL,
    memory_mb=4096,
    power=ServerPowerModel(sleep_w=7.0, idle_w=85.0, busy_w=135.0),
)

STANDARD_SERVER_TYPES: Sequence[ServerSpec] = (SERVER_TYPE_A, SERVER_TYPE_B, SERVER_TYPE_C)

# The 4-machine hardware testbed (§VI-A): identical mid-range servers.
# Dual-core, sized so the 4 hosted VMs (~0.5 GHz each at the 1000 ms set
# point) sit near a DVFS level boundary — workload surges then visibly
# raise the chosen frequency and the measured power, as in the paper's
# Fig. 3(b).
TESTBED_SERVER = ServerSpec(
    name="testbed-2.4x2",
    cpu=CPUSpec("xeon-2.4-dual", cores=2, freq_levels_ghz=(1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.4)),
    memory_mb=8192,
    power=ServerPowerModel(sleep_w=9.0, idle_w=110.0, busy_w=180.0),
)


def make_server_pool(
    n_servers: int,
    types: Sequence[ServerSpec] = STANDARD_SERVER_TYPES,
    rng: RngLike = None,
    id_prefix: str = "S",
    active: bool = False,
    type_weights: Sequence[float] | None = None,
) -> List[Server]:
    """Create *n_servers* servers with randomly assigned types.

    Matches the paper: "Each server is randomly assigned one of 3 types
    of CPUs" (§VI-B).  ``type_weights`` skews the draw (e.g. few
    high-efficiency machines, many legacy ones — the scarcity that makes
    per-VM energy grow with data-center size in Fig. 6); ``None`` means
    uniform.  Servers start asleep by default (``active=False``) since
    the large-scale experiment wakes them on demand.
    """
    if n_servers < 0:
        raise ValueError(f"n_servers must be >= 0, got {n_servers}")
    if not types:
        raise ValueError("types must be non-empty")
    if type_weights is not None:
        weights = [float(w) for w in type_weights]
        if len(weights) != len(types):
            raise ValueError(
                f"{len(weights)} weights for {len(types)} types"
            )
        total = sum(weights)
        if total <= 0 or any(w < 0 for w in weights):
            raise ValueError(f"type_weights must be non-negative and sum > 0, got {type_weights}")
        probs = [w / total for w in weights]
    else:
        probs = None
    generator = ensure_rng(rng)
    width = max(4, len(str(max(n_servers - 1, 0))))
    pool = []
    for i in range(n_servers):
        idx = int(generator.choice(len(types), p=probs))
        pool.append(Server(f"{id_prefix}{i:0{width}d}", types[idx], active=active))
    return pool
