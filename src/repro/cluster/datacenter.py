"""The data center: servers, VMs, placement, and power accounting.

A single source of truth for "which VM runs where".  The optimizer
(:mod:`repro.core.optimizer`) computes placement *plans* against a
read-only snapshot and the data center applies them, logging every
migration and sleep/wake transition — mirroring the paper's "VM
migration interface" and "sleep/active commands" (Fig. 1).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.cluster.application import Application
from repro.cluster.migration import (
    LiveMigrationModel,
    MigrationFailedError,
    MigrationRecord,
)
from repro.cluster.server import Server
from repro.cluster.vm import VM

__all__ = ["DataCenter"]

# Fault-injection hook: (vm_id, source_id, target_id) -> True to disrupt
# this migration attempt.  Installed by repro.faults.FaultInjector while
# a migration_failure fault is active; None means migrations always
# succeed (the default, fault-free world).
MigrationDisruptor = Callable[[str, str, str], bool]


class DataCenter:
    """Mutable placement state plus power/energy accounting helpers."""

    def __init__(self, migration_model: Optional[LiveMigrationModel] = None):
        self.servers: Dict[str, Server] = {}
        self.vms: Dict[str, VM] = {}
        self.applications: Dict[str, Application] = {}
        self._vm_to_server: Dict[str, str] = {}
        self._server_vms: Dict[str, set] = {}
        self.migration_model = migration_model or LiveMigrationModel()
        self.migration_log: List[MigrationRecord] = []
        self.wake_count = 0
        self.sleep_count = 0
        self.migration_disruptor: Optional[MigrationDisruptor] = None
        self.failure_count = 0
        self.recovery_count = 0

    # -- registration --------------------------------------------------

    def add_server(self, server: Server) -> Server:
        """Register a server; ids must be unique."""
        if server.server_id in self.servers:
            raise ValueError(f"duplicate server id {server.server_id!r}")
        self.servers[server.server_id] = server
        self._server_vms[server.server_id] = set()
        return server

    def add_vm(self, vm: VM) -> VM:
        """Register a VM (unplaced); ids must be unique."""
        if vm.vm_id in self.vms:
            raise ValueError(f"duplicate VM id {vm.vm_id!r}")
        self.vms[vm.vm_id] = vm
        return vm

    def add_application(self, app: Application) -> Application:
        """Register an application whose VMs are already registered."""
        if app.app_id in self.applications:
            raise ValueError(f"duplicate application id {app.app_id!r}")
        for vm_id in app.vm_ids:
            if vm_id not in self.vms:
                raise ValueError(f"application {app.app_id} references unknown VM {vm_id}")
        self.applications[app.app_id] = app
        return app

    # -- placement queries ----------------------------------------------

    def server_of(self, vm_id: str) -> Optional[str]:
        """Id of the server hosting *vm_id*, or None if unplaced."""
        return self._vm_to_server.get(vm_id)

    def vms_on(self, server_id: str) -> List[VM]:
        """VM objects currently placed on *server_id*."""
        self._require_server(server_id)
        return [self.vms[v] for v in sorted(self._server_vms[server_id])]

    def mapping(self) -> Dict[str, str]:
        """Copy of the current vm_id -> server_id mapping."""
        return dict(self._vm_to_server)

    def total_demand_ghz(self, server_id: str) -> float:
        """Sum of hosted VMs' controller-set CPU demands."""
        return sum(vm.demand_ghz for vm in self.vms_on(server_id))

    def total_memory_mb(self, server_id: str) -> int:
        """Sum of hosted VMs' memory footprints."""
        return sum(vm.memory_mb for vm in self.vms_on(server_id))

    def active_servers(self) -> List[Server]:
        """Servers currently in the active state, id-ordered."""
        return [s for _, s in sorted(self.servers.items()) if s.active]

    def sleeping_servers(self) -> List[Server]:
        """Servers currently asleep (including crashed ones), id-ordered."""
        return [s for _, s in sorted(self.servers.items()) if not s.active]

    def failed_servers(self) -> List[Server]:
        """Servers currently crashed, id-ordered."""
        return [s for _, s in sorted(self.servers.items()) if s.failed]

    def overloaded_servers(self, headroom: float = 1.0) -> List[str]:
        """Ids of servers whose demand exceeds max capacity / headroom.

        ``headroom > 1`` flags servers *before* they saturate (e.g. 1.1
        flags at 91% of max capacity), mirroring the trigger IPAC uses to
        build its migration list.
        """
        if headroom <= 0:
            raise ValueError(f"headroom must be positive, got {headroom}")
        out = []
        for sid, server in sorted(self.servers.items()):
            if not server.active and not self._server_vms[sid]:
                continue
            if self.total_demand_ghz(sid) > server.max_capacity_ghz / headroom + 1e-9:
                out.append(sid)
        return out

    def memory_violations(self) -> List[str]:
        """Ids of servers whose hosted VM memory exceeds physical memory."""
        return [
            sid
            for sid, server in sorted(self.servers.items())
            if self.total_memory_mb(sid) > server.spec.memory_mb
        ]

    # -- placement mutations ---------------------------------------------

    def place(self, vm_id: str, server_id: str, enforce_memory: bool = True) -> None:
        """Place an unplaced VM on a server (initial deployment)."""
        vm = self._require_vm(vm_id)
        server = self._require_server(server_id)
        if vm_id in self._vm_to_server:
            raise ValueError(
                f"VM {vm_id} is already placed on {self._vm_to_server[vm_id]}; "
                "use migrate()"
            )
        if not server.active:
            raise ValueError(f"cannot place {vm_id} on sleeping server {server_id}")
        if enforce_memory and self.total_memory_mb(server_id) + vm.memory_mb > server.spec.memory_mb:
            raise ValueError(
                f"placing {vm_id} ({vm.memory_mb} MB) on {server_id} would exceed "
                f"its {server.spec.memory_mb} MB of memory"
            )
        self._vm_to_server[vm_id] = server_id
        self._server_vms[server_id].add(vm_id)

    def unplace(self, vm_id: str) -> None:
        """Remove a VM from its server (e.g. application retired)."""
        self._require_vm(vm_id)
        sid = self._vm_to_server.pop(vm_id, None)
        if sid is not None:
            self._server_vms[sid].discard(vm_id)

    def migrate(
        self, vm_id: str, target_id: str, time_s: float = 0.0, enforce_memory: bool = True
    ) -> MigrationRecord:
        """Live-migrate a placed VM to another active server.

        Returns the :class:`MigrationRecord` (also appended to
        ``migration_log``).  The move is atomic at this modelling level;
        its duration and traffic come from ``migration_model``.
        """
        vm = self._require_vm(vm_id)
        target = self._require_server(target_id)
        source_id = self._vm_to_server.get(vm_id)
        if source_id is None:
            raise ValueError(f"VM {vm_id} is not placed; use place()")
        if source_id == target_id:
            raise ValueError(f"VM {vm_id} is already on {target_id}")
        if not target.active:
            raise ValueError(f"cannot migrate {vm_id} to sleeping server {target_id}")
        if enforce_memory and self.total_memory_mb(target_id) + vm.memory_mb > target.spec.memory_mb:
            raise ValueError(
                f"migrating {vm_id} to {target_id} would exceed its memory"
            )
        if self.migration_disruptor is not None and self.migration_disruptor(
            vm_id, source_id, target_id
        ):
            raise MigrationFailedError(vm_id, source_id, target_id)
        self._server_vms[source_id].discard(vm_id)
        self._server_vms[target_id].add(vm_id)
        self._vm_to_server[vm_id] = target_id
        record = MigrationRecord(
            vm_id=vm_id,
            source_id=source_id,
            target_id=target_id,
            time_s=float(time_s),
            duration_s=self.migration_model.duration_s(vm.memory_mb),
            bytes_moved_mb=self.migration_model.bytes_moved_mb(vm.memory_mb),
        )
        self.migration_log.append(record)
        return record

    def sleep_server(self, server_id: str) -> None:
        """Put an *empty* server to sleep."""
        server = self._require_server(server_id)
        if self._server_vms[server_id]:
            raise ValueError(
                f"cannot sleep {server_id}: still hosts {sorted(self._server_vms[server_id])}"
            )
        if server.active:
            server.sleep()
            self.sleep_count += 1

    def wake_server(self, server_id: str) -> None:
        """Wake a sleeping server (no-op if already active)."""
        server = self._require_server(server_id)
        if server.failed:
            raise ValueError(f"cannot wake crashed server {server_id}")
        if not server.active:
            server.wake()
            self.wake_count += 1

    # -- faults ----------------------------------------------------------

    def fail_server(self, server_id: str) -> List[str]:
        """Crash a server: evict every hosted VM, mark it failed.

        Returns the evicted VM ids (id-ordered) so the caller — normally
        :meth:`repro.core.manager.PowerManager.emergency_evacuate` via
        the fault injector — can re-place them.  Evicted VMs lose their
        allocation (they are not running anywhere) but keep their
        demand, which is what the evacuation packer places against.
        Idempotent on an already-failed server (returns ``[]``).
        """
        server = self._require_server(server_id)
        if server.failed:
            return []
        evicted = sorted(self._server_vms[server_id])
        for vm_id in evicted:
            self._vm_to_server.pop(vm_id, None)
            self.vms[vm_id].allocation_ghz = 0.0
        self._server_vms[server_id].clear()
        server.fail()
        self.failure_count += 1
        return evicted

    def recover_server(self, server_id: str) -> None:
        """Repair a crashed server; it rejoins the *sleeping* pool.

        The next optimizer invocation (or an explicit
        :meth:`wake_server`) decides whether to bring it back into
        service.  No-op if the server is not failed.
        """
        server = self._require_server(server_id)
        if not server.failed:
            return
        server.repair()
        server.unthrottle()
        self.recovery_count += 1

    # -- power -----------------------------------------------------------

    def total_power_w(self, used_ghz_by_server: Optional[Dict[str, float]] = None) -> float:
        """Instantaneous total power.

        ``used_ghz_by_server`` gives each server's actually-consumed GHz;
        servers absent from the dict are assumed to consume their hosted
        VMs' full demand (capped at current capacity).
        """
        total = 0.0
        for sid, server in self.servers.items():
            if used_ghz_by_server is not None and sid in used_ghz_by_server:
                used = used_ghz_by_server[sid]
            else:
                used = min(self.total_demand_ghz(sid), server.capacity_ghz)
            total += server.power_w(used)
        return total

    # -- internals ---------------------------------------------------

    def _require_server(self, server_id: str) -> Server:
        try:
            return self.servers[server_id]
        except KeyError:
            raise KeyError(f"unknown server id {server_id!r}") from None

    def _require_vm(self, vm_id: str) -> VM:
        try:
            return self.vms[vm_id]
        except KeyError:
            raise KeyError(f"unknown VM id {vm_id!r}") from None
