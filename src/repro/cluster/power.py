"""Server power models.

The paper measured real servers with a power meter; we use the standard
parameterized family (linear in utilization, polynomial in frequency)
that such measurements are conventionally fit to:

``P(f, u) = P_idle(f) + (P_busy(f) - P_idle(f)) * u``

where ``u`` is the fraction of the *current-frequency* capacity in use,
and both endpoints scale with frequency:

``P_idle(f) = P_idle * (1 - k_idle * (1 - r^e))``,
``P_busy(f) = P_idle(f) + (P_busy - P_idle) * r^e``,  with ``r = f/f_max``.

The exponent ``e`` (default 3) models the cubic voltage-frequency
relation DVFS exploits; ``k_idle`` is the fraction of idle power that is
frequency-sensitive (clock tree, uncore).  A sleeping server draws a
small constant ``P_sleep``.  This family preserves the two facts the
paper's algorithms rely on: lower frequency at equal work saves power,
and sleeping saves far more than idling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.util.validation import check_in_range, check_non_negative, check_positive

__all__ = ["ServerPowerModel", "MeasuredPowerCurve"]


@dataclass(frozen=True)
class ServerPowerModel:
    """Power in watts as a function of DVFS frequency and utilization.

    Attributes
    ----------
    sleep_w:
        Draw in the sleep state (suspend-to-RAM class, a few watts).
    idle_w:
        Draw when active, 0% utilized, at maximum frequency.
    busy_w:
        Draw when active, 100% utilized, at maximum frequency.
    dvfs_exponent:
        Exponent ``e`` of the frequency scaling (3 = cubic).
    idle_dvfs_fraction:
        Fraction of idle power that scales with frequency.
    """

    sleep_w: float
    idle_w: float
    busy_w: float
    dvfs_exponent: float = 3.0
    idle_dvfs_fraction: float = 0.3

    def __post_init__(self):
        check_non_negative("sleep_w", self.sleep_w)
        check_positive("idle_w", self.idle_w)
        check_positive("busy_w", self.busy_w)
        if self.busy_w < self.idle_w:
            raise ValueError(
                f"busy_w ({self.busy_w}) must be >= idle_w ({self.idle_w})"
            )
        if self.sleep_w > self.idle_w:
            raise ValueError(
                f"sleep_w ({self.sleep_w}) must be <= idle_w ({self.idle_w})"
            )
        check_positive("dvfs_exponent", self.dvfs_exponent)
        check_in_range("idle_dvfs_fraction", self.idle_dvfs_fraction, 0.0, 1.0)

    def active_power_w(self, freq_ratio: float, utilization: float) -> float:
        """Power of an active server.

        Parameters
        ----------
        freq_ratio:
            Current frequency divided by maximum frequency, in (0, 1].
        utilization:
            Used fraction of the capacity *at the current frequency*,
            in [0, 1].
        """
        freq_ratio = check_in_range("freq_ratio", freq_ratio, 0.0, 1.0)
        utilization = check_in_range("utilization", utilization, 0.0, 1.0)
        scale = freq_ratio ** self.dvfs_exponent
        idle = self.idle_w * (1.0 - self.idle_dvfs_fraction * (1.0 - scale))
        dynamic = (self.busy_w - self.idle_w) * scale * utilization
        return idle + dynamic

    def sleep_power_w(self) -> float:
        """Power of a sleeping server."""
        return self.sleep_w


@dataclass(frozen=True)
class MeasuredPowerCurve:
    """A power model interpolated from measured load points.

    SPECpower_ssj-style characterizations publish watts at 0%, 10%, ...,
    100% load; real curves are concave (most of the dynamic power is
    spent by 50% load), which the linear model misses.  This class
    interpolates such a table and converts it into an equivalent
    :class:`ServerPowerModel`-compatible interface.

    Attributes
    ----------
    load_points:
        Utilization grid in [0, 1], ascending, starting at 0 and ending
        at 1.
    watts:
        Measured draw at each grid point, at maximum frequency.
    sleep_w:
        Sleep-state draw.
    dvfs_exponent / idle_dvfs_fraction:
        Frequency scaling applied on top of the measured curve, with the
        same semantics as :class:`ServerPowerModel`.
    """

    load_points: Tuple[float, ...]
    watts: Tuple[float, ...]
    sleep_w: float
    dvfs_exponent: float = 3.0
    idle_dvfs_fraction: float = 0.3

    def __post_init__(self):
        pts = tuple(float(p) for p in self.load_points)
        w = tuple(float(x) for x in self.watts)
        if len(pts) != len(w) or len(pts) < 2:
            raise ValueError("need matching load_points and watts (>= 2 points)")
        if pts[0] != 0.0 or pts[-1] != 1.0:
            raise ValueError(f"load_points must span [0, 1], got {pts}")
        if any(b <= a for a, b in zip(pts, pts[1:])):
            raise ValueError(f"load_points must be strictly increasing, got {pts}")
        if any(x <= 0 for x in w):
            raise ValueError("watts must be positive")
        if any(b < a for a, b in zip(w, w[1:])):
            raise ValueError("watts must be non-decreasing in load")
        check_non_negative("sleep_w", self.sleep_w)
        if self.sleep_w > w[0]:
            raise ValueError(f"sleep_w ({self.sleep_w}) must be <= idle watts ({w[0]})")
        object.__setattr__(self, "load_points", pts)
        object.__setattr__(self, "watts", w)

    @property
    def idle_w(self) -> float:
        """Draw at 0% load, maximum frequency (linear-model compatible)."""
        return self.watts[0]

    @property
    def busy_w(self) -> float:
        """Draw at 100% load, maximum frequency."""
        return self.watts[-1]

    def active_power_w(self, freq_ratio: float, utilization: float) -> float:
        """Interpolated power with DVFS scaling (same contract as
        :meth:`ServerPowerModel.active_power_w`)."""
        freq_ratio = check_in_range("freq_ratio", freq_ratio, 0.0, 1.0)
        utilization = check_in_range("utilization", utilization, 0.0, 1.0)
        measured = float(np.interp(utilization, self.load_points, self.watts))
        scale = freq_ratio ** self.dvfs_exponent
        idle = self.idle_w * (1.0 - self.idle_dvfs_fraction * (1.0 - scale))
        dynamic = (measured - self.idle_w) * scale
        return idle + dynamic

    def sleep_power_w(self) -> float:
        """Power of a sleeping server."""
        return self.sleep_w

    @staticmethod
    def spec2008_like(peak_w: float, sleep_w: float = 8.0) -> "MeasuredPowerCurve":
        """A representative 2008-class concave curve scaled to *peak_w*.

        Shape taken from typical SPECpower_ssj2008 submissions of the
        era: ~55% of peak at idle, steep initial slope.
        """
        shape = (0.55, 0.63, 0.70, 0.76, 0.82, 0.87, 0.91, 0.94, 0.97, 0.99, 1.0)
        loads = tuple(i / 10.0 for i in range(11))
        return MeasuredPowerCurve(
            load_points=loads,
            watts=tuple(peak_w * f for f in shape),
            sleep_w=sleep_w,
        )
