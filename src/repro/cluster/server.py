"""Physical server model: CPU with discrete DVFS levels, memory, states."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.cluster.power import ServerPowerModel
from repro.util.validation import check_monotone_increasing, check_positive

__all__ = ["CPUSpec", "ServerSpec", "Server"]


@dataclass(frozen=True)
class CPUSpec:
    """A processor model: core count and its discrete DVFS frequencies.

    ``freq_levels_ghz`` must be strictly increasing; the last entry is
    the nominal maximum frequency.  Total capacity at a level is
    ``freq * cores`` (all cores share one frequency domain, as on the
    paper's testbed hardware).
    """

    model: str
    cores: int
    freq_levels_ghz: Tuple[float, ...]

    def __post_init__(self):
        if self.cores < 1 or int(self.cores) != self.cores:
            raise ValueError(f"cores must be a positive integer, got {self.cores}")
        if not self.freq_levels_ghz:
            raise ValueError("freq_levels_ghz must be non-empty")
        for f in self.freq_levels_ghz:
            check_positive("frequency level", f)
        check_monotone_increasing("freq_levels_ghz", self.freq_levels_ghz)

    @property
    def max_freq_ghz(self) -> float:
        """Nominal maximum frequency."""
        return self.freq_levels_ghz[-1]

    @property
    def min_freq_ghz(self) -> float:
        """Lowest DVFS frequency."""
        return self.freq_levels_ghz[0]

    @property
    def max_capacity_ghz(self) -> float:
        """Total cycles/s across all cores at maximum frequency."""
        return self.max_freq_ghz * self.cores

    def capacity_at(self, freq_ghz: float) -> float:
        """Total capacity at a given per-core frequency."""
        return float(freq_ghz) * self.cores

    def lowest_level_for(self, demand_ghz: float) -> float:
        """Lowest frequency whose total capacity covers *demand_ghz*.

        Returns the maximum frequency if even that cannot cover the
        demand (the overloaded case — the arbitrator then rations).
        """
        for f in self.freq_levels_ghz:
            if self.capacity_at(f) >= demand_ghz - 1e-9:
                return f
        return self.max_freq_ghz


@dataclass(frozen=True)
class ServerSpec:
    """A server model: CPU, memory, and power characteristics."""

    name: str
    cpu: CPUSpec
    memory_mb: int
    power: ServerPowerModel

    def __post_init__(self):
        if self.memory_mb <= 0:
            raise ValueError(f"memory_mb must be positive, got {self.memory_mb}")

    @property
    def max_capacity_ghz(self) -> float:
        """Total CPU capacity at maximum frequency."""
        return self.cpu.max_capacity_ghz

    @property
    def power_efficiency(self) -> float:
        """GHz of capacity per watt at full load — the paper's sort key
        ("ratio between the maximum CPU frequency and maximum power
        consumption", §V)."""
        return self.cpu.max_capacity_ghz / self.power.busy_w


class Server:
    """A physical server instance with runtime state.

    State is limited to what the paper's algorithms (and the fault
    subsystem) manipulate: the active/sleep flag, the current DVFS
    frequency, a crashed flag, and a thermal-throttle capacity fraction.
    VM placement is tracked by
    :class:`repro.cluster.datacenter.DataCenter` to keep a single source
    of truth.
    """

    __slots__ = ("server_id", "spec", "active", "freq_ghz", "failed", "capacity_fraction")

    def __init__(self, server_id: str, spec: ServerSpec, active: bool = True):
        self.server_id = server_id
        self.spec = spec
        self.active = bool(active)
        self.freq_ghz = spec.cpu.max_freq_ghz
        self.failed = False
        self.capacity_fraction = 1.0

    def capacity_at(self, freq_ghz: float) -> float:
        """Effective capacity at a frequency, throttle applied."""
        return self.spec.cpu.capacity_at(freq_ghz) * self.capacity_fraction

    @property
    def capacity_ghz(self) -> float:
        """Capacity at the *current* frequency (0 when sleeping)."""
        if not self.active:
            return 0.0
        return self.capacity_at(self.freq_ghz)

    @property
    def max_capacity_ghz(self) -> float:
        """Effective capacity at maximum frequency regardless of state.

        A thermal throttle scales this down, so overload detection and
        the optimizer's packing both see the degraded machine.
        """
        return self.spec.max_capacity_ghz * self.capacity_fraction

    def set_frequency(self, freq_ghz: float) -> None:
        """Switch to one of the spec's discrete DVFS levels."""
        levels = self.spec.cpu.freq_levels_ghz
        if not any(abs(freq_ghz - f) < 1e-9 for f in levels):
            raise ValueError(
                f"{freq_ghz} GHz is not a DVFS level of {self.spec.cpu.model} "
                f"(levels: {levels})"
            )
        self.freq_ghz = float(freq_ghz)

    def power_w(self, used_ghz: float) -> float:
        """Instantaneous power given average GHz actually consumed."""
        if self.failed:
            return 0.0  # a crashed server draws nothing
        if not self.active:
            return self.spec.power.sleep_power_w()
        cap = self.capacity_ghz
        util = 0.0 if cap <= 0 else min(max(used_ghz / cap, 0.0), 1.0)
        ratio = self.freq_ghz / self.spec.cpu.max_freq_ghz
        return self.spec.power.active_power_w(ratio, util)

    def sleep(self) -> None:
        """Enter the sleep state (caller must have evacuated VMs)."""
        self.active = False

    def wake(self) -> None:
        """Leave the sleep state at maximum frequency."""
        if self.failed:
            raise ValueError(f"cannot wake crashed server {self.server_id}")
        self.active = True
        self.freq_ghz = self.spec.cpu.max_freq_ghz

    # -- fault state ---------------------------------------------------

    def fail(self) -> None:
        """Crash: drop out of the active pool until :meth:`repair`."""
        self.failed = True
        self.active = False

    def repair(self) -> None:
        """Clear the crashed flag; the server rejoins the *sleeping*
        pool (a wake/optimizer decision brings it back into service)."""
        self.failed = False

    def throttle(self, fraction: float) -> None:
        """Clamp effective capacity to ``fraction`` of nominal (0, 1]."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"throttle fraction must be in (0, 1], got {fraction}")
        self.capacity_fraction = float(fraction)

    def unthrottle(self) -> None:
        """Restore nominal capacity."""
        self.capacity_fraction = 1.0

    def __repr__(self) -> str:
        state = "failed" if self.failed else ("active" if self.active else "sleeping")
        return f"Server({self.server_id}, {self.spec.name}, {state}, {self.freq_ghz}GHz)"
