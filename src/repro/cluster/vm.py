"""Virtual machine model."""

from __future__ import annotations

from repro.util.validation import check_non_negative

__all__ = ["VM"]


class VM:
    """A virtual machine hosting one tier of one application.

    ``demand_ghz`` is the CPU *requirement* determined by the
    application-level response-time controller (paper §III: "CPU resource
    demands"); ``allocation_ghz`` is what the server-level arbitrator
    actually granted.  The two differ only when the hosting server is
    overloaded.
    """

    __slots__ = ("vm_id", "app_id", "tier_index", "memory_mb", "demand_ghz", "allocation_ghz")

    def __init__(
        self,
        vm_id: str,
        app_id: str = "",
        tier_index: int = 0,
        memory_mb: int = 1024,
        demand_ghz: float = 0.0,
    ):
        if memory_mb <= 0:
            raise ValueError(f"memory_mb must be positive, got {memory_mb}")
        if tier_index < 0:
            raise ValueError(f"tier_index must be >= 0, got {tier_index}")
        self.vm_id = vm_id
        self.app_id = app_id
        self.tier_index = int(tier_index)
        self.memory_mb = int(memory_mb)
        self.demand_ghz = check_non_negative("demand_ghz", demand_ghz)
        self.allocation_ghz = 0.0

    def set_demand(self, demand_ghz: float) -> None:
        """Update the controller-determined CPU requirement."""
        self.demand_ghz = check_non_negative("demand_ghz", demand_ghz)

    def __repr__(self) -> str:
        return (
            f"VM({self.vm_id}, app={self.app_id}, tier={self.tier_index}, "
            f"demand={self.demand_ghz:.3f}GHz, mem={self.memory_mb}MB)"
        )
