"""PowerTracer-style per-tier / per-app energy attribution.

Joins the cluster power model's per-server power readings against the
per-tier CPU usage measured by the request-level plants: each server's
energy for a control period is split among the tiers it hosts in
proportion to the GHz they actually consumed.  A server that hosts
tiers but measured zero usage splits its (idle) energy equally among
them; a powered server hosting nothing lands in the ``unattributed``
bucket (idle/sleep burn that no application caused).

Reconciliation is exact by construction: per-server shares sum to the
server's energy, so summing the attributed tier energies plus the
unattributed bucket recovers total datacenter energy to float rounding
(well within the 1e-6 relative tolerance the golden-scenario tests
pin).  This is the repo's realization of PowerTracer's core claim — a
black-box power number becomes a per-application, per-tier signal.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

__all__ = ["EnergyAttributor"]


class EnergyAttributor:
    """Accumulates per-(app, tier) energy over a run.

    Call :meth:`attribute` once per control period with that period's
    per-server power and hosting map; read :meth:`summary` at the end.
    """

    def __init__(self) -> None:
        #: {app: {tier: energy_wh}} accumulated over all periods.
        self.energy_wh: Dict[str, Dict[str, float]] = {}
        self.unattributed_wh = 0.0
        self.total_wh = 0.0
        self.n_periods = 0

    def attribute(
        self,
        duration_s: float,
        server_power_w: Mapping[str, float],
        hosted: Mapping[str, Sequence[Tuple[str, str, float]]],
    ) -> Dict[str, float]:
        """Attribute one period; returns this period's per-app Wh.

        ``server_power_w`` maps server id -> average power (W) over the
        period; ``hosted`` maps server id -> ``(app, tier, used_ghz)``
        triples for every tier hosted on that server.
        """
        hours = float(duration_s) / 3600.0
        per_app: Dict[str, float] = {}
        for sid, power in server_power_w.items():
            energy = float(power) * hours
            self.total_wh += energy
            tiers = hosted.get(sid)
            if not tiers:
                self.unattributed_wh += energy
                continue
            used_total = 0.0
            for _app, _tier, used in tiers:
                used_total += used
            equal = 1.0 / len(tiers)
            for app, tier, used in tiers:
                share = used / used_total if used_total > 0.0 else equal
                amount = energy * share
                app_bucket = self.energy_wh.setdefault(app, {})
                app_bucket[tier] = app_bucket.get(tier, 0.0) + amount
                per_app[app] = per_app.get(app, 0.0) + amount
        self.n_periods += 1
        return per_app

    # -- accessors -----------------------------------------------------

    def app_totals(self) -> Dict[str, float]:
        """Cumulative Wh per application."""
        return {
            app: sum(tiers.values()) for app, tiers in sorted(self.energy_wh.items())
        }

    @property
    def attributed_wh(self) -> float:
        """Cumulative Wh assigned to application tiers."""
        return sum(sum(tiers.values()) for tiers in self.energy_wh.values())

    @property
    def reconciliation_error(self) -> float:
        """Relative |attributed + unattributed - total| (0 when empty)."""
        if self.total_wh == 0.0:
            return 0.0
        gap = self.attributed_wh + self.unattributed_wh - self.total_wh
        return abs(gap) / abs(self.total_wh)

    def summary(self) -> Dict[str, object]:
        """JSON-safe cumulative attribution report."""
        per_tier: List[Dict[str, object]] = []
        for app, tiers in sorted(self.energy_wh.items()):
            for tier, wh in sorted(tiers.items()):
                per_tier.append({"app": app, "tier": tier, "energy_wh": wh})
        return {
            "n_periods": self.n_periods,
            "total_wh": self.total_wh,
            "attributed_wh": self.attributed_wh,
            "unattributed_wh": self.unattributed_wh,
            "reconciliation_error": self.reconciliation_error,
            "per_app_wh": self.app_totals(),
            "per_tier": per_tier,
        }
