"""Summarize a telemetry JSONL run file (``repro-obs summarize``).

Reads the records written by :class:`~repro.obs.backends.JsonlBackend`
during an instrumented run and reduces them to:

* per-application response-time tracking error (vs. each controller's
  set point) from ``control_period`` events;
* a time-in-span breakdown (count, total, mean, max wall time per span
  name) from ``span`` records;
* optimizer activity: invocations, migrations, wake/sleep commands,
  IPAC drain diagnostics, and Minimum-Slack search effort;
* power/transition aggregates from per-period events and
  ``server_power`` transitions;
* the final metrics snapshot, when the run emitted one.
"""

from __future__ import annotations

import json
import logging
import math
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.util.tables import format_table

__all__ = [
    "read_jsonl",
    "read_jsonl_lenient",
    "summarize_events",
    "summarize_jsonl",
    "render_summary",
]

logger = logging.getLogger(__name__)


def read_jsonl(path: Union[str, Path]) -> List[dict]:
    """Parse every non-empty line of *path* as one JSON record.

    Raises :class:`ValueError` naming the first malformed line; use
    :func:`read_jsonl_lenient` to tolerate truncated/corrupt files.
    """
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON ({exc})") from exc
    return records


def read_jsonl_lenient(path: Union[str, Path]) -> Tuple[List[dict], int]:
    """Like :func:`read_jsonl`, but skip-and-count malformed lines.

    A run killed mid-write leaves a truncated last line (and a crashed
    writer can interleave garbage); analysis tooling should still read
    the intact prefix.  Returns ``(records, n_malformed)``; non-object
    lines (e.g. a bare JSON number) count as malformed too.
    """
    records: List[dict] = []
    n_malformed = 0
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                n_malformed += 1
                logger.debug("%s:%d: skipping malformed JSONL line", path, lineno)
                continue
            if not isinstance(record, dict):
                n_malformed += 1
                continue
            records.append(record)
    return records, n_malformed


def _mean(xs: List[float]) -> float:
    return sum(xs) / len(xs) if xs else float("nan")


def summarize_events(records: List[dict]) -> dict:
    """Reduce parsed telemetry records to a summary dict."""
    apps: Dict[str, dict] = {}
    spans: Dict[str, dict] = {}
    optimizer = {
        "invocations": 0,
        "migrations": 0,
        "wake": 0,
        "sleep": 0,
        "unplaced": 0,
        "info_totals": {},
    }
    power_samples: List[float] = []
    transitions = {"on": 0, "off": 0}
    migration_events = 0
    metrics: Optional[dict] = None
    n_periods = 0
    request_traces: Dict[str, int] = {}
    attribution: Optional[dict] = None

    for rec in records:
        kind = rec.get("kind")
        if kind == "control_period":
            n_periods += 1
            for app_id, data in (rec.get("apps") or {}).items():
                entry = apps.setdefault(
                    app_id,
                    {"n": 0, "n_measured": 0, "rts": [], "errors": [], "setpoint_ms": None},
                )
                entry["n"] += 1
                rt = data.get("rt_ms")
                setpoint = data.get("setpoint_ms")
                if setpoint is not None:
                    entry["setpoint_ms"] = float(setpoint)
                if rt is not None and math.isfinite(float(rt)):
                    rt = float(rt)
                    entry["n_measured"] += 1
                    entry["rts"].append(rt)
                    if setpoint is not None:
                        entry["errors"].append(rt - float(setpoint))
        elif kind == "span":
            name = str(rec.get("name", "?"))
            dur = float(rec.get("duration_s", 0.0))
            entry = spans.setdefault(
                name, {"count": 0, "total_s": 0.0, "max_s": 0.0, "depths": set()}
            )
            entry["count"] += 1
            entry["total_s"] += dur
            entry["max_s"] = max(entry["max_s"], dur)
            entry["depths"].add(int(rec.get("depth", 0)))
        elif kind == "optimizer_invocation":
            optimizer["invocations"] += 1
            optimizer["migrations"] += int(rec.get("moves", 0))
            optimizer["wake"] += int(rec.get("wake", 0))
            optimizer["sleep"] += int(rec.get("sleep", 0))
            optimizer["unplaced"] += int(rec.get("unplaced", 0))
            for key, value in (rec.get("info") or {}).items():
                totals = optimizer["info_totals"]
                totals[key] = totals.get(key, 0.0) + float(value)
        elif kind == "migration":
            migration_events += 1
        elif kind == "server_power":
            state = str(rec.get("state", ""))
            if state in transitions:
                transitions[state] += 1
        elif kind in ("testbed.period", "largescale.step"):
            power = rec.get("power_w")
            if power is not None and math.isfinite(float(power)):
                power_samples.append(float(power))
        elif kind == "request_trace":
            app = str(rec.get("app", "?"))
            request_traces[app] = request_traces.get(app, 0) + 1
        elif kind == "attribution_summary":
            attribution = rec.get("attribution")
        elif kind == "metrics":
            metrics = rec.get("metrics")

    app_rows = {}
    for app_id, entry in sorted(apps.items()):
        rts = entry["rts"]
        errors = entry["errors"]
        rmse = math.sqrt(_mean([e * e for e in errors])) if errors else float("nan")
        app_rows[app_id] = {
            "periods": entry["n"],
            "measured": entry["n_measured"],
            "setpoint_ms": entry["setpoint_ms"],
            "rt_mean_ms": _mean(rts),
            "rt_max_ms": max(rts) if rts else float("nan"),
            "mean_abs_error_ms": _mean([abs(e) for e in errors]),
            "rmse_ms": rmse,
        }

    span_rows = {}
    for name, entry in spans.items():
        span_rows[name] = {
            "count": entry["count"],
            "total_s": entry["total_s"],
            "mean_ms": 1000.0 * entry["total_s"] / entry["count"],
            "max_ms": 1000.0 * entry["max_s"],
            "max_depth": max(entry["depths"]) if entry["depths"] else 0,
        }

    return {
        "n_records": len(records),
        "n_control_periods": n_periods,
        "apps": app_rows,
        "spans": span_rows,
        "optimizer": optimizer,
        "migration_events": migration_events,
        "server_transitions": transitions,
        "power": {
            "samples": len(power_samples),
            "mean_w": _mean(power_samples),
            "max_w": max(power_samples) if power_samples else float("nan"),
        },
        "request_traces": request_traces,
        "attribution": attribution,
        "metrics": metrics,
    }


def summarize_jsonl(path: Union[str, Path]) -> dict:
    """Lenient read + :func:`summarize_events` in one call.

    Malformed lines (a truncated tail, mid-file corruption) are skipped
    and surfaced as ``n_malformed`` in the summary instead of aborting
    the analysis.
    """
    records, n_malformed = read_jsonl_lenient(path)
    summary = summarize_events(records)
    summary["n_malformed"] = n_malformed
    return summary


def _fmt(value: float, digits: int = 1) -> str:
    if value is None or (isinstance(value, float) and not math.isfinite(value)):
        return "-"
    return f"{value:.{digits}f}"


def render_summary(summary: dict, title: str = "telemetry summary") -> str:
    """Render a summary dict as plain-text tables."""
    parts: List[str] = [
        f"{title}: {summary['n_records']} records, "
        f"{summary['n_control_periods']} control periods"
    ]

    if summary["apps"]:
        rows = [
            [
                app_id,
                data["periods"],
                data["measured"],
                _fmt(data["setpoint_ms"], 0),
                _fmt(data["rt_mean_ms"]),
                _fmt(data["rt_max_ms"]),
                _fmt(data["mean_abs_error_ms"]),
                _fmt(data["rmse_ms"]),
            ]
            for app_id, data in summary["apps"].items()
        ]
        parts.append(
            format_table(
                ["app", "periods", "meas", "set ms", "mean ms", "max ms", "|err| ms", "rmse ms"],
                rows,
                title="Per-app response-time tracking",
            )
        )

    if summary["spans"]:
        ordered = sorted(
            summary["spans"].items(), key=lambda kv: -kv[1]["total_s"]
        )
        rows = [
            [
                name,
                data["count"],
                _fmt(data["total_s"], 3),
                _fmt(data["mean_ms"], 3),
                _fmt(data["max_ms"], 3),
                data["max_depth"],
            ]
            for name, data in ordered
        ]
        parts.append(
            format_table(
                ["span", "count", "total s", "mean ms", "max ms", "depth"],
                rows,
                title="Time in span",
            )
        )

    opt = summary["optimizer"]
    if opt["invocations"]:
        rows = [
            ["invocations", opt["invocations"]],
            ["migrations", opt["migrations"]],
            ["servers woken", opt["wake"]],
            ["servers slept", opt["sleep"]],
            ["unplaced VMs", opt["unplaced"]],
        ]
        for key, value in sorted(opt["info_totals"].items()):
            rows.append([key, _fmt(value, 1)])
        parts.append(format_table(["optimizer", "total"], rows, title="Optimizer activity"))

    power = summary["power"]
    extras = [
        ["power samples", power["samples"]],
        ["mean power W", _fmt(power["mean_w"])],
        ["max power W", _fmt(power["max_w"])],
        ["migration events", summary["migration_events"]],
        ["servers switched on", summary["server_transitions"]["on"]],
        ["servers switched off", summary["server_transitions"]["off"]],
    ]
    parts.append(format_table(["quantity", "value"], extras, title="Run aggregates"))

    metrics = summary.get("metrics")
    if metrics and metrics.get("counters"):
        rows = [[name, _fmt(val, 0)] for name, val in metrics["counters"].items()]
        parts.append(format_table(["counter", "value"], rows, title="Counters"))

    return "\n\n".join(parts)
