"""Kernel phase profiling aggregation (``repro-obs profile``).

The :class:`~repro.engine.kernel.ControlPlane` wraps every phase of
every control period in a ``phase.<name>`` telemetry span annotated
with CPU time (``cpu_s``) and the net change in allocated memory
blocks (``alloc_blocks``).  This module reduces those spans to a
per-phase profile: invocation count, wall/CPU totals, mean/max wall
time, allocation churn, and each phase's share of total kernel time.

Exact despite sampling: when the run's tracer sampled span *records*
(``span_sample_every > 1``) the per-record aggregates undercount, but
the final ``{"kind": "metrics"}`` snapshot carries the ``span.phase.*``
histograms which observed **every** span — where present, their exact
count/sum/max override the sampled record tally (CPU and allocation
columns remain sampled estimates, marked as such in the report).
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Dict, List, Union

from repro.obs.summarize import read_jsonl_lenient
from repro.util.tables import format_table

__all__ = ["profile_events", "profile_jsonl", "render_profile"]

_PREFIX = "phase."


def profile_events(records: List[dict]) -> dict:
    """Reduce telemetry records to a per-phase kernel profile dict."""
    phases: Dict[str, dict] = {}
    per_pod: Dict[int, dict] = {}
    fleet_spans = 0
    metrics = None
    for rec in records:
        kind = rec.get("kind")
        if kind == "span":
            name = str(rec.get("name", ""))
            if name == "manager.fleet_control":
                fleet_spans += 1
            if not name.startswith(_PREFIX):
                continue
            phase = name[len(_PREFIX):]
            entry = phases.setdefault(phase, {
                "sampled_records": 0,
                "count": 0,
                "wall_s": 0.0,
                "max_ms": 0.0,
                "cpu_s": 0.0,
                "alloc_blocks": 0,
                "exact": False,
            })
            dur = float(rec.get("duration_s", 0.0))
            entry["sampled_records"] += 1
            entry["count"] += 1
            entry["wall_s"] += dur
            entry["max_ms"] = max(entry["max_ms"], dur * 1000.0)
            entry["cpu_s"] += float(rec.get("cpu_s", 0.0))
            entry["alloc_blocks"] += int(rec.get("alloc_blocks", 0))
            # Spans re-emitted by the sharded backend carry the pod that
            # produced them; aggregate a per-pod view alongside.
            if "pod" in rec:
                pod = per_pod.setdefault(int(rec["pod"]), {
                    "spans": 0, "wall_s": 0.0, "cpu_s": 0.0,
                })
                pod["spans"] += 1
                pod["wall_s"] += dur
                pod["cpu_s"] += float(rec.get("cpu_s", 0.0))
        elif kind == "metrics":
            metrics = rec.get("metrics")

    # Histograms saw every span; prefer their exact wall-time figures.
    for hname, hsum in ((metrics or {}).get("histograms") or {}).items():
        if not hname.startswith("span." + _PREFIX):
            continue
        phase = hname[len("span." + _PREFIX):]
        entry = phases.setdefault(phase, {
            "sampled_records": 0, "count": 0, "wall_s": 0.0, "max_ms": 0.0,
            "cpu_s": 0.0, "alloc_blocks": 0, "exact": False,
        })
        entry["count"] = int(hsum.get("count", entry["count"]))
        entry["wall_s"] = float(hsum.get("sum", entry["wall_s"]))
        hmax = hsum.get("max")
        if hmax is not None and math.isfinite(float(hmax)):
            entry["max_ms"] = float(hmax) * 1000.0
        entry["exact"] = True

    total_wall = sum(e["wall_s"] for e in phases.values())
    for entry in phases.values():
        entry["mean_ms"] = (
            1000.0 * entry["wall_s"] / entry["count"] if entry["count"] else 0.0
        )
        entry["wall_fraction"] = (
            entry["wall_s"] / total_wall if total_wall > 0.0 else 0.0
        )
    # Fleet-control grouping efficiency: the batch metrics saw every
    # period (counters/histograms are never sampled), so the mean group
    # size tells how well the fleet's solves coalesced — a mean near
    # the fleet size is one stacked solve per period; a mean near 1 is
    # scalar work with extra bookkeeping.
    fleet = None
    msnap = metrics or {}
    groups = float((msnap.get("counters") or {}).get(
        "controller.batch_groups", 0.0
    ))
    size_hist = (msnap.get("histograms") or {}).get("controller.batch_size")
    if groups or size_hist:
        fleet = {
            "batch_groups": groups,
            "spans": fleet_spans,
            "group_size": size_hist or {},
        }
    return {
        "phases": dict(sorted(phases.items(), key=lambda kv: -kv[1]["wall_s"])),
        "total_wall_s": total_wall,
        "per_pod": dict(sorted(per_pod.items())),
        "fleet": fleet,
        "sampled": any(
            e["exact"] and e["sampled_records"] < e["count"]
            for e in phases.values()
        ),
    }


def profile_jsonl(path: Union[str, Path]) -> dict:
    """Lenient read + :func:`profile_events`; adds ``n_malformed``."""
    records, n_malformed = read_jsonl_lenient(path)
    profile = profile_events(records)
    profile["n_malformed"] = n_malformed
    return profile


def render_profile(profile: dict, title: str = "kernel phase profile") -> str:
    """Render a profile dict as a plain-text table."""
    phases = profile["phases"]
    header = f"{title}: {len(phases)} phases, {profile['total_wall_s']:.3f}s total wall"
    malformed = profile.get("n_malformed", 0)
    if malformed:
        header += f" [{malformed} malformed lines skipped]"
    if not phases:
        return header + "\n(no phase.* spans in this run — was telemetry enabled?)"
    rows = [
        [
            phase,
            entry["count"],
            f"{entry['wall_fraction']:.1%}",
            f"{entry['wall_s']:.3f}",
            f"{entry['mean_ms']:.3f}",
            f"{entry['max_ms']:.3f}",
            f"{entry['cpu_s']:.3f}",
            entry["alloc_blocks"],
        ]
        for phase, entry in phases.items()
    ]
    note = ""
    if profile.get("sampled"):
        note = (
            "\n\nwall columns are exact (histogram-backed); cpu/alloc are "
            "estimates from sampled span records."
        )
    out = header + "\n\n" + format_table(
        ["phase", "count", "share", "wall s", "mean ms", "max ms",
         "cpu s", "alloc blocks"],
        rows,
        title="Per-phase cost",
    )
    per_pod = profile.get("per_pod") or {}
    if per_pod:
        pod_wall = sum(p["wall_s"] for p in per_pod.values())
        pod_rows = [
            [
                f"pod {pod_id}",
                entry["spans"],
                f"{entry['wall_s'] / pod_wall:.1%}" if pod_wall > 0 else "-",
                f"{entry['wall_s']:.3f}",
                f"{entry['cpu_s']:.3f}",
            ]
            for pod_id, entry in per_pod.items()
        ]
        out += "\n\n" + format_table(
            ["pod", "spans", "share", "wall s", "cpu s"],
            pod_rows,
            title="Per-pod span cost (sharded run)",
        )
    fleet = profile.get("fleet")
    if fleet:
        size = fleet.get("group_size") or {}
        count = float(size.get("count", 0.0))

        def _f(key):
            v = size.get(key)
            return "-" if v is None or not math.isfinite(float(v)) else f"{float(v):.1f}"

        fleet_rows = [[
            int(fleet["batch_groups"]),
            f"{_f('mean')}" if count else "-",
            _f("max") if count else "-",
            f"{size.get('sum', 0.0):.0f}" if count else "-",
        ]]
        out += "\n\n" + format_table(
            ["solve groups", "mean size", "max size", "solves batched"],
            fleet_rows,
            title="Fleet control grouping (controller.batch_* metrics)",
        )
    return out + note
