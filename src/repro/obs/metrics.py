"""Metric primitives and the registry that owns them.

Three metric kinds, mirroring the Prometheus data model the rest of the
industry standardized on:

* :class:`Counter` — a monotonically increasing total (optimizer moves,
  MPC solves, DES events processed);
* :class:`Gauge` — a point-in-time value (active servers, current power);
* :class:`Histogram` — a sample distribution with quantile summaries
  (span durations, per-period tracking error).  Sample storage is
  bounded: past ``max_samples`` retained points the histogram decimates
  deterministically (keeps every 2nd sample and doubles its stride), so
  quantiles stay representative while memory stays O(max_samples).
  ``count``/``sum``/``min``/``max`` remain exact over *all* observations.

A :class:`MetricsRegistry` creates metrics on demand by name, snapshots
them to plain dicts, and renders a Prometheus-style text exposition.
"""

from __future__ import annotations

import bisect
import math
import re
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "prom_escape_label",
    "prom_line",
]


class Counter:
    """A monotonically increasing float total."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current total."""
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self._value += amount

    def reset(self) -> None:
        """Zero the counter."""
        self._value = 0.0


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = float("nan")

    @property
    def value(self) -> float:
        """Most recently set value (NaN before the first set)."""
        return self._value

    def set(self, value: float) -> None:
        """Record the current value."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by *amount* (NaN gauges start from 0)."""
        if math.isnan(self._value):
            self._value = 0.0
        self._value += amount

    def reset(self) -> None:
        """Return the gauge to its unset (NaN) state."""
        self._value = float("nan")


class Histogram:
    """Bounded-memory sample distribution with quantile summaries.

    Observations are appended to a retained-sample list; once the list
    reaches ``max_samples`` it is decimated (every 2nd sample kept) and
    the sampling stride doubles, so only every ``stride``-th future
    observation is retained.  The decimation is deterministic — repeated
    runs of a seeded experiment produce identical snapshots.

    ``buckets`` optionally fixes explicit upper boundaries (ascending).
    With buckets set the histogram additionally keeps an *exact* count
    per bucket (observations ≤ boundary, Prometheus ``le`` semantics),
    and :meth:`MetricsRegistry.to_prometheus` renders the metric as a
    native histogram with ``_bucket{le="..."}`` lines instead of a
    quantile summary.
    """

    __slots__ = (
        "name",
        "max_samples",
        "buckets",
        "_bucket_counts",
        "_samples",
        "_stride",
        "_seen",
        "_count",
        "_sum",
        "_min",
        "_max",
    )

    def __init__(
        self,
        name: str,
        max_samples: int = 8192,
        buckets: Optional[Sequence[float]] = None,
    ):
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.name = name
        self.max_samples = int(max_samples)
        if buckets is not None:
            bounds = tuple(float(b) for b in buckets)
            if not bounds:
                raise ValueError("buckets must be non-empty when given")
            if any(not math.isfinite(b) for b in bounds):
                raise ValueError(f"bucket boundaries must be finite, got {bounds}")
            if list(bounds) != sorted(set(bounds)):
                raise ValueError(
                    f"bucket boundaries must be strictly ascending, got {bounds}"
                )
            self.buckets: Optional[Tuple[float, ...]] = bounds
            self._bucket_counts: List[int] = [0] * len(bounds)
        else:
            self.buckets = None
            self._bucket_counts = []
        self._samples: List[float] = []
        self._stride = 1
        self._seen = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    @property
    def count(self) -> int:
        """Exact number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Exact sum of all observations."""
        return self._sum

    @property
    def min(self) -> float:
        """Exact minimum (NaN when empty)."""
        return self._min if self._count else float("nan")

    @property
    def max(self) -> float:
        """Exact maximum (NaN when empty)."""
        return self._max if self._count else float("nan")

    @property
    def mean(self) -> float:
        """Exact mean (NaN when empty)."""
        return self._sum / self._count if self._count else float("nan")

    @property
    def n_retained(self) -> int:
        """Number of samples currently retained for quantiles."""
        return len(self._samples)

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        if math.isnan(value):
            return
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if self.buckets is not None:
            slot = bisect.bisect_left(self.buckets, value)
            if slot < len(self._bucket_counts):
                self._bucket_counts[slot] += 1
        if self._seen % self._stride == 0:
            self._samples.append(value)
            if len(self._samples) >= self.max_samples:
                self._samples = self._samples[::2]
                self._stride *= 2
        self._seen += 1

    def quantile(self, q: float) -> float:
        """Empirical q-quantile over the retained samples (NaN if empty).

        Linear interpolation between order statistics, the same scheme
        as ``numpy.percentile``'s default.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return float("nan")
        xs = sorted(self._samples)
        pos = q * (len(xs) - 1)
        lo = int(math.floor(pos))
        hi = int(math.ceil(pos))
        if lo == hi:
            return xs[lo]
        frac = pos - lo
        return xs[lo] * (1.0 - frac) + xs[hi] * frac

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, Prometheus ``le`` semantics.

        Empty when the histogram was created without explicit buckets.
        The ``+Inf`` bucket is not included; it always equals ``count``.
        """
        if self.buckets is None:
            return []
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self._bucket_counts):
            running += n
            out.append((bound, running))
        return out

    def summary(self) -> Dict[str, float]:
        """count / sum / mean / min / max / p50 / p90 / p99 snapshot."""
        return {
            "count": float(self._count),
            "sum": self._sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def reset(self) -> None:
        """Drop all state."""
        self._samples.clear()
        self._bucket_counts = [0] * len(self._bucket_counts)
        self._stride = 1
        self._seen = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf


_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitize a metric name for the Prometheus text format."""
    clean = _PROM_BAD.sub("_", name)
    if clean and clean[0].isdigit():
        clean = "_" + clean
    return clean


def prom_escape_label(value: object) -> str:
    """Escape a label value per the Prometheus text-format rules.

    Backslash, double quote, and newline must be escaped inside the
    quoted label value; everything else passes through verbatim.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def prom_line(name: str, labels: Optional[Mapping[str, object]], value: float) -> str:
    """One Prometheus text-format sample line with escaped labels."""
    pname = _prom_name(name)
    if labels:
        body = ",".join(
            f'{_prom_name(str(k))}="{prom_escape_label(v)}"'
            for k, v in labels.items()
        )
        return f"{pname}{{{body}}} {value:g}"
    return f"{pname} {value:g}"


class MetricsRegistry:
    """Create-on-demand registry of named counters, gauges, histograms.

    A name belongs to exactly one metric kind for the registry's
    lifetime; asking for the same name as a different kind raises.
    """

    def __init__(self, histogram_max_samples: int = 8192):
        self.histogram_max_samples = histogram_max_samples
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- access --------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter named *name*, created on first use."""
        c = self._counters.get(name)
        if c is None:
            self._check_free(name, self._counters)
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge named *name*, created on first use."""
        g = self._gauges.get(name)
        if g is None:
            self._check_free(name, self._gauges)
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(
        self,
        name: str,
        max_samples: Optional[int] = None,
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        """The histogram named *name*, created on first use.

        ``buckets`` only takes effect at creation; later calls return
        the existing histogram unchanged.
        """
        h = self._histograms.get(name)
        if h is None:
            self._check_free(name, self._histograms)
            h = self._histograms[name] = Histogram(
                name, max_samples or self.histogram_max_samples, buckets=buckets
            )
        return h

    def _check_free(self, name: str, own: Mapping[str, object]) -> None:
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if table is not own and name in table:
                raise ValueError(f"metric {name!r} already registered as a {kind}")

    # -- convenience ---------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment counter *name* by *amount*."""
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value*."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Add one observation to histogram *name*."""
        self.histogram(name).observe(value)

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(
            list(self._counters) + list(self._gauges) + list(self._histograms)
        )

    def reset(self) -> None:
        """Reset every registered metric in place."""
        for table in (self._counters, self._gauges, self._histograms):
            for metric in table.values():
                metric.reset()

    # -- export --------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict snapshot: {counters: {...}, gauges: {...}, histograms: {...}}."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }

    def to_prometheus(self) -> str:
        """Prometheus text-exposition dump of every metric."""
        lines: List[str] = []
        for name, c in sorted(self._counters.items()):
            pname = _prom_name(name)
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {c.value:g}")
        for name, g in sorted(self._gauges.items()):
            pname = _prom_name(name)
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {g.value:g}")
        for name, h in sorted(self._histograms.items()):
            pname = _prom_name(name)
            if h.buckets is not None:
                lines.append(f"# TYPE {pname} histogram")
                for bound, cum in h.cumulative_buckets():
                    lines.append(f'{pname}_bucket{{le="{bound:g}"}} {cum:g}')
                lines.append(f'{pname}_bucket{{le="+Inf"}} {h.count:g}')
            else:
                lines.append(f"# TYPE {pname} summary")
                for q in (0.5, 0.9, 0.99):
                    lines.append(f'{pname}{{quantile="{q:g}"}} {h.quantile(q):g}')
            lines.append(f"{pname}_sum {h.sum:g}")
            lines.append(f"{pname}_count {h.count:g}")
        return "\n".join(lines) + ("\n" if lines else "")
