"""Metric primitives and the registry that owns them.

Three metric kinds, mirroring the Prometheus data model the rest of the
industry standardized on:

* :class:`Counter` — a monotonically increasing total (optimizer moves,
  MPC solves, DES events processed);
* :class:`Gauge` — a point-in-time value (active servers, current power);
* :class:`Histogram` — a sample distribution with quantile summaries
  (span durations, per-period tracking error).  Sample storage is
  bounded: past ``max_samples`` retained points the histogram decimates
  deterministically (keeps every 2nd sample and doubles its stride), so
  quantiles stay representative while memory stays O(max_samples).
  ``count``/``sum``/``min``/``max`` remain exact over *all* observations.

A :class:`MetricsRegistry` creates metrics on demand by name, snapshots
them to plain dicts, and renders a Prometheus-style text exposition.
"""

from __future__ import annotations

import math
import re
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing float total."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current total."""
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self._value += amount

    def reset(self) -> None:
        """Zero the counter."""
        self._value = 0.0


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = float("nan")

    @property
    def value(self) -> float:
        """Most recently set value (NaN before the first set)."""
        return self._value

    def set(self, value: float) -> None:
        """Record the current value."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by *amount* (NaN gauges start from 0)."""
        if math.isnan(self._value):
            self._value = 0.0
        self._value += amount

    def reset(self) -> None:
        """Return the gauge to its unset (NaN) state."""
        self._value = float("nan")


class Histogram:
    """Bounded-memory sample distribution with quantile summaries.

    Observations are appended to a retained-sample list; once the list
    reaches ``max_samples`` it is decimated (every 2nd sample kept) and
    the sampling stride doubles, so only every ``stride``-th future
    observation is retained.  The decimation is deterministic — repeated
    runs of a seeded experiment produce identical snapshots.
    """

    __slots__ = (
        "name",
        "max_samples",
        "_samples",
        "_stride",
        "_seen",
        "_count",
        "_sum",
        "_min",
        "_max",
    )

    def __init__(self, name: str, max_samples: int = 8192):
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.name = name
        self.max_samples = int(max_samples)
        self._samples: List[float] = []
        self._stride = 1
        self._seen = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    @property
    def count(self) -> int:
        """Exact number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Exact sum of all observations."""
        return self._sum

    @property
    def min(self) -> float:
        """Exact minimum (NaN when empty)."""
        return self._min if self._count else float("nan")

    @property
    def max(self) -> float:
        """Exact maximum (NaN when empty)."""
        return self._max if self._count else float("nan")

    @property
    def mean(self) -> float:
        """Exact mean (NaN when empty)."""
        return self._sum / self._count if self._count else float("nan")

    @property
    def n_retained(self) -> int:
        """Number of samples currently retained for quantiles."""
        return len(self._samples)

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        if math.isnan(value):
            return
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if self._seen % self._stride == 0:
            self._samples.append(value)
            if len(self._samples) >= self.max_samples:
                self._samples = self._samples[::2]
                self._stride *= 2
        self._seen += 1

    def quantile(self, q: float) -> float:
        """Empirical q-quantile over the retained samples (NaN if empty).

        Linear interpolation between order statistics, the same scheme
        as ``numpy.percentile``'s default.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return float("nan")
        xs = sorted(self._samples)
        pos = q * (len(xs) - 1)
        lo = int(math.floor(pos))
        hi = int(math.ceil(pos))
        if lo == hi:
            return xs[lo]
        frac = pos - lo
        return xs[lo] * (1.0 - frac) + xs[hi] * frac

    def summary(self) -> Dict[str, float]:
        """count / sum / mean / min / max / p50 / p90 / p99 snapshot."""
        return {
            "count": float(self._count),
            "sum": self._sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def reset(self) -> None:
        """Drop all state."""
        self._samples.clear()
        self._stride = 1
        self._seen = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf


_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitize a metric name for the Prometheus text format."""
    clean = _PROM_BAD.sub("_", name)
    if clean and clean[0].isdigit():
        clean = "_" + clean
    return clean


class MetricsRegistry:
    """Create-on-demand registry of named counters, gauges, histograms.

    A name belongs to exactly one metric kind for the registry's
    lifetime; asking for the same name as a different kind raises.
    """

    def __init__(self, histogram_max_samples: int = 8192):
        self.histogram_max_samples = histogram_max_samples
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- access --------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter named *name*, created on first use."""
        c = self._counters.get(name)
        if c is None:
            self._check_free(name, self._counters)
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge named *name*, created on first use."""
        g = self._gauges.get(name)
        if g is None:
            self._check_free(name, self._gauges)
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, max_samples: Optional[int] = None) -> Histogram:
        """The histogram named *name*, created on first use."""
        h = self._histograms.get(name)
        if h is None:
            self._check_free(name, self._histograms)
            h = self._histograms[name] = Histogram(
                name, max_samples or self.histogram_max_samples
            )
        return h

    def _check_free(self, name: str, own: Mapping[str, object]) -> None:
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if table is not own and name in table:
                raise ValueError(f"metric {name!r} already registered as a {kind}")

    # -- convenience ---------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment counter *name* by *amount*."""
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value*."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Add one observation to histogram *name*."""
        self.histogram(name).observe(value)

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(
            list(self._counters) + list(self._gauges) + list(self._histograms)
        )

    def reset(self) -> None:
        """Reset every registered metric in place."""
        for table in (self._counters, self._gauges, self._histograms):
            for metric in table.values():
                metric.reset()

    # -- export --------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict snapshot: {counters: {...}, gauges: {...}, histograms: {...}}."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }

    def to_prometheus(self) -> str:
        """Prometheus text-exposition dump of every metric."""
        lines: List[str] = []
        for name, c in sorted(self._counters.items()):
            pname = _prom_name(name)
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {c.value:g}")
        for name, g in sorted(self._gauges.items()):
            pname = _prom_name(name)
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {g.value:g}")
        for name, h in sorted(self._histograms.items()):
            pname = _prom_name(name)
            lines.append(f"# TYPE {pname} summary")
            for q in (0.5, 0.9, 0.99):
                lines.append(f'{pname}{{quantile="{q:g}"}} {h.quantile(q):g}')
            lines.append(f"{pname}_sum {h.sum:g}")
            lines.append(f"{pname}_count {h.count:g}")
        return "\n".join(lines) + ("\n" if lines else "")
