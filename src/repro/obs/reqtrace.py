"""Sampled request-path tracing through the multi-tier DES plants.

PowerTracer (arXiv:1007.4890) traces individual requests through the
tiers of a multi-tier application and attributes server power to request
service.  This module is the request half of that join: a deterministic
every-Nth sampler that a :class:`~repro.apps.rubbos.MultiTierApp`
consults at the start of each client request.  A sampled request records
one :class:`TierVisit` per tier — sojourn time (admission wait +
service) and CPU work in GHz-seconds — and the finished
:class:`RequestTrace` carries a stable trace ID (``<app>/<request
index>``) plus the end-to-end response time.

Determinism contract
--------------------
Sampling is **counter-based**, never random: the tracer counts request
starts and samples when ``index % sample_every == 0``.  The traced and
untraced client paths draw the identical demand/think-time RNG sequence,
so enabling tracing cannot perturb the simulated control loop — golden
event-log hashes stay bit-identical (pinned by
``tests/test_reqtrace.py``).

Buffering
---------
Finished traces accumulate in the tracer until :meth:`RequestTracer.drain`
— the harness backend drains once per control period and emits one
``{"kind": "request_trace"}`` telemetry event per sampled request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = ["TierVisit", "RequestTrace", "RequestTracer"]


@dataclass(frozen=True)
class TierVisit:
    """One tier's share of a traced request."""

    tier: str
    sojourn_s: float
    work_ghz_s: float


@dataclass(frozen=True)
class RequestTrace:
    """One sampled request's full path through the application."""

    trace_id: str
    app: str
    start_s: float
    rt_s: float
    tiers: Tuple[TierVisit, ...]

    def to_event(self) -> Dict[str, object]:
        """The ``{"kind": "request_trace"}`` telemetry record fields."""
        return {
            "trace_id": self.trace_id,
            "app": self.app,
            "start_s": self.start_s,
            "rt_ms": self.rt_s * 1000.0,
            "tiers": [
                {
                    "tier": v.tier,
                    "sojourn_ms": v.sojourn_s * 1000.0,
                    "work_ghz_s": v.work_ghz_s,
                }
                for v in self.tiers
            ],
        }


class RequestTracer:
    """Deterministic every-Nth request sampler with a drainable buffer.

    One tracer per application.  ``begin()`` is called at every request
    start and returns the request's index when it is sampled (``-1``
    otherwise); the client then collects per-tier visits and hands them
    to ``finish()``.  ``sample_every=1`` traces every request.
    """

    __slots__ = ("app", "sample_every", "_n_started", "_n_sampled", "_buffer")

    def __init__(self, app: str, sample_every: int):
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.app = str(app)
        self.sample_every = int(sample_every)
        self._n_started = 0
        self._n_sampled = 0
        self._buffer: List[RequestTrace] = []

    @property
    def n_started(self) -> int:
        """Requests seen by ``begin()`` so far (sampled or not)."""
        return self._n_started

    @property
    def n_sampled(self) -> int:
        """Requests selected for tracing so far."""
        return self._n_sampled

    def begin(self) -> int:
        """Count one request start; its index if sampled, else ``-1``."""
        index = self._n_started
        self._n_started = index + 1
        if index % self.sample_every:
            return -1
        self._n_sampled += 1
        return index

    def finish(
        self,
        index: int,
        start_s: float,
        end_s: float,
        visits: Sequence[Tuple[str, float, float]],
    ) -> RequestTrace:
        """Record a sampled request: ``visits`` is ``(tier, sojourn_s,
        work_ghz_s)`` per tier, in visit order."""
        trace = RequestTrace(
            trace_id=f"{self.app}/{index}",
            app=self.app,
            start_s=float(start_s),
            rt_s=float(end_s) - float(start_s),
            tiers=tuple(TierVisit(t, float(s), float(w)) for t, s, w in visits),
        )
        self._buffer.append(trace)
        return trace

    def drain(self) -> List[RequestTrace]:
        """Return and clear all buffered finished traces."""
        out, self._buffer = self._buffer, []
        return out
