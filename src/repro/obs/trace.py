"""Lightweight span tracing: wall-time + nesting for hot paths.

Usage (via the :class:`~repro.obs.telemetry.Telemetry` facade)::

    with tel.span("mpc.solve", app="app3") as sp:
        ...
        sp.annotate(softened=True)

On exit an enabled span (a) observes its duration into the histogram
``span.<name>`` of the telemetry's metrics registry and (b) emits a
``{"kind": "span", ...}`` record to the backend, carrying name, start
attributes plus annotations, wall-clock duration, nesting depth, and
the enclosing span's name.

When telemetry is disabled the facade returns the shared
:data:`NOOP_SPAN` instead — no clock reads, no allocation.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

__all__ = ["Span", "NoopSpan", "NOOP_SPAN", "Tracer"]


class NoopSpan:
    """Shared do-nothing span returned when telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs) -> None:
        """Ignored."""


NOOP_SPAN = NoopSpan()


class Span:
    """One timed, nestable region of execution."""

    __slots__ = ("tracer", "name", "attrs", "depth", "parent", "start_s", "duration_s")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.depth = 0
        self.parent: Optional[str] = None
        self.start_s = 0.0
        self.duration_s = float("nan")

    def annotate(self, **attrs) -> None:
        """Attach extra attributes discovered while the span runs."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        stack = self.tracer._stack
        self.depth = len(stack)
        self.parent = stack[-1].name if stack else None
        stack.append(self)
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - self.start_s
        stack = self.tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # tolerate out-of-order exits
            stack.remove(self)
        self.tracer._finish(self, error=exc_type is not None)
        return False


class Tracer:
    """Creates spans and routes finished ones to a registry + backend.

    ``sample_every`` keeps only every Nth finished span *record* per
    span name (the first is always kept); durations still feed the
    ``span.<name>`` histograms for **every** span, so aggregate timing
    stays exact while backend/serialization cost drops by ~N.  The
    counter is per name and deterministic — no RNG is consulted, so
    sampling can never perturb a seeded run.
    """

    def __init__(
        self,
        registry,
        backend,
        record_spans: bool = True,
        sample_every: int = 1,
    ):
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.registry = registry
        self.backend = backend
        self.record_spans = record_spans
        self.sample_every = int(sample_every)
        self._finished_counts: Dict[str, int] = {}
        self._stack: List[Span] = []

    @property
    def active_depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    def span(self, name: str, **attrs) -> Span:
        """Open a new span nested under whatever span is active."""
        return Span(self, name, attrs)

    def _finish(self, span: Span, error: bool) -> None:
        self.registry.histogram(f"span.{span.name}").observe(span.duration_s)
        if not self.record_spans:
            return
        if self.sample_every > 1:
            seen = self._finished_counts.get(span.name, 0)
            self._finished_counts[span.name] = seen + 1
            if seen % self.sample_every != 0 and not error:
                return
        record: Dict[str, object] = {
            "kind": "span",
            "name": span.name,
            "duration_s": span.duration_s,
            "depth": span.depth,
        }
        if span.parent is not None:
            record["parent"] = span.parent
        if error:
            record["error"] = True
        if span.attrs:
            record.update(span.attrs)
        self.backend.emit(record)
