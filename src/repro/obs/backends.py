"""Pluggable telemetry backends (exporters).

A backend receives finished telemetry records — structured events and
closed spans — as plain dicts.  The :class:`NullBackend` is the default
and advertises ``enabled = False``, which short-circuits every
instrumentation site before any record is even built, so disabled-mode
overhead is a single attribute check.

Backends:

* :class:`NullBackend` — drop everything (default; negligible overhead).
* :class:`InMemoryBackend` — keep records in a list (tests, notebooks).
* :class:`JsonlBackend` — one JSON object per line to a file; the format
  ``repro-obs summarize`` reads back.
* :class:`PrometheusTextBackend` — ignores the event stream; writes one
  Prometheus text-format dump of the metrics registry on ``close()``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Dict, List, Mapping, Optional, Union

__all__ = [
    "TelemetryBackend",
    "NullBackend",
    "InMemoryBackend",
    "JsonlBackend",
    "PrometheusTextBackend",
]


def _json_default(obj):
    """Coerce numpy scalars/arrays (and other oddballs) to JSON types."""
    if hasattr(obj, "tolist"):  # numpy scalar or array
        return obj.tolist()
    if hasattr(obj, "item"):
        return obj.item()
    return str(obj)


class TelemetryBackend:
    """Base backend: a sink for event dicts.

    ``enabled`` is the master switch instrumentation sites check before
    doing any work; the base class (and :class:`NullBackend`) report
    False so all telemetry code paths stay dormant.
    """

    enabled: bool = False

    def emit(self, event: Mapping[str, object]) -> None:
        """Consume one finished record (event or span)."""

    def flush(self) -> None:
        """Push buffered records to their destination."""

    def close(self) -> None:
        """Flush and release resources; the backend is done after this."""

    def __enter__(self) -> "TelemetryBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class NullBackend(TelemetryBackend):
    """Drops every record; the zero-overhead default."""


class InMemoryBackend(TelemetryBackend):
    """Stores records in ``self.records`` — for tests and notebooks."""

    enabled = True

    def __init__(self) -> None:
        self.records: List[Dict[str, object]] = []

    def emit(self, event: Mapping[str, object]) -> None:
        self.records.append(dict(event))

    def of_kind(self, kind: str) -> List[Dict[str, object]]:
        """All stored records whose ``kind`` field equals *kind*."""
        return [r for r in self.records if r.get("kind") == kind]

    def clear(self) -> None:
        """Drop all stored records."""
        self.records.clear()


class JsonlBackend(TelemetryBackend):
    """Writes one JSON object per line to *path* (or an open stream).

    Numpy scalars and arrays in event fields are converted via
    ``tolist()`` so instrumentation sites can pass arrays directly.
    """

    enabled = True

    def __init__(self, path: Union[str, Path, IO[str]], mode: str = "w"):
        if hasattr(path, "write"):
            self._fh: IO[str] = path  # type: ignore[assignment]
            self._owns = False
            self.path: Optional[Path] = None
        else:
            self.path = Path(path)
            self._fh = open(self.path, mode, encoding="utf-8")
            self._owns = True
        self.n_written = 0

    def emit(self, event: Mapping[str, object]) -> None:
        self._fh.write(json.dumps(event, default=_json_default) + "\n")
        self.n_written += 1

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        if self._owns and not self._fh.closed:
            self._fh.close()
        else:
            self.flush()


class PrometheusTextBackend(TelemetryBackend):
    """Ignores events; dumps the metrics registry on ``close()``.

    The :class:`~repro.obs.telemetry.Telemetry` facade hands this
    backend its registry at attach time (``bind_registry``).
    """

    enabled = True

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._registry = None

    def bind_registry(self, registry) -> None:
        """Called by the telemetry facade so close() can read metrics."""
        self._registry = registry

    def close(self) -> None:
        if self._registry is not None:
            self.path.write_text(self._registry.to_prometheus(), encoding="utf-8")
