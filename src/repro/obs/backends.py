"""Pluggable telemetry backends (exporters).

A backend receives finished telemetry records — structured events and
closed spans — as plain dicts.  The :class:`NullBackend` is the default
and advertises ``enabled = False``, which short-circuits every
instrumentation site before any record is even built, so disabled-mode
overhead is a single attribute check.

Backends:

* :class:`NullBackend` — drop everything (default; negligible overhead).
* :class:`InMemoryBackend` — keep records in a list (tests, notebooks).
* :class:`JsonlBackend` — one JSON object per line to a file; the format
  ``repro-obs summarize`` reads back.
* :class:`PrometheusTextBackend` — ignores the event stream; writes one
  Prometheus text-format dump of the metrics registry on ``close()``.
"""

from __future__ import annotations

import atexit
import json
import signal
import threading
import weakref
from pathlib import Path
from typing import IO, Dict, List, Mapping, Optional, Union

__all__ = [
    "TelemetryBackend",
    "NullBackend",
    "InMemoryBackend",
    "JsonlBackend",
    "PrometheusTextBackend",
    "close_open_backends",
    "install_sigterm_flush",
]


def _json_default(obj):
    """Coerce numpy scalars/arrays (and other oddballs) to JSON types."""
    if hasattr(obj, "tolist"):  # numpy scalar or array
        return obj.tolist()
    if hasattr(obj, "item"):
        return obj.item()
    return str(obj)


class TelemetryBackend:
    """Base backend: a sink for event dicts.

    ``enabled`` is the master switch instrumentation sites check before
    doing any work; the base class (and :class:`NullBackend`) report
    False so all telemetry code paths stay dormant.
    """

    enabled: bool = False

    def emit(self, event: Mapping[str, object]) -> None:
        """Consume one finished record (event or span)."""

    def flush(self) -> None:
        """Push buffered records to their destination."""

    def close(self) -> None:
        """Flush and release resources; the backend is done after this."""

    def __enter__(self) -> "TelemetryBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class NullBackend(TelemetryBackend):
    """Drops every record; the zero-overhead default."""


class InMemoryBackend(TelemetryBackend):
    """Stores records in ``self.records`` — for tests and notebooks."""

    enabled = True

    def __init__(self) -> None:
        self.records: List[Dict[str, object]] = []

    def emit(self, event: Mapping[str, object]) -> None:
        self.records.append(dict(event))

    def of_kind(self, kind: str) -> List[Dict[str, object]]:
        """All stored records whose ``kind`` field equals *kind*."""
        return [r for r in self.records if r.get("kind") == kind]

    def clear(self) -> None:
        """Drop all stored records."""
        self.records.clear()


#: Every not-yet-closed JsonlBackend, so interpreter shutdown (atexit)
#: and SIGTERM can flush buffered lines that would otherwise be lost —
#: a truncated final line in a run's event log is unrecoverable on the
#: write side (``read_jsonl_lenient`` only papers over it when reading).
_OPEN_JSONL: "weakref.WeakSet[JsonlBackend]" = weakref.WeakSet()
_ATEXIT_REGISTERED = False


def close_open_backends() -> int:
    """Flush and close every still-open :class:`JsonlBackend`.

    Returns the number of backends closed.  Registered with ``atexit``
    when the first JSONL backend opens, so a run that never reaches its
    ``Telemetry.close()`` (early ``sys.exit``, unhandled exception past
    the telemetry scope) still ends with a complete final line.  Safe to
    call repeatedly.
    """
    closed = 0
    for backend in list(_OPEN_JSONL):
        try:
            backend.close()
        except Exception:  # never mask the real exit path at shutdown
            pass
        closed += 1
    return closed


def install_sigterm_flush() -> bool:
    """Turn SIGTERM into ``SystemExit(143)`` so telemetry scopes unwind.

    A plain SIGTERM kills the interpreter without running context
    managers or ``atexit`` hooks, which can truncate the final event-log
    line mid-write.  With this handler installed the signal raises in
    the main thread instead: ``with use_telemetry(...)`` blocks close
    their backends (emitting the final metrics record), and
    :func:`close_open_backends` runs via ``atexit`` as a backstop.

    Returns False (and installs nothing) off the main thread or where
    signals are unsupported; callers can ignore the result.
    """
    def _handler(signum, frame):
        raise SystemExit(128 + signum)

    try:
        signal.signal(signal.SIGTERM, _handler)
    except ValueError:  # not in the main thread
        return False
    return True


class JsonlBackend(TelemetryBackend):
    """Writes one JSON object per line to *path* (or an open stream).

    Numpy scalars and arrays in event fields are converted via
    ``tolist()`` so instrumentation sites can pass arrays directly.
    Open instances are tracked so :func:`close_open_backends` (run via
    ``atexit``) can flush them at interpreter shutdown.
    """

    enabled = True

    def __init__(self, path: Union[str, Path, IO[str]], mode: str = "w"):
        if hasattr(path, "write"):
            self._fh: IO[str] = path  # type: ignore[assignment]
            self._owns = False
            self.path: Optional[Path] = None
        else:
            self.path = Path(path)
            self._fh = open(self.path, mode, encoding="utf-8")
            self._owns = True
        self.n_written = 0
        self._lock = threading.Lock()
        global _ATEXIT_REGISTERED
        if not _ATEXIT_REGISTERED:
            atexit.register(close_open_backends)
            _ATEXIT_REGISTERED = True
        _OPEN_JSONL.add(self)

    def emit(self, event: Mapping[str, object]) -> None:
        line = json.dumps(event, default=_json_default) + "\n"
        with self._lock:  # one write call per record: lines stay whole
            self._fh.write(line)
            self.n_written += 1

    def flush(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()

    def close(self) -> None:
        _OPEN_JSONL.discard(self)
        with self._lock:
            if self._owns and not self._fh.closed:
                self._fh.close()
            elif not self._fh.closed:
                self._fh.flush()


class PrometheusTextBackend(TelemetryBackend):
    """Ignores events; dumps the metrics registry on ``close()``.

    The :class:`~repro.obs.telemetry.Telemetry` facade hands this
    backend its registry at attach time (``bind_registry``).
    """

    enabled = True

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._registry = None

    def bind_registry(self, registry) -> None:
        """Called by the telemetry facade so close() can read metrics."""
        self._registry = registry

    def close(self) -> None:
        if self._registry is not None:
            self.path.write_text(self._registry.to_prometheus(), encoding="utf-8")
