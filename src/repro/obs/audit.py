"""SLO/power audit pipeline over a telemetry event log (``repro-obs audit``).

Streams the records of an instrumented run (testbed or large-scale)
through a single-pass evaluator and produces a machine-readable audit
report answering the two questions the paper's evaluation asks of every
policy:

* **Did the SLO hold?**  Per application, contiguous runs of control
  periods whose measured response time exceeded the set point are
  grouped into *violation episodes* — entry time, exit time, duration,
  period count, and the worst excess over the set point.  Periods with
  no measurement (NaN response time — e.g. zero completed requests)
  neither open nor close an episode.
* **What did the power optimization buy?**  Per-period datacenter power
  is integrated into energy and compared against a no-consolidation
  baseline — either a caller-supplied constant or one derived from the
  trace itself (``peak``: the maximum power observed; ``first``: the
  power of the first period, i.e. before the optimizer acted).  A
  rolling-window power series tracks savings over time.

The report is a plain dict (JSON-safe) so CI jobs can archive it and
assert on it; :func:`render_audit` renders the human view.  Reading
from disk goes through the lenient JSONL reader — a truncated run file
still audits, with ``n_malformed`` counted in the report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.summarize import read_jsonl_lenient
from repro.util.tables import format_table

__all__ = [
    "AuditConfig",
    "AuditPipeline",
    "audit_events",
    "audit_jsonl",
    "render_audit",
]

_BASELINE_RULES = ("peak", "first")


@dataclass(frozen=True)
class AuditConfig:
    """Knobs for the audit evaluator.

    ``baseline_power_w`` fixes the comparison baseline; when ``None``
    it is derived from the trace per ``baseline_rule``.  An app passes
    the SLO check when its fraction of violating measured periods stays
    within ``violation_budget``.
    """

    baseline_power_w: Optional[float] = None
    baseline_rule: str = "peak"
    violation_budget: float = 0.1
    rolling_window: int = 20
    max_rolling_points: int = 120

    def __post_init__(self):
        if self.baseline_rule not in _BASELINE_RULES:
            raise ValueError(
                f"baseline_rule must be one of {_BASELINE_RULES}, "
                f"got {self.baseline_rule!r}"
            )
        if not 0.0 <= self.violation_budget <= 1.0:
            raise ValueError(
                f"violation_budget must be in [0, 1], got {self.violation_budget}"
            )
        if self.rolling_window < 1:
            raise ValueError(
                f"rolling_window must be >= 1, got {self.rolling_window}"
            )
        if self.max_rolling_points < 2:
            raise ValueError(
                f"max_rolling_points must be >= 2, got {self.max_rolling_points}"
            )


class _AppAudit:
    """Per-application episode tracker (one instance per app id)."""

    __slots__ = ("setpoint_ms", "periods", "measured", "violations",
                 "episodes", "_open")

    def __init__(self) -> None:
        self.setpoint_ms: Optional[float] = None
        self.periods = 0
        self.measured = 0
        self.violations = 0
        self.episodes: List[dict] = []
        self._open: Optional[dict] = None

    def feed(self, time_s: float, rt_ms: float, setpoint_ms: Optional[float]) -> None:
        self.periods += 1
        if setpoint_ms is not None:
            self.setpoint_ms = float(setpoint_ms)
        if not math.isfinite(rt_ms):
            return  # no measurement: episode state unchanged
        self.measured += 1
        setpoint = self.setpoint_ms
        if setpoint is None:
            return
        excess = rt_ms - setpoint
        if excess > 0.0:
            self.violations += 1
            if self._open is None:
                self._open = {
                    "start_s": time_s,
                    "end_s": time_s,
                    "periods": 0,
                    "worst_rt_ms": rt_ms,
                    "worst_excess_ms": excess,
                }
            ep = self._open
            ep["end_s"] = time_s
            ep["periods"] += 1
            if excess > ep["worst_excess_ms"]:
                ep["worst_excess_ms"] = excess
                ep["worst_rt_ms"] = rt_ms
        elif self._open is not None:
            self._close(open_at_end=False)

    def _close(self, open_at_end: bool) -> None:
        ep = self._open
        assert ep is not None
        ep["duration_s"] = ep["end_s"] - ep["start_s"]
        ep["open_at_end"] = open_at_end
        self.episodes.append(ep)
        self._open = None

    def finish(self) -> None:
        if self._open is not None:
            self._close(open_at_end=True)

    def summary(self, budget: float) -> dict:
        fraction = self.violations / self.measured if self.measured else 0.0
        worst = max(
            (ep["worst_excess_ms"] for ep in self.episodes), default=0.0
        )
        return {
            "setpoint_ms": self.setpoint_ms,
            "periods": self.periods,
            "measured": self.measured,
            "violations": self.violations,
            "violation_fraction": fraction,
            "n_episodes": len(self.episodes),
            "worst_excess_ms": worst,
            "within_budget": fraction <= budget,
            "episodes": list(self.episodes),
        }


class AuditPipeline:
    """Single-pass streaming evaluator; ``feed`` records, then ``report``."""

    def __init__(self, config: Optional[AuditConfig] = None):
        self.config = config or AuditConfig()
        self._apps: Dict[str, _AppAudit] = {}
        self._power_t: List[float] = []
        self._power_w: List[float] = []
        self._harness: Optional[str] = None
        self._dt_s: Optional[float] = None
        self._n_records = 0
        self._faults = {"injected": 0, "recovered": 0}

    def feed(self, record: dict) -> None:
        """Consume one telemetry record (unknown kinds are ignored)."""
        self._n_records += 1
        kind = record.get("kind")
        if kind == "run_config":
            self._harness = record.get("harness", self._harness)
            dt = record.get("control_period_s", record.get("step_s"))
            if dt is not None:
                self._dt_s = float(dt)
        elif kind == "control_period":
            time_s = float(record.get("time_s", len(self._power_t)))
            for app_id, data in (record.get("apps") or {}).items():
                audit = self._apps.setdefault(str(app_id), _AppAudit())
                rt = data.get("rt_ms")
                rt_ms = float(rt) if rt is not None else float("nan")
                audit.feed(time_s, rt_ms, data.get("setpoint_ms"))
        elif kind in ("testbed.period", "largescale.step"):
            power = record.get("power_w")
            if power is not None and math.isfinite(float(power)):
                self._power_t.append(float(record.get("time_s", 0.0)))
                self._power_w.append(float(power))
        elif kind == "fault_injected":
            self._faults["injected"] += 1
        elif kind == "fault_recovered":
            self._faults["recovered"] += 1

    def feed_all(self, records) -> "AuditPipeline":
        for record in records:
            self.feed(record)
        return self

    # -- report --------------------------------------------------------

    def _period_s(self) -> float:
        if self._dt_s is not None:
            return self._dt_s
        ts = self._power_t
        if len(ts) >= 2:
            return (ts[-1] - ts[0]) / (len(ts) - 1)
        return 1.0

    def _baseline_w(self) -> Optional[float]:
        if self.config.baseline_power_w is not None:
            return float(self.config.baseline_power_w)
        if not self._power_w:
            return None
        if self.config.baseline_rule == "first":
            return self._power_w[0]
        return max(self._power_w)

    def _rolling(self, baseline: Optional[float]) -> List[dict]:
        """Rolling mean power (and savings vs. baseline) over time."""
        cfg = self.config
        window, points = cfg.rolling_window, []
        running = 0.0
        for i, power in enumerate(self._power_w):
            running += power
            if i >= window:
                running -= self._power_w[i - window]
            n = min(i + 1, window)
            mean_w = running / n
            point = {"time_s": self._power_t[i], "mean_w": mean_w}
            if baseline:
                point["savings_fraction"] = 1.0 - mean_w / baseline
            points.append(point)
        if len(points) > cfg.max_rolling_points:  # decimate for the report
            stride = math.ceil(len(points) / cfg.max_rolling_points)
            points = points[::stride] + (
                [points[-1]] if (len(points) - 1) % stride else []
            )
        return points

    def report(self) -> dict:
        """Close open episodes and assemble the JSON-safe audit report."""
        cfg = self.config
        for audit in self._apps.values():
            audit.finish()
        per_app = {
            app: audit.summary(cfg.violation_budget)
            for app, audit in sorted(self._apps.items())
        }
        period_s = self._period_s()
        hours = period_s / 3600.0
        energy_wh = sum(self._power_w) * hours
        baseline = self._baseline_w()
        power: Dict[str, object] = {
            "samples": len(self._power_w),
            "mean_w": (sum(self._power_w) / len(self._power_w)
                       if self._power_w else float("nan")),
            "min_w": min(self._power_w) if self._power_w else float("nan"),
            "max_w": max(self._power_w) if self._power_w else float("nan"),
            "energy_wh": energy_wh,
            "baseline_rule": (
                "fixed" if cfg.baseline_power_w is not None else cfg.baseline_rule
            ),
            "baseline_w": baseline,
        }
        if baseline:
            baseline_wh = baseline * hours * len(self._power_w)
            power["baseline_energy_wh"] = baseline_wh
            power["savings_wh"] = baseline_wh - energy_wh
            power["savings_fraction"] = (
                1.0 - energy_wh / baseline_wh if baseline_wh else 0.0
            )
        slo_pass = all(entry["within_budget"] for entry in per_app.values())
        return {
            "harness": self._harness,
            "n_records": self._n_records,
            "period_s": period_s,
            "apps": per_app,
            "power": power,
            "rolling_power": self._rolling(baseline),
            "faults": dict(self._faults),
            "slo": {
                "violation_budget": cfg.violation_budget,
                "n_apps": len(per_app),
                "n_failing": sum(
                    1 for e in per_app.values() if not e["within_budget"]
                ),
                "passed": slo_pass,
            },
        }


def audit_events(records, config: Optional[AuditConfig] = None) -> dict:
    """Audit an in-memory record list; returns the report dict."""
    return AuditPipeline(config).feed_all(records).report()


def audit_jsonl(path: Union[str, Path], config: Optional[AuditConfig] = None) -> dict:
    """Audit a JSONL run file (lenient read; malformed lines counted)."""
    records, n_malformed = read_jsonl_lenient(path)
    report = audit_events(records, config)
    report["n_malformed"] = n_malformed
    return report


def _fmt(value, digits: int = 1) -> str:
    if value is None or (isinstance(value, float) and not math.isfinite(value)):
        return "-"
    return f"{value:.{digits}f}"


def render_audit(report: dict, title: str = "SLO/power audit") -> str:
    """Render an audit report dict as plain-text tables."""
    slo = report["slo"]
    verdict = "PASS" if slo["passed"] else "FAIL"
    header = (
        f"{title}: harness={report['harness'] or '?'}, "
        f"{report['n_records']} records, SLO {verdict} "
        f"({slo['n_failing']}/{slo['n_apps']} apps over budget "
        f"{slo['violation_budget']:.0%})"
    )
    malformed = report.get("n_malformed", 0)
    if malformed:
        header += f" [{malformed} malformed lines skipped]"
    parts = [header]

    if report["apps"]:
        rows = [
            [
                app,
                _fmt(entry["setpoint_ms"], 0),
                entry["measured"],
                entry["violations"],
                f"{entry['violation_fraction']:.1%}",
                entry["n_episodes"],
                _fmt(entry["worst_excess_ms"]),
                "yes" if entry["within_budget"] else "NO",
            ]
            for app, entry in report["apps"].items()
        ]
        parts.append(
            format_table(
                ["app", "set ms", "meas", "viol", "viol %", "episodes",
                 "worst exc ms", "in budget"],
                rows,
                title="Per-app SLO compliance",
            )
        )
        ep_rows = []
        for app, entry in report["apps"].items():
            for ep in entry["episodes"]:
                ep_rows.append([
                    app,
                    _fmt(ep["start_s"], 0),
                    _fmt(ep["end_s"], 0),
                    _fmt(ep["duration_s"], 0),
                    ep["periods"],
                    _fmt(ep["worst_rt_ms"]),
                    _fmt(ep["worst_excess_ms"]),
                    "open" if ep["open_at_end"] else "closed",
                ])
        if ep_rows:
            parts.append(
                format_table(
                    ["app", "start s", "end s", "dur s", "periods",
                     "worst ms", "excess ms", "state"],
                    ep_rows,
                    title="Violation episodes",
                )
            )

    power = report["power"]
    rows = [
        ["power samples", power["samples"]],
        ["mean power W", _fmt(power["mean_w"])],
        ["min/max power W", f"{_fmt(power['min_w'])} / {_fmt(power['max_w'])}"],
        ["energy Wh", _fmt(power["energy_wh"], 2)],
        [f"baseline W ({power['baseline_rule']})", _fmt(power["baseline_w"])],
    ]
    if "savings_wh" in power:
        rows.append(["baseline energy Wh", _fmt(power["baseline_energy_wh"], 2)])
        rows.append([
            "savings vs baseline",
            f"{_fmt(power['savings_wh'], 2)} Wh ({power['savings_fraction']:.1%})",
        ])
    faults = report["faults"]
    if faults["injected"] or faults["recovered"]:
        rows.append([
            "faults injected/recovered",
            f"{faults['injected']} / {faults['recovered']}",
        ])
    parts.append(format_table(["quantity", "value"], rows, title="Power audit"))
    return "\n\n".join(parts)
