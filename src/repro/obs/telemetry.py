"""The telemetry facade and the (thread-local) current instance.

:class:`Telemetry` bundles a :class:`~repro.obs.metrics.MetricsRegistry`,
a :class:`~repro.obs.trace.Tracer`, and a backend into the single object
instrumentation sites talk to.  The current instance is **per thread**
(so concurrent runs — e.g. experiment-runner workers — each keep their
own event log); the default in every thread is a disabled
instance over :class:`~repro.obs.backends.NullBackend`; every
instrumented call site first checks ``tel.enabled``, so the disabled
path costs one global lookup and one attribute check.

Enable telemetry for a region of code with :func:`use_telemetry`::

    from repro.obs import JsonlBackend, Telemetry, use_telemetry

    with use_telemetry(Telemetry(JsonlBackend("run.jsonl"))):
        TestbedExperiment(config).run()

On scope exit the telemetry is closed: a final ``{"kind": "metrics"}``
record carrying the registry snapshot is emitted, then the backend is
flushed and released.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.backends import NullBackend, TelemetryBackend
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NOOP_SPAN, Tracer

__all__ = ["Telemetry", "get_telemetry", "set_telemetry", "use_telemetry"]


class Telemetry:
    """Registry + tracer + backend behind one enabled/disabled switch."""

    def __init__(
        self,
        backend: Optional[TelemetryBackend] = None,
        registry: Optional[MetricsRegistry] = None,
        record_spans: bool = True,
        span_sample_every: int = 1,
    ):
        self.backend = backend or NullBackend()
        self.registry = registry or MetricsRegistry()
        self.enabled = bool(self.backend.enabled)
        self.tracer = Tracer(
            self.registry,
            self.backend,
            record_spans=record_spans,
            sample_every=span_sample_every,
        )
        bind = getattr(self.backend, "bind_registry", None)
        if bind is not None:
            bind(self.registry)
        self._closed = False

    # -- spans ---------------------------------------------------------

    def span(self, name: str, **attrs):
        """A timed span context manager (no-op singleton when disabled)."""
        if not self.enabled:
            return NOOP_SPAN
        return self.tracer.span(name, **attrs)

    # -- events --------------------------------------------------------

    def event(self, kind: str, **fields) -> None:
        """Emit one structured event record."""
        if not self.enabled:
            return
        self.backend.emit({"kind": kind, **fields})

    # -- metrics -------------------------------------------------------

    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment counter *name* (no-op when disabled)."""
        if self.enabled:
            self.registry.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge *name* (no-op when disabled)."""
        if self.enabled:
            self.registry.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Observe *value* into histogram *name* (no-op when disabled)."""
        if self.enabled:
            self.registry.histogram(name).observe(value)

    # -- lifecycle -----------------------------------------------------

    def flush(self) -> None:
        """Flush the backend without closing it."""
        self.backend.flush()

    def close(self) -> None:
        """Emit the final metrics snapshot and close the backend."""
        if self._closed:
            return
        self._closed = True
        if self.enabled:
            self.backend.emit({"kind": "metrics", "metrics": self.registry.snapshot()})
        self.backend.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


_NULL_TELEMETRY = Telemetry(NullBackend())


class _TelemetryState(threading.local):
    """Per-thread current telemetry.

    The class attribute is the default every thread starts from; an
    assignment in :func:`set_telemetry` shadows it for that thread only.
    Thread-locality is what lets the experiment runner
    (:mod:`repro.service.runner`) drive several instrumented runs
    concurrently, each writing its own event log, without the workers
    seeing each other's backends.
    """

    current: Telemetry = _NULL_TELEMETRY


_state = _TelemetryState()


def get_telemetry() -> Telemetry:
    """The current telemetry for this thread (disabled null by default)."""
    return _state.current


def set_telemetry(telemetry: Optional[Telemetry]) -> Telemetry:
    """Install *telemetry* as current for this thread (None restores
    the disabled null).

    Returns the previously current instance so callers can restore it.
    """
    previous = _state.current
    _state.current = telemetry if telemetry is not None else _NULL_TELEMETRY
    return previous


@contextmanager
def use_telemetry(telemetry: Telemetry, close: bool = True) -> Iterator[Telemetry]:
    """Make *telemetry* current for the scope; close it on exit.

    Pass ``close=False`` to keep the backend open (e.g. to inspect an
    in-memory backend after several scoped runs).
    """
    previous = set_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_telemetry(previous)
        if close:
            telemetry.close()
