"""Live telemetry streaming (``repro-obs watch``).

Follows the JSONL file a run is writing (tail -f semantics: only
complete, newline-terminated lines are consumed; a partially written
tail stays buffered until the writer finishes it) and maintains a
:class:`LiveDashboard` — rolling windows of datacenter power, per-app
response time vs. set point, active server count, and fault state —
rendered as an ASCII dashboard on every refresh.

The dashboard also renders a Prometheus text-exposition snapshot
(``prometheus_text``), so ``repro-obs watch --prom FILE`` keeps a
scrape-ready file current while the run progresses; point any file-based
collector (e.g. node_exporter's textfile collector) at it.

The follow loop ends on its own when the run's final
``{"kind": "metrics"}`` record appears (the backend emits it on close),
after ``--max-updates`` refreshes, or immediately with ``--once``.
"""

from __future__ import annotations

import json
import math
import time
from collections import deque
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.obs.metrics import prom_line
from repro.util.ascii_chart import ascii_series

__all__ = ["LiveDashboard", "JsonlFollower", "watch"]


class JsonlFollower:
    """Incremental reader over a growing JSONL file.

    ``poll()`` returns the records appended since the last call.  Lines
    that fail to parse are counted (``n_malformed``) and skipped — the
    writer may crash mid-line.  The file not existing yet is not an
    error; the follower waits for it to appear.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._offset = 0
        self._partial = ""
        self.n_malformed = 0

    def poll(self) -> List[dict]:
        if not self.path.exists():
            return []
        with open(self.path, "r", encoding="utf-8") as fh:
            fh.seek(self._offset)
            chunk = fh.read()
            self._offset = fh.tell()
        if not chunk:
            return []
        data = self._partial + chunk
        lines = data.split("\n")
        self._partial = lines.pop()  # "" when data ended with a newline
        records: List[dict] = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                self.n_malformed += 1
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                self.n_malformed += 1
        return records


class LiveDashboard:
    """Rolling-window view of an instrumented run, fed record by record."""

    def __init__(self, window: int = 240):
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self.window = window
        self.power_w: deque = deque(maxlen=window)
        self.active_servers: deque = deque(maxlen=window)
        self.rt_ratio: deque = deque(maxlen=window)  # worst rt/setpoint
        self.app_rt_ms: Dict[str, float] = {}
        self.app_setpoint_ms: Dict[str, float] = {}
        self.active_faults = 0
        self.n_faults_injected = 0
        self.n_traces = 0
        self.n_records = 0
        self.harness: Optional[str] = None
        self.time_s = 0.0
        self.run_ended = False

    def feed(self, record: dict) -> None:
        """Consume one telemetry record (unknown kinds are ignored)."""
        self.n_records += 1
        kind = record.get("kind")
        if kind == "run_config":
            self.harness = record.get("harness", self.harness)
        elif kind in ("testbed.period", "largescale.step"):
            self.time_s = float(record.get("time_s", self.time_s))
            power = record.get("power_w")
            if power is not None and math.isfinite(float(power)):
                self.power_w.append(float(power))
            active = record.get("active_servers")
            if active is not None:
                self.active_servers.append(int(active))
        elif kind == "control_period":
            worst = 0.0
            for app_id, data in (record.get("apps") or {}).items():
                app_id = str(app_id)
                setpoint = data.get("setpoint_ms")
                if setpoint is not None:
                    self.app_setpoint_ms[app_id] = float(setpoint)
                rt = data.get("rt_ms")
                if rt is not None and math.isfinite(float(rt)):
                    self.app_rt_ms[app_id] = float(rt)
                    ref = self.app_setpoint_ms.get(app_id)
                    if ref:
                        worst = max(worst, float(rt) / ref)
            if worst > 0.0:
                self.rt_ratio.append(worst)
        elif kind == "fault_injected":
            self.active_faults += 1
            self.n_faults_injected += 1
        elif kind == "fault_recovered":
            self.active_faults = max(0, self.active_faults - 1)
        elif kind == "request_trace":
            self.n_traces += 1
        elif kind == "metrics":
            self.run_ended = True

    def render(self, width: int = 64, height: int = 8) -> str:
        """The ASCII dashboard for the current window."""
        slo = "OK" if not self.rt_ratio or self.rt_ratio[-1] <= 1.0 else "VIOLATING"
        status = "ended" if self.run_ended else "running"
        parts = [
            f"run[{self.harness or '?'}] t={self.time_s:.0f}s "
            f"({status}, {self.n_records} records)  "
            f"power={self.power_w[-1] if self.power_w else float('nan'):.1f}W  "
            f"active={self.active_servers[-1] if self.active_servers else 0}  "
            f"faults={self.active_faults}  traces={self.n_traces}  SLO {slo}"
        ]
        if self.power_w:
            parts.append(ascii_series(
                list(self.power_w), width=width, height=height,
                label="datacenter power (W)",
            ))
        if self.rt_ratio:
            parts.append(ascii_series(
                list(self.rt_ratio), width=width, height=height,
                label="worst p90 RT / set point (1.0 = at reference)",
            ))
        if self.active_servers:
            parts.append(ascii_series(
                list(self.active_servers), width=width, height=max(4, height // 2),
                label="active servers",
            ))
        if self.app_rt_ms:
            rows = []
            for app_id in sorted(self.app_rt_ms):
                rt = self.app_rt_ms[app_id]
                ref = self.app_setpoint_ms.get(app_id)
                mark = ""
                if ref:
                    mark = " <-- over" if rt > ref else ""
                rows.append(
                    f"  {app_id}: {rt:7.1f} ms"
                    + (f" / {ref:.0f} ms{mark}" if ref else "")
                )
            parts.append("latest per-app p90 RT vs set point\n" + "\n".join(rows))
        return "\n\n".join(parts)

    def prometheus_text(self) -> str:
        """Scrape-ready text-exposition snapshot of the live state."""
        lines = [
            "# TYPE repro_watch_records_total counter",
            prom_line("repro_watch_records_total", {}, float(self.n_records)),
            "# TYPE repro_watch_power_watts gauge",
            prom_line(
                "repro_watch_power_watts", {},
                float(self.power_w[-1]) if self.power_w else float("nan"),
            ),
            "# TYPE repro_watch_active_servers gauge",
            prom_line(
                "repro_watch_active_servers", {},
                float(self.active_servers[-1]) if self.active_servers else 0.0,
            ),
            "# TYPE repro_watch_active_faults gauge",
            prom_line("repro_watch_active_faults", {}, float(self.active_faults)),
            "# TYPE repro_watch_request_traces_total counter",
            prom_line("repro_watch_request_traces_total", {}, float(self.n_traces)),
        ]
        if self.app_rt_ms:
            lines.append("# TYPE repro_watch_rt_ms gauge")
            for app_id in sorted(self.app_rt_ms):
                lines.append(prom_line(
                    "repro_watch_rt_ms", {"app": app_id}, self.app_rt_ms[app_id]
                ))
        if self.app_setpoint_ms:
            lines.append("# TYPE repro_watch_setpoint_ms gauge")
            for app_id in sorted(self.app_setpoint_ms):
                lines.append(prom_line(
                    "repro_watch_setpoint_ms", {"app": app_id},
                    self.app_setpoint_ms[app_id],
                ))
        return "\n".join(lines) + "\n"


def watch(
    path: Union[str, Path],
    interval_s: float = 2.0,
    once: bool = False,
    max_updates: Optional[int] = None,
    prom_path: Optional[Union[str, Path]] = None,
    window: int = 240,
    out: Callable[[str], None] = print,
    sleep: Callable[[float], None] = time.sleep,
) -> LiveDashboard:
    """Follow *path* and re-render the dashboard every ``interval_s``.

    Returns the final dashboard state (tests inspect it).  Stops when
    the run ends (final metrics record), after ``max_updates``
    refreshes, or after one refresh with ``once=True``.
    """
    follower = JsonlFollower(path)
    dash = LiveDashboard(window=window)
    updates = 0
    while True:
        for record in follower.poll():
            dash.feed(record)
        out(dash.render())
        if prom_path is not None:
            Path(prom_path).write_text(dash.prometheus_text(), encoding="utf-8")
        updates += 1
        if once or dash.run_ended:
            break
        if max_updates is not None and updates >= max_updates:
            break
        sleep(interval_s)
    return dash
