"""Observability for the two-level power manager: metrics, spans, events.

The package gives every layer of the stack a common measurement
substrate:

* :class:`MetricsRegistry` — counters, gauges, and histograms with
  p50/p90/p99 summaries and a Prometheus-style text dump;
* span tracing — ``with get_telemetry().span("mpc.solve", app="app3"):``
  captures wall time and nesting for the hot paths (MPC QP solve,
  RLS update, arbitrator pass, Minimum-Slack search, IPAC planning,
  DES stepping);
* a structured JSONL event log — one record per control period,
  optimizer invocation, migration, and server power transition — with
  pluggable backends (:class:`JsonlBackend`, :class:`InMemoryBackend`,
  :class:`PrometheusTextBackend`) and a :class:`NullBackend` default
  whose overhead is a single attribute check.

Telemetry is **off by default**: the process-wide instance wraps
:class:`NullBackend`.  Enable it per run::

    from repro.obs import JsonlBackend, Telemetry, use_telemetry

    with use_telemetry(Telemetry(JsonlBackend("run.jsonl"))):
        result = TestbedExperiment(config).run()

then inspect the file with ``repro-obs summarize run.jsonl`` (or
``profile`` / ``audit`` / ``watch`` — see ``docs/OBSERVABILITY.md``).

Request-path tracing and energy attribution (:mod:`repro.obs.reqtrace`,
:mod:`repro.obs.attribution`) turn the same event log into
PowerTracer-style per-tier, per-application energy figures; the
:mod:`repro.obs.audit` pipeline evaluates SLO compliance and power
savings over a finished (or still-growing) run file.
"""

from repro.obs.attribution import EnergyAttributor
from repro.obs.audit import (
    AuditConfig,
    AuditPipeline,
    audit_events,
    audit_jsonl,
    render_audit,
)
from repro.obs.backends import (
    InMemoryBackend,
    JsonlBackend,
    NullBackend,
    PrometheusTextBackend,
    TelemetryBackend,
    close_open_backends,
    install_sigterm_flush,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    prom_escape_label,
    prom_line,
)
from repro.obs.profile import profile_events, profile_jsonl, render_profile
from repro.obs.reqtrace import RequestTrace, RequestTracer, TierVisit
from repro.obs.summarize import (
    read_jsonl,
    read_jsonl_lenient,
    render_summary,
    summarize_events,
    summarize_jsonl,
)
from repro.obs.telemetry import (
    Telemetry,
    get_telemetry,
    set_telemetry,
    use_telemetry,
)
from repro.obs.trace import NOOP_SPAN, NoopSpan, Span, Tracer
from repro.obs.watch import JsonlFollower, LiveDashboard, watch

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TelemetryBackend",
    "NullBackend",
    "InMemoryBackend",
    "JsonlBackend",
    "PrometheusTextBackend",
    "close_open_backends",
    "install_sigterm_flush",
    "Span",
    "NoopSpan",
    "NOOP_SPAN",
    "Tracer",
    "Telemetry",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
    "read_jsonl",
    "read_jsonl_lenient",
    "summarize_events",
    "summarize_jsonl",
    "render_summary",
    "prom_escape_label",
    "prom_line",
    "TierVisit",
    "RequestTrace",
    "RequestTracer",
    "EnergyAttributor",
    "AuditConfig",
    "AuditPipeline",
    "audit_events",
    "audit_jsonl",
    "render_audit",
    "profile_events",
    "profile_jsonl",
    "render_profile",
    "LiveDashboard",
    "JsonlFollower",
    "watch",
]
