"""Fault taxonomy for chaos experiments on the two-level power manager.

The paper's premise is performance *assurance*: the response-time
controller and IPAC must hold SLAs while the infrastructure changes
underneath them.  This module defines the disturbance vocabulary —
what can break — as declarative, validated records.  How and when the
faults are applied lives in :mod:`repro.faults.schedule` (deterministic
timing) and :mod:`repro.faults.injector` (live state mutation).

Fault kinds
-----------
``server_crash``
    The target server fails abruptly: it leaves the active pool, every
    hosted VM is evicted, and the data-center layer must re-place them
    (emergency evacuation).  With ``duration_s`` set, the server
    recovers — back into the *sleeping* pool, available to the next
    optimizer invocation — when the fault expires.
``server_recovery``
    Explicitly repair a crashed server at ``time_s`` (the scheduled
    alternative to giving the crash a ``duration_s``).
``thermal_throttle``
    The target server's CPU capacity is cut to ``fraction`` of nominal
    at every DVFS level (thermal or power-capping clamp).  Reverted
    when the fault expires.
``migration_failure``
    While active, each attempted live migration independently fails
    with probability ``probability`` (seeded, reproducible).  The VM
    stays on its source; callers retry or roll back.
``sensor_dropout``
    While active, each per-period response-time sample of the target
    application (or all applications when ``target`` is None) is lost
    — replaced by NaN — with probability ``probability``.
``sensor_noise``
    While active, zero-mean Gaussian noise with standard deviation
    ``sigma_ms`` is added to the target application's response-time
    samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["FAULT_KINDS", "FaultSpecError", "FaultEvent"]

FAULT_KINDS = (
    "server_crash",
    "server_recovery",
    "thermal_throttle",
    "migration_failure",
    "sensor_dropout",
    "sensor_noise",
)

_TARGETLESS_KINDS = ("migration_failure", "sensor_dropout", "sensor_noise")


class FaultSpecError(ValueError):
    """A fault event or scenario spec failed validation."""


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled disturbance.

    Attributes
    ----------
    time_s:
        Simulated second at which the fault begins.
    kind:
        One of :data:`FAULT_KINDS`.
    target:
        Server id (crash/recovery/throttle), application id (sensor
        faults), or None for cluster-wide scope (migration failure,
        sensor faults on every application).
    duration_s:
        How long the fault stays active; None means until the end of
        the run (or, for a crash, until an explicit
        ``server_recovery`` event).
    fraction:
        ``thermal_throttle`` only — remaining capacity as a fraction
        of nominal, in (0, 1].
    probability:
        ``migration_failure`` / ``sensor_dropout`` only — per-attempt
        (resp. per-sample) failure probability in [0, 1].
    sigma_ms:
        ``sensor_noise`` only — standard deviation of the additive
        measurement noise in milliseconds.
    """

    time_s: float
    kind: str
    target: Optional[str] = None
    duration_s: Optional[float] = None
    fraction: float = 1.0
    probability: float = 1.0
    sigma_ms: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not self.time_s >= 0:
            raise FaultSpecError(f"time_s must be >= 0, got {self.time_s}")
        if self.duration_s is not None and not self.duration_s > 0:
            raise FaultSpecError(f"duration_s must be > 0, got {self.duration_s}")
        if self.target is None and self.kind not in _TARGETLESS_KINDS:
            raise FaultSpecError(f"{self.kind} requires a target")
        if self.kind == "thermal_throttle" and not 0.0 < self.fraction <= 1.0:
            raise FaultSpecError(
                f"thermal_throttle fraction must be in (0, 1], got {self.fraction}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultSpecError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.sigma_ms < 0:
            raise FaultSpecError(f"sigma_ms must be >= 0, got {self.sigma_ms}")
        if self.kind == "server_recovery" and self.duration_s is not None:
            raise FaultSpecError("server_recovery is instantaneous; drop duration_s")

    @property
    def end_time_s(self) -> Optional[float]:
        """Simulated second at which the fault auto-reverts (None = never)."""
        if self.duration_s is None:
            return None
        return self.time_s + self.duration_s

    def to_spec(self) -> dict:
        """The declarative (JSON-friendly) form of this event."""
        out = {"time_s": self.time_s, "kind": self.kind}
        if self.target is not None:
            out["target"] = self.target
        if self.duration_s is not None:
            out["duration_s"] = self.duration_s
        if self.kind == "thermal_throttle":
            out["fraction"] = self.fraction
        if self.kind in ("migration_failure", "sensor_dropout"):
            out["probability"] = self.probability
        if self.kind == "sensor_noise":
            out["sigma_ms"] = self.sigma_ms
        return out
