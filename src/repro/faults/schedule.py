"""Deterministic, seeded fault schedules.

A :class:`FaultSchedule` is an immutable, time-ordered list of
:class:`~repro.faults.models.FaultEvent` plus the seed that drives every
stochastic choice made while the schedule is active (which migration
fails, which sample drops).  Two runs with the same schedule therefore
produce byte-identical event logs — the reproducibility guarantee chaos
experiments need to be debuggable.

Schedules come from one of two places:

* a **declarative scenario spec** — a JSON/dict document listing events
  (:meth:`FaultSchedule.from_spec` / :meth:`FaultSchedule.from_json`);
* a **seeded random process** — :meth:`FaultSchedule.random` draws
  Poisson fault arrivals over a horizon from an explicit seed.

:class:`FaultTimeline` linearizes a schedule into begin/end transitions
so harnesses can replay it with a single cursor, whatever their control
period.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.faults.models import FAULT_KINDS, FaultEvent, FaultSpecError

__all__ = ["FaultSchedule", "FaultTimeline", "validate_spec"]

_EVENT_FIELDS = {
    "time_s", "kind", "target", "duration_s", "fraction", "probability", "sigma_ms",
}


def _event_from_spec(entry: dict, index: int) -> FaultEvent:
    if not isinstance(entry, dict):
        raise FaultSpecError(f"events[{index}] must be an object, got {type(entry).__name__}")
    unknown = set(entry) - _EVENT_FIELDS
    if unknown:
        raise FaultSpecError(f"events[{index}] has unknown fields {sorted(unknown)}")
    if "time_s" not in entry or "kind" not in entry:
        raise FaultSpecError(f"events[{index}] needs at least time_s and kind")
    try:
        return FaultEvent(**entry)
    except FaultSpecError as exc:
        raise FaultSpecError(f"events[{index}]: {exc}") from None
    except TypeError as exc:
        raise FaultSpecError(f"events[{index}]: {exc}") from None


def validate_spec(spec: dict) -> List[str]:
    """Collect every problem in a scenario spec (empty list = valid).

    Unlike :meth:`FaultSchedule.from_spec`, which raises on the first
    error, this walks the whole document so a scenario author sees all
    mistakes at once (the ``repro-faults validate`` command).
    """
    problems: List[str] = []
    if not isinstance(spec, dict):
        return [f"spec must be an object, got {type(spec).__name__}"]
    unknown = set(spec) - {"seed", "events"}
    if unknown:
        problems.append(f"unknown top-level fields {sorted(unknown)}")
    seed = spec.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        problems.append(f"seed must be an integer, got {seed!r}")
    events = spec.get("events", [])
    if not isinstance(events, list):
        return problems + [f"events must be a list, got {type(events).__name__}"]
    crashed: Dict[str, float] = {}
    for i, entry in enumerate(events):
        try:
            ev = _event_from_spec(entry, i)
        except FaultSpecError as exc:
            problems.append(str(exc))
            continue
        if ev.kind == "server_crash":
            crashed[ev.target] = ev.end_time_s if ev.end_time_s is not None else np.inf
        elif ev.kind == "server_recovery":
            if ev.target not in crashed:
                problems.append(
                    f"events[{i}]: server_recovery for {ev.target!r} without a "
                    "preceding server_crash"
                )
            else:
                del crashed[ev.target]
    return problems


@dataclass(frozen=True)
class FaultSchedule:
    """A time-ordered tuple of fault events plus the chaos seed."""

    events: Tuple[FaultEvent, ...] = ()
    seed: int = 0

    def __post_init__(self):
        ordered = tuple(
            sorted(self.events, key=lambda ev: (ev.time_s, FAULT_KINDS.index(ev.kind)))
        )
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        # An empty schedule still carries a seed; "no faults configured"
        # is the natural falsy meaning for harness guards.
        return bool(self.events)

    # -- construction --------------------------------------------------

    @classmethod
    def from_spec(cls, spec: dict) -> "FaultSchedule":
        """Build a schedule from a declarative scenario document.

        ``{"seed": 7, "events": [{"time_s": 120, "kind": "server_crash",
        "target": "T1", "duration_s": 300}, ...]}``
        """
        problems = validate_spec(spec)
        if problems:
            raise FaultSpecError("; ".join(problems))
        events = tuple(
            _event_from_spec(entry, i) for i, entry in enumerate(spec.get("events", []))
        )
        return cls(events=events, seed=int(spec.get("seed", 0)))

    @classmethod
    def from_json(cls, path: str) -> "FaultSchedule":
        """Load a scenario spec from a JSON file."""
        with open(path, "r", encoding="utf-8") as fh:
            try:
                spec = json.load(fh)
            except json.JSONDecodeError as exc:
                raise FaultSpecError(f"{path} is not valid JSON: {exc}") from None
        return cls.from_spec(spec)

    @classmethod
    def random(
        cls,
        horizon_s: float,
        server_ids: Sequence[str],
        app_ids: Sequence[str] = (),
        seed: int = 0,
        crash_rate_per_hour: float = 0.5,
        throttle_rate_per_hour: float = 0.5,
        sensor_rate_per_hour: float = 0.0,
        mean_duration_s: float = 600.0,
    ) -> "FaultSchedule":
        """Draw a reproducible random scenario from *seed*.

        Each fault class arrives as an independent Poisson process over
        ``[0, horizon_s)``; targets are drawn uniformly and durations
        exponentially (mean ``mean_duration_s``).  The same arguments
        always produce the same schedule.
        """
        if horizon_s <= 0:
            raise FaultSpecError(f"horizon_s must be > 0, got {horizon_s}")
        if not server_ids:
            raise FaultSpecError("random schedule needs at least one server id")
        rng = np.random.default_rng(seed)
        events: List[FaultEvent] = []
        hours = horizon_s / 3600.0

        def _arrivals(rate_per_hour: float) -> List[float]:
            n = int(rng.poisson(rate_per_hour * hours))
            return sorted(float(t) for t in rng.uniform(0.0, horizon_s, size=n))

        for t in _arrivals(crash_rate_per_hour):
            events.append(
                FaultEvent(
                    time_s=t,
                    kind="server_crash",
                    target=str(rng.choice(list(server_ids))),
                    duration_s=float(rng.exponential(mean_duration_s)) + 1.0,
                )
            )
        for t in _arrivals(throttle_rate_per_hour):
            events.append(
                FaultEvent(
                    time_s=t,
                    kind="thermal_throttle",
                    target=str(rng.choice(list(server_ids))),
                    duration_s=float(rng.exponential(mean_duration_s)) + 1.0,
                    fraction=float(rng.uniform(0.3, 0.8)),
                )
            )
        if app_ids:
            for t in _arrivals(sensor_rate_per_hour):
                events.append(
                    FaultEvent(
                        time_s=t,
                        kind="sensor_dropout",
                        target=str(rng.choice(list(app_ids))),
                        duration_s=float(rng.exponential(mean_duration_s)) + 1.0,
                        probability=float(rng.uniform(0.2, 1.0)),
                    )
                )
        return cls(events=tuple(events), seed=seed)

    # -- serialization -------------------------------------------------

    def to_spec(self) -> dict:
        """The declarative (JSON-friendly) form of the whole schedule."""
        return {"seed": self.seed, "events": [ev.to_spec() for ev in self.events]}

    def to_json(self, path: str) -> None:
        """Write the scenario spec to a JSON file."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_spec(), fh, indent=2)
            fh.write("\n")

    def cursor(self) -> "FaultTimeline":
        """A fresh replay cursor over this schedule's transitions."""
        return FaultTimeline(self)


@dataclass
class Transition:
    """One timeline step: a fault beginning or ending."""

    time_s: float
    phase: str  # "begin" | "end"
    event: FaultEvent


class FaultTimeline:
    """Linearized begin/end transitions of a schedule, with a cursor.

    Harnesses call :meth:`advance` once per control period; it returns
    every transition due since the previous call, in deterministic
    order (time, begins before ends at equal times are resolved by
    schedule position so that an instantaneous crash+recovery pair
    replays consistently).
    """

    def __init__(self, schedule: FaultSchedule):
        self.schedule = schedule
        transitions: List[Tuple[float, int, int, Transition]] = []
        for seq, ev in enumerate(schedule.events):
            transitions.append((ev.time_s, 0, seq, Transition(ev.time_s, "begin", ev)))
            if ev.end_time_s is not None:
                transitions.append(
                    (ev.end_time_s, 1, seq, Transition(ev.end_time_s, "end", ev))
                )
        transitions.sort(key=lambda t: (t[0], t[1], t[2]))
        self._transitions = [t[3] for t in transitions]
        self._next = 0

    @property
    def exhausted(self) -> bool:
        """True once every transition has been replayed."""
        return self._next >= len(self._transitions)

    def advance(self, now_s: float) -> List[Transition]:
        """All transitions with ``time_s <= now_s`` not yet returned."""
        due: List[Transition] = []
        while (
            self._next < len(self._transitions)
            and self._transitions[self._next].time_s <= now_s + 1e-9
        ):
            due.append(self._transitions[self._next])
            self._next += 1
        return due

    def remaining(self) -> List[Transition]:
        """Transitions not yet replayed (end-of-run cleanup/reporting)."""
        return list(self._transitions[self._next:])

    # -- checkpointing (engine resume) ---------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """The cursor position (the schedule itself is config, not state)."""
        return {"next": self._next, "n_transitions": len(self._transitions)}

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        n = int(state.get("n_transitions", -1))
        if n != len(self._transitions):
            raise ValueError(
                f"checkpoint cursor is over {n} transitions, this schedule "
                f"has {len(self._transitions)}"
            )
        nxt = int(state["next"])
        if not 0 <= nxt <= n:
            raise ValueError(f"fault cursor {nxt} out of range 0..{n}")
        self._next = nxt
