"""Applying and reverting faults on a live :class:`DataCenter`.

The :class:`FaultInjector` replays a :class:`~repro.faults.schedule.
FaultSchedule` against the cluster between control periods: harnesses
call :meth:`FaultInjector.step` once per period boundary, and the
injector performs every begin/end transition due since the last call —
crashing and recovering servers (triggering emergency evacuation through
the ``on_evacuate`` callback), throttling capacity, arming the
data-center's migration disruptor, and transforming response-time
measurements for sensor faults via :meth:`filter_measurements`.

All randomness (which migration fails, which sample drops, the noise
values) comes from one generator seeded with ``schedule.seed``, drawn in
a deterministic order — so two runs of the same scenario produce
byte-identical fault behaviour and telemetry.
"""

from __future__ import annotations

import logging
import math
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.cluster.datacenter import DataCenter
from repro.faults.models import FaultEvent
from repro.faults.schedule import FaultSchedule, Transition
from repro.obs import get_telemetry

__all__ = ["FaultInjector"]

logger = logging.getLogger(__name__)

# on_evacuate(failed_server_id, evicted_vm_ids, time_s) — wired to
# PowerManager.emergency_evacuate by the harnesses.
EvacuationHook = Callable[[str, List[str], float], object]


class FaultInjector:
    """Replays a fault schedule against a live data center."""

    def __init__(
        self,
        dc: DataCenter,
        schedule: FaultSchedule,
        on_evacuate: Optional[EvacuationHook] = None,
    ):
        self.dc = dc
        self.schedule = schedule
        self.timeline = schedule.cursor()
        self.rng = np.random.default_rng(schedule.seed)
        self.on_evacuate = on_evacuate
        self._sensor_faults: List[FaultEvent] = []
        self._migration_faults: List[FaultEvent] = []
        self.injected_count = 0
        self.recovered_count = 0

    # -- replay --------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        """True once every scheduled transition has been applied."""
        return self.timeline.exhausted

    def step(self, now_s: float) -> List[Transition]:
        """Apply every transition due at or before *now_s*.

        Returns the transitions performed (begin and end), in order.
        Call once per control period, *before* the period's measurements
        are taken, so a crash at t=300 affects the period starting at
        t=300.
        """
        due = self.timeline.advance(now_s)
        for tr in due:
            if tr.phase == "begin":
                self._begin(tr.event, now_s)
            else:
                self._end(tr.event, now_s)
        return due

    def _begin(self, ev: FaultEvent, now_s: float) -> None:
        tel = get_telemetry()
        if ev.kind == "server_crash":
            evicted = self.dc.fail_server(ev.target)
            self._emit_injected(ev, now_s, evicted=evicted)
            logger.warning(
                "fault t=%.1fs: server %s crashed, %d VMs evicted",
                now_s, ev.target, len(evicted),
            )
            if evicted and self.on_evacuate is not None:
                self.on_evacuate(ev.target, evicted, now_s)
        elif ev.kind == "server_recovery":
            self.dc.recover_server(ev.target)
            self.recovered_count += 1
            tel.count("faults.recovered")
            tel.event(
                "fault_recovered", time_s=now_s, fault="server_crash",
                target=ev.target,
            )
        elif ev.kind == "thermal_throttle":
            self.dc.servers[ev.target].throttle(ev.fraction)
            self._emit_injected(ev, now_s)
            logger.warning(
                "fault t=%.1fs: server %s throttled to %.0f%% capacity",
                now_s, ev.target, 100.0 * ev.fraction,
            )
        elif ev.kind == "migration_failure":
            self._migration_faults.append(ev)
            self.dc.migration_disruptor = self._disrupt_migration
            self._emit_injected(ev, now_s)
        elif ev.kind in ("sensor_dropout", "sensor_noise"):
            self._sensor_faults.append(ev)
            self._emit_injected(ev, now_s)

    def _end(self, ev: FaultEvent, now_s: float) -> None:
        tel = get_telemetry()
        if ev.kind == "server_crash":
            self.dc.recover_server(ev.target)
        elif ev.kind == "thermal_throttle":
            self.dc.servers[ev.target].unthrottle()
        elif ev.kind == "migration_failure":
            self._migration_faults = [f for f in self._migration_faults if f is not ev]
            if not self._migration_faults:
                self.dc.migration_disruptor = None
        elif ev.kind in ("sensor_dropout", "sensor_noise"):
            self._sensor_faults = [f for f in self._sensor_faults if f is not ev]
        self.recovered_count += 1
        tel.count("faults.recovered")
        tel.event(
            "fault_recovered", time_s=now_s, fault=ev.kind, target=ev.target,
        )
        logger.info("fault t=%.1fs: %s on %s recovered", now_s, ev.kind, ev.target)

    def _emit_injected(self, ev: FaultEvent, now_s: float, **extra) -> None:
        self.injected_count += 1
        tel = get_telemetry()
        tel.count("faults.injected")
        tel.event(
            "fault_injected",
            time_s=now_s,
            fault=ev.kind,
            target=ev.target,
            duration_s=ev.duration_s,
            **({"fraction": ev.fraction} if ev.kind == "thermal_throttle" else {}),
            **(
                {"probability": ev.probability}
                if ev.kind in ("migration_failure", "sensor_dropout")
                else {}
            ),
            **({"sigma_ms": ev.sigma_ms} if ev.kind == "sensor_noise" else {}),
            **extra,
        )

    # -- fault behaviours ----------------------------------------------

    def _disrupt_migration(self, vm_id: str, source_id: str, target_id: str) -> bool:
        for ev in self._migration_faults:
            if self.rng.random() < ev.probability:
                get_telemetry().count("faults.migrations_disrupted")
                return True
        return False

    def filter_measurements(
        self, measurements: Mapping[str, float]
    ) -> Dict[str, float]:
        """Degrade per-app response-time samples per the active faults.

        Iterates applications in sorted order so the RNG draw sequence —
        and therefore the whole run — is reproducible.  Returns a new
        dict; the input is never mutated.
        """
        if not self._sensor_faults:
            return dict(measurements)
        out: Dict[str, float] = {}
        for app_id in sorted(measurements):
            value = float(measurements[app_id])
            for ev in self._sensor_faults:
                if ev.target is not None and ev.target != app_id:
                    continue
                if ev.kind == "sensor_dropout":
                    if self.rng.random() < ev.probability:
                        value = math.nan
                        get_telemetry().count("faults.samples_dropped")
                elif ev.kind == "sensor_noise" and math.isfinite(value):
                    value += float(self.rng.normal(0.0, ev.sigma_ms))
            out[app_id] = value
        return out

    # -- introspection -------------------------------------------------

    @property
    def active_sensor_faults(self) -> List[FaultEvent]:
        """Sensor faults currently in effect (copy)."""
        return list(self._sensor_faults)

    @property
    def active_migration_faults(self) -> List[FaultEvent]:
        """Migration-failure faults currently in effect (copy)."""
        return list(self._migration_faults)
