"""Fault injection: deterministic chaos for the two-level power manager.

The subsystem has three parts, layered so each is testable alone:

* :mod:`repro.faults.models` — the fault taxonomy
  (:class:`~repro.faults.models.FaultEvent`): server crash/recovery,
  thermal throttle, migration failure, sensor dropout/noise.
* :mod:`repro.faults.schedule` — a declarative, seeded, deterministic
  timeline (:class:`~repro.faults.schedule.FaultSchedule`), loadable
  from JSON or generated from seeded Poisson arrivals.
* :mod:`repro.faults.injector` — the
  :class:`~repro.faults.injector.FaultInjector` that applies and
  reverts faults on a live :class:`~repro.cluster.datacenter.DataCenter`
  between control periods.

Both simulation harnesses (``repro-testbed``, ``repro-largescale``)
accept a schedule via ``--faults``; ``repro-faults`` validates and
generates scenario files.
"""

from repro.faults.injector import FaultInjector
from repro.faults.models import FAULT_KINDS, FaultEvent, FaultSpecError
from repro.faults.schedule import FaultSchedule, FaultTimeline, Transition, validate_spec

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultSpecError",
    "FaultSchedule",
    "FaultTimeline",
    "Transition",
    "FaultInjector",
    "validate_spec",
]
