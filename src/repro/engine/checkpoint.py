"""JSON-safe serialization helpers for engine checkpoints.

Everything a checkpoint stores must round-trip through ``json.dumps`` /
``json.loads`` **bit-identically**:

* floats survive exactly — Python's ``json`` emits ``repr`` (shortest
  round-trip) for ``float``, so ``loads(dumps(x)) == x`` for every
  finite double; non-finite values are rejected up front because JSON
  has no representation for them;
* numpy arrays are stored as ``{"shape": [...], "data": [...]}`` nested
  lists plus a dtype tag and rebuilt with ``np.asarray(...).reshape``;
* RNG streams are stored as the bit generator's ``state`` dict
  (arbitrary-precision ints are native JSON) and restored onto a fresh
  generator of the same bit-generator class.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Sequence, Union

import numpy as np

__all__ = [
    "decode_array",
    "decode_float",
    "decode_float_list",
    "decode_rng",
    "encode_array",
    "encode_float",
    "encode_float_list",
    "encode_rng",
    "require_fields",
]


def encode_array(arr: np.ndarray) -> Dict[str, Any]:
    """Encode a numeric/bool numpy array as a JSON-safe dict."""
    a = np.asarray(arr)
    if a.dtype.kind == "f" and not np.all(np.isfinite(a)):
        raise ValueError("cannot checkpoint a float array with NaN/inf entries")
    return {
        "dtype": a.dtype.str,
        "shape": list(a.shape),
        "data": a.ravel().tolist(),
    }


def decode_array(doc: Mapping[str, Any]) -> np.ndarray:
    """Rebuild an array written by :func:`encode_array`."""
    try:
        dtype = np.dtype(doc["dtype"])
        shape = tuple(int(s) for s in doc["shape"])
        data = doc["data"]
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed array document: {exc}") from None
    return np.asarray(data, dtype=dtype).reshape(shape)


def _jsonable_ints(value: Any) -> Any:
    """Recursively coerce numpy ints inside an RNG state dict."""
    if isinstance(value, dict):
        return {k: _jsonable_ints(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable_ints(v) for v in value]
    if isinstance(value, np.ndarray):
        return [int(v) for v in value.tolist()]
    if isinstance(value, (np.integer,)):
        return int(value)
    return value


def encode_rng(rng: np.random.Generator) -> Dict[str, Any]:
    """Capture a generator's full stream position."""
    return _jsonable_ints(dict(rng.bit_generator.state))


def decode_rng(doc: Mapping[str, Any]) -> np.random.Generator:
    """Rebuild a generator at the exact stream position of *doc*."""
    name = doc.get("bit_generator")
    cls = getattr(np.random, str(name), None)
    if cls is None:
        raise ValueError(f"unknown bit generator {name!r} in checkpoint")
    bg = cls()
    bg.state = dict(doc)
    return np.random.Generator(bg)


def require_fields(
    doc: Mapping[str, Any], fields: Sequence[str], where: str
) -> None:
    """Raise a uniform error when a state dict is missing *fields*."""
    missing = [f for f in fields if f not in doc]
    if missing:
        raise ValueError(f"{where} state is missing fields {missing}")


def encode_float(value: Union[float, int]) -> Union[float, None]:
    """Floats pass through; NaN is mapped to None (JSON-safe)."""
    f = float(value)
    if math.isnan(f):
        return None
    if math.isinf(f):
        raise ValueError("cannot checkpoint an infinite value")
    return f


def decode_float(value: Union[float, int, None]) -> float:
    """Inverse of :func:`encode_float`."""
    return float("nan") if value is None else float(value)


def encode_float_list(values: Sequence[Union[float, int]]) -> List[Any]:
    """Encode a sequence of floats, tolerating NaN entries."""
    return [encode_float(v) for v in values]


def decode_float_list(values: Sequence[Any]) -> List[float]:
    """Inverse of :func:`encode_float_list`."""
    return [decode_float(v) for v in values]
