"""Named, validated scenario specs for the control-plane kernel.

A :class:`ScenarioSpec` is a JSON-safe description of one complete
engine run: which harness (``testbed`` or ``largescale``), the harness
config parameters, and the optional extras that do not fit in a flat
config — an ARX model (so the testbed skips system identification), a
per-application workload schedule, a trace recipe, a fault spec.  Specs
round-trip through :meth:`ScenarioSpec.to_dict` /
:meth:`ScenarioSpec.from_dict`, so they can live in version-controlled
JSON files and be diffed like any other experiment artifact.

:class:`ScenarioRegistry` maps names to specs; :func:`builtin_registry`
ships the repository's reference scenarios (the same configurations the
golden-hash tests pin).  The ``repro-scenario`` CLI lists and validates
registry entries and spec files; ``repro-sim --scenario NAME`` builds
and runs one through :class:`~repro.engine.kernel.ControlPlane`,
including checkpoint/resume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.engine.kernel import ControlPlane

__all__ = [
    "HARNESSES",
    "ScenarioError",
    "ScenarioRegistry",
    "ScenarioSpec",
    "builtin_registry",
]

#: Harnesses a scenario can target.
HARNESSES: Tuple[str, ...] = ("testbed", "largescale", "sharded")

#: Sharding keys a ``sharded`` scenario's params may carry on top of
#: the large-scale config fields (see
#: :class:`repro.engine.sharded_backend.ShardedConfig`).
_SHARD_KEYS: Tuple[str, ...] = ("n_pods", "workers", "sync_every_steps")

#: Workload spec types → (constructor name, required numeric fields).
_WORKLOAD_TYPES: Dict[str, Tuple[str, ...]] = {
    "constant": ("level",),
    "step": ("base", "high", "start_s", "end_s"),
    "ramp": ("start", "end", "start_s", "end_s"),
}


class ScenarioError(ValueError):
    """A scenario spec is malformed (see :meth:`ScenarioSpec.validate`)."""


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, JSON-serializable engine scenario.

    Parameters
    ----------
    name / description:
        Identity and one-line intent, shown by ``repro-scenario list``.
    harness:
        ``"testbed"`` (request-level DES, MPC controllers),
        ``"largescale"`` (trace-driven vectorized plant), or
        ``"sharded"`` (the large-scale plant partitioned into pods
        behind one control plane, optionally on a process pool).
    params:
        Keyword arguments for the harness config class
        (:class:`~repro.sim.testbed.TestbedConfig` or
        :class:`~repro.sim.largescale.LargeScaleConfig`).  JSON lists
        are coerced to the tuples the configs expect.  A ``sharded``
        scenario additionally takes ``n_pods`` / ``workers`` /
        ``sync_every_steps`` (see
        :class:`~repro.engine.sharded_backend.ShardedConfig`); every
        other key configures the underlying large-scale plant.
    model:
        Testbed only: ``{"a": [...], "b": [[...], ...], "g": float}``.
        When given, all controllers share this ARX model and the (slow)
        system-identification step is skipped.
    workloads:
        Testbed only: app index → workload spec, e.g.
        ``{"1": {"type": "step", "base": 10, "high": 20,
        "start_s": 90.0, "end_s": 180.0}}`` (JSON objects have string
        keys; integers are accepted too).
    trace:
        Large-scale only (required there): the synthetic-trace recipe
        ``{"n_servers": int, "n_days": int, "seed": int}``.
    faults:
        Optional fault spec in the :mod:`repro.faults` JSON format.
    """

    name: str
    description: str
    harness: str
    params: Mapping[str, Any] = field(default_factory=dict)
    model: Optional[Mapping[str, Any]] = None
    workloads: Optional[Mapping[Any, Mapping[str, Any]]] = None
    trace: Optional[Mapping[str, Any]] = None
    faults: Optional[Mapping[str, Any]] = None

    # -- JSON round-trip ----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-safe dict; ``from_dict`` inverts it exactly."""
        doc: Dict[str, Any] = {
            "name": self.name,
            "description": self.description,
            "harness": self.harness,
            "params": _jsonify(self.params),
        }
        if self.model is not None:
            doc["model"] = _jsonify(self.model)
        if self.workloads is not None:
            doc["workloads"] = {
                str(k): _jsonify(v) for k, v in self.workloads.items()
            }
        if self.trace is not None:
            doc["trace"] = _jsonify(self.trace)
        if self.faults is not None:
            doc["faults"] = _jsonify(self.faults)
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "ScenarioSpec":
        """Build a spec from a JSON document (inverse of ``to_dict``)."""
        if not isinstance(doc, Mapping):
            raise ScenarioError(
                f"scenario document must be an object, got {type(doc).__name__}"
            )
        unknown = set(doc) - {
            "name", "description", "harness", "params", "model",
            "workloads", "trace", "faults",
        }
        if unknown:
            raise ScenarioError(f"unknown scenario fields {sorted(unknown)}")
        try:
            name = doc["name"]
            harness = doc["harness"]
        except KeyError as exc:
            raise ScenarioError(f"scenario document lacks {exc}") from None
        return cls(
            name=str(name),
            description=str(doc.get("description", "")),
            harness=str(harness),
            params=dict(doc.get("params", {})),
            model=doc.get("model"),
            workloads=doc.get("workloads"),
            trace=doc.get("trace"),
            faults=doc.get("faults"),
        )

    # -- validation ----------------------------------------------------

    def validate(self) -> List[str]:
        """Collect every problem in this spec (empty list = valid).

        Walks the whole spec so an author sees all mistakes at once,
        mirroring :func:`repro.faults.schedule.validate_spec` (which
        this reuses for the ``faults`` section).
        """
        problems: List[str] = []
        if not self.name or not str(self.name).strip():
            problems.append("name must be a non-empty string")
        if self.harness not in HARNESSES:
            problems.append(
                f"harness must be one of {list(HARNESSES)}, got {self.harness!r}"
            )
            return problems  # everything below is harness-specific
        if not isinstance(self.params, Mapping):
            problems.append(
                f"params must be an object, got {type(self.params).__name__}"
            )
            return problems
        problems += self._validate_params()
        problems += self._validate_model()
        problems += self._validate_workloads()
        problems += self._validate_trace()
        if self.faults is not None:
            from repro.faults import validate_spec

            problems += [f"faults: {p}" for p in validate_spec(dict(self.faults))]
        return problems

    def _validate_params(self) -> List[str]:
        for reserved in ("faults", "workloads"):
            if reserved in self.params:
                return [
                    f"params may not contain {reserved!r}; "
                    f"use the top-level {reserved!r} section"
                ]
        try:
            # Bare config only: the faults/workloads/model sections have
            # their own validators with better-scoped messages.
            self._make_config(bare=True)
        except (TypeError, ValueError) as exc:
            return [f"params: {exc}"]
        return []

    def _validate_model(self) -> List[str]:
        if self.model is None:
            return []
        if self.harness != "testbed":
            return ["model: only the testbed harness takes an ARX model"]
        try:
            self._make_model()
        except (TypeError, ValueError, KeyError) as exc:
            return [f"model: {exc}"]
        return []

    def _validate_workloads(self) -> List[str]:
        if self.workloads is None:
            return []
        if self.harness != "testbed":
            return ["workloads: only the testbed harness takes workload schedules"]
        problems: List[str] = []
        for key, spec in self.workloads.items():
            label = f"workloads[{key!r}]"
            try:
                int(key)
            except (TypeError, ValueError):
                problems.append(f"{label}: key must be an app index")
                continue
            if not isinstance(spec, Mapping):
                problems.append(f"{label}: must be an object")
                continue
            kind = spec.get("type")
            if kind not in _WORKLOAD_TYPES:
                problems.append(
                    f"{label}: type must be one of {sorted(_WORKLOAD_TYPES)}, "
                    f"got {kind!r}"
                )
                continue
            required = _WORKLOAD_TYPES[kind]
            extra = set(spec) - {"type", *required}
            if extra:
                problems.append(f"{label}: unknown fields {sorted(extra)}")
            missing = [f for f in required if f not in spec]
            if missing:
                problems.append(f"{label}: missing fields {missing}")
                continue
            try:
                _make_workload(spec)
            except (TypeError, ValueError) as exc:
                problems.append(f"{label}: {exc}")
        return problems

    def _validate_trace(self) -> List[str]:
        if self.harness == "testbed":
            if self.trace is not None:
                return ["trace: only the largescale harness takes a trace recipe"]
            return []
        if self.trace is None:
            return [f"trace: the {self.harness} harness needs a trace recipe "
                    '{"n_servers", "n_days", "seed"}']
        unknown = set(self.trace) - {"n_servers", "n_days", "seed"}
        if unknown:
            return [f"trace: unknown fields {sorted(unknown)}"]
        from repro.traces.generator import TraceConfig

        try:
            TraceConfig(
                n_servers=int(self.trace.get("n_servers", 0)),
                n_days=int(self.trace.get("n_days", 1)),
            )
        except (TypeError, ValueError) as exc:
            return [f"trace: {exc}"]
        return []

    # -- construction --------------------------------------------------

    def build(self, rng: Any = None) -> "Tuple[ControlPlane, Any]":
        """Build the ``(engine, backend)`` pair for this scenario.

        Raises :class:`ScenarioError` when the spec does not validate.
        Call ``backend.start()`` before ``engine.run()`` (or
        ``engine.restore(...)`` instead, to resume from a checkpoint).
        """
        problems = self.validate()
        if problems:
            raise ScenarioError(
                f"scenario {self.name!r} is invalid:\n  " + "\n  ".join(problems)
            )
        if self.harness == "testbed":
            from repro.engine.testbed_backend import build_testbed_engine

            return build_testbed_engine(
                config=self._make_config(), model=self._make_model(), rng=rng
            )
        if self.harness == "sharded":
            from repro.engine.sharded_backend import build_sharded_engine

            return build_sharded_engine(self._make_trace(), self._make_config())
        from repro.engine.largescale_backend import build_largescale_engine

        return build_largescale_engine(
            self._make_trace(), self._make_config(), rng=rng
        )

    def _make_config(self, bare: bool = False):
        params = {k: _tuplify(v) for k, v in self.params.items()}
        if self.faults is not None and not bare:
            from repro.faults import FaultSchedule

            params["faults"] = FaultSchedule.from_spec(dict(self.faults))
        if self.harness == "testbed":
            from repro.sim.testbed import TestbedConfig

            if self.workloads is not None and not bare:
                params["workloads"] = {
                    int(k): _make_workload(v) for k, v in self.workloads.items()
                }
            if "setpoints_ms" in params:
                params["setpoints_ms"] = {
                    int(k): float(v) for k, v in self.params["setpoints_ms"].items()
                }
            return TestbedConfig(**params)
        from repro.sim.largescale import LargeScaleConfig

        if self.harness == "sharded":
            from repro.engine.sharded_backend import ShardedConfig

            shard_kwargs = {
                key: int(params.pop(key)) for key in _SHARD_KEYS if key in params
            }
            return ShardedConfig(base=LargeScaleConfig(**params), **shard_kwargs)
        return LargeScaleConfig(**params)

    def _make_model(self):
        if self.model is None:
            return None
        from repro.control.arx import ARXModel

        unknown = set(self.model) - {"a", "b", "g"}
        if unknown:
            raise ValueError(f"unknown fields {sorted(unknown)}")
        return ARXModel(
            a=list(self.model["a"]),
            b=[list(row) for row in self.model["b"]],
            g=float(self.model["g"]),
        )

    def _make_trace(self):
        from repro.traces.generator import TraceConfig, generate_trace

        assert self.trace is not None  # validate() ran first
        return generate_trace(
            TraceConfig(
                n_servers=int(self.trace["n_servers"]),
                n_days=int(self.trace.get("n_days", 1)),
            ),
            rng=int(self.trace.get("seed", 0)),
        )


def _jsonify(value: Any) -> Any:
    """Tuples → lists, recursively, so ``to_dict`` output is pure JSON."""
    if isinstance(value, Mapping):
        return {k: _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


def _tuplify(value: Any) -> Any:
    """JSON lists → the tuples frozen config dataclasses expect."""
    if isinstance(value, list):
        return tuple(_tuplify(v) for v in value)
    return value


def _make_workload(spec: Mapping[str, Any]):
    from repro.apps.workload import ConstantWorkload, RampWorkload, StepWorkload

    kind = spec["type"]
    if kind == "constant":
        return ConstantWorkload(int(spec["level"]))
    if kind == "step":
        return StepWorkload(
            int(spec["base"]), int(spec["high"]),
            float(spec["start_s"]), float(spec["end_s"]),
        )
    if kind == "ramp":
        return RampWorkload(
            int(spec["start"]), int(spec["end"]),
            float(spec["start_s"]), float(spec["end_s"]),
        )
    raise ValueError(f"unknown workload type {kind!r}")


class ScenarioRegistry:
    """Name → :class:`ScenarioSpec` mapping with validation on insert."""

    def __init__(self, specs: Optional[List[ScenarioSpec]] = None):
        self._specs: Dict[str, ScenarioSpec] = {}
        for spec in specs or []:
            self.register(spec)

    def register(self, spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
        """Add *spec* (must validate); returns it for chaining."""
        problems = spec.validate()
        if problems:
            raise ScenarioError(
                f"scenario {spec.name!r} is invalid:\n  " + "\n  ".join(problems)
            )
        if spec.name in self._specs and not replace:
            raise ScenarioError(f"scenario {spec.name!r} is already registered")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> ScenarioSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario {name!r}; known: {', '.join(self.names()) or '-'}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[ScenarioSpec]:
        return iter(self._specs[n] for n in self.names())

    def __len__(self) -> int:
        return len(self._specs)


# The small shared ARX model used by the quick testbed scenarios (two
# tiers, gains in ms per GHz) — identification is skipped, so these run
# in seconds.
_TB_MODEL = {"a": [0.4], "b": [[-800.0, -300.0], [-100.0, -50.0]], "g": 1800.0}

_TB_PARAMS = {
    "n_servers": 2,
    "n_apps": 2,
    "duration_s": 180.0,
    "warmup_s": 20.0,
    "concurrency": 10,
    "initial_alloc_ghz": 0.6,
    "mpc_warm_start": False,
    # The builtin testbed scenarios are the golden-hash references: they
    # pin the scalar control path (fleet batching is allclose, not
    # bit-identical).  Override with --control-mode fleet (repro-sim) or
    # params={"control_mode": "fleet"} to run the production path.
    "control_mode": "scalar",
    "seed": 77,
}

_TB_FAULTS = {
    "seed": 3,
    "events": [
        {"time_s": 45.0, "kind": "server_crash", "target": "T1",
         "duration_s": 60.0},
        {"time_s": 60.0, "kind": "thermal_throttle", "target": "T0",
         "duration_s": 45.0, "fraction": 0.6},
        {"time_s": 90.0, "kind": "sensor_dropout", "target": "app0",
         "duration_s": 30.0, "probability": 1.0},
    ],
}

_LS_PARAMS = {"n_vms": 30, "n_servers": 50, "seed": 5}
_LS_TRACE = {"n_servers": 40, "n_days": 1, "seed": 13}

_LS_FAULTS = {
    "seed": 11,
    "events": [
        {"time_s": 3600.0, "kind": "server_crash", "target": "S0009",
         "duration_s": 7200.0},
        {"time_s": 10800.0, "kind": "thermal_throttle", "target": "S0010",
         "duration_s": 7200.0, "fraction": 0.5},
        {"time_s": 14400.0, "kind": "migration_failure", "target": None,
         "duration_s": 21600.0, "probability": 0.5},
    ],
}

_BUILTINS: List[ScenarioSpec] = [
    ScenarioSpec(
        name="testbed-small",
        description="2 apps on 2 servers, 180 s, shared fixed ARX model "
        "(quick MPC tracking demo)",
        harness="testbed",
        params=_TB_PARAMS,
        model=_TB_MODEL,
    ),
    ScenarioSpec(
        name="testbed-faulted",
        description="testbed-small plus a crash, a thermal throttle, and "
        "a sensor dropout (degraded-mode control)",
        harness="testbed",
        params=_TB_PARAMS,
        model=_TB_MODEL,
        faults=_TB_FAULTS,
    ),
    ScenarioSpec(
        name="testbed-integrated",
        description="two optimizer epochs plus a concurrency step on app 1 "
        "(the paper's integrated two-level mode)",
        harness="testbed",
        params={**_TB_PARAMS, "duration_s": 240.0,
                "optimize_at_s": [60.0, 180.0]},
        model=_TB_MODEL,
        workloads={"1": {"type": "step", "base": 10, "high": 20,
                         "start_s": 90.0, "end_s": 180.0}},
    ),
    ScenarioSpec(
        name="largescale-small",
        description="30 VMs on 50 servers over a 1-day synthetic trace, "
        "IPAC with DVFS",
        harness="largescale",
        params=_LS_PARAMS,
        trace=_LS_TRACE,
    ),
    ScenarioSpec(
        name="largescale-faulted",
        description="largescale-small plus a server crash, a throttle, and "
        "a migration-failure window",
        harness="largescale",
        params=_LS_PARAMS,
        trace=_LS_TRACE,
        faults=_LS_FAULTS,
    ),
    ScenarioSpec(
        name="sharded-small",
        description="largescale-small partitioned into 2 pods behind one "
        "control plane (2 process-pool workers)",
        harness="sharded",
        params={**_LS_PARAMS, "n_pods": 2, "workers": 2},
        trace=_LS_TRACE,
    ),
    ScenarioSpec(
        name="sharded-paper",
        description="paper scale: 20,000 VMs on 5,415 servers over a 1-day "
        "trace, 8 pods on 4 workers",
        harness="sharded",
        params={"n_vms": 20000, "n_servers": 5415, "seed": 5,
                "n_pods": 8, "workers": 4},
        trace={"n_servers": 20000, "n_days": 1, "seed": 13},
    ),
    ScenarioSpec(
        name="largescale-pmapper",
        description="largescale-small with the pMapper baseline instead of "
        "IPAC (no DVFS, paper Fig. 6 comparison)",
        harness="largescale",
        params={**_LS_PARAMS, "scheme": "pmapper"},
        trace=_LS_TRACE,
    ),
]


def builtin_registry() -> ScenarioRegistry:
    """A fresh registry holding the repository's reference scenarios."""
    return ScenarioRegistry(list(_BUILTINS))
