"""Typed component interfaces of the control-plane kernel.

The paper's two-level architecture decomposes into a small set of
component roles — the sensor → estimator → controller → actuator chain
made explicit by robust-provisioning work such as Makridis et al.
(arXiv:1811.05533) — and the kernel (:mod:`repro.engine.kernel`)
advances them in a fixed, per-backend phase order each control period:

=================  ====================================================
protocol            responsibility
=================  ====================================================
SensorSource        produce this period's measurements (response times
                    or per-VM demand snapshots)
SysIdUpdater        consume measurements to refresh a model (RLS /
                    demand forecaster)
ResponseTimeStage   application-level control: measurements → demands
ArbitratorStage     server-level arbitration: demands → DVFS + grants
OptimizerEpoch      slow-time-scale placement optimization, invoked on
                    its own schedule between control periods
ActuatorStage       push granted allocations / placements into a plant
FaultStage          apply fault-schedule transitions for the period
TelemetrySink       flush structured telemetry at period boundaries
PlantBackend        the simulated (or, later, real) plant a scenario
                    runs against
Checkpointable      serialize mutable state to a JSON-safe dict and
                    restore it bit-identically
EnginePhase         the uniform callable shape the kernel actually runs
=================  ====================================================

Every protocol is :func:`typing.runtime_checkable`, so the kernel can
validate a phase list at construction time, and ``mypy`` checks the
backends structurally (the CI runs ``mypy src/repro/engine/``).
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Mapping,
    Optional,
    Protocol,
    TYPE_CHECKING,
    runtime_checkable,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    import numpy as np

    from repro.engine.kernel import PeriodContext

__all__ = [
    "ActuatorStage",
    "ArbitratorStage",
    "Checkpointable",
    "EnginePhase",
    "FaultStage",
    "OptimizerEpoch",
    "PlantBackend",
    "ResponseTimeStage",
    "SensorSource",
    "SysIdUpdater",
    "TelemetrySink",
]


# The uniform shape of one engine phase: a callable the kernel invokes
# once per control period with the running :class:`PeriodContext`.
EnginePhase = Callable[["PeriodContext"], None]


@runtime_checkable
class Checkpointable(Protocol):
    """A component whose mutable state round-trips through JSON.

    ``state_dict`` must return only JSON-serializable values (dicts,
    lists, strings, ints, floats, bools, None); ``load_state_dict`` must
    restore the component so that subsequent stepping is bit-identical
    to never having been serialized.
    """

    def state_dict(self) -> Dict[str, Any]: ...

    def load_state_dict(self, state: Mapping[str, Any]) -> None: ...


@runtime_checkable
class SensorSource(Protocol):
    """Produces the period's measurements (sensing phase)."""

    def sense(self, ctx: "PeriodContext") -> None: ...


@runtime_checkable
class SysIdUpdater(Protocol):
    """Consumes fresh measurements to update an online model.

    Covers both response-time model adaptation (RLS shadow estimation)
    and demand forecasting (EWMA / Holt) — anything that learns between
    control decisions.
    """

    def update_model(self, ctx: "PeriodContext") -> None: ...


@runtime_checkable
class ResponseTimeStage(Protocol):
    """Application-level controller: measured response time → demands."""

    def update(
        self,
        measured_rt_ms: float,
        used_ghz: Optional["np.ndarray"] = None,
    ) -> "np.ndarray": ...

    def notify_allocation(self, actual_alloc_ghz: "np.ndarray") -> None: ...


@runtime_checkable
class ArbitratorStage(Protocol):
    """Server-level arbitration: per-VM demands → DVFS level + grants."""

    def arbitrate(
        self, server: Any, demands_ghz: Mapping[str, float]
    ) -> Any: ...


@runtime_checkable
class OptimizerEpoch(Protocol):
    """Slow-time-scale optimizer invocations (consolidation epochs)."""

    def maybe_optimize(self, ctx: "PeriodContext") -> None: ...


@runtime_checkable
class ActuatorStage(Protocol):
    """Pushes control decisions into the plant."""

    def actuate(self, ctx: "PeriodContext") -> None: ...


@runtime_checkable
class FaultStage(Protocol):
    """Applies fault-schedule transitions due this period."""

    def inject(self, ctx: "PeriodContext") -> None: ...


@runtime_checkable
class TelemetrySink(Protocol):
    """Flushes buffered telemetry at period boundaries."""

    def flush(self, ctx: "PeriodContext") -> None: ...


@runtime_checkable
class PlantBackend(Protocol):
    """The plant a scenario runs against.

    A plant advances one control period under the currently applied
    allocations/placement and exposes whatever the scenario's sensors
    read.  Implementations in this repository: the request-level DES
    testbed plant (:class:`repro.engine.testbed_backend.TestbedBackend`)
    and the vectorized trace-driven plant
    (:class:`repro.engine.largescale_backend.LargeScaleBackend`).  A
    real-hardware backend would satisfy the same protocol.
    """

    @property
    def n_periods(self) -> int: ...

    @property
    def period_s(self) -> float: ...

    def phases(self) -> Any: ...
