"""Kernel backend for the simulated hardware testbed.

This is the request-level DES plant behind
:class:`repro.sim.testbed.TestbedExperiment` (paper §VI-A, Figs. 2-5),
restructured as :class:`ControlPlane` phases:

``faults`` (injector transitions + plant degradation) → ``optimize``
(data-center optimizer epochs at scheduled times) → ``sense`` (workload
levels take effect, plants simulate one period, response times and CPU
usage are measured) → ``actuate`` (power accounting under the
frequencies in effect) → ``control`` (sensor-fault filtering, the
``PowerManager`` control step: controllers → arbitrators → allocations
pushed into the plants).

The phase bodies are the legacy loop body, split — not rewritten — so a
kernel-driven run is bit-identical to the pre-kernel harness (pinned by
golden hashes in ``tests/test_engine.py`` / ``tests/test_perf_fastpath.py``).

Checkpoint / resume
-------------------
The plant is a discrete-event simulation with in-flight request
processes — state that has no JSON form.  The backend therefore declares
``resume_strategy = "replay"``: :meth:`ControlPlane.restore` re-executes
the prefix with telemetry muted (bit-identical computation, no emission)
and then calls :meth:`TestbedBackend.load_state_dict`, which *verifies*
the replayed controller state, placement, server state, and fault cursor
against the checkpoint instead of assigning them.
"""

from __future__ import annotations

import json
import logging
from typing import Any, Dict, List, Mapping, Optional

from repro.engine.kernel import CheckpointError, ControlPlane, PeriodContext, Phase
from repro.faults import FaultInjector
from repro.obs import get_telemetry
from repro.obs.attribution import EnergyAttributor
from repro.sim.metrics import SeriesRecorder
from repro.util.rng import RngLike

if False:  # typing-only import without a cycle at runtime
    from repro.sim.testbed import TestbedConfig, TestbedExperiment, TestbedResult

__all__ = ["TestbedBackend", "build_testbed_engine"]

logger = logging.getLogger(__name__)


class TestbedBackend:
    """DES testbed plant + its control-plane phases."""

    resume_strategy = "replay"

    def __init__(self, experiment: "TestbedExperiment", rng: RngLike = None):
        from repro.apps.workload import ConstantWorkload

        self.experiment = experiment
        cfg = self.config = experiment.config
        self.dc, self.manager, self.plants = experiment.build(rng)
        self.recorder = SeriesRecorder()
        self.workloads = {
            i: cfg.workloads.get(i, ConstantWorkload(cfg.concurrency))
            for i in range(cfg.n_apps)
        }
        self.evacuated_vms: set = set()
        self.injector: Optional[FaultInjector] = None
        if cfg.faults:
            def _on_evacuate(server_id: str, vm_ids: List[str], t: float) -> None:
                self.evacuated_vms.update(vm_ids)
                self.manager.emergency_evacuate(server_id, vm_ids, time_s=t)

            self.injector = FaultInjector(
                self.dc, cfg.faults, on_evacuate=_on_evacuate
            )
        self.optimize_times = sorted(float(t) for t in cfg.optimize_at_s)
        self._tracing = cfg.trace_requests_every >= 1
        if self._tracing:
            for i, plant in enumerate(self.plants):
                plant.enable_request_tracing(
                    cfg.trace_requests_every, app=f"app{i}"
                )
        self.attributor: Optional[EnergyAttributor] = (
            EnergyAttributor() if cfg.attribute_power else None
        )
        self._started = False

    # -- engine wiring -------------------------------------------------

    @property
    def n_periods(self) -> int:
        return int(round(self.config.duration_s / self.config.control_period_s))

    @property
    def period_s(self) -> float:
        return float(self.config.control_period_s)

    def phases(self) -> List[Phase]:
        """The per-period pipeline, in legacy-loop order."""
        return [
            Phase("faults", self.inject),
            Phase("optimize", self.maybe_optimize),
            Phase("sense", self.sense),
            Phase("actuate", self.actuate),
            Phase("control", self.control),
        ]

    def start(self) -> None:
        """Run-header event + plant warmup; call once, before stepping."""
        if self._started:
            return
        self._started = True
        cfg = self.config
        tel = get_telemetry()
        logger.info(
            "testbed run: %d apps on %d servers, %.0fs at %.0fs periods, "
            "setpoint %.0f ms, %s control",
            cfg.n_apps, cfg.n_servers, cfg.duration_s, cfg.control_period_s,
            cfg.setpoint_ms, cfg.control_mode,
        )
        tel.event(
            "run_config",
            harness="testbed",
            n_apps=cfg.n_apps,
            n_servers=cfg.n_servers,
            duration_s=cfg.duration_s,
            control_period_s=cfg.control_period_s,
            setpoint_ms=cfg.setpoint_ms,
            controlled=cfg.controlled,
            seed=cfg.seed,
        )
        for plant in self.plants:
            plant.warmup(cfg.warmup_s)
            plant.drain_traces()  # warmup requests are not part of the run

    def prepare_replay(self) -> None:
        """Replay-resume hook: the warmup is part of the replayed prefix."""
        self.start()

    # -- phase bodies (split from the legacy loop, order preserved) ----

    def inject(self, ctx: PeriodContext) -> None:
        """Fault transitions due this period (crashes trigger the
        manager's emergency evacuation inside the step)."""
        if self.injector is not None:
            self.injector.step(ctx.time_s)
            self.experiment._sync_plant_faults(
                self.dc, self.plants, self.evacuated_vms
            )

    def maybe_optimize(self, ctx: PeriodContext) -> None:
        """Long-time-scale optimizer invocations (integrated mode)."""
        now = ctx.time_s
        while self.optimize_times and self.optimize_times[0] <= now:
            self.optimize_times.pop(0)
            plan = self.manager.optimize(time_s=now)
            self.recorder.record("optimizer/moves", now, plan.n_moves)
            self.recorder.record(
                "optimizer/active_servers", now, len(self.dc.active_servers())
            )

    def sense(self, ctx: PeriodContext) -> None:
        """Workload levels take effect, then plants run one period and
        report measured response times and per-tier CPU usage."""
        cfg = self.config
        now = ctx.time_s
        for i, plant in enumerate(self.plants):
            level = self.workloads[i].level(now)
            if level != plant.concurrency:
                plant.set_concurrency(level)
        used_by_server: Dict[str, float] = {s: 0.0 for s in self.dc.servers}
        hosted: Dict[str, list] = {s: [] for s in self.dc.servers}
        tel = get_telemetry()
        for i, plant in enumerate(self.plants):
            stats = plant.run_period(cfg.control_period_s)
            measurement = stats.metric(cfg.sla_metric)
            ctx.measurements[f"app{i}"] = measurement
            self.recorder.record(f"rt/app{i}", now, measurement)
            used = plant.used_ghz(cfg.control_period_s)
            ctx.usages[f"app{i}"] = used
            app = self.dc.applications[f"app{i}"]
            for j, vm_id in enumerate(app.vm_ids):
                sid = self.dc.server_of(vm_id)
                if sid is not None:  # evicted-and-unplaced VMs burn nothing
                    used_by_server[sid] += float(used[j])
                    hosted[sid].append(
                        (f"app{i}", plant.spec.tiers[j].name, float(used[j]))
                    )
            if self._tracing:
                # Drain even when telemetry is off (bounds the buffer).
                for trace in plant.drain_traces():
                    tel.event("request_trace", time_s=now, **trace.to_event())
        ctx.data["used_by_server"] = used_by_server
        ctx.data["hosted_tiers"] = hosted

    def actuate(self, ctx: PeriodContext) -> None:
        """Power with the frequencies in effect during this period."""
        now = ctx.time_s
        used_by_server = ctx.data["used_by_server"]
        power_by_server = {
            sid: server.power_w(used_by_server[sid])
            for sid, server in self.dc.servers.items()
        }
        total_power = sum(power_by_server.values())
        self.recorder.record("power/total", now, total_power)
        for sid, server in self.dc.servers.items():
            self.recorder.record(f"freq/{sid}", now, server.freq_ghz)
        get_telemetry().event(
            "testbed.period",
            time_s=now,
            power_w=total_power,
            active_servers=len(self.dc.active_servers()),
        )
        if self.attributor is not None:
            per_app = self.attributor.attribute(
                self.config.control_period_s,
                power_by_server,
                ctx.data["hosted_tiers"],
            )
            get_telemetry().event(
                "power_attribution", time_s=now, per_app_wh=per_app
            )

    def control(self, ctx: PeriodContext) -> None:
        """Controllers + arbitrators set next period's allocations."""
        cfg = self.config
        now = ctx.time_s
        measurements = ctx.measurements
        if self.injector is not None:
            measurements = self.injector.filter_measurements(measurements)
        if cfg.controlled:
            step = self.manager.control_step(
                measurements, used_ghz=ctx.usages, time_s=now
            )
            for i in range(cfg.n_apps):
                granted = step.granted_ghz[f"app{i}"]
                for j in range(2):
                    self.recorder.record(f"alloc/app{i}/tier{j}", now, granted[j])

    # -- results -------------------------------------------------------

    def result(self) -> "TestbedResult":
        """Final recorded series (call after the engine finished)."""
        from repro.sim.testbed import TestbedResult

        logger.info(
            "testbed run complete: %d periods, mean power %.1f W",
            self.n_periods, self.recorder.summary("power/total")["mean"],
        )
        attribution = None
        if self.attributor is not None:
            attribution = self.attributor.summary()
            get_telemetry().event("attribution_summary", attribution=attribution)
        hybrid = None
        if self.config.plant_mode == "hybrid":
            hybrid = {
                f"app{i}": plant.summary() for i, plant in enumerate(self.plants)
            }
        return TestbedResult(
            recorder=self.recorder,
            model=self.experiment._shared_model,
            sysid_r2=self.experiment._sysid_r2,
            attribution=attribution,
            hybrid=hybrid,
        )

    # -- checkpointing (replay verification) ---------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Snapshot of the *verifiable* state at a period boundary.

        The DES plants' in-flight state is deliberately absent (it has
        no JSON form); resume re-derives it by deterministic replay and
        this snapshot is what :meth:`load_state_dict` checks the replay
        against: VM placement, server power state, the fault cursor, and
        every controller's full control state.
        """
        state: Dict[str, Any] = {
            "placement": {
                vm_id: self.dc.server_of(vm_id) for vm_id in sorted(self.dc.vms)
            },
            "servers": {
                sid: {
                    "active": srv.active,
                    "failed": srv.failed,
                    "freq_ghz": float(srv.freq_ghz),
                    "capacity_fraction": float(srv.capacity_fraction),
                }
                for sid, srv in sorted(self.dc.servers.items())
            },
            "controllers": {
                app_id: ctl.state_dict()
                for app_id, ctl in sorted(self.manager.controllers.items())
            },
            "optimize_times": list(self.optimize_times),
            "evacuated_vms": sorted(self.evacuated_vms),
        }
        if self.injector is not None:
            state["fault_cursor"] = self.injector.timeline.state_dict()
        return state

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Verify the replayed state matches the checkpoint.

        Replay already rebuilt the state by re-execution; a mismatch
        means the resumed run was built with a different config, model,
        or seed than the one the checkpoint came from.
        """
        current = json.loads(json.dumps(self.state_dict(), sort_keys=True))
        expected = json.loads(json.dumps(dict(state), sort_keys=True))
        if current != expected:
            bad = sorted(
                key
                for key in set(current) | set(expected)
                if current.get(key) != expected.get(key)
            )
            raise CheckpointError(
                "replayed testbed state does not match the checkpoint in "
                f"{bad}; resume with the run's original config, model, and seed"
            )


def build_testbed_engine(
    config: "Optional[TestbedConfig]" = None,
    model: Any = None,
    rng: RngLike = None,
    experiment: "Optional[TestbedExperiment]" = None,
) -> "tuple[ControlPlane, TestbedBackend]":
    """Build the kernel + backend pair for one testbed run.

    Call ``backend.start()`` (run-config event + plant warmup) before
    ``engine.run()``; skip it when restoring — replay resume triggers
    it, muted, through :meth:`TestbedBackend.prepare_replay`.  Pass
    ``experiment`` to reuse an existing :class:`TestbedExperiment` (and
    its cached identified model) instead of ``config``/``model``.
    """
    from repro.sim.testbed import TestbedExperiment

    if experiment is None:
        experiment = TestbedExperiment(config, model)
    backend = TestbedBackend(experiment, rng=rng)
    engine = ControlPlane(
        period_s=backend.period_s,
        n_periods=backend.n_periods,
        phases=backend.phases(),
        checkpointables={"plant": backend},
        name="testbed",
    )
    return engine, backend
