"""Sharded large-scale backend: N pods behind one control plane.

The datacenter partitions into *pods* — contiguous slices of the global
VM population and server pool — and each pod is a complete
:class:`~repro.engine.largescale_backend.LargeScaleBackend` advancing
its own phase pipeline.  The parent :class:`ShardedBackend` composes the
pods behind the standard :class:`~repro.engine.kernel.ControlPlane`
phases:

``optimize``
    Fan every pod forward to the next sync barrier
    (``sync_every_steps`` trace steps).  With ``workers >= 2`` the pods
    advance concurrently in a process pool (stdlib multiprocessing,
    state moved with the checkpoint codecs); with ``workers == 1`` they
    advance inline — the single-process reference arm.
``arbitrate``
    Reconcile the global ledgers: per-step datacenter power and active
    server counts are the sums of the pod slices.
``telemetry``
    Re-emit the pods' buffered telemetry into the parent's backend, in
    pod order.  Event records are re-emitted verbatim (the golden
    event-log hash covers them); span records gain a ``pod`` field for
    per-shard phase profiling.

Determinism contract
--------------------
* ``n_pods=1`` is **bit-identical** to the plain single-process
  backend: the parent draws the global VM population and server pool
  exactly as :class:`LargeScaleBackend` would and injects the (whole)
  slice, so the pod performs the same computation in the same order and
  emits the same event records.
* The worker pool is **worker-count invariant**: pods are deterministic
  and their telemetry is buffered per pod and re-emitted in pod order,
  so ``workers=1`` (inline) and ``workers=N`` (pooled) produce the same
  event stream and the same result — the pool only changes wall-clock.
* With ``n_pods >= 2`` the run is equivalent to running each pod's
  slice through a plain single-process backend (same seeds, same
  filtered fault schedule) and merging: identical event records per
  pod, identical ``vm_energy_wh`` ledgers, identical power series sums.
  It is *not* identical to a 1-pod run of the whole datacenter — the
  global optimizer may pack across pod boundaries; partitioning is a
  modelling choice, not an approximation.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import traceback
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.catalog import STANDARD_SERVER_TYPES, make_server_pool
from repro.cluster.server import Server
from repro.engine.checkpoint import decode_array, encode_array, require_fields
from repro.engine.kernel import CheckpointError, ControlPlane, PeriodContext, Phase
from repro.engine.largescale_backend import LargeScaleBackend
from repro.faults import FaultSchedule
from repro.obs import InMemoryBackend, Telemetry, get_telemetry, use_telemetry
from repro.traces.trace import UtilizationTrace
from repro.util.rng import ensure_rng

__all__ = [
    "ShardedConfig",
    "PodSpec",
    "ShardedBackend",
    "build_sharded_engine",
    "partition_pods",
    "run_sharded",
]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ShardedConfig:
    """Parameters of one sharded run.

    ``base`` describes the *whole* datacenter (total VMs, total
    servers); pods receive contiguous slices of it.  ``n_pods`` is the
    partition arity, ``workers`` the process-pool width (``1`` =
    inline, no subprocesses; capped at ``n_pods``), and
    ``sync_every_steps`` how many trace steps each pod advances between
    parent sync barriers (the fan-out granularity — larger batches
    amortize IPC, smaller ones tighten the global ledgers' cadence).
    """

    base: Any  # LargeScaleConfig; Any avoids an import cycle at runtime
    n_pods: int = 2
    workers: int = 1
    sync_every_steps: int = 16

    def __post_init__(self):
        if self.n_pods < 1:
            raise ValueError(f"n_pods must be >= 1, got {self.n_pods}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.sync_every_steps < 1:
            raise ValueError(
                f"sync_every_steps must be >= 1, got {self.sync_every_steps}"
            )
        if self.n_pods > self.base.n_vms:
            raise ValueError(
                f"n_pods={self.n_pods} exceeds n_vms={self.base.n_vms}"
            )
        if self.n_pods > self.base.n_servers:
            raise ValueError(
                f"n_pods={self.n_pods} exceeds n_servers={self.base.n_servers}"
            )


@dataclass
class PodSpec:
    """Everything needed to build one pod's backend, picklable.

    The parent draws the global VM population and server pool once —
    exactly as a single-process build would — and each spec carries the
    pod's contiguous slice plus its restriction of the fault schedule.
    """

    pod_id: int
    config: Any  # the pod's LargeScaleConfig (n_vms/n_servers resized)
    trace: UtilizationTrace
    servers: List[Server]
    vm_peaks: np.ndarray
    vm_memories: np.ndarray
    vm_id_start: int


def _split_ranges(total: int, parts: int) -> List[Tuple[int, int]]:
    """Contiguous near-equal [lo, hi) ranges covering ``range(total)``."""
    q, r = divmod(total, parts)
    ranges = []
    lo = 0
    for p in range(parts):
        hi = lo + q + (1 if p < r else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def _filter_faults(
    schedule: Optional[FaultSchedule], server_ids: Sequence[str]
) -> Optional[FaultSchedule]:
    """Restrict a schedule to one pod's servers.

    Untargeted events (``target is None`` — e.g. global migration
    failures) apply in every pod; targeted events follow their server.
    ``None`` stays ``None`` so the pod keeps the fault-free fast lane.
    """
    if schedule is None:
        return None
    ids = set(server_ids)
    kept = tuple(
        ev for ev in schedule.events if ev.target is None or ev.target in ids
    )
    return FaultSchedule(events=kept, seed=schedule.seed)


def partition_pods(trace: UtilizationTrace, config: ShardedConfig) -> List[PodSpec]:
    """Draw the global population and slice it into pod specs.

    The draws replicate :class:`LargeScaleBackend`'s construction order
    on the *global* config (peaks, then memories, from
    ``ensure_rng(seed)``; the server pool from ``default_rng(seed+1)``),
    so a 1-pod partition hands the pod byte-identical inputs to a plain
    single-process build.
    """
    base = config.base
    if base.n_vms > trace.n_series:
        raise ValueError(
            f"trace has {trace.n_series} series < n_vms={base.n_vms}"
        )
    generator = ensure_rng(base.seed)
    peaks = generator.uniform(*base.vm_peak_range_ghz, size=base.n_vms)
    memories = generator.choice(
        np.asarray(base.vm_memory_choices_mb, dtype=float), size=base.n_vms
    )
    pool = make_server_pool(
        base.n_servers,
        STANDARD_SERVER_TYPES,
        rng=np.random.default_rng(base.seed + 1),
        type_weights=base.type_weights,
    )
    vm_ranges = _split_ranges(base.n_vms, config.n_pods)
    srv_ranges = _split_ranges(base.n_servers, config.n_pods)
    specs: List[PodSpec] = []
    for p in range(config.n_pods):
        vlo, vhi = vm_ranges[p]
        slo, shi = srv_ranges[p]
        servers = pool[slo:shi]
        pod_config = replace(
            base,
            n_vms=vhi - vlo,
            n_servers=shi - slo,
            faults=_filter_faults(base.faults, [s.server_id for s in servers]),
        )
        specs.append(
            PodSpec(
                pod_id=p,
                config=pod_config,
                trace=UtilizationTrace(
                    trace.utilization[vlo:vhi].copy(), trace.interval_s
                ),
                servers=servers,
                vm_peaks=peaks[vlo:vhi].copy(),
                vm_memories=memories[vlo:vhi].copy(),
                vm_id_start=vlo,
            )
        )
    return specs


# ------------------------------------------------------------- pods --


class _Pod:
    """One pod: its engine, backend, and telemetry buffer."""

    def __init__(self, spec: PodSpec, tel_enabled: bool, span_sample_every: int):
        self.spec = spec
        self.backend = LargeScaleBackend(
            spec.trace,
            spec.config,
            servers=spec.servers,
            vm_peaks=spec.vm_peaks,
            vm_memories=spec.vm_memories,
            vm_id_start=spec.vm_id_start,
        )
        self.engine = ControlPlane(
            period_s=self.backend.period_s,
            n_periods=self.backend.n_periods,
            phases=self.backend.phases(),
            checkpointables={"plant": self.backend},
            name="largescale",
        )
        # Pod telemetry is never closed: a close() would append a
        # metrics record that the plain single-process run does not
        # emit at this point in the stream.
        self.tel = (
            Telemetry(InMemoryBackend(), span_sample_every=span_sample_every)
            if tel_enabled
            else Telemetry()
        )

    def drain_records(self) -> List[Dict[str, Any]]:
        if not self.tel.enabled:
            return []
        backend = self.tel.backend
        records = list(backend.records)
        backend.clear()
        return records

    def start(self) -> List[Dict[str, Any]]:
        with use_telemetry(self.tel, close=False):
            self.backend.emit_run_config()
        return self.drain_records()

    def advance(self, until_step: int) -> Tuple[List[Dict[str, Any]], np.ndarray, np.ndarray]:
        lo = self.engine.k
        with use_telemetry(self.tel, close=False):
            self.engine.run(until_period=until_step)
        hi = self.engine.k
        return (
            self.drain_records(),
            self.backend.power_series[lo:hi].copy(),
            self.backend.active_series[lo:hi].copy(),
        )

    def result(self) -> Tuple[Any, List[Dict[str, Any]]]:
        with use_telemetry(self.tel, close=False):
            res = self.backend.result()
        return res, self.drain_records()


def _pod_worker_main(
    conn: Any,
    specs: List[PodSpec],
    tel_enabled: bool,
    span_sample_every: int,
) -> None:
    """Worker process loop: build the assigned pods, serve commands.

    Protocol: ``(cmd, payload)`` in, ``("ok", payload)`` or
    ``("error", traceback_str)`` out.  Payloads for ``advance``/
    ``start``/``result`` are lists of ``(pod_id, ...)`` tuples so the
    parent can re-emit telemetry in global pod order.
    """
    pods = [_Pod(spec, tel_enabled, span_sample_every) for spec in specs]
    try:
        while True:
            cmd, payload = conn.recv()
            try:
                if cmd == "start":
                    out = [(pod.spec.pod_id, pod.start()) for pod in pods]
                elif cmd == "advance":
                    out = [
                        (pod.spec.pod_id,) + pod.advance(int(payload))
                        for pod in pods
                    ]
                elif cmd == "state":
                    out = [
                        (pod.spec.pod_id, pod.backend.state_dict())
                        for pod in pods
                    ]
                elif cmd == "load":
                    for pod in pods:
                        state, cursor = payload[pod.spec.pod_id]
                        pod.backend.load_state_dict(state)
                        pod.engine.k = int(cursor)
                    out = []
                elif cmd == "result":
                    out = [
                        (pod.spec.pod_id,) + pod.result() for pod in pods
                    ]
                elif cmd == "stop":
                    conn.send(("ok", None))
                    break
                else:
                    raise ValueError(f"unknown pod-worker command {cmd!r}")
                conn.send(("ok", out))
            except Exception:
                conn.send(("error", traceback.format_exc()))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        conn.close()


# ---------------------------------------------------------- backend --


class ShardedBackend:
    """N pod backends behind one arbitrate/optimize control plane."""

    resume_strategy = "state"

    def __init__(self, trace: UtilizationTrace, config: ShardedConfig):
        self.config = config
        self.specs = partition_pods(trace, config)
        self.n_vms = config.base.n_vms
        self.n_srv = config.base.n_servers
        self.workers = min(config.workers, config.n_pods)

        probe = self.specs[0]
        self.n_steps = probe.trace.n_samples
        self.dt_s = float(probe.trace.interval_s)
        self.sync = min(config.sync_every_steps, self.n_steps)

        self.steps_done = 0
        self.power_series = np.zeros(self.n_steps)
        self.active_series = np.zeros(self.n_steps, dtype=int)

        # Telemetry state is read lazily at first pod construction, not
        # here: callers (the repro-sim CLI, the service runner) build
        # the engine first and enter their telemetry scope afterwards,
        # and a snapshot taken now would run every pod dark.
        self._tel_params: Optional[Tuple[bool, int]] = None
        self._pods: List[_Pod] = []
        self._procs: List[Any] = []
        self._conns: List[Any] = []
        self._pool_started = False
        self._closed = False

    # -- engine wiring -------------------------------------------------

    @property
    def n_periods(self) -> int:
        return -(-self.n_steps // self.sync)

    @property
    def period_s(self) -> float:
        return self.sync * self.dt_s

    def phases(self) -> List[Phase]:
        return [
            Phase("optimize", self.advance_pods),
            Phase("arbitrate", self.arbitrate),
            Phase("telemetry", self.flush_telemetry),
        ]

    # -- worker pool ---------------------------------------------------

    def _telemetry_params(self) -> Tuple[bool, int]:
        """Pod telemetry settings, captured once at first pod build."""
        if self._tel_params is None:
            tel = get_telemetry()
            self._tel_params = (
                tel.enabled,
                tel.tracer.sample_every if tel.enabled else 1,
            )
        return self._tel_params

    def _ensure_pods(self) -> None:
        """Build the inline pods on first use (no-op in pooled mode)."""
        if self.workers != 1 or self._pods:
            return
        tel_enabled, sample_every = self._telemetry_params()
        self._pods = [
            _Pod(spec, tel_enabled, sample_every) for spec in self.specs
        ]

    def _ensure_pool(self) -> None:
        if self.workers == 1 or self._pool_started:
            return
        if self._closed:
            raise RuntimeError(
                "sharded backend is closed; worker state is gone"
            )
        tel_enabled, sample_every = self._telemetry_params()
        ctx = mp.get_context()
        assignments: List[List[PodSpec]] = [[] for _ in range(self.workers)]
        for spec in self.specs:
            assignments[spec.pod_id % self.workers].append(spec)
        for w in range(self.workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_pod_worker_main,
                args=(
                    child_conn,
                    assignments[w],
                    tel_enabled,
                    sample_every,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        self._pool_started = True
        logger.info(
            "sharded pool up: %d pods on %d workers", len(self.specs), self.workers
        )

    def _broadcast(self, cmd: str, payload: Any = None) -> List[Any]:
        """Send *cmd* to every worker, then collect every reply.

        Sends complete before any receive so the workers run
        concurrently; replies are flattened and ordered by pod id.
        """
        self._ensure_pool()
        for conn in self._conns:
            conn.send((cmd, payload))
        merged: List[Any] = []
        for conn in self._conns:
            status, out = conn.recv()
            if status == "error":
                self.close()
                raise RuntimeError(f"sharded pod worker failed:\n{out}")
            if out:
                merged.extend(out)
        merged.sort(key=lambda item: item[0])
        return merged

    def close(self) -> None:
        """Shut the worker pool down (idempotent; inline mode is a no-op)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop", None))
            except (OSError, ValueError):
                pass
        for proc, conn in zip(self._procs, self._conns):
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
            try:
                conn.close()
            except OSError:
                pass
        self._procs = []
        self._conns = []
        self._pool_started = False

    def __del__(self):  # best-effort: never leak worker processes
        try:
            self.close()
        except Exception:
            pass

    # -- phase bodies --------------------------------------------------

    def start(self) -> None:
        """Begin-run hook: every pod's run header, re-emitted in order."""
        logger.info(
            "sharded run: %d VMs / %d servers in %d pods (%d workers), "
            "%d steps of %.0fs, sync every %d",
            self.n_vms, self.n_srv, self.config.n_pods, self.workers,
            self.n_steps, self.dt_s, self.sync,
        )
        if self.workers == 1:
            self._ensure_pods()
            payloads = [(pod.spec.pod_id, pod.start()) for pod in self._pods]
        else:
            payloads = self._broadcast("start")
        self._reemit([records for _, records in payloads])

    def advance_pods(self, ctx: PeriodContext) -> None:
        """Fan every pod forward to this period's sync barrier."""
        until = min((ctx.k + 1) * self.sync, self.n_steps)
        if self.workers == 1:
            self._ensure_pods()
            out = [
                (pod.spec.pod_id,) + pod.advance(until) for pod in self._pods
            ]
        else:
            out = self._broadcast("advance", until)
        ctx.data["pod_records"] = [records for _, records, _, _ in out]
        ctx.data["pod_power"] = [power for _, _, power, _ in out]
        ctx.data["pod_active"] = [active for _, _, _, active in out]
        ctx.data["until"] = until

    def arbitrate(self, ctx: PeriodContext) -> None:
        """Global ledgers: sum the pod slices into the parent series."""
        lo, hi = self.steps_done, ctx.data["until"]
        power = np.zeros(hi - lo)
        active = np.zeros(hi - lo, dtype=int)
        for pod_power, pod_active in zip(
            ctx.data["pod_power"], ctx.data["pod_active"]
        ):
            power += pod_power
            active += pod_active
        self.power_series[lo:hi] = power
        self.active_series[lo:hi] = active
        self.steps_done = hi

    def flush_telemetry(self, ctx: PeriodContext) -> None:
        """Re-emit the pods' buffered records into the parent backend."""
        self._reemit(ctx.data["pod_records"])

    def _reemit(self, per_pod_records: List[List[Dict[str, Any]]]) -> None:
        tel = get_telemetry()
        if not tel.enabled:
            return
        for pod_id, records in enumerate(per_pod_records):
            for record in records:
                if record.get("kind") == "span":
                    # Annotation only — spans are excluded from golden
                    # event-log hashes; event records go out verbatim.
                    record = dict(record, pod=pod_id)
                tel.backend.emit(record)

    # -- results -------------------------------------------------------

    def result(self) -> Any:
        """Merge the pod results into one datacenter-level result."""
        from repro.sim.largescale import LargeScaleResult

        if self.workers == 1:
            self._ensure_pods()
            merged = [(pod.spec.pod_id,) + pod.result() for pod in self._pods]
        else:
            merged = self._broadcast("result")
        self._reemit([records for _, _, records in merged])
        results = [res for _, res, _ in merged]

        total_energy = sum(r.total_energy_wh for r in results)
        info: Dict[str, float] = {
            "n_pods": float(self.config.n_pods),
            "workers": float(self.workers),
            "sync_every_steps": float(self.sync),
            "dvfs": float(self.config.base.dvfs_enabled),
            "relief_moves": sum(r.info.get("relief_moves", 0.0) for r in results),
            "migration_energy_wh": sum(
                r.info.get("migration_energy_wh", 0.0) for r in results
            ),
        }
        attribution = None
        if all(r.attribution is not None for r in results):
            attribution = self._merge_attribution(results)
        return LargeScaleResult(
            scheme=self.config.base.scheme,
            n_vms=self.n_vms,
            n_steps=self.n_steps,
            step_s=self.dt_s,
            total_energy_wh=total_energy,
            energy_per_vm_wh=total_energy / self.n_vms,
            migrations=sum(r.migrations for r in results),
            mean_active_servers=float(self.active_series.mean()),
            max_active_servers=int(self.active_series.max()),
            overload_server_steps=sum(r.overload_server_steps for r in results),
            unplaced_vm_steps=sum(r.unplaced_vm_steps for r in results),
            power_series_w=self.power_series,
            active_series=self.active_series,
            info=info,
            attribution=attribution,
        )

    def _merge_attribution(self, results: List[Any]) -> Dict[str, Any]:
        """Datacenter-level attribution from the per-pod summaries.

        Each pod already reconciled its ledger against its own total;
        the merge re-derives the global reconciliation error and the
        global top consumers from the pod summaries (pods report their
        own top-10, which covers any global top-10 member).
        """
        total = sum(r.attribution["total_wh"] for r in results)
        attributed = sum(r.attribution["attributed_wh"] for r in results)
        error = abs(attributed - total) / abs(total) if total else 0.0
        top = sorted(
            (entry for r in results for entry in r.attribution["top_vms"]),
            key=lambda e: -e["energy_wh"],
        )[:10]
        return {
            "n_periods": self.n_steps,
            "total_wh": total,
            "attributed_wh": attributed,
            "unattributed_wh": 0.0,
            "reconciliation_error": error,
            "migration_energy_wh": sum(
                r.attribution["migration_energy_wh"] for r in results
            ),
            "vm_mean_wh": attributed / self.n_vms,
            "vm_max_wh": max(r.attribution["vm_max_wh"] for r in results),
            "top_vms": top,
            "per_pod": [
                {
                    "pod": p,
                    "total_wh": r.attribution["total_wh"],
                    "reconciliation_error": r.attribution["reconciliation_error"],
                }
                for p, r in enumerate(results)
            ],
        }

    def vm_energy_ledger(self) -> Optional[np.ndarray]:
        """Global per-VM energy (pod ledgers concatenated in pod order).

        ``None`` unless the base config set ``attribute_power``.  In
        pooled mode this snapshots the ledgers through the checkpoint
        codecs, so call it after the run (it is not a hot path).
        """
        if not self.config.base.attribute_power:
            return None
        if self.workers == 1:
            self._ensure_pods()
            parts = [pod.backend.vm_energy_wh for pod in self._pods]
        else:
            parts = [
                decode_array(state["vm_energy_wh"])
                for _, state in self._broadcast("state")
            ]
        return np.concatenate(parts)

    # -- checkpointing -------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        power_snap = np.where(
            np.isfinite(self.power_series), self.power_series, 0.0
        )
        if self.workers == 1:
            self._ensure_pods()
            pod_states = [pod.backend.state_dict() for pod in self._pods]
        else:
            pod_states = [state for _, state in self._broadcast("state")]
        return {
            "steps_done": self.steps_done,
            "n_pods": self.config.n_pods,
            "power_series": encode_array(power_snap),
            "active_series": encode_array(self.active_series),
            "pods": pod_states,
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        require_fields(
            state,
            ["steps_done", "n_pods", "power_series", "active_series", "pods"],
            "sharded backend",
        )
        if int(state["n_pods"]) != self.config.n_pods:
            raise CheckpointError(
                f"checkpoint has {state['n_pods']} pods, this run has "
                f"{self.config.n_pods}: resume with the same partition"
            )
        if len(state["pods"]) != self.config.n_pods:
            raise CheckpointError(
                f"checkpoint carries {len(state['pods'])} pod states for "
                f"{self.config.n_pods} pods"
            )
        self.steps_done = int(state["steps_done"])
        self.power_series = decode_array(state["power_series"])
        self.active_series = decode_array(state["active_series"])
        if self.workers == 1:
            self._ensure_pods()
            for pod, pod_state in zip(self._pods, state["pods"]):
                pod.backend.load_state_dict(pod_state)
                pod.engine.k = self.steps_done
        else:
            payload = {
                p: (pod_state, self.steps_done)
                for p, pod_state in enumerate(state["pods"])
            }
            self._broadcast("load", payload)


def build_sharded_engine(
    trace: UtilizationTrace, config: ShardedConfig
) -> "tuple[ControlPlane, ShardedBackend]":
    """Build the kernel + sharded backend pair for one run."""
    backend = ShardedBackend(trace, config)
    engine = ControlPlane(
        period_s=backend.period_s,
        n_periods=backend.n_periods,
        phases=backend.phases(),
        checkpointables={"plant": backend},
        name="sharded-largescale",
    )
    return engine, backend


def run_sharded(trace: UtilizationTrace, config: ShardedConfig) -> Any:
    """Run one sharded configuration to completion; returns the merged
    :class:`~repro.sim.largescale.LargeScaleResult`.  The worker pool
    (if any) is shut down before returning."""
    engine, backend = build_sharded_engine(trace, config)
    try:
        backend.start()
        engine.run()
        return backend.result()
    finally:
        backend.close()
