"""The unified control-plane kernel.

One :class:`ControlPlane` engine drives every harness in the repository:
the simulated hardware testbed (:mod:`repro.sim.testbed`), the
trace-driven large-scale simulation (:mod:`repro.sim.largescale`), and
any scenario registered with :mod:`repro.engine.scenario`.  A backend
contributes an ordered list of named :class:`Phase` objects — sensing,
sysid, control, arbitration, optimizer epochs, actuation, fault
injection, telemetry flush — and the kernel advances them period by
period, owning the clock, the run loop, and checkpoint/resume.

Determinism contract
--------------------
The kernel adds **no** stochasticity, and the only telemetry it emits
of its own is *profiling spans*: with telemetry enabled, every phase of
every period runs inside a ``phase.<name>`` span annotated with CPU
time and allocation deltas (``repro-obs profile`` aggregates them).
Span records are excluded from the golden event-log hashes, so a
kernel-driven run still hashes byte-identical to the legacy hand-wired
loops it replaced (pinned in ``tests/test_engine.py`` and
``tests/test_perf_fastpath.py``); with telemetry disabled the loop is
the bare ``phase.run(ctx)`` — no clock reads, no allocation.

Checkpoint / resume
-------------------
``checkpoint()`` serializes the kernel cursor plus the
:class:`~repro.engine.interfaces.Checkpointable` state of every
registered component to a JSON-safe document; ``restore()`` loads one
into a freshly built engine.  Backends whose full state is
serializable (the large-scale array plant) resume directly;
backends with non-serializable internals (the request-level DES plant)
declare ``resume_strategy = "replay"`` and are fast-forwarded by
deterministic re-execution with telemetry muted — either way a resumed
run finishes bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.engine.interfaces import Checkpointable, EnginePhase
from repro.obs import get_telemetry
from repro.util.validation import check_positive

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointError",
    "ControlPlane",
    "PeriodContext",
    "Phase",
]

logger = logging.getLogger(__name__)

#: Version tag written into every checkpoint document.
CHECKPOINT_SCHEMA = 1

#: Canonical phase vocabulary, in the order the paper's two-level
#: architecture composes them.  Backends may use a subset and may
#: reorder (e.g. fault transitions land before sensing in both
#: simulated harnesses because a crashed server cannot be measured),
#: but every phase name must come from this set so scenario tooling and
#: docs can describe any engine uniformly.
PHASE_NAMES: Tuple[str, ...] = (
    "faults",
    "sense",
    "sysid",
    "control",
    "arbitrate",
    "optimize",
    "actuate",
    "telemetry",
)


class CheckpointError(ValueError):
    """A checkpoint document is malformed or incompatible."""


@dataclass
class PeriodContext:
    """Mutable per-period scratch state threaded through the phases.

    ``measurements`` / ``usages`` are filled by the sensing phase and
    consumed by control; ``data`` is backend-private scratch (e.g. the
    large-scale plant parks the period's demand vector there).
    """

    k: int
    time_s: float
    period_s: float
    measurements: Dict[str, float] = field(default_factory=dict)
    usages: Dict[str, Any] = field(default_factory=dict)
    data: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Phase:
    """One named step of the per-period pipeline."""

    name: str
    run: EnginePhase

    def __post_init__(self):
        if self.name not in PHASE_NAMES:
            raise ValueError(
                f"unknown phase name {self.name!r}; must be one of {PHASE_NAMES}"
            )
        if not callable(self.run):
            raise TypeError(f"phase {self.name!r} is not callable")


class ControlPlane:
    """The engine: a clock, an ordered phase pipeline, and a cursor.

    Parameters
    ----------
    period_s:
        Control-period length (simulated seconds).
    n_periods:
        Total periods in the run.
    phases:
        Ordered :class:`Phase` pipeline executed once per period.
    checkpointables:
        Named components implementing
        :class:`~repro.engine.interfaces.Checkpointable` whose state is
        captured by :meth:`checkpoint` and restored by :meth:`restore`.
    name:
        Engine label used in checkpoints and logs; restore refuses a
        checkpoint taken from a differently named engine.
    """

    def __init__(
        self,
        period_s: float,
        n_periods: int,
        phases: Iterable[Phase],
        checkpointables: Optional[Mapping[str, Checkpointable]] = None,
        name: str = "engine",
    ):
        check_positive("period_s", period_s)
        if n_periods < 0:
            raise ValueError(f"n_periods must be >= 0, got {n_periods}")
        self.period_s = float(period_s)
        self.n_periods = int(n_periods)
        self.phases: List[Phase] = list(phases)
        if not self.phases:
            raise ValueError("an engine needs at least one phase")
        seen = set()
        for ph in self.phases:
            if ph.name in seen:
                raise ValueError(f"duplicate phase {ph.name!r}")
            seen.add(ph.name)
        self.name = str(name)
        self._checkpointables: Dict[str, Checkpointable] = dict(checkpointables or {})
        for cname, comp in self._checkpointables.items():
            if not isinstance(comp, Checkpointable):
                raise TypeError(
                    f"component {cname!r} does not implement state_dict/"
                    "load_state_dict"
                )
        self.k = 0  # next period to execute

    @property
    def resume_strategy(self) -> str:
        """``"state"`` (default) or ``"replay"``.

        ``"state"`` restores components directly from the checkpoint.
        ``"replay"`` (declared by any component with
        ``resume_strategy = "replay"``) re-executes the prefix with
        telemetry muted, then uses each component's ``load_state_dict``
        to verify the replayed state matches the checkpoint.
        """
        for comp in self._checkpointables.values():
            if getattr(comp, "resume_strategy", "state") == "replay":
                return "replay"
        return "state"

    # -- stepping ------------------------------------------------------

    @property
    def finished(self) -> bool:
        """True once every period has been executed."""
        return self.k >= self.n_periods

    @property
    def time_s(self) -> float:
        """Simulated start time of the next period."""
        return self.k * self.period_s

    def step(self) -> PeriodContext:
        """Advance exactly one control period through all phases."""
        if self.finished:
            raise RuntimeError(
                f"engine {self.name!r} already ran all {self.n_periods} periods"
            )
        ctx = PeriodContext(k=self.k, time_s=self.time_s, period_s=self.period_s)
        tel = get_telemetry()
        if tel.enabled:
            for phase in self.phases:
                with tel.span(f"phase.{phase.name}", k=ctx.k) as sp:
                    cpu0 = time.process_time()
                    alloc0 = sys.getallocatedblocks()
                    phase.run(ctx)
                    sp.annotate(
                        cpu_s=time.process_time() - cpu0,
                        alloc_blocks=sys.getallocatedblocks() - alloc0,
                    )
        else:
            for phase in self.phases:
                phase.run(ctx)
        self.k += 1
        return ctx

    def run(
        self,
        until_period: Optional[int] = None,
        on_period: Optional[
            Callable[["ControlPlane", PeriodContext], Optional[bool]]
        ] = None,
    ) -> int:
        """Run to completion (or to *until_period*, exclusive).

        ``on_period(engine, ctx)`` — when given — is called after every
        completed period; returning ``False`` stops the run early (any
        other return value, including ``None``, continues).  The
        experiment runner uses the hook for periodic checkpointing and
        cooperative cancellation; it runs outside the phase spans, so it
        never perturbs profiling or the golden event logs.

        Returns the number of periods executed by this call.
        """
        end = self.n_periods if until_period is None else min(
            int(until_period), self.n_periods
        )
        executed = 0
        while self.k < end:
            ctx = self.step()
            executed += 1
            if on_period is not None and on_period(self, ctx) is False:
                break
        return executed

    # -- checkpoint / resume -------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Serialize the cursor plus every component's state."""
        return {
            "schema": CHECKPOINT_SCHEMA,
            "engine": {
                "name": self.name,
                "period": self.k,
                "period_s": self.period_s,
                "n_periods": self.n_periods,
            },
            "components": {
                cname: comp.state_dict()
                for cname, comp in self._checkpointables.items()
            },
        }

    def save_checkpoint(self, path: str) -> None:
        """Write :meth:`checkpoint` to *path* as JSON."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.checkpoint(), fh, indent=2)
            fh.write("\n")

    def restore(self, doc: Mapping[str, Any]) -> None:
        """Load a checkpoint document into this (freshly built) engine."""
        try:
            schema = doc["schema"]
            header = doc["engine"]
            components = doc["components"]
        except (KeyError, TypeError) as exc:
            raise CheckpointError(f"malformed checkpoint: missing {exc}") from None
        if schema != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"checkpoint schema {schema!r} != supported {CHECKPOINT_SCHEMA}"
            )
        if header.get("name") != self.name:
            raise CheckpointError(
                f"checkpoint was taken from engine {header.get('name')!r}, "
                f"this engine is {self.name!r}"
            )
        if (
            header.get("period_s") != self.period_s
            or header.get("n_periods") != self.n_periods
        ):
            raise CheckpointError(
                "checkpoint timing does not match this engine "
                f"({header.get('period_s')}s x {header.get('n_periods')} vs "
                f"{self.period_s}s x {self.n_periods})"
            )
        period = int(header.get("period", -1))
        if not 0 <= period <= self.n_periods:
            raise CheckpointError(f"checkpoint period {period} out of range")
        missing = set(components) - set(self._checkpointables)
        if missing:
            raise CheckpointError(
                f"checkpoint carries unknown components {sorted(missing)}"
            )
        for cname in self._checkpointables:
            if cname not in components:
                raise CheckpointError(f"checkpoint lacks component {cname!r}")
        if self.resume_strategy == "replay":
            # Plant state is not serializable (e.g. an in-flight DES):
            # fast-forward by deterministic re-execution with telemetry
            # muted — computation is bit-identical either way, only
            # emission differs — then *verify* the replayed component
            # state against the checkpoint via load_state_dict.
            if self.k != 0:
                raise CheckpointError(
                    "replay resume needs a freshly built engine (cursor at 0), "
                    f"this one is at period {self.k}"
                )
            from repro.obs import Telemetry, set_telemetry

            previous = set_telemetry(Telemetry())
            try:
                for comp in self._checkpointables.values():
                    hook = getattr(comp, "prepare_replay", None)
                    if hook is not None:
                        hook()  # e.g. run-config event + plant warmup, muted
                self.run(until_period=period)
            finally:
                set_telemetry(previous)
        for cname, comp in self._checkpointables.items():
            comp.load_state_dict(components[cname])
        self.k = period
        logger.info(
            "engine %s restored at period %d/%d", self.name, self.k, self.n_periods
        )

    @staticmethod
    def load_checkpoint(path: str) -> Dict[str, Any]:
        """Read a checkpoint JSON document from *path*."""
        with open(path, "r", encoding="utf-8") as fh:
            try:
                doc = json.load(fh)
            except json.JSONDecodeError as exc:
                raise CheckpointError(f"{path} is not valid JSON: {exc}") from None
        if not isinstance(doc, dict):
            raise CheckpointError(f"{path} does not contain a checkpoint object")
        return doc
