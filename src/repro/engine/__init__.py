"""The unified control-plane kernel (engine loop, interfaces, scenarios).

One :class:`ControlPlane` drives every harness: backends contribute
named phases (sense → sysid → control → arbitrate → optimize → actuate →
faults → telemetry) and the kernel owns the clock, the run loop, and
checkpoint/resume.  See ``docs/ARCHITECTURE.md`` for the phase diagram.
"""

from repro.engine.interfaces import (
    ActuatorStage,
    ArbitratorStage,
    Checkpointable,
    EnginePhase,
    FaultStage,
    OptimizerEpoch,
    PlantBackend,
    ResponseTimeStage,
    SensorSource,
    SysIdUpdater,
    TelemetrySink,
)
from repro.engine.kernel import (
    CHECKPOINT_SCHEMA,
    PHASE_NAMES,
    CheckpointError,
    ControlPlane,
    PeriodContext,
    Phase,
)

__all__ = [
    "ActuatorStage",
    "ArbitratorStage",
    "CHECKPOINT_SCHEMA",
    "Checkpointable",
    "CheckpointError",
    "ControlPlane",
    "EnginePhase",
    "FaultStage",
    "OptimizerEpoch",
    "PHASE_NAMES",
    "PeriodContext",
    "Phase",
    "PlantBackend",
    "ResponseTimeStage",
    "SensorSource",
    "SysIdUpdater",
    "TelemetrySink",
    "build_largescale_engine",
    "build_sharded_engine",
    "build_testbed_engine",
]


def __getattr__(name):
    # The backend builders import sim modules (which import this
    # package); resolve them lazily to keep import order acyclic.
    if name == "build_largescale_engine":
        from repro.engine.largescale_backend import build_largescale_engine

        return build_largescale_engine
    if name == "build_sharded_engine":
        from repro.engine.sharded_backend import build_sharded_engine

        return build_sharded_engine
    if name == "build_testbed_engine":
        from repro.engine.testbed_backend import build_testbed_engine

        return build_testbed_engine
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
