"""Kernel backend for the trace-driven large-scale simulation.

This is the vectorized plant behind :func:`repro.sim.largescale.run_largescale`
(paper §VI-B, Fig. 6), restructured as :class:`ControlPlane` phases:

``sense`` (trace demand snapshot) → ``faults`` (schedule transitions) →
``sysid`` (demand-forecaster update) → ``optimize`` (consolidation
epochs + on-demand relief) → ``actuate`` (DVFS selection, power and
energy accounting, telemetry).

The phase bodies are the legacy loop body, split — not rewritten — so a
kernel-driven run is bit-identical to the pre-kernel harness (pinned by
golden hashes in ``tests/test_engine.py`` / ``tests/test_perf_fastpath.py``).

Unlike the DES testbed plant, the whole mutable state here is arrays and
counters, so the backend is fully :class:`Checkpointable`: a checkpoint
taken mid-run resumes directly (no replay) and finishes bit-identical to
an uninterrupted run.
"""

from __future__ import annotations

import logging
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.cluster.catalog import STANDARD_SERVER_TYPES, make_server_pool
from repro.cluster.migration import LiveMigrationModel
from repro.cluster.server import Server
from repro.core.optimizer.ipac import IPACConfig, ipac
from repro.core.optimizer.minslack import MinSlackConfig
from repro.core.optimizer.ondemand import OnDemandConfig, relieve_overloads
from repro.core.optimizer.pac import PACConfig, pac
from repro.core.optimizer.pmapper import PMapperConfig, pmapper
from repro.core.optimizer.types import (
    PlacementPlan,
    PlacementProblem,
    ServerInfo,
    make_vm_infos,
)
from repro.engine.checkpoint import (
    decode_array,
    decode_rng,
    encode_array,
    encode_rng,
    require_fields,
)
from repro.engine.kernel import CheckpointError, ControlPlane, PeriodContext, Phase
from repro.obs import get_telemetry
from repro.traces.forecast import DemandForecaster, EwmaPeakForecaster, HoltForecaster
from repro.traces.trace import UtilizationTrace
from repro.util.rng import RngLike, ensure_rng

if False:  # typing-only import without a cycle at runtime
    from repro.sim.largescale import LargeScaleConfig, LargeScaleResult

__all__ = ["LargeScaleBackend", "build_largescale_engine"]

logger = logging.getLogger(__name__)


def _build_optimizer(config: "LargeScaleConfig") -> Callable[[PlacementProblem], PlacementPlan]:
    """Scheme → consolidation callable (shared by CLI and benchmarks)."""
    pac_cfg = PACConfig(
        minslack=MinSlackConfig(
            epsilon_ghz=config.minslack_epsilon_ghz,
            max_steps=config.minslack_max_steps,
            prune=config.minslack_prune,
        ),
        target_utilization=config.target_utilization,
        incremental=config.incremental,
    )
    if config.scheme == "ipac":
        ipac_cfg = IPACConfig(pac=pac_cfg)
        return lambda p: ipac(p, ipac_cfg)
    if config.scheme in ("pac", "static_peak"):
        return lambda p: pac(p, None, pac_cfg)
    pm_cfg = PMapperConfig(target_utilization=config.target_utilization)
    return lambda p: pmapper(p, pm_cfg)


class LargeScaleBackend:
    """Vectorized trace-driven plant + its control-plane phases."""

    resume_strategy = "state"

    def __init__(
        self,
        trace: UtilizationTrace,
        config: "LargeScaleConfig",
        servers: Optional[Sequence[Server]] = None,
        rng: RngLike = None,
        optimizer: Optional[Callable[[PlacementProblem], PlacementPlan]] = None,
        vm_peaks: Optional[np.ndarray] = None,
        vm_memories: Optional[np.ndarray] = None,
        vm_id_start: int = 0,
    ):
        self.config = config
        generator = ensure_rng(rng if rng is not None else config.seed)
        if config.n_vms > trace.n_series:
            raise ValueError(
                f"trace has {trace.n_series} series < n_vms={config.n_vms}"
            )
        sub = trace.subset(config.n_vms)
        # A sharded parent draws the global VM population once (exactly
        # as a single-process run would) and injects each pod's slice,
        # so pod backends must not consume the generator for it.
        if vm_peaks is not None:
            self.peaks = np.asarray(vm_peaks, dtype=float)
            if self.peaks.shape != (config.n_vms,):
                raise ValueError(
                    f"vm_peaks has shape {self.peaks.shape}, expected ({config.n_vms},)"
                )
        else:
            self.peaks = generator.uniform(
                *config.vm_peak_range_ghz, size=config.n_vms
            )
        if vm_memories is not None:
            self.memories = np.asarray(vm_memories, dtype=float)
            if self.memories.shape != (config.n_vms,):
                raise ValueError(
                    f"vm_memories has shape {self.memories.shape}, "
                    f"expected ({config.n_vms},)"
                )
        else:
            self.memories = generator.choice(
                np.asarray(config.vm_memory_choices_mb, dtype=float),
                size=config.n_vms,
            )
        self.vm_id_start = int(vm_id_start)
        self.demands = sub.demands_ghz(self.peaks)  # (n_vms, n_steps)
        self.n_vms, self.n_steps = self.demands.shape
        self.dt_s = sub.interval_s

        if servers is None:
            servers = make_server_pool(
                config.n_servers,
                STANDARD_SERVER_TYPES,
                rng=np.random.default_rng(config.seed + 1),
                type_weights=config.type_weights,
            )
        self.server_list = list(servers)
        n_srv = self.n_srv = len(self.server_list)
        server_list = self.server_list

        # Static per-server arrays.
        self.srv_max_cap = np.asarray([s.spec.max_capacity_ghz for s in server_list])
        self.srv_mem = np.asarray([float(s.spec.memory_mb) for s in server_list])
        self.srv_idle = np.asarray([s.spec.power.idle_w for s in server_list])
        self.srv_busy = np.asarray([s.spec.power.busy_w for s in server_list])
        self.srv_eff = np.asarray([s.spec.power_efficiency for s in server_list])
        self.srv_sleep = np.asarray([s.spec.power.sleep_w for s in server_list])
        self.srv_exp = np.asarray([s.spec.power.dvfs_exponent for s in server_list])
        self.srv_kidle = np.asarray(
            [s.spec.power.idle_dvfs_fraction for s in server_list]
        )

        # Group servers by spec for vectorized DVFS level selection.
        spec_groups: Dict[int, List[int]] = {}
        spec_caps: Dict[int, np.ndarray] = {}
        for i, s in enumerate(server_list):
            key = id(s.spec)
            spec_groups.setdefault(key, []).append(i)
            if key not in spec_caps:
                spec_caps[key] = np.asarray(
                    [s.spec.cpu.capacity_at(f) for f in s.spec.cpu.freq_levels_ghz]
                )
        self.group_index = [
            (np.asarray(idx), spec_caps[key]) for key, idx in spec_groups.items()
        ]

        # Static optimizer views, prebuilt in both power states so the
        # per-step snapshot only selects (never constructs) ServerInfo.
        self.server_infos = tuple(
            ServerInfo(
                server_id=s.server_id,
                max_capacity_ghz=self.srv_max_cap[i],
                memory_mb=self.srv_mem[i],
                efficiency=self.srv_eff[i],
                active=False,
                idle_w=self.srv_idle[i],
                busy_w=self.srv_busy[i],
                sleep_w=self.srv_sleep[i],
            )
            for i, s in enumerate(server_list)
        )
        self.server_infos_on = tuple(
            ServerInfo(
                si.server_id, si.max_capacity_ghz, si.memory_mb, si.efficiency,
                True, si.idle_w, si.busy_w, si.sleep_w,
            )
            for si in self.server_infos
        )
        # Efficiency order as indices (a property of the pool, not of
        # the per-step active flags).
        self.eff_order = sorted(
            range(n_srv),
            key=lambda i: (-self.srv_eff[i], server_list[i].server_id),
        )
        self.vm_ids = [
            f"vm{j + self.vm_id_start:05d}" for j in range(self.n_vms)
        ]
        self.sid_to_idx = {s.server_id: i for i, s in enumerate(server_list)}
        self.idx_to_sid = [s.server_id for s in server_list]
        self.sid_to_vmidx = {self.vm_ids[j]: j for j in range(self.n_vms)}

        self.optimizer = optimizer if optimizer is not None else _build_optimizer(config)

        # -- mutable run state (everything state_dict serializes) -------
        self.assignment = np.full(self.n_vms, -1, dtype=int)
        self.prev_hosting = np.zeros(n_srv, dtype=bool)
        self.migrations = 0
        self.overload_server_steps = 0
        self.unplaced_vm_steps = 0
        self.power_series = np.empty(self.n_steps)
        self.active_series = np.empty(self.n_steps, dtype=int)
        self.total_energy_wh = 0.0
        self.vm_energy_wh: Optional[np.ndarray] = (
            np.zeros(self.n_vms) if config.attribute_power else None
        )
        self.dvfs_on = config.dvfs_enabled

        # Fault state (only consulted when a schedule is attached).
        self.fault_timeline = config.faults.cursor() if config.faults else None
        self.fault_rng = (
            np.random.default_rng(config.faults.seed) if config.faults else None
        )
        self.srv_frac = np.ones(n_srv)
        self.srv_failed = np.zeros(n_srv, dtype=bool)
        self.active_migration_faults: List = []

        self.migration_model = LiveMigrationModel(
            bandwidth_mbps=config.migration_bandwidth_mbps
        )
        self.migration_energy_wh = 0.0

        self.evac_pac_cfg = PACConfig(
            minslack=MinSlackConfig(
                epsilon_ghz=config.minslack_epsilon_ghz,
                max_steps=config.minslack_max_steps,
                prune=config.minslack_prune,
            ),
            target_utilization=config.target_utilization,
            incremental=config.incremental,
        )
        self.relief_config = OnDemandConfig(
            target_utilization=config.target_utilization,
            receiver_utilization=config.target_utilization,
        )
        self.relief_moves = 0
        self.forecaster: Optional[DemandForecaster] = None
        if config.provisioning == "ewma_peak":
            self.forecaster = EwmaPeakForecaster(self.n_vms)
        elif config.provisioning == "holt":
            self.forecaster = HoltForecaster(self.n_vms)
        self.static_peak = config.scheme == "static_peak"

    # -- engine wiring -------------------------------------------------

    @property
    def n_periods(self) -> int:
        return self.n_steps

    @property
    def period_s(self) -> float:
        return float(self.dt_s)

    def phases(self) -> List[Phase]:
        """The per-step pipeline, in legacy-loop order."""
        return [
            Phase("sense", self.sense),
            Phase("faults", self.inject),
            Phase("sysid", self.update_model),
            Phase("optimize", self.maybe_optimize),
            Phase("actuate", self.actuate),
        ]

    def start(self) -> None:
        """Uniform begin-run hook (scenario/CLI entry): the run header."""
        self.emit_run_config()

    def emit_run_config(self) -> None:
        """The run-header log line + telemetry event (fresh starts only)."""
        tel = get_telemetry()
        # control_mode is logged but deliberately NOT part of the
        # run_config event: this backend's sysid/control phases are
        # vectorized over the whole fleet in either mode (bit-identical
        # by construction), and the event feeds golden-hash gates.
        logger.info(
            "largescale run: scheme=%s, %d VMs on %d servers, %d steps of "
            "%.0fs, %s control",
            self.config.scheme, self.n_vms, self.n_srv, self.n_steps,
            self.dt_s, self.config.control_mode,
        )
        tel.event(
            "run_config",
            harness="largescale",
            scheme=self.config.scheme,
            n_vms=self.n_vms,
            n_servers=self.n_srv,
            n_steps=self.n_steps,
            step_s=self.dt_s,
            dvfs=self.config.dvfs_enabled,
            provisioning=self.config.provisioning,
            seed=self.config.seed,
        )

    # -- phase bodies (split from the legacy loop, order preserved) ----

    def sense(self, ctx: PeriodContext) -> None:
        """Read the trace: this step's per-VM demand vector."""
        ctx.data["demand_now"] = self.demands[:, ctx.k]

    def inject(self, ctx: PeriodContext) -> None:
        """Apply every fault begin/end due at this trace step."""
        if self.fault_timeline is not None:
            self._apply_fault_transitions(ctx.k, ctx.data["demand_now"])

    def update_model(self, ctx: PeriodContext) -> None:
        """Feed the demand forecaster (sysid of the demand process)."""
        if self.forecaster is not None:
            self.forecaster.update(ctx.data["demand_now"])

    def maybe_optimize(self, ctx: PeriodContext) -> None:
        """Consolidation epochs + between-epoch on-demand relief."""
        config = self.config
        step = ctx.k
        demand_now = ctx.data["demand_now"]
        tel = get_telemetry()
        if step == 0 and self.static_peak:
            # One conservative placement against the whole-trace peak.
            plan = self._invoke_optimizer(
                self._build_problem(self.demands.max(axis=1)), 0.0
            )
            self.migrations += plan.n_moves
            self.migration_energy_wh += self._migration_energy(plan)
            self.assignment = self._apply_mapping(plan.final_mapping)
        elif not self.static_peak and step % config.optimize_every_steps == 0:
            demand_for_packing = demand_now
            if self.forecaster is not None:
                demand_for_packing = np.maximum(
                    demand_now,
                    self.forecaster.forecast_peak(config.optimize_every_steps),
                )
                demand_for_packing = np.minimum(demand_for_packing, self.peaks)
            plan = self._invoke_optimizer(
                self._build_problem(demand_for_packing), step * self.dt_s
            )
            self.migrations += plan.n_moves
            self.migration_energy_wh += self._migration_energy(plan)
            self.assignment = self._apply_mapping(plan.final_mapping, step * self.dt_s)
        elif config.ondemand_relief:
            placed_now = self.assignment >= 0
            loads_now = np.bincount(
                self.assignment[placed_now], weights=demand_now[placed_now],
                minlength=self.n_srv,
            )
            if np.any(loads_now > self.srv_max_cap + 1e-9):
                with tel.span("largescale.relief"):
                    plan = relieve_overloads(
                        self._build_problem(demand_now), self.relief_config
                    )
                self.relief_moves += plan.n_moves
                self.migration_energy_wh += self._migration_energy(plan)
                self.assignment = self._apply_mapping(
                    plan.final_mapping, step * self.dt_s
                )
                tel.event(
                    "relief", time_s=step * self.dt_s, moves=plan.n_moves,
                )

    def actuate(self, ctx: PeriodContext) -> None:
        """DVFS selection + power/energy accounting + step telemetry."""
        config = self.config
        step = ctx.k
        demand_now = ctx.data["demand_now"]
        n_srv = self.n_srv
        tel = get_telemetry()

        placed = self.assignment >= 0
        self.unplaced_vm_steps += int(np.count_nonzero(~placed))
        loads = np.bincount(
            self.assignment[placed], weights=demand_now[placed], minlength=n_srv
        )
        hosting_mask = (
            np.bincount(self.assignment[placed], minlength=n_srv) > 0
        )

        # DVFS: lowest level covering load / headroom (or pinned at max).
        # Under a thermal throttle every level delivers only srv_frac of
        # its nominal capacity, so the selection works in nominal terms
        # (needed / frac) and the chosen capacity is scaled back down.
        eff_max = (
            self.srv_max_cap if config.faults is None
            else self.srv_max_cap * self.srv_frac
        )
        cap = eff_max.copy()
        freq_ratio = np.ones(n_srv)
        if self.dvfs_on:
            needed = loads / config.arbitrator_headroom
            if config.faults is not None:
                needed = needed / np.maximum(self.srv_frac, 1e-9)
            for idx, caps in self.group_index:
                level = np.searchsorted(caps, needed[idx] - 1e-9, side="left")
                level = np.minimum(level, len(caps) - 1)
                cap[idx] = caps[level]
            if config.faults is not None:
                cap = cap * self.srv_frac
            # cap = freq * cores; ratio = nominal cap / nominal max cap.
            freq_ratio = cap / eff_max

        overload = loads > eff_max + 1e-9
        self.overload_server_steps += int(np.count_nonzero(overload & hosting_mask))
        util = np.minimum(loads / np.maximum(cap, 1e-12), 1.0)
        scale = freq_ratio**self.srv_exp
        idle_f = self.srv_idle * (1.0 - self.srv_kidle * (1.0 - scale))
        power = idle_f + (self.srv_busy - self.srv_idle) * scale * util
        power_total = float(power[hosting_mask].sum())
        self.power_series[step] = power_total
        self.active_series[step] = int(np.count_nonzero(hosting_mask))
        self.total_energy_wh += power_total * self.dt_s / 3600.0
        if self.vm_energy_wh is not None and np.any(placed):
            # Split each hosting server's power among its VMs by demand
            # share (equal split when the whole server idles); per-server
            # shares sum to 1, so per-VM energy reconciles with the step
            # total by construction.
            owner = self.assignment[placed]
            counts = np.bincount(owner, minlength=n_srv)
            idle_srv = loads <= 0.0
            denom = np.where(idle_srv, np.maximum(counts, 1), loads)
            weights = np.where(idle_srv[owner], 1.0, demand_now[placed])
            share = weights / denom[owner]
            self.vm_energy_wh[placed] += (
                power[owner] * (self.dt_s / 3600.0) * share
            )
        if tel.enabled:
            time_s = step * self.dt_s
            # One event per server power transition (on <-> off).
            changed = np.nonzero(hosting_mask != self.prev_hosting)[0]
            for i in changed:
                tel.event(
                    "server_power",
                    time_s=time_s,
                    server=self.idx_to_sid[i],
                    state="on" if hosting_mask[i] else "off",
                )
            self.prev_hosting = hosting_mask.copy()
            tel.event(
                "largescale.step",
                time_s=time_s,
                power_w=power_total,
                active_servers=int(self.active_series[step]),
                overloaded_servers=int(np.count_nonzero(overload & hosting_mask)),
            )

    # -- internals (verbatim from the legacy harness) ------------------

    def _invoke_optimizer(
        self, problem: PlacementProblem, time_s: float
    ) -> PlacementPlan:
        """Run the consolidation optimizer, traced + logged per invocation."""
        tel = get_telemetry()
        config = self.config
        with tel.span("largescale.optimize", scheme=config.scheme) as sp:
            plan = self.optimizer(problem)
            sp.annotate(moves=plan.n_moves, unplaced=len(plan.unplaced))
        if tel.enabled:
            tel.count("optimizer.invocations")
            tel.count("optimizer.migrations", plan.n_moves)
            tel.event(
                "optimizer_invocation",
                time_s=time_s,
                moves=plan.n_moves,
                wake=len(plan.wake),
                sleep=len(plan.sleep),
                unplaced=len(plan.unplaced),
                info=dict(plan.info),
            )
        logger.debug(
            "optimizer t=%.0fs: %d moves, wake %d, sleep %d",
            time_s, plan.n_moves, len(plan.wake), len(plan.sleep),
        )
        return plan

    def _build_problem(self, demand_now: np.ndarray) -> PlacementProblem:
        config = self.config
        vm_infos = make_vm_infos(self.vm_ids, demand_now, self.memories)
        mapping = {
            self.vm_ids[j]: self.idx_to_sid[self.assignment[j]]
            for j in range(self.n_vms)
            if self.assignment[j] >= 0
        }
        hosting = set(mapping.values())
        if config.faults is not None:
            # Crashed servers disappear from the snapshot; throttled
            # ones shrink (capacity and efficiency scale together).
            infos = tuple(
                ServerInfo(
                    si.server_id, si.max_capacity_ghz * self.srv_frac[i],
                    si.memory_mb, si.efficiency * self.srv_frac[i],
                    si.server_id in hosting,
                    si.idle_w, si.busy_w, si.sleep_w,
                )
                for i, si in enumerate(self.server_infos)
                if not self.srv_failed[i]
            )
            return PlacementProblem(infos, vm_infos, mapping)
        # Fault-free fast lane: select the prebuilt on/off snapshot per
        # server; the invariants hold by construction, so skip the
        # O(n) re-validation and attach the precomputed packing order.
        infos = tuple(
            self.server_infos_on[i] if self.idx_to_sid[i] in hosting
            else self.server_infos[i]
            for i in range(self.n_srv)
        )
        return PlacementProblem.trusted(
            infos,
            vm_infos,
            mapping,
            servers_sorted=tuple(infos[i] for i in self.eff_order),
        )

    def _apply_mapping(
        self, final_mapping: Dict[str, str], time_s: float = 0.0
    ) -> np.ndarray:
        tel = get_telemetry()
        new_assignment = np.full(self.n_vms, -1, dtype=int)
        for vm_id, sid in final_mapping.items():
            new_assignment[self.sid_to_vmidx[vm_id]] = self.sid_to_idx[sid]
        if self.active_migration_faults:
            moved = np.nonzero(
                (self.assignment >= 0)
                & (new_assignment >= 0)
                & (self.assignment != new_assignment)
            )[0]
            for j in moved:
                for ev in self.active_migration_faults:
                    if self.fault_rng.random() < ev.probability:
                        tel.count("faults.migrations_disrupted")
                        tel.event(
                            "migration_failed",
                            time_s=time_s,
                            vm=self.vm_ids[j],
                            source=self.idx_to_sid[self.assignment[j]],
                            target=self.idx_to_sid[new_assignment[j]],
                        )
                        new_assignment[j] = self.assignment[j]  # stays on source
                        break
        return new_assignment

    def _migration_energy(self, plan: PlacementPlan) -> float:
        """Source+target burn ``migration_overhead_w`` for each transfer."""
        total_s = sum(
            self.migration_model.duration_s(self.memories[self.sid_to_vmidx[m.vm_id]])
            for m in plan.migrations
            if m.source_id is not None
        )
        return 2.0 * self.config.migration_overhead_w * total_s / 3600.0

    def _apply_fault_transitions(self, step: int, demand_now: np.ndarray) -> None:
        """Perform every fault begin/end due at this trace step."""
        tel = get_telemetry()
        time_s = step * self.dt_s
        for tr in self.fault_timeline.advance(time_s):
            ev = tr.event
            i = self.sid_to_idx.get(ev.target) if ev.target is not None else None
            if ev.target is not None and i is None:
                logger.warning("fault targets unknown server %s; skipped", ev.target)
                continue
            if tr.phase == "begin":
                if ev.kind == "server_crash":
                    self.srv_failed[i] = True
                    evicted_idx = np.nonzero(self.assignment == i)[0]
                    self.assignment[evicted_idx] = -1
                    evicted = [self.vm_ids[j] for j in evicted_idx]
                    tel.count("faults.injected")
                    tel.event(
                        "fault_injected", time_s=time_s, fault=ev.kind,
                        target=ev.target, duration_s=ev.duration_s,
                        evicted=evicted,
                    )
                    logger.warning(
                        "fault t=%.0fs: server %s crashed, %d VMs evicted",
                        time_s, ev.target, len(evicted),
                    )
                    if evicted:
                        # Emergency evacuation: Minimum Slack onto the
                        # survivors, without waiting for the optimizer.
                        plan = pac(
                            self._build_problem(demand_now), evicted,
                            self.evac_pac_cfg,
                        )
                        self.assignment = self._apply_mapping(
                            plan.final_mapping, time_s
                        )
                        tel.count("manager.evacuations")
                        tel.count("manager.evacuated_vms", len(evicted))
                        tel.event(
                            "evacuation", time_s=time_s, server=ev.target,
                            vms=evicted,
                            placed=[
                                v for v in evicted if v in plan.final_mapping
                            ],
                            unplaced=list(plan.unplaced),
                            woke=list(plan.wake),
                        )
                elif ev.kind == "server_recovery":
                    self.srv_failed[i] = False
                    self.srv_frac[i] = 1.0
                    tel.count("faults.recovered")
                    tel.event(
                        "fault_recovered", time_s=time_s,
                        fault="server_crash", target=ev.target,
                    )
                elif ev.kind == "thermal_throttle":
                    self.srv_frac[i] = ev.fraction
                    tel.count("faults.injected")
                    tel.event(
                        "fault_injected", time_s=time_s, fault=ev.kind,
                        target=ev.target, duration_s=ev.duration_s,
                        fraction=ev.fraction,
                    )
                elif ev.kind == "migration_failure":
                    self.active_migration_faults.append(ev)
                    tel.count("faults.injected")
                    tel.event(
                        "fault_injected", time_s=time_s, fault=ev.kind,
                        target=ev.target, duration_s=ev.duration_s,
                        probability=ev.probability,
                    )
                else:  # sensor faults: no response-time sensor here
                    logger.warning(
                        "fault %s has no effect in the trace-driven harness",
                        ev.kind,
                    )
            else:  # end
                if ev.kind == "server_crash":
                    self.srv_failed[i] = False
                    self.srv_frac[i] = 1.0
                elif ev.kind == "thermal_throttle":
                    self.srv_frac[i] = 1.0
                elif ev.kind == "migration_failure":
                    self.active_migration_faults.remove(ev)
                elif ev.kind in ("sensor_dropout", "sensor_noise"):
                    continue
                tel.count("faults.recovered")
                tel.event(
                    "fault_recovered", time_s=time_s, fault=ev.kind,
                    target=ev.target,
                )

    # -- results -------------------------------------------------------

    def result(self) -> "LargeScaleResult":
        """Final aggregates (call once, after the engine finished)."""
        from repro.sim.largescale import LargeScaleResult

        total_energy_wh = self.total_energy_wh + self.migration_energy_wh
        logger.info(
            "largescale run complete: %.1f Wh total (%.2f Wh/VM), %d migrations, "
            "%d overloaded server-steps",
            total_energy_wh, total_energy_wh / self.n_vms, self.migrations,
            self.overload_server_steps,
        )
        attribution = None
        if self.vm_energy_wh is not None:
            attribution = self._attribution_summary()
            get_telemetry().event("attribution_summary", attribution=attribution)
        return LargeScaleResult(
            scheme=self.config.scheme,
            n_vms=self.n_vms,
            n_steps=self.n_steps,
            step_s=self.dt_s,
            total_energy_wh=total_energy_wh,
            energy_per_vm_wh=total_energy_wh / self.n_vms,
            migrations=self.migrations,
            mean_active_servers=float(self.active_series.mean()),
            max_active_servers=int(self.active_series.max()),
            overload_server_steps=self.overload_server_steps,
            unplaced_vm_steps=self.unplaced_vm_steps,
            power_series_w=self.power_series,
            active_series=self.active_series,
            info={
                "dvfs": float(self.dvfs_on),
                "relief_moves": float(self.relief_moves),
                "migration_energy_wh": self.migration_energy_wh,
            },
            attribution=attribution,
        )

    def _attribution_summary(self) -> Dict[str, Any]:
        """Per-VM energy attribution, reconciled against the run total.

        Reconciliation is against ``total_energy_wh`` (datacenter power
        integrated over steps); migration energy is a separate ledger
        and reported as such.
        """
        energies = self.vm_energy_wh
        attributed = float(energies.sum())
        total = self.total_energy_wh
        error = abs(attributed - total) / abs(total) if total else 0.0
        top = np.argsort(energies)[::-1][:10]
        summary: Dict[str, Any] = {
            "n_periods": self.n_steps,
            "total_wh": total,
            "attributed_wh": attributed,
            "unattributed_wh": 0.0,
            "reconciliation_error": error,
            "migration_energy_wh": self.migration_energy_wh,
            "vm_mean_wh": float(energies.mean()),
            "vm_max_wh": float(energies.max()),
            "top_vms": [
                {"vm": self.vm_ids[j], "energy_wh": float(energies[j])}
                for j in top
            ],
        }
        if self.n_vms <= 64:  # full map only at inspectable scale
            summary["per_vm_wh"] = {
                self.vm_ids[j]: float(energies[j]) for j in range(self.n_vms)
            }
        return summary

    # -- checkpointing -------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Full mutable state, JSON-safe (see restore notes in module doc)."""
        schedule = self.config.faults
        # The un-executed suffix of the preallocated series buffers is
        # uninitialized memory; zero it so the document stays JSON-safe
        # (the suffix is overwritten as the resumed run executes).
        power_snap = np.where(np.isfinite(self.power_series), self.power_series, 0.0)
        state: Dict[str, Any] = {
            "peaks": encode_array(self.peaks),
            "memories": encode_array(self.memories),
            "assignment": encode_array(self.assignment),
            "prev_hosting": encode_array(self.prev_hosting),
            "migrations": self.migrations,
            "overload_server_steps": self.overload_server_steps,
            "unplaced_vm_steps": self.unplaced_vm_steps,
            "total_energy_wh": self.total_energy_wh,
            "migration_energy_wh": self.migration_energy_wh,
            "relief_moves": self.relief_moves,
            "power_series": encode_array(power_snap),
            "active_series": encode_array(self.active_series),
            "srv_frac": encode_array(self.srv_frac),
            "srv_failed": encode_array(self.srv_failed),
        }
        if self.vm_energy_wh is not None:
            state["vm_energy_wh"] = encode_array(self.vm_energy_wh)
        if self.forecaster is not None:
            state["forecaster"] = self.forecaster.state_dict()
        if schedule is not None:
            state["fault_cursor"] = self.fault_timeline.state_dict()
            state["fault_rng"] = encode_rng(self.fault_rng)
            state["active_migration_faults"] = [
                schedule.events.index(ev) for ev in self.active_migration_faults
            ]
        return state

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        require_fields(
            state,
            [
                "peaks", "memories", "assignment", "prev_hosting", "migrations",
                "overload_server_steps", "unplaced_vm_steps", "total_energy_wh",
                "migration_energy_wh", "relief_moves", "power_series",
                "active_series", "srv_frac", "srv_failed",
            ],
            "largescale backend",
        )
        peaks = decode_array(state["peaks"])
        if peaks.shape != self.peaks.shape:
            raise CheckpointError(
                f"checkpoint has {peaks.shape[0]} VMs, this run has "
                f"{self.peaks.shape[0]}"
            )
        # peaks/memories are drawn at build time; a mismatch means the
        # resume was built with a different trace/config/rng.
        if not np.array_equal(peaks, self.peaks):
            raise CheckpointError(
                "checkpoint peaks differ from this build's peaks: resume "
                "with the same trace, config, and rng"
            )
        self.memories = decode_array(state["memories"])
        self.assignment = decode_array(state["assignment"])
        self.prev_hosting = decode_array(state["prev_hosting"])
        self.migrations = int(state["migrations"])
        self.overload_server_steps = int(state["overload_server_steps"])
        self.unplaced_vm_steps = int(state["unplaced_vm_steps"])
        self.total_energy_wh = float(state["total_energy_wh"])
        self.migration_energy_wh = float(state["migration_energy_wh"])
        self.relief_moves = int(state["relief_moves"])
        self.power_series = decode_array(state["power_series"])
        self.active_series = decode_array(state["active_series"])
        self.srv_frac = decode_array(state["srv_frac"])
        self.srv_failed = decode_array(state["srv_failed"])
        if self.vm_energy_wh is not None:
            if "vm_energy_wh" not in state:
                raise CheckpointError(
                    "checkpoint lacks vm_energy_wh: it was written without "
                    "attribute_power; resume with the run's original config"
                )
            self.vm_energy_wh = decode_array(state["vm_energy_wh"])
        if self.forecaster is not None:
            if "forecaster" not in state:
                raise ValueError("checkpoint lacks forecaster state")
            self.forecaster.load_state_dict(state["forecaster"])
        schedule = self.config.faults
        if schedule is not None:
            require_fields(
                state, ["fault_cursor", "fault_rng"], "largescale fault"
            )
            self.fault_timeline.load_state_dict(state["fault_cursor"])
            self.fault_rng = decode_rng(state["fault_rng"])
            self.active_migration_faults = [
                schedule.events[i]
                for i in state.get("active_migration_faults", [])
            ]


def build_largescale_engine(
    trace: UtilizationTrace,
    config: Optional["LargeScaleConfig"] = None,
    servers: Optional[Sequence[Server]] = None,
    rng: RngLike = None,
    optimizer: Optional[Callable[[PlacementProblem], PlacementPlan]] = None,
) -> "tuple[ControlPlane, LargeScaleBackend]":
    """Build the kernel + backend pair for one large-scale run."""
    from repro.sim.largescale import LargeScaleConfig

    config = config or LargeScaleConfig()
    backend = LargeScaleBackend(
        trace, config, servers=servers, rng=rng, optimizer=optimizer
    )
    engine = ControlPlane(
        period_s=backend.period_s,
        n_periods=backend.n_periods,
        phases=backend.phases(),
        checkpointables={"plant": backend},
        name="largescale",
    )
    return engine, backend
