"""The tracked performance suite: fast lane vs reference, end to end.

Each case times one optimized hot path against the unoptimized
reference path *in the same process on the same inputs*, so the
reported ``speedup`` is machine-independent — CI compares speedups,
never absolute wall-clock, against the committed ``BENCH_perf.json``.

Cases
-----
``mpc_solve``
    400 closed-loop MPC periods with binding rate/capacity constraints.
    Fast: cached prediction matrices + warm-started active set.
    Reference: warm start off and the matrix cache busted every period
    (what the pre-fast-lane controller recomputed each solve).
``minslack``
    A drifting-demand repack sequence for one server.  Fast: dominance
    pruning + the previous period's selection as starting incumbent.
    Reference: exhaustive cold search each period.
``ipac``
    Full IPAC planning invocations over a perturbed-demand sequence.
    Fast: ``PACConfig.incremental`` seeds per-server searches from the
    standing mapping.  Reference: every invocation from scratch.
``des``
    The request-level plant itself, controller excluded (uncontrolled
    testbed, static allocations).  Fast: the hybrid plant — MVA
    fast-forward over quasi-static periods, exact DES at transients —
    on the allocation-free array-PS kernel.  Reference: pure DES on the
    pre-fast-lane dict-PS kernel (``des_kernel="reference"``).  This is
    the headline DES fast-lane number; target ≥ 10x at full scale.
``des_hybrid``
    The same fast-vs-reference plant comparison at 100x the original
    closed-loop client count (1000 clients on one app): the scale the
    hybrid exists for.  Exact DES runs only at startup/settling; nearly
    everything after is MVA fast-forward.
``telemetry``
    Observability overhead on the DES hot path.  "Fast" is the fully
    instrumented run — kernel ``phase.*`` spans (sampled), request
    tracing, per-tier power attribution — against the same run with
    telemetry disabled.  Speedup here is *expected* to sit at or just
    below 1.0; the case exists so the cost of watching the system is a
    tracked number instead of a silent tax on ``des``.
``largescale``
    The trace-driven harness at several hundred VMs — the end-to-end
    number.  Fast: default config (pruning, trusted snapshot
    construction, vectorized accounting) + incremental packing.
    Reference speed is the committed seed measurement
    (``baseline_wall_s``), re-measured only when the seed changes.

Every case reports ``{wall_s, iters, warm_hit_rate}`` (the latter is
``null`` where warm starting does not apply) plus the reference timing
and the speedup.  Timings run under a ``repro.obs`` telemetry scope so
the spans of each case land in the same report.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.control.arx import ARXModel
from repro.control.mpc_core import MPCConfig, MPCController
from repro.core.optimizer.ipac import IPACConfig, ipac
from repro.core.optimizer.minslack import MinSlackConfig
from repro.core.optimizer.pac import PACConfig
from repro.packing.mbs import MemoryConstraint, minimum_bin_slack
from repro.core.optimizer.types import (
    PlacementProblem,
    ServerInfo,
    make_vm_infos,
)
from repro.obs import InMemoryBackend, Telemetry, get_telemetry, use_telemetry
from repro.sim.largescale import LargeScaleConfig, run_largescale
from repro.sim.testbed import TestbedConfig, TestbedExperiment
from repro.traces.generator import TraceConfig, generate_trace

__all__ = [
    "CaseResult",
    "run_suite",
    "write_report",
    "compare_to_baseline",
    "CASES",
]

#: Wall seconds the seed revision (commit 0c57883) needs for the
#: ``largescale`` case on the reference machine.  The fast lane is
#: measured live and compared against this; re-measure via
#: ``git worktree`` if the scenario below ever changes.
LARGESCALE_SEED_WALL_S = {"full": 0.77, "smoke": 0.12}


@dataclass(frozen=True)
class CaseResult:
    """One benchmark case: the fast path against its reference path."""

    name: str
    wall_s: float
    reference_wall_s: float
    speedup: float
    iters: int
    warm_hit_rate: Optional[float]
    detail: Dict[str, float]

    def row(self) -> str:
        hit = "-" if self.warm_hit_rate is None else f"{self.warm_hit_rate:.0%}"
        return (
            f"{self.name:<12} {self.wall_s * 1e3:>9.1f}ms "
            f"{self.reference_wall_s * 1e3:>9.1f}ms  x{self.speedup:>5.2f}  "
            f"iters={self.iters:<7d} warm={hit}"
        )


def _time(fn: Callable[[], object]) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


# ---------------------------------------------------------------- mpc --


def _mpc_loop(n_periods: int, warm: bool, bust_cache: bool) -> MPCController:
    """Closed MPC loop against a 3-input plant with binding constraints.

    The horizon (P=24, M=8, three applications) makes the per-period
    matrix work (lifted prediction matrix, Hessian, constraint stack)
    comparable to a busy multi-tier controller; the tight ``delta_max``
    keeps the rate constraints active so the QP working set is non-empty
    and warm starting has something to carry over.  ``bust_cache``
    discards the matrix cache every period — the pre-fast-lane
    controller recomputed all of it each solve.
    """
    model = ARXModel(
        a=[0.4],
        b=[[-800.0, -300.0, -500.0], [-100.0, -50.0, -80.0]],
        g=1800.0,
    )
    ctrl = MPCController(
        model,
        MPCConfig(
            prediction_horizon=24,
            control_horizon=8,
            q_weight=1.0,
            r_weight=1e3,
            delta_max=0.03,
            power_weight=200.0,
            warm_start=warm,
        ),
    )
    rng = np.random.default_rng(3)
    t_hist = [900.0, 950.0]
    c0 = np.full(3, 0.7)
    c_hist = np.vstack([c0, c0])
    ref = np.full(24, 1000.0)
    for k in range(n_periods):
        t_now = 900.0 + 200.0 * np.sin(k / 6.0) + rng.normal(0, 25)
        t_hist = [t_now] + t_hist[:1]
        if bust_cache:
            ctrl._cache_key = None  # re-derive matrices, as the seed did
        sol = ctrl.solve(
            t_hist, c_hist, ref, 1000.0, [0.2] * 3, [3.0] * 3
        )
        c_hist = np.vstack(
            [np.clip(c_hist[0] + sol.delta_c, 0.2, 3.0), c_hist[0]]
        )
    return ctrl


def bench_mpc_solve(scale: str) -> CaseResult:
    n = 300 if scale == "full" else 100
    _mpc_loop(30, warm=True, bust_cache=False)  # warm the process up
    with get_telemetry().span("bench.mpc_solve", periods=n):
        t0 = time.perf_counter()
        ctrl = _mpc_loop(n, warm=True, bust_cache=False)
        wall = time.perf_counter() - t0
        ref_wall = _time(lambda: _mpc_loop(n, warm=False, bust_cache=True))
    hit_rate = ctrl.warm_hits / max(ctrl.solves, 1)
    return CaseResult(
        name="mpc_solve",
        wall_s=wall,
        reference_wall_s=ref_wall,
        speedup=ref_wall / wall,
        iters=n,
        warm_hit_rate=hit_rate,
        detail={"periods": float(n)},
    )


# ----------------------------------------------------------- minslack --


def _drift_demands(base: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """One period of demand drift, clipped away from zero."""
    return np.clip(
        base * rng.uniform(0.9998, 1.0002, size=base.shape), 0.05, None
    )


class _GenericMemoryConstraint(MemoryConstraint):
    """Same semantics as :class:`MemoryConstraint`, but a subclass.

    ``minimum_bin_slack`` inlines the *exact* ``MemoryConstraint`` type;
    a subclass takes the generic accepts/push/pop protocol path — one
    bound-method call per node, which is how the pre-fast-lane search
    evaluated every constraint.  The reference timing runs through it.
    """


def _minslack_rounds(
    n_items: int, rounds: int, seed: int, fast: bool
) -> tuple[int, int]:
    """Repack one server ``rounds`` times under slowly drifting demands.

    The instance plants a hidden subset whose total, plus a 3 ms-of-GHz
    offset, is the capacity: fills within the 0.005 GHz epsilon are rare
    (near subset-sum), so the cold search does real branch-and-bound
    work each round, while the seeded search revalidates the previous
    selection and exits immediately.  Returns (total_steps, seeded).
    """
    rng = np.random.default_rng(seed)
    base = rng.uniform(0.3, 0.9, size=n_items)
    planted = rng.choice(n_items, size=n_items // 3, replace=False)
    capacity = float(base[planted].sum()) + 0.003
    mems = rng.uniform(256.0, 2048.0, size=n_items)
    mem_total = float(mems.sum())
    prev: Optional[Sequence[int]] = None
    total_steps = 0
    seeded = 0
    for _ in range(rounds):
        demands = _drift_demands(base, rng)
        cons_type = MemoryConstraint if fast else _GenericMemoryConstraint
        res = minimum_bin_slack(
            demands,
            capacity,
            constraint=cons_type(mems, mem_total),
            epsilon=0.005,
            max_steps=60000,
            incumbent=prev if fast else None,
            prune=fast,
        )
        total_steps += res.steps
        seeded += int(res.seeded)
        prev = res.selected
    return total_steps, seeded


def bench_minslack(scale: str) -> CaseResult:
    n_items = 14
    seeds, rounds = (range(7, 15), 15) if scale == "full" else (range(7, 11), 6)
    _minslack_rounds(n_items, 2, 7, fast=True)  # warm the process up
    _minslack_rounds(n_items, 2, 7, fast=False)
    steps = ref_steps = seeded = 0
    with get_telemetry().span(
        "bench.minslack", items=n_items, instances=len(seeds), rounds=rounds
    ):
        t0 = time.perf_counter()
        for seed in seeds:
            s, sd = _minslack_rounds(n_items, rounds, seed, fast=True)
            steps += s
            seeded += sd
        wall = time.perf_counter() - t0
        t0 = time.perf_counter()
        for seed in seeds:
            s, _ = _minslack_rounds(n_items, rounds, seed, fast=False)
            ref_steps += s
        ref_wall = time.perf_counter() - t0
    n_rounds = len(seeds) * rounds
    return CaseResult(
        name="minslack",
        wall_s=wall,
        reference_wall_s=ref_wall,
        speedup=ref_wall / wall,
        iters=steps,
        warm_hit_rate=seeded / max(n_rounds, 1),
        detail={"reference_steps": float(ref_steps), "rounds": float(n_rounds)},
    )


# --------------------------------------------------------------- ipac --


def _ipac_problem(
    n_vms: int, n_servers: int, demands: np.ndarray, mems: np.ndarray,
    mapping: Dict[str, str],
) -> PlacementProblem:
    servers = tuple(
        ServerInfo(
            server_id=f"s{j}",
            max_capacity_ghz=12.0,
            memory_mb=64_000.0,
            efficiency=0.04 + 0.0005 * (j % 7),
            active=True,
            idle_w=160.0,
            busy_w=300.0,
            sleep_w=10.0,
        )
        for j in range(n_servers)
    )
    vms = make_vm_infos(
        [f"vm{i}" for i in range(n_vms)], demands, mems
    )
    return PlacementProblem(servers=servers, vms=vms, mapping=mapping)


def _ipac_rounds(
    n_vms: int, n_servers: int, rounds: int, incremental: bool
) -> float:
    rng = np.random.default_rng(23)
    base = rng.uniform(0.2, 1.5, size=n_vms)
    mems = rng.uniform(512.0, 4096.0, size=n_vms)
    mapping = {f"vm{i}": f"s{i % n_servers}" for i in range(n_vms)}
    cfg = IPACConfig(
        pac=PACConfig(
            minslack=MinSlackConfig(epsilon_ghz=0.01, max_steps=20000),
            incremental=incremental,
        )
    )
    t0 = time.perf_counter()
    for _ in range(rounds):
        demands = _drift_demands(base, rng)
        problem = _ipac_problem(n_vms, n_servers, demands, mems, mapping)
        plan = ipac(problem, cfg)
        mapping = dict(plan.final_mapping)
    return time.perf_counter() - t0


def bench_ipac(scale: str) -> CaseResult:
    n_vms, n_servers, rounds = (160, 40, 8) if scale == "full" else (60, 16, 4)
    _ipac_rounds(n_vms, n_servers, 1, True)  # warm the process up
    with get_telemetry().span(
        "bench.ipac", vms=n_vms, servers=n_servers, rounds=rounds
    ):
        wall = _time(lambda: _ipac_rounds(n_vms, n_servers, rounds, True))
        ref_wall = _time(lambda: _ipac_rounds(n_vms, n_servers, rounds, False))
    return CaseResult(
        name="ipac",
        wall_s=wall,
        reference_wall_s=ref_wall,
        speedup=ref_wall / wall,
        iters=rounds,
        warm_hit_rate=None,
        detail={"n_vms": float(n_vms), "n_servers": float(n_servers)},
    )


# ---------------------------------------------------------------- des --


def _plant_run(
    plant_mode: str,
    des_kernel: str,
    duration_s: float,
    concurrency: int,
    n_servers: int = 2,
    n_apps: int = 2,
    alloc_ghz: float = 1.6,
):
    """One uncontrolled testbed run: the plant alone, no controller.

    ``controlled=False`` keeps allocations static, so both arms time
    pure plant simulation — the MPC stack has its own case.  The model
    is unused in an uncontrolled run, but passing one skips the
    system-identification pre-run (a full DES experiment that would
    otherwise dominate both arms and drown the kernel difference).
    """
    b = [[-800.0] * n_apps, [-100.0] * n_apps]
    model = ARXModel(a=[0.4], b=b, g=1800.0)
    cfg = TestbedConfig(
        n_servers=n_servers,
        n_apps=n_apps,
        duration_s=duration_s,
        warmup_s=20.0,
        concurrency=concurrency,
        initial_alloc_ghz=alloc_ghz,
        controlled=False,
        plant_mode=plant_mode,
        des_kernel=des_kernel,
        seed=77,
    )
    return TestbedExperiment(cfg, model=model).run()


def bench_des(scale: str) -> CaseResult:
    duration = 600.0 if scale == "full" else 240.0
    conc = 200
    _plant_run("hybrid", "fast", 60.0, conc)  # warm the process up
    with get_telemetry().span("bench.des", duration_s=duration):
        t0 = time.perf_counter()
        res = _plant_run("hybrid", "fast", duration, conc)
        wall = time.perf_counter() - t0
        ref_wall = _time(
            lambda: _plant_run("des", "reference", duration, conc)
        )
    modes = res.hybrid["app0"]
    return CaseResult(
        name="des",
        wall_s=wall,
        reference_wall_s=ref_wall,
        speedup=ref_wall / wall,
        iters=int(duration),
        warm_hit_rate=None,
        detail={
            "duration_s": duration,
            "concurrency": float(conc),
            "mva_periods": float(modes["mva_periods"]),
            "exact_periods": float(modes["exact_periods"]),
        },
    )


def bench_des_hybrid(scale: str) -> CaseResult:
    duration = 240.0 if scale == "full" else 120.0
    conc = 1000  # 100x the original closed-loop client count of 10
    _plant_run(
        "hybrid", "fast", 60.0, conc, n_servers=1, n_apps=1, alloc_ghz=2.0
    )  # warm the process up
    with get_telemetry().span(
        "bench.des_hybrid", duration_s=duration, concurrency=conc
    ):
        t0 = time.perf_counter()
        res = _plant_run(
            "hybrid", "fast", duration, conc,
            n_servers=1, n_apps=1, alloc_ghz=2.0,
        )
        wall = time.perf_counter() - t0
        ref_wall = _time(
            lambda: _plant_run(
                "des", "reference", duration, conc,
                n_servers=1, n_apps=1, alloc_ghz=2.0,
            )
        )
    modes = res.hybrid["app0"]
    return CaseResult(
        name="des_hybrid",
        wall_s=wall,
        reference_wall_s=ref_wall,
        speedup=ref_wall / wall,
        iters=int(duration),
        warm_hit_rate=None,
        detail={
            "duration_s": duration,
            "concurrency": float(conc),
            "clients_x_base": 100.0,
            "mva_periods": float(modes["mva_periods"]),
            "exact_periods": float(modes["exact_periods"]),
        },
    )


# ---------------------------------------------------------- telemetry --


def _obs_testbed_run(duration_s: float, instrumented: bool) -> int:
    """One testbed run, fully observed or fully dark.

    The instrumented variant is the worst reasonable case a user would
    actually run: an in-memory backend, kernel phase spans sampled 1:8,
    request tracing at 1:8, and per-tier power attribution on.  The dark
    variant nests a disabled :class:`Telemetry` so the suite's own
    telemetry scope does not leak into the reference timing.  Returns
    the number of records captured (0 when dark).
    """
    model = ARXModel(a=[0.4], b=[[-800.0, -300.0], [-100.0, -50.0]], g=1800.0)
    cfg = TestbedConfig(
        n_servers=2,
        n_apps=2,
        duration_s=duration_s,
        warmup_s=20.0,
        concurrency=10,
        initial_alloc_ghz=0.6,
        trace_requests_every=8 if instrumented else 0,
        attribute_power=instrumented,
        seed=77,
    )
    if instrumented:
        backend = InMemoryBackend()
        with use_telemetry(Telemetry(backend, span_sample_every=8)):
            TestbedExperiment(cfg, model).run()
        return len(backend.records)
    with use_telemetry(Telemetry()):
        TestbedExperiment(cfg, model).run()
    return 0


def bench_telemetry(scale: str) -> CaseResult:
    duration = 300.0 if scale == "full" else 120.0
    _obs_testbed_run(60.0, instrumented=True)  # warm the process up
    with get_telemetry().span("bench.telemetry", duration_s=duration):
        t0 = time.perf_counter()
        n_records = _obs_testbed_run(duration, instrumented=True)
        wall = time.perf_counter() - t0
        ref_wall = _time(lambda: _obs_testbed_run(duration, instrumented=False))
    return CaseResult(
        name="telemetry",
        wall_s=wall,
        reference_wall_s=ref_wall,
        speedup=ref_wall / wall,
        iters=n_records,
        warm_hit_rate=None,
        detail={
            "duration_s": duration,
            "records": float(n_records),
            "overhead_pct": (wall / ref_wall - 1.0) * 100.0,
        },
    )


# --------------------------------------------------------- largescale --


def _largescale_run(scale: str) -> None:
    if scale == "full":
        trace = generate_trace(TraceConfig(n_servers=600, n_days=1), rng=42)
        cfg = LargeScaleConfig(
            n_vms=530, n_servers=900, seed=11, incremental=True
        )
    else:
        trace = generate_trace(TraceConfig(n_servers=120, n_days=1), rng=42)
        cfg = LargeScaleConfig(
            n_vms=110, n_servers=200, seed=11, incremental=True
        )
    run_largescale(trace, cfg)


def bench_largescale(scale: str) -> CaseResult:
    with get_telemetry().span("bench.largescale", scale=scale):
        wall = _time(lambda: _largescale_run(scale))
    ref_wall = LARGESCALE_SEED_WALL_S[scale]
    return CaseResult(
        name="largescale",
        wall_s=wall,
        reference_wall_s=ref_wall,
        speedup=ref_wall / wall,
        iters=1,
        warm_hit_rate=None,
        detail={"reference_is_committed_seed_measurement": 1.0},
    )


CASES: Dict[str, Callable[[str], CaseResult]] = {
    "mpc_solve": bench_mpc_solve,
    "minslack": bench_minslack,
    "ipac": bench_ipac,
    "des": bench_des,
    "des_hybrid": bench_des_hybrid,
    "telemetry": bench_telemetry,
    "largescale": bench_largescale,
}


# ------------------------------------------------------------- driver --


def run_suite(
    scale: str = "full", cases: Optional[Sequence[str]] = None
) -> Dict[str, object]:
    """Run the selected cases and return the report dict.

    ``scale`` is ``"full"`` (the committed baseline numbers) or
    ``"smoke"`` (reduced sizes for CI).  ``cases`` restricts to a subset
    of :data:`CASES` (``None`` = all, in definition order).
    """
    if scale not in ("full", "smoke"):
        raise ValueError(f"scale must be 'full' or 'smoke', got {scale!r}")
    names = list(CASES) if cases is None else list(cases)
    for name in names:
        if name not in CASES:
            raise KeyError(
                f"unknown case {name!r}; known: {', '.join(CASES)}"
            )
    backend = InMemoryBackend()
    results: List[CaseResult] = []
    # Sample the kernel's per-period phase spans hard (first span of
    # each name is always kept, so the bench.* markers survive): the
    # suite's own instrumentation must not tax the paths it times.
    with use_telemetry(Telemetry(backend, span_sample_every=32)):
        for name in names:
            results.append(CASES[name](scale))
    return {
        "schema": 1,
        "scale": scale,
        "cases": {r.name: asdict(r) for r in results},
    }


def write_report(report: Dict[str, object], path: str) -> None:
    """Merge this run's scale section into the JSON report at ``path``.

    The on-disk document keys case tables by scale —
    ``{"schema": 1, "scales": {"full": {"cases": ...}, "smoke": ...}}``
    — so the committed ``BENCH_perf.json`` can hold both the full
    baseline numbers and the reduced CI variant.  Sections for other
    scales already in the file are preserved.
    """
    doc: Dict[str, object] = {"schema": 1, "scales": {}}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            existing = json.load(fh)
        if isinstance(existing, dict) and isinstance(
            existing.get("scales"), dict
        ):
            doc["scales"].update(existing["scales"])
    except (OSError, ValueError):
        pass
    doc["scales"][report["scale"]] = {"cases": report["cases"]}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _baseline_cases(
    baseline: Dict[str, object], scale: object
) -> Dict[str, Dict[str, object]]:
    """Case table of ``baseline`` for ``scale`` (either document shape)."""
    scales = baseline.get("scales")
    if isinstance(scales, dict):
        section = scales.get(scale, {})
        return section.get("cases", {}) if isinstance(section, dict) else {}
    return baseline.get("cases", {})


def compare_to_baseline(
    report: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = 0.25,
) -> List[str]:
    """Regression check against a committed baseline report.

    Compares *speedups* (fast path vs reference path, both measured in
    the same process), never absolute wall-clock — so the check is
    stable across machines.  The baseline section matching the report's
    scale is used (a full-scale run is never judged against smoke
    numbers).  A case regresses when its measured speedup falls more
    than ``tolerance`` (fraction) below the baseline's.  Returns a list
    of human-readable failures (empty = pass); cases present in only
    one report are skipped.
    """
    failures: List[str] = []
    base_cases = _baseline_cases(baseline, report.get("scale"))
    for name, case in report.get("cases", {}).items():
        base = base_cases.get(name)
        if base is None:
            continue
        floor = float(base["speedup"]) * (1.0 - tolerance)
        if float(case["speedup"]) < floor:
            failures.append(
                f"{name}: speedup x{case['speedup']:.2f} is below "
                f"x{floor:.2f} (baseline x{base['speedup']:.2f} "
                f"- {tolerance:.0%} tolerance)"
            )
    return failures
