"""The tracked performance suite: fast lane vs reference, end to end.

Each case times one optimized hot path against the unoptimized
reference path *in the same process on the same inputs*, so the
reported ``speedup`` is machine-independent — CI compares speedups,
never absolute wall-clock, against the committed ``BENCH_perf.json``.

Cases
-----
``mpc_solve``
    400 closed-loop MPC periods with binding rate/capacity constraints.
    Fast: cached prediction matrices + warm-started active set.
    Reference: warm start off and the matrix cache busted every period
    (what the pre-fast-lane controller recomputed each solve).
``minslack``
    A drifting-demand repack sequence for one server.  Fast: dominance
    pruning + the previous period's selection as starting incumbent.
    Reference: exhaustive cold search each period.
``ipac``
    Full PAC consolidations (the repack the ``pac``/``static_peak``
    schemes and the evacuation path issue) over a drifting-demand
    sequence on a near-subset-sum instance.  Fast:
    ``PACConfig.incremental`` seeds each server's Minimum Slack search
    with the standing selection, which revalidates in zero steps while
    demand drifts slowly.  Reference: every search from scratch.
    (Steady-state :func:`~repro.core.optimizer.ipac.ipac` calls never
    exercise this seam — its relief phase is idle without overloads and
    its drain seeds point at the excluded victim — so the case times
    the call sites where the seed actually binds.)
``mpc_batch``
    A homogeneous fleet of MPC controllers solved per period.  Fast:
    :func:`~repro.control.mpc_core.solve_mpc_batch` — shared-model
    controllers grouped into one stacked-RHS QP solve per active-set
    round.  Reference: one scalar :meth:`MPCController.solve` each.
``rls_batch``
    Per-app ARX adaptation across a fleet.  Fast:
    :func:`~repro.sysid.rls.rls_update_batch` — stacked ``(B, n, n)``
    covariance einsums.  Reference: sequential per-app updates.
``fleet_control``
    The production control step end to end at a paper-scale app count:
    hundreds of registered controllers driven through
    :meth:`~repro.core.manager.PowerManager.control_step`.  Fast:
    ``control_mode="fleet"`` (the default) — one
    :class:`~repro.core.fleet.FleetControlStep` run per period.
    Reference: ``control_mode="scalar"``, the per-app loop.  Unlike
    ``mpc_batch``/``rls_batch`` this includes the manager dispatch,
    measurement handling, and demand fan-out around the kernels.
``sharded``
    The paper-scale control plane (5,415 servers / 20,000 VMs at full
    scale) through :class:`~repro.engine.sharded_backend.ShardedBackend`.
    Fast: pods on a multiprocess worker pool.  Reference: the same pods
    inline in one process (``workers=1``).  The speedup is bounded by
    the physical cores available — on a single-core machine it sits at
    or slightly below 1.0 (IPC overhead), which is the honest number
    for that machine; the committed baseline records the measuring
    box's core count in ``detail.cpu_count``.
``sharded_smoke``
    CI-sized sharded case: asserts the pooled run is *bit-identical*
    (event-log hash and per-VM energy ledger) to the inline run, then
    times 2 workers against 1.  Scale-independent; wired into the CI
    benchmark-smoke job.
``des``
    The request-level plant itself, controller excluded (uncontrolled
    testbed, static allocations).  Fast: the hybrid plant — MVA
    fast-forward over quasi-static periods, exact DES at transients —
    on the allocation-free array-PS kernel.  Reference: pure DES on the
    pre-fast-lane dict-PS kernel (``des_kernel="reference"``).  This is
    the headline DES fast-lane number; target ≥ 10x at full scale.
``des_hybrid``
    The same fast-vs-reference plant comparison at 100x the original
    closed-loop client count (1000 clients on one app): the scale the
    hybrid exists for.  Exact DES runs only at startup/settling; nearly
    everything after is MVA fast-forward.
``telemetry``
    Observability overhead on the DES hot path.  "Fast" is the fully
    instrumented run — kernel ``phase.*`` spans (sampled), request
    tracing, per-tier power attribution — against the same run with
    telemetry disabled.  Speedup here is *expected* to sit at or just
    below 1.0; the case exists so the cost of watching the system is a
    tracked number instead of a silent tax on ``des``.
``largescale``
    The trace-driven harness at several hundred VMs — the end-to-end
    number.  Fast: default config (pruning, trusted snapshot
    construction, vectorized accounting) + incremental packing.
    Reference speed is the committed seed measurement
    (``baseline_wall_s``), re-measured only when the seed changes.

Every case reports ``{wall_s, iters, warm_hit_rate}`` (the latter is
``null`` where warm starting does not apply) plus the reference timing
and the speedup.  Timings run under a ``repro.obs`` telemetry scope so
the spans of each case land in the same report.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.cluster import Application, DataCenter, Server, VM
from repro.cluster.catalog import TESTBED_SERVER
from repro.control.arx import ARXModel
from repro.control.mpc_core import MPCConfig, MPCController, solve_mpc_batch
from repro.core import ControllerConfig, PowerManager, ResponseTimeController
from repro.core.optimizer.minslack import MinSlackConfig
from repro.core.optimizer.pac import PACConfig, pac
from repro.packing.mbs import MemoryConstraint, minimum_bin_slack
from repro.core.optimizer.types import (
    PlacementProblem,
    ServerInfo,
    make_vm_infos,
)
from repro.engine.sharded_backend import (
    ShardedConfig,
    build_sharded_engine,
    run_sharded,
)
from repro.obs import InMemoryBackend, Telemetry, get_telemetry, use_telemetry
from repro.sim.largescale import LargeScaleConfig, run_largescale
from repro.sim.testbed import TestbedConfig, TestbedExperiment
from repro.sysid.rls import RecursiveARXEstimator, rls_update_batch
from repro.traces.generator import TraceConfig, generate_trace

__all__ = [
    "CaseResult",
    "run_suite",
    "write_report",
    "compare_to_baseline",
    "CASES",
]

#: Wall seconds the seed revision (commit 0c57883) needs for the
#: ``largescale`` case on the reference machine.  The fast lane is
#: measured live and compared against this; re-measure via
#: ``git worktree`` if the scenario below ever changes.
LARGESCALE_SEED_WALL_S = {"full": 0.77, "smoke": 0.12}


@dataclass(frozen=True)
class CaseResult:
    """One benchmark case: the fast path against its reference path."""

    name: str
    wall_s: float
    reference_wall_s: float
    speedup: float
    iters: int
    warm_hit_rate: Optional[float]
    detail: Dict[str, float]

    def row(self) -> str:
        hit = "-" if self.warm_hit_rate is None else f"{self.warm_hit_rate:.0%}"
        return (
            f"{self.name:<12} {self.wall_s * 1e3:>9.1f}ms "
            f"{self.reference_wall_s * 1e3:>9.1f}ms  x{self.speedup:>5.2f}  "
            f"iters={self.iters:<7d} warm={hit}"
        )


def _time(fn: Callable[[], object]) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


# ---------------------------------------------------------------- mpc --


def _mpc_loop(n_periods: int, warm: bool, bust_cache: bool) -> MPCController:
    """Closed MPC loop against a 3-input plant with binding constraints.

    The horizon (P=24, M=8, three applications) makes the per-period
    matrix work (lifted prediction matrix, Hessian, constraint stack)
    comparable to a busy multi-tier controller; the tight ``delta_max``
    keeps the rate constraints active so the QP working set is non-empty
    and warm starting has something to carry over.  ``bust_cache``
    discards the matrix cache every period — the pre-fast-lane
    controller recomputed all of it each solve.
    """
    model = ARXModel(
        a=[0.4],
        b=[[-800.0, -300.0, -500.0], [-100.0, -50.0, -80.0]],
        g=1800.0,
    )
    ctrl = MPCController(
        model,
        MPCConfig(
            prediction_horizon=24,
            control_horizon=8,
            q_weight=1.0,
            r_weight=1e3,
            delta_max=0.03,
            power_weight=200.0,
            warm_start=warm,
        ),
    )
    rng = np.random.default_rng(3)
    t_hist = [900.0, 950.0]
    c0 = np.full(3, 0.7)
    c_hist = np.vstack([c0, c0])
    ref = np.full(24, 1000.0)
    for k in range(n_periods):
        t_now = 900.0 + 200.0 * np.sin(k / 6.0) + rng.normal(0, 25)
        t_hist = [t_now] + t_hist[:1]
        if bust_cache:
            ctrl._cache_key = None  # re-derive matrices, as the seed did
        sol = ctrl.solve(
            t_hist, c_hist, ref, 1000.0, [0.2] * 3, [3.0] * 3
        )
        c_hist = np.vstack(
            [np.clip(c_hist[0] + sol.delta_c, 0.2, 3.0), c_hist[0]]
        )
    return ctrl


def bench_mpc_solve(scale: str) -> CaseResult:
    n = 300 if scale == "full" else 100
    _mpc_loop(30, warm=True, bust_cache=False)  # warm the process up
    with get_telemetry().span("bench.mpc_solve", periods=n):
        t0 = time.perf_counter()
        ctrl = _mpc_loop(n, warm=True, bust_cache=False)
        wall = time.perf_counter() - t0
        ref_wall = _time(lambda: _mpc_loop(n, warm=False, bust_cache=True))
    hit_rate = ctrl.warm_hits / max(ctrl.solves, 1)
    return CaseResult(
        name="mpc_solve",
        wall_s=wall,
        reference_wall_s=ref_wall,
        speedup=ref_wall / wall,
        iters=n,
        warm_hit_rate=hit_rate,
        detail={"periods": float(n)},
    )


# ----------------------------------------------------------- minslack --


def _drift_demands(base: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """One period of demand drift, clipped away from zero."""
    return np.clip(
        base * rng.uniform(0.9998, 1.0002, size=base.shape), 0.05, None
    )


class _GenericMemoryConstraint(MemoryConstraint):
    """Same semantics as :class:`MemoryConstraint`, but a subclass.

    ``minimum_bin_slack`` inlines the *exact* ``MemoryConstraint`` type;
    a subclass takes the generic accepts/push/pop protocol path — one
    bound-method call per node, which is how the pre-fast-lane search
    evaluated every constraint.  The reference timing runs through it.
    """


def _minslack_rounds(
    n_items: int, rounds: int, seed: int, fast: bool
) -> tuple[int, int]:
    """Repack one server ``rounds`` times under slowly drifting demands.

    The instance plants a hidden subset whose total, plus a 3 ms-of-GHz
    offset, is the capacity: fills within the 0.005 GHz epsilon are rare
    (near subset-sum), so the cold search does real branch-and-bound
    work each round, while the seeded search revalidates the previous
    selection and exits immediately.  Returns (total_steps, seeded).
    """
    rng = np.random.default_rng(seed)
    base = rng.uniform(0.3, 0.9, size=n_items)
    planted = rng.choice(n_items, size=n_items // 3, replace=False)
    capacity = float(base[planted].sum()) + 0.003
    mems = rng.uniform(256.0, 2048.0, size=n_items)
    mem_total = float(mems.sum())
    prev: Optional[Sequence[int]] = None
    total_steps = 0
    seeded = 0
    for _ in range(rounds):
        demands = _drift_demands(base, rng)
        cons_type = MemoryConstraint if fast else _GenericMemoryConstraint
        res = minimum_bin_slack(
            demands,
            capacity,
            constraint=cons_type(mems, mem_total),
            epsilon=0.005,
            max_steps=60000,
            incumbent=prev if fast else None,
            prune=fast,
        )
        total_steps += res.steps
        seeded += int(res.seeded)
        prev = res.selected
    return total_steps, seeded


def bench_minslack(scale: str) -> CaseResult:
    n_items = 14
    seeds, rounds = (range(7, 15), 15) if scale == "full" else (range(7, 11), 6)
    _minslack_rounds(n_items, 2, 7, fast=True)  # warm the process up
    _minslack_rounds(n_items, 2, 7, fast=False)
    steps = ref_steps = seeded = 0
    with get_telemetry().span(
        "bench.minslack", items=n_items, instances=len(seeds), rounds=rounds
    ):
        t0 = time.perf_counter()
        for seed in seeds:
            s, sd = _minslack_rounds(n_items, rounds, seed, fast=True)
            steps += s
            seeded += sd
        wall = time.perf_counter() - t0
        t0 = time.perf_counter()
        for seed in seeds:
            s, _ = _minslack_rounds(n_items, rounds, seed, fast=False)
            ref_steps += s
        ref_wall = time.perf_counter() - t0
    n_rounds = len(seeds) * rounds
    return CaseResult(
        name="minslack",
        wall_s=wall,
        reference_wall_s=ref_wall,
        speedup=ref_wall / wall,
        iters=steps,
        warm_hit_rate=seeded / max(n_rounds, 1),
        detail={"reference_steps": float(ref_steps), "rounds": float(n_rounds)},
    )


# --------------------------------------------------------------- ipac --


def _pac_repack_rounds(
    n_servers: int, group: int, rounds: int, incremental: bool
) -> float:
    """Repeated full consolidations under slowly drifting demands.

    Each server's capacity is planted so that its resident VM group,
    plus a 3 ms-of-GHz offset, fills it to the 0.95 packing target —
    a near-subset-sum instance per server, the regime where the cold
    Minimum Slack search does real branch-and-bound work every round
    while the incremental seed (the standing selection) revalidates and
    early-exits immediately.  The mapping is carried forward between
    rounds, as every real repack call site does.
    """
    rng = np.random.default_rng(23)
    n_vms = n_servers * group
    base = rng.uniform(0.3, 0.9, size=n_vms)
    mems = rng.uniform(512.0, 4096.0, size=n_vms)
    servers = tuple(
        ServerInfo(
            server_id=f"s{j}",
            max_capacity_ghz=float(
                (base[j * group : (j + 1) * group].sum() + 0.003) / 0.95
            ),
            memory_mb=64_000.0,
            efficiency=0.04 + 0.0005 * (j % 7),
            active=True,
            idle_w=160.0,
            busy_w=300.0,
            sleep_w=10.0,
        )
        for j in range(n_servers)
    )
    mapping = {f"vm{i}": f"s{i // group}" for i in range(n_vms)}
    cfg = PACConfig(
        minslack=MinSlackConfig(epsilon_ghz=0.005, max_steps=20000),
        target_utilization=0.95,
        incremental=incremental,
    )
    t0 = time.perf_counter()
    for _ in range(rounds):
        demands = _drift_demands(base, rng)
        vms = make_vm_infos([f"vm{i}" for i in range(n_vms)], demands, mems)
        problem = PlacementProblem(servers=servers, vms=vms, mapping=mapping)
        plan = pac(problem, None, cfg)
        mapping = dict(plan.final_mapping)
    return time.perf_counter() - t0


def bench_ipac(scale: str) -> CaseResult:
    n_servers, group, rounds = (16, 12, 24) if scale == "full" else (8, 14, 8)
    _pac_repack_rounds(n_servers, group, 1, True)  # warm the process up
    with get_telemetry().span(
        "bench.ipac", servers=n_servers, group=group, rounds=rounds
    ):
        wall = _time(lambda: _pac_repack_rounds(n_servers, group, rounds, True))
        ref_wall = _time(
            lambda: _pac_repack_rounds(n_servers, group, rounds, False)
        )
    return CaseResult(
        name="ipac",
        wall_s=wall,
        reference_wall_s=ref_wall,
        speedup=ref_wall / wall,
        iters=rounds,
        warm_hit_rate=None,
        detail={
            "n_vms": float(n_servers * group),
            "n_servers": float(n_servers),
        },
    )


# ---------------------------------------------------------------- des --


def _plant_run(
    plant_mode: str,
    des_kernel: str,
    duration_s: float,
    concurrency: int,
    n_servers: int = 2,
    n_apps: int = 2,
    alloc_ghz: float = 1.6,
):
    """One uncontrolled testbed run: the plant alone, no controller.

    ``controlled=False`` keeps allocations static, so both arms time
    pure plant simulation — the MPC stack has its own case.  The model
    is unused in an uncontrolled run, but passing one skips the
    system-identification pre-run (a full DES experiment that would
    otherwise dominate both arms and drown the kernel difference).
    """
    b = [[-800.0] * n_apps, [-100.0] * n_apps]
    model = ARXModel(a=[0.4], b=b, g=1800.0)
    cfg = TestbedConfig(
        n_servers=n_servers,
        n_apps=n_apps,
        duration_s=duration_s,
        warmup_s=20.0,
        concurrency=concurrency,
        initial_alloc_ghz=alloc_ghz,
        controlled=False,
        plant_mode=plant_mode,
        des_kernel=des_kernel,
        seed=77,
    )
    return TestbedExperiment(cfg, model=model).run()


def bench_des(scale: str) -> CaseResult:
    duration = 600.0 if scale == "full" else 240.0
    conc = 200
    _plant_run("hybrid", "fast", 60.0, conc)  # warm the process up
    with get_telemetry().span("bench.des", duration_s=duration):
        t0 = time.perf_counter()
        res = _plant_run("hybrid", "fast", duration, conc)
        wall = time.perf_counter() - t0
        ref_wall = _time(
            lambda: _plant_run("des", "reference", duration, conc)
        )
    modes = res.hybrid["app0"]
    return CaseResult(
        name="des",
        wall_s=wall,
        reference_wall_s=ref_wall,
        speedup=ref_wall / wall,
        iters=int(duration),
        warm_hit_rate=None,
        detail={
            "duration_s": duration,
            "concurrency": float(conc),
            "mva_periods": float(modes["mva_periods"]),
            "exact_periods": float(modes["exact_periods"]),
        },
    )


def bench_des_hybrid(scale: str) -> CaseResult:
    duration = 240.0 if scale == "full" else 120.0
    conc = 1000  # 100x the original closed-loop client count of 10
    _plant_run(
        "hybrid", "fast", 60.0, conc, n_servers=1, n_apps=1, alloc_ghz=2.0
    )  # warm the process up
    with get_telemetry().span(
        "bench.des_hybrid", duration_s=duration, concurrency=conc
    ):
        t0 = time.perf_counter()
        res = _plant_run(
            "hybrid", "fast", duration, conc,
            n_servers=1, n_apps=1, alloc_ghz=2.0,
        )
        wall = time.perf_counter() - t0
        ref_wall = _time(
            lambda: _plant_run(
                "des", "reference", duration, conc,
                n_servers=1, n_apps=1, alloc_ghz=2.0,
            )
        )
    modes = res.hybrid["app0"]
    return CaseResult(
        name="des_hybrid",
        wall_s=wall,
        reference_wall_s=ref_wall,
        speedup=ref_wall / wall,
        iters=int(duration),
        warm_hit_rate=None,
        detail={
            "duration_s": duration,
            "concurrency": float(conc),
            "clients_x_base": 100.0,
            "mva_periods": float(modes["mva_periods"]),
            "exact_periods": float(modes["exact_periods"]),
        },
    )


# ---------------------------------------------------------- telemetry --


def _obs_testbed_run(duration_s: float, instrumented: bool) -> int:
    """One testbed run, fully observed or fully dark.

    The instrumented variant is the worst reasonable case a user would
    actually run: an in-memory backend, kernel phase spans sampled 1:8,
    request tracing at 1:8, and per-tier power attribution on.  The dark
    variant nests a disabled :class:`Telemetry` so the suite's own
    telemetry scope does not leak into the reference timing.  Returns
    the number of records captured (0 when dark).
    """
    model = ARXModel(a=[0.4], b=[[-800.0, -300.0], [-100.0, -50.0]], g=1800.0)
    cfg = TestbedConfig(
        n_servers=2,
        n_apps=2,
        duration_s=duration_s,
        warmup_s=20.0,
        concurrency=10,
        initial_alloc_ghz=0.6,
        trace_requests_every=8 if instrumented else 0,
        attribute_power=instrumented,
        seed=77,
    )
    if instrumented:
        backend = InMemoryBackend()
        with use_telemetry(Telemetry(backend, span_sample_every=8)):
            TestbedExperiment(cfg, model).run()
        return len(backend.records)
    with use_telemetry(Telemetry()):
        TestbedExperiment(cfg, model).run()
    return 0


def bench_telemetry(scale: str) -> CaseResult:
    duration = 300.0 if scale == "full" else 120.0
    _obs_testbed_run(60.0, instrumented=True)  # warm the process up
    with get_telemetry().span("bench.telemetry", duration_s=duration):
        t0 = time.perf_counter()
        n_records = _obs_testbed_run(duration, instrumented=True)
        wall = time.perf_counter() - t0
        ref_wall = _time(lambda: _obs_testbed_run(duration, instrumented=False))
    return CaseResult(
        name="telemetry",
        wall_s=wall,
        reference_wall_s=ref_wall,
        speedup=ref_wall / wall,
        iters=n_records,
        warm_hit_rate=None,
        detail={
            "duration_s": duration,
            "records": float(n_records),
            "overhead_pct": (wall / ref_wall - 1.0) * 100.0,
        },
    )


# --------------------------------------------------------- largescale --


def _largescale_run(scale: str) -> None:
    if scale == "full":
        trace = generate_trace(TraceConfig(n_servers=600, n_days=1), rng=42)
        cfg = LargeScaleConfig(
            n_vms=530, n_servers=900, seed=11, incremental=True
        )
    else:
        trace = generate_trace(TraceConfig(n_servers=120, n_days=1), rng=42)
        cfg = LargeScaleConfig(
            n_vms=110, n_servers=200, seed=11, incremental=True
        )
    run_largescale(trace, cfg)


def bench_largescale(scale: str) -> CaseResult:
    with get_telemetry().span("bench.largescale", scale=scale):
        wall = _time(lambda: _largescale_run(scale))
    ref_wall = LARGESCALE_SEED_WALL_S[scale]
    return CaseResult(
        name="largescale",
        wall_s=wall,
        reference_wall_s=ref_wall,
        speedup=ref_wall / wall,
        iters=1,
        warm_hit_rate=None,
        detail={"reference_is_committed_seed_measurement": 1.0},
    )


# ------------------------------------------------------- batch kernel --


def _mpc_fleet_periods(
    n_ctrls: int, n_periods: int, batch: bool
) -> tuple[int, int]:
    """Drive a homogeneous MPC fleet; returns (solves, warm_hits).

    The set point is reachable under the rate limit (unlike the
    deliberately saturating ``mpc_solve`` plant): an infeasible terminal
    would push every member through the scalar softening/SLSQP path and
    time SciPy instead of the stacked-RHS kernel in both arms.
    """
    model = ARXModel(
        a=[0.4], b=[[-800.0, -300.0, -500.0], [-100.0, -50.0, -80.0]], g=1800.0
    )
    cfg = MPCConfig(
        prediction_horizon=8,
        control_horizon=2,
        r_weight=1e3,
        delta_max=0.5,
        power_weight=200.0,
    )
    ctrls = [MPCController(model, cfg) for _ in range(n_ctrls)]
    rng = np.random.default_rng(9)
    t_hists = [[600.0 + 50.0 * rng.normal(), 600.0] for _ in range(n_ctrls)]
    c_hists = [np.vstack([np.full(3, 0.7)] * 2) for _ in range(n_ctrls)]
    ref = np.full(8, 600.0)
    for k in range(n_periods):
        reqs = []
        for i in range(n_ctrls):
            t_now = 600.0 + 40.0 * np.sin(k / 6.0) + rng.normal(0, 10)
            t_hists[i] = [t_now] + t_hists[i][:1]
            reqs.append(
                dict(
                    t_hist=t_hists[i], c_hist=c_hists[i], reference=ref,
                    setpoint=600.0, c_min=[0.2] * 3, c_max=[3.0] * 3,
                )
            )
        if batch:
            sols = solve_mpc_batch(ctrls, reqs)
        else:
            sols = [c.solve(**r) for c, r in zip(ctrls, reqs)]
        for i, sol in enumerate(sols):
            c_hists[i] = np.vstack(
                [np.clip(c_hists[i][0] + sol.delta_c, 0.2, 3.0), c_hists[i][0]]
            )
    return (
        sum(c.solves for c in ctrls),
        sum(c.warm_hits for c in ctrls),
    )


def bench_mpc_batch(scale: str) -> CaseResult:
    n_ctrls, n_periods = (192, 24) if scale == "full" else (96, 8)
    _mpc_fleet_periods(8, 4, batch=True)  # warm the process up
    with get_telemetry().span(
        "bench.mpc_batch", controllers=n_ctrls, periods=n_periods
    ):
        t0 = time.perf_counter()
        solves, warm = _mpc_fleet_periods(n_ctrls, n_periods, batch=True)
        wall = time.perf_counter() - t0
        ref_wall = _time(
            lambda: _mpc_fleet_periods(n_ctrls, n_periods, batch=False)
        )
    return CaseResult(
        name="mpc_batch",
        wall_s=wall,
        reference_wall_s=ref_wall,
        speedup=ref_wall / wall,
        iters=solves,
        warm_hit_rate=warm / max(solves, 1),
        detail={"controllers": float(n_ctrls), "periods": float(n_periods)},
    )


def _rls_fleet_steps(n_apps: int, n_steps: int, batch: bool) -> int:
    model = ARXModel(a=[0.55], b=[[-0.8, -0.4]], g=3.0)
    ests = [RecursiveARXEstimator(model) for _ in range(n_apps)]
    rng = np.random.default_rng(5)
    for _ in range(n_steps):
        meas = []
        for _i in range(n_apps):
            t_hist = [2.0 + 0.1 * rng.normal()]
            c_hist = np.abs(rng.normal(size=(1, 2))) + 1.0
            y = (
                3.0 + 0.55 * t_hist[0] - 0.8 * c_hist[0, 0]
                - 0.4 * c_hist[0, 1] + 0.02 * rng.normal()
            )
            meas.append((y, t_hist, c_hist))
        if batch:
            rls_update_batch(ests, meas)
        else:
            for est, mm in zip(ests, meas):
                est.update(*mm)
    return sum(e.n_updates for e in ests)


def bench_rls_batch(scale: str) -> CaseResult:
    n_apps, n_steps = (400, 40) if scale == "full" else (120, 12)
    _rls_fleet_steps(8, 4, batch=True)  # warm the process up
    with get_telemetry().span("bench.rls_batch", apps=n_apps, steps=n_steps):
        t0 = time.perf_counter()
        updates = _rls_fleet_steps(n_apps, n_steps, batch=True)
        wall = time.perf_counter() - t0
        ref_wall = _time(lambda: _rls_fleet_steps(n_apps, n_steps, batch=False))
    return CaseResult(
        name="rls_batch",
        wall_s=wall,
        reference_wall_s=ref_wall,
        speedup=ref_wall / wall,
        iters=updates,
        warm_hit_rate=None,
        detail={"apps": float(n_apps), "steps": float(n_steps)},
    )


def _fleet_manager_periods(n_apps: int, n_periods: int, mode: str) -> int:
    """Drive ``PowerManager.control_step`` for a fleet of 2-tier apps.

    Unlike ``mpc_batch``/``rls_batch`` — which time the kernels in
    isolation — this measures the whole production phase 1: manager
    dispatch, measurement handling, the solve (batched or per-app), and
    the demand fan-out.  Enough hosts that arbitration stays trivial
    (the arbitration cost is identical in both arms and would only
    dilute the number being measured).  Returns total MPC solves.
    """
    dc = DataCenter()
    n_hosts = max(2, n_apps // 4)
    for j in range(2):
        for s in range(n_hosts):
            dc.add_server(Server(f"H{j}-{s}", TESTBED_SERVER))
    model = ARXModel(a=[0.4], b=[[-800.0, -300.0], [-100.0, -50.0]], g=1800.0)
    cfg = ControllerConfig(util_band=None)
    mgr = PowerManager(dc, control_mode=mode)
    for i in range(n_apps):
        web, db = f"a{i}-web", f"a{i}-db"
        for j, vm_id in enumerate((web, db)):
            dc.add_vm(VM(vm_id, app_id=f"a{i}", tier_index=j,
                         memory_mb=256, demand_ghz=0.8))
            dc.place(vm_id, f"H{j}-{i % n_hosts}")
        dc.add_application(Application(f"a{i}", [web, db]))
        mgr.register_controller(
            f"a{i}",
            ResponseTimeController(
                model, cfg, c_min=[0.2, 0.2], c_max=[3.0, 3.0],
                initial_alloc_ghz=[0.8, 0.8],
            ),
        )
    rng = np.random.default_rng(17)
    for k in range(n_periods):
        meas = {
            f"a{i}": 600.0 + 40.0 * np.sin(k / 6.0 + i) + rng.normal(0, 10)
            for i in range(n_apps)
        }
        mgr.control_step(meas)
    return sum(c._mpc.solves for c in mgr.controllers.values())


def bench_fleet_control(scale: str) -> CaseResult:
    """The tentpole number: fleet control_step vs the scalar loop at a
    paper-scale app count (the paper's testbed is small, but §V argues
    hundreds-to-thousands of applications per manager)."""
    n_apps, n_periods = (300, 8) if scale == "full" else (100, 4)
    _fleet_manager_periods(8, 2, "fleet")  # warm the process up
    with get_telemetry().span(
        "bench.fleet_control", apps=n_apps, periods=n_periods
    ):
        t0 = time.perf_counter()
        solves = _fleet_manager_periods(n_apps, n_periods, "fleet")
        wall = time.perf_counter() - t0
        ref_wall = _time(
            lambda: _fleet_manager_periods(n_apps, n_periods, "scalar")
        )
    return CaseResult(
        name="fleet_control",
        wall_s=wall,
        reference_wall_s=ref_wall,
        speedup=ref_wall / wall,
        iters=solves,
        warm_hit_rate=None,
        detail={"apps": float(n_apps), "periods": float(n_periods)},
    )


# ------------------------------------------------------------ sharded --

#: Records excluded from the golden event-log hash (mirrors
#: ``repro.service.runner.HASH_EXCLUDED_KINDS`` for in-memory records).
_HASH_EXCLUDED_KINDS = ("span", "metrics")


def _records_hash(records: Sequence[Dict[str, object]]) -> str:
    """sha256 over non-span/metrics records — the golden event-log hash
    (same formula as :func:`repro.service.runner.eventlog_hash`)."""
    events = [r for r in records if r.get("kind") not in _HASH_EXCLUDED_KINDS]
    return hashlib.sha256(
        json.dumps(events, sort_keys=True, default=str).encode()
    ).hexdigest()


def _sharded_wall(trace, base: LargeScaleConfig, n_pods: int, workers: int) -> float:
    cfg = ShardedConfig(base=base, n_pods=n_pods, workers=workers)
    with use_telemetry(Telemetry()):  # time the plant, not the observers
        return _time(lambda: run_sharded(trace, cfg))


def _sharded_observed(trace, base: LargeScaleConfig, n_pods: int, workers: int):
    """One observed sharded run; returns (hash, ledger, total_energy)."""
    cfg = ShardedConfig(base=base, n_pods=n_pods, workers=workers)
    backend_mem = InMemoryBackend()
    with use_telemetry(Telemetry(backend_mem)):
        engine, backend = build_sharded_engine(trace, cfg)
        try:
            backend.start()
            engine.run()
            result = backend.result()
            ledger = backend.vm_energy_ledger()
        finally:
            backend.close()
    return (
        _records_hash(backend_mem.records),
        ledger,
        float(result.total_energy_wh),
    )


def bench_sharded(scale: str) -> CaseResult:
    if scale == "full":
        # Paper scale: 5,415 servers hosting 20,000 VMs (§V).
        n_vms, n_servers, n_pods = 20000, 5415, 8
        trace = generate_trace(TraceConfig(n_servers=n_vms, n_days=1), rng=13)
        sweep = (1, 2, 4)
    else:
        n_vms, n_servers, n_pods = 2000, 600, 2
        trace = generate_trace(TraceConfig(n_servers=n_vms, n_days=1), rng=13)
        sweep = (1, 2)
    base = LargeScaleConfig(
        n_vms=n_vms, n_servers=n_servers, seed=5, incremental=True
    )
    walls: Dict[int, float] = {}
    with get_telemetry().span(
        "bench.sharded", vms=n_vms, servers=n_servers, pods=n_pods
    ):
        for w in sweep:
            walls[w] = _sharded_wall(trace, base, n_pods, w)
    wall = walls[sweep[-1]]
    ref_wall = walls[1]
    detail = {f"wall_s_workers_{w}": walls[w] for w in sweep}
    detail.update(
        {
            "n_vms": float(n_vms),
            "n_servers": float(n_servers),
            "n_pods": float(n_pods),
            "cpu_count": float(os.cpu_count() or 1),
        }
    )
    return CaseResult(
        name="sharded",
        wall_s=wall,
        reference_wall_s=ref_wall,
        speedup=ref_wall / wall,
        iters=n_vms,
        warm_hit_rate=None,
        detail=detail,
    )


def bench_sharded_smoke(scale: str) -> CaseResult:
    """CI case: pooled ≡ inline (bit-identical), then 2 vs 1 workers."""
    # Identity first, at a size where observing every event is cheap.
    id_trace = generate_trace(TraceConfig(n_servers=80, n_days=1), rng=13)
    id_base = LargeScaleConfig(
        n_vms=64, n_servers=100, seed=5, incremental=True, attribute_power=True
    )
    h_inline, led_inline, e_inline = _sharded_observed(id_trace, id_base, 2, 1)
    h_pooled, led_pooled, e_pooled = _sharded_observed(id_trace, id_base, 2, 2)
    if h_inline != h_pooled:
        raise RuntimeError(
            f"sharded pooled run diverged from inline: event-log hash "
            f"{h_pooled} != {h_inline}"
        )
    if led_inline is None or led_pooled is None or not np.array_equal(
        led_inline, led_pooled
    ):
        raise RuntimeError("sharded pooled vm_energy ledger diverged from inline")
    if e_inline != e_pooled:
        raise RuntimeError(
            f"sharded pooled total energy diverged: {e_pooled} != {e_inline}"
        )
    # Then the timing pair, sized so two real cores show a >1 speedup.
    n_vms, n_servers = 1500, 500
    trace = generate_trace(TraceConfig(n_servers=n_vms, n_days=1), rng=13)
    base = LargeScaleConfig(
        n_vms=n_vms, n_servers=n_servers, seed=5, incremental=True
    )
    with get_telemetry().span("bench.sharded_smoke", vms=n_vms):
        wall = _sharded_wall(trace, base, 2, 2)
        ref_wall = _sharded_wall(trace, base, 2, 1)
    return CaseResult(
        name="sharded_smoke",
        wall_s=wall,
        reference_wall_s=ref_wall,
        speedup=ref_wall / wall,
        iters=n_vms,
        warm_hit_rate=None,
        detail={
            "n_vms": float(n_vms),
            "n_servers": float(n_servers),
            "identity_events_hash_match": 1.0,
            "cpu_count": float(os.cpu_count() or 1),
        },
    )


CASES: Dict[str, Callable[[str], CaseResult]] = {
    "mpc_solve": bench_mpc_solve,
    "minslack": bench_minslack,
    "ipac": bench_ipac,
    "mpc_batch": bench_mpc_batch,
    "rls_batch": bench_rls_batch,
    "fleet_control": bench_fleet_control,
    "des": bench_des,
    "des_hybrid": bench_des_hybrid,
    "telemetry": bench_telemetry,
    "largescale": bench_largescale,
    "sharded": bench_sharded,
    "sharded_smoke": bench_sharded_smoke,
}


# ------------------------------------------------------------- driver --


def run_suite(
    scale: str = "full", cases: Optional[Sequence[str]] = None
) -> Dict[str, object]:
    """Run the selected cases and return the report dict.

    ``scale`` is ``"full"`` (the committed baseline numbers) or
    ``"smoke"`` (reduced sizes for CI).  ``cases`` restricts to a subset
    of :data:`CASES` (``None`` = all, in definition order).
    """
    if scale not in ("full", "smoke"):
        raise ValueError(f"scale must be 'full' or 'smoke', got {scale!r}")
    names = list(CASES) if cases is None else list(cases)
    for name in names:
        if name not in CASES:
            raise KeyError(
                f"unknown case {name!r}; known: {', '.join(CASES)}"
            )
    backend = InMemoryBackend()
    results: List[CaseResult] = []
    # Sample the kernel's per-period phase spans hard (first span of
    # each name is always kept, so the bench.* markers survive): the
    # suite's own instrumentation must not tax the paths it times.
    with use_telemetry(Telemetry(backend, span_sample_every=32)):
        for name in names:
            results.append(CASES[name](scale))
    return {
        "schema": 1,
        "scale": scale,
        "cases": {r.name: asdict(r) for r in results},
    }


def write_report(report: Dict[str, object], path: str) -> None:
    """Merge this run's scale section into the JSON report at ``path``.

    The on-disk document keys case tables by scale —
    ``{"schema": 1, "scales": {"full": {"cases": ...}, "smoke": ...}}``
    — so the committed ``BENCH_perf.json`` can hold both the full
    baseline numbers and the reduced CI variant.  Sections for other
    scales already in the file are preserved.
    """
    doc: Dict[str, object] = {"schema": 1, "scales": {}}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            existing = json.load(fh)
        if isinstance(existing, dict) and isinstance(
            existing.get("scales"), dict
        ):
            doc["scales"].update(existing["scales"])
    except (OSError, ValueError):
        pass
    doc["scales"][report["scale"]] = {"cases": report["cases"]}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _baseline_cases(
    baseline: Dict[str, object], scale: object
) -> Dict[str, Dict[str, object]]:
    """Case table of ``baseline`` for ``scale`` (either document shape)."""
    scales = baseline.get("scales")
    if isinstance(scales, dict):
        section = scales.get(scale, {})
        return section.get("cases", {}) if isinstance(section, dict) else {}
    return baseline.get("cases", {})


def compare_to_baseline(
    report: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = 0.25,
) -> List[str]:
    """Regression check against a committed baseline report.

    Compares *speedups* (fast path vs reference path, both measured in
    the same process), never absolute wall-clock — so the check is
    stable across machines.  The baseline section matching the report's
    scale is used (a full-scale run is never judged against smoke
    numbers).  A case regresses when its measured speedup falls more
    than ``tolerance`` (fraction) below the baseline's — or, regardless
    of tolerance, when a fast path whose baseline shows a genuine win
    (speedup >= 1.0) measures *slower than its own reference* (< 1.0):
    a tolerance wide enough to excuse losing the entire win would
    otherwise hide exactly the regression the suite exists to catch.
    Returns a list of human-readable failures (empty = pass); cases
    present in only one report are skipped.
    """
    failures: List[str] = []
    base_cases = _baseline_cases(baseline, report.get("scale"))
    for name, case in report.get("cases", {}).items():
        base = base_cases.get(name)
        if base is None:
            continue
        measured = float(case["speedup"])
        base_speedup = float(base["speedup"])
        floor = base_speedup * (1.0 - tolerance)
        if measured < 1.0 <= base_speedup:
            failures.append(
                f"{name}: speedup x{measured:.2f} fell below x1.00 — the "
                f"fast path is slower than its reference (baseline "
                f"x{base_speedup:.2f})"
            )
        elif measured < floor:
            failures.append(
                f"{name}: speedup x{case['speedup']:.2f} is below "
                f"x{floor:.2f} (baseline x{base['speedup']:.2f} "
                f"- {tolerance:.0%} tolerance)"
            )
    return failures
