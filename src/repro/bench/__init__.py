"""Performance benchmark harness for the hot paths.

``repro.bench.perf_suite`` times the three optimized loops — the MPC QP
solve, the Minimum Slack packing search, and the trace-driven
large-scale harness — each against its unoptimized reference path, and
writes a machine-readable report (``BENCH_perf.json`` at the repo root
is the committed baseline).  Run it with ``repro-bench`` or
``python benchmarks/bench_perf_suite.py``.
"""

from repro.bench.perf_suite import (
    CaseResult,
    compare_to_baseline,
    run_suite,
    write_report,
)

__all__ = ["CaseResult", "run_suite", "write_report", "compare_to_baseline"]
