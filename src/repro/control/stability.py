"""Stability analysis helpers (paper §IV-B: "analyze the control performance").

Two levels of analysis are provided:

* open-loop: the poles of the identified ARX model (roots of its
  characteristic polynomial) — the plant itself must be stable for the
  identification-based design to be meaningful;
* closed-loop: an empirical convergence check that simulates the linear
  plant under the actual constrained MPC and verifies the response time
  settles at the set point.  With the terminal constraint active, MPC
  theory guarantees nominal stability (Maciejowski 2002); the empirical
  check covers the constrained, softened, and model-mismatch cases the
  theory does not.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.control.arx import ARXModel

__all__ = ["arx_poles", "is_stable_arx", "closed_loop_converges"]


def arx_poles(model: ARXModel) -> np.ndarray:
    """Poles of the ARX model: roots of ``z^na - a1 z^(na-1) - ... - a_na``."""
    coeffs = np.concatenate([[1.0], -model.a])
    return np.roots(coeffs)


def is_stable_arx(model: ARXModel, margin: float = 0.0) -> bool:
    """True when all poles lie strictly inside the unit circle.

    ``margin`` shrinks the allowed radius (e.g. 0.05 requires |z| < 0.95).
    """
    if not 0.0 <= margin < 1.0:
        raise ValueError(f"margin must be in [0, 1), got {margin}")
    poles = arx_poles(model)
    return bool(np.all(np.abs(poles) < 1.0 - margin))


def closed_loop_converges(
    model: ARXModel,
    controller,
    setpoint: float,
    t_initial: float,
    c_initial: Sequence[float],
    c_min: Sequence[float],
    c_max: Sequence[float],
    reference_fn,
    n_steps: int = 60,
    tol: float = 0.02,
) -> bool:
    """Simulate plant = model under the given MPC; check convergence.

    ``controller`` is an :class:`~repro.control.mpc_core.MPCController`
    built on (possibly a perturbed copy of) *model*; ``reference_fn(t_k)``
    must return the length-P reference trajectory for the current
    measurement.  Returns True when the final simulated output is within
    ``tol`` (relative) of the set point.
    """
    m = model.n_inputs
    na, nb = model.na, model.nb
    t_hist = [float(t_initial)] * max(na, 1)
    c0 = np.asarray(c_initial, dtype=float)
    c_hist = [c0.copy() for _ in range(max(nb, 1))]
    t_k = float(t_initial)
    for _ in range(n_steps):
        ref = reference_fn(t_k)
        sol = controller.solve(
            t_hist, np.asarray(c_hist), ref, setpoint, c_min, c_max
        )
        # Direct-drive convention: t(k+1) is produced by c(k+1), the
        # allocation the controller just decided.
        c_next = np.clip(c_hist[0] + sol.delta_c, c_min, c_max)
        c_hist.insert(0, c_next)
        c_hist = c_hist[: max(nb, 1)]
        t_k = model.one_step(t_hist, np.asarray(c_hist))
        t_hist.insert(0, t_k)
        t_hist = t_hist[: max(na, 1)]
    return abs(t_k - setpoint) <= tol * abs(setpoint)
