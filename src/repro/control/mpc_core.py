"""Generic constrained MPC over an ARX model.

Implements the optimization the paper's controller solves each control
period (its Eq. 2 cost, Eq. 4 terminal constraint) for any ARX model:

``min_u  sum_{i=1..P} Q (t(k+i|k) - ref_i)^2  +  sum_{i=0..M-1} |dc_i|^2_R``

subject to actuator bounds on the resulting absolute inputs, an optional
aggregate-capacity cap, and the terminal equality ``t(k+M|k) = Ts``.
When the terminal equality makes the QP infeasible (the set point is not
reachable within M steps under the bounds), it is automatically softened
into a large quadratic penalty — the standard practical treatment — and
the solution is flagged accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.control.arx import ARXModel
from repro.control.qp import QPResult, solve_qp
from repro.obs import get_telemetry

__all__ = ["MPCConfig", "MPCSolution", "MPCController"]


@dataclass(frozen=True)
class MPCConfig:
    """Tuning knobs of the MPC (paper §IV-B notation).

    Attributes
    ----------
    prediction_horizon:
        P — periods over which tracking error is penalized.
    control_horizon:
        M — periods with free input changes (P >= M >= 1).
    q_weight:
        Q — tracking-error weight.
    r_weight:
        R — control-penalty weight; scalar or per-input vector.  "can be
        tuned to represent a preference among the VMs" (paper).
    terminal_constraint:
        Enforce t(k+M|k) = Ts as a hard equality (paper Eq. 4).
    terminal_soft_weight:
        Penalty weight used when the hard terminal equality is
        infeasible under the actuator bounds.
    delta_max:
        Optional per-period rate limit on each input change,
        ``|dc_j| <= delta_max`` (GHz).  Damps limit cycles on plants
        whose gain steepens sharply near saturation.
    power_weight:
        Linear penalty on the summed future allocations (W-like units
        per GHz).  The paper's cost (Eq. 2) only penalizes *changes*, so
        allocation raised during a transient is never reclaimed; this
        term adds gentle downward pressure so excess CPU drains back out
        once tracking allows, feeding the DVFS savings.  The terminal
        constraint keeps the response time pinned at the set point while
        that happens.  0 reproduces the paper's cost exactly.
    warm_start:
        Seed each QP's initial working set from the previous period's
        optimal active set (receding-horizon warm start).  The optimum
        is unchanged — only the iteration count drops — but the solver
        may settle on a different (equivalent) working set in degenerate
        cases, so disable for bit-exact reproduction of cold solves.
    """

    prediction_horizon: int = 8
    control_horizon: int = 2
    q_weight: float = 1.0
    r_weight: float | Sequence[float] = 1.0
    terminal_constraint: bool = True
    terminal_soft_weight: float = 1e4
    delta_max: Optional[float] = None
    power_weight: float = 0.0
    warm_start: bool = True

    def __post_init__(self):
        if self.prediction_horizon < 1:
            raise ValueError(f"prediction_horizon must be >= 1, got {self.prediction_horizon}")
        if not 1 <= self.control_horizon <= self.prediction_horizon:
            raise ValueError(
                f"control_horizon must be in [1, {self.prediction_horizon}], "
                f"got {self.control_horizon}"
            )
        if self.q_weight <= 0:
            raise ValueError(f"q_weight must be positive, got {self.q_weight}")
        r = np.atleast_1d(np.asarray(self.r_weight, dtype=float))
        if np.any(r <= 0):
            raise ValueError(f"r_weight entries must be positive, got {self.r_weight}")
        if self.terminal_soft_weight <= 0:
            raise ValueError(
                f"terminal_soft_weight must be positive, got {self.terminal_soft_weight}"
            )
        if self.delta_max is not None and self.delta_max <= 0:
            raise ValueError(f"delta_max must be positive, got {self.delta_max}")
        if self.power_weight < 0:
            raise ValueError(f"power_weight must be >= 0, got {self.power_weight}")


@dataclass(frozen=True)
class MPCSolution:
    """Result of one MPC solve.

    ``delta_c`` is the first input change (applied to the system);
    ``input_trajectory`` has shape ``(M, m)``; ``predicted_outputs`` are
    t(k+1..k+P | k); ``terminal_softened`` reports whether the hard
    terminal equality had to be relaxed.
    """

    delta_c: np.ndarray
    input_trajectory: np.ndarray
    predicted_outputs: np.ndarray
    qp: QPResult
    terminal_softened: bool


class MPCController:
    """Reusable MPC solver bound to an ARX model and a config.

    Fast lane: the horizon-lifted prediction matrix ``psi``, the QP
    Hessian, and the (static) inequality-constraint matrix are cached
    keyed on the ARX parameter vector — they only change when an RLS
    update swaps the model — and each QP is warm-started from the
    previous period's optimal active set (``config.warm_start``).  The
    cached quantities are deterministic functions of the model
    parameters, computed with the same operations as the uncached
    reference (:meth:`ARXModel.predict_affine`), so caching alone is
    bit-identical; only warm-starting can perturb the solve path.
    """

    def __init__(self, model: ARXModel, config: MPCConfig | None = None):
        self.model = model
        self.config = config or MPCConfig()
        m = model.n_inputs
        r = np.atleast_1d(np.asarray(self.config.r_weight, dtype=float))
        if r.size == 1:
            r = np.full(m, float(r[0]))
        if r.shape != (m,):
            raise ValueError(
                f"r_weight must be scalar or length-{m}, got shape {r.shape}"
            )
        self._r_vec = r
        cfg = self.config
        M = cfg.control_horizon
        if cfg.power_weight > 0.0:
            # sum_{i=1..M} c(k+i) = const + sum_l (M - l) * dc_l, so the
            # linear coefficient on block l is power_weight * (M - l).
            block_coeff = cfg.power_weight * (M - np.arange(M, dtype=float))
            self._g_power: Optional[np.ndarray] = np.repeat(block_coeff, m)
        else:
            self._g_power = None
        # Model-keyed matrix cache + per-QP-form warm-start working sets.
        self._cache_key: Optional[tuple] = None
        self._cache: dict = {}
        self._warm_active: dict = {}
        self.solves = 0
        self.warm_hits = 0

    # -- cached matrices ------------------------------------------------

    def _model_cache(self):
        """Matrices that only change when the ARX parameters change."""
        model = self.model
        cfg = self.config
        P, M, m = cfg.prediction_horizon, cfg.control_horizon, model.n_inputs
        key = (model.a.tobytes(), model.b.tobytes(), model.g, P, M)
        if key != self._cache_key:
            nu = M * m
            psi = model.lifted_input_matrix(P, M)
            q = cfg.q_weight
            H = 2.0 * (q * psi.T @ psi)
            H[np.diag_indices(nu)] += 2.0 * np.tile(self._r_vec, M)
            # Drop warm state only on a mid-life model swap: on first use
            # (key was None) any adopted warm state must survive.
            if self._cache_key is not None:
                self._warm_active = {}
            self._cache_key = key
            self._cache = {"psi": psi, "H": H, "terminal_row": psi[M - 1 : M]}
        return self._cache

    def _soft_hessian(self, cache: dict) -> np.ndarray:
        """Hessian with the softened terminal penalty folded in."""
        H_soft = cache.get("H_soft")
        if H_soft is None:
            w = self.config.terminal_soft_weight
            terminal_row = cache["terminal_row"]
            H_soft = cache["H"] + 2.0 * w * terminal_row.T @ terminal_row
            cache["H_soft"] = H_soft
        return H_soft

    def _constraints(self, cache: dict, has_cap: bool) -> tuple:
        """Static inequality matrix for this model/config/cap shape.

        Returns ``(A_ub, n_delta_rows)``; the right-hand side is filled
        per solve (it depends on the current input and bounds).
        """
        key = ("A_ub", has_cap)
        entry = cache.get(key)
        if entry is None:
            cfg = self.config
            M, m = cfg.control_horizon, self.model.n_inputs
            nu = M * m
            rows = []
            cumulative = np.zeros((m, nu))
            for i in range(M):
                cumulative[:, i * m : (i + 1) * m] = np.eye(m)
                sel = cumulative.copy()
                rows.append(sel)
                rows.append(-sel)
                if has_cap:
                    rows.append(np.sum(sel, axis=0, keepdims=True))
            n_delta = 0
            if cfg.delta_max is not None:
                eye = np.eye(nu)
                rows.append(eye)
                rows.append(-eye)
                n_delta = 2 * nu
            entry = (np.vstack(rows), n_delta)
            cache[key] = entry
        return entry

    def state_dict(self) -> dict:
        """Warm-start working sets + solve counters (engine checkpoints).

        The cached prediction/Hessian matrices are *not* serialized:
        they are deterministic functions of the model parameters and are
        rebuilt identically on first use after a restore.
        """
        return {
            "warm_active": [
                {
                    "mode": mode,
                    "has_cap": has_cap,
                    "active": [int(i) for i in active],
                }
                for (mode, has_cap), active in sorted(self._warm_active.items())
            ],
            "solves": self.solves,
            "warm_hits": self.warm_hits,
        }

    def load_state_dict(self, state) -> None:
        """Restore :meth:`state_dict` so the next solve is bit-identical."""
        self._warm_active = {
            (str(e["mode"]), bool(e["has_cap"])): tuple(int(i) for i in e["active"])
            for e in state["warm_active"]
        }
        self.solves = int(state["solves"])
        self.warm_hits = int(state["warm_hits"])

    def adopt_warm_state(self, other: "MPCController") -> None:
        """Carry another controller's warm-start working sets over.

        Used when a supervisor (e.g. the adaptive controller) rebuilds
        the MPC around a newly identified model: the constraint geometry
        is unchanged, so the previous active set remains a good seed.
        """
        self._warm_active = dict(other._warm_active)

    def solve(
        self,
        t_hist: Sequence[float],
        c_hist: np.ndarray,
        reference: Sequence[float],
        setpoint: float,
        c_min: Sequence[float],
        c_max: Sequence[float],
        total_cap_ghz: Optional[float] = None,
        output_bias: float = 0.0,
    ) -> MPCSolution:
        """Compute the input-change trajectory for the current period
        (traced as the ``mpc.solve`` span when telemetry is enabled).

        See :meth:`_solve` for the parameters.
        """
        tel = get_telemetry()
        if not tel.enabled:
            return self._solve(
                t_hist, c_hist, reference, setpoint, c_min, c_max,
                total_cap_ghz, output_bias,
            )
        with tel.span("mpc.solve") as sp:
            solution = self._solve(
                t_hist, c_hist, reference, setpoint, c_min, c_max,
                total_cap_ghz, output_bias,
            )
            sp.annotate(
                softened=solution.terminal_softened,
                qp_status=solution.qp.status,
                warm=solution.qp.warm_started,
            )
        tel.count("mpc.solves")
        if solution.qp.warm_started:
            tel.count("mpc.warm_hits")
        if solution.terminal_softened:
            tel.count("mpc.terminal_softened")
        return solution

    def _solve(
        self,
        t_hist: Sequence[float],
        c_hist: np.ndarray,
        reference: Sequence[float],
        setpoint: float,
        c_min: Sequence[float],
        c_max: Sequence[float],
        total_cap_ghz: Optional[float] = None,
        output_bias: float = 0.0,
    ) -> MPCSolution:
        """Compute the input-change trajectory for the current period.

        Parameters
        ----------
        t_hist, c_hist:
            Histories ending at period k — ``t_hist = [t(k), ...]``,
            ``c_hist = [c(k), ...]`` (see
            :meth:`repro.control.arx.ARXModel.predict_affine`).
        reference:
            Reference trajectory ref(k+i|k) for i=1..P (length P).
        setpoint:
            Ts, used by the terminal constraint.
        c_min, c_max:
            Per-input bounds on the *absolute* future inputs (GHz).
        total_cap_ghz:
            Optional cap on the summed inputs (e.g. host capacity).
        output_bias:
            Constant output-disturbance estimate added to every
            predicted output (offset-free MPC): the caller's estimate of
            the plant-model mismatch, typically a filtered innovation.
        """
        cfg = self.config
        model = self.model
        P, M, m = cfg.prediction_horizon, cfg.control_horizon, model.n_inputs
        nu = M * m
        ref = np.asarray(reference, dtype=float)
        if ref.shape != (P,):
            raise ValueError(f"reference must have length {P}, got {ref.shape}")
        c_min = np.asarray(c_min, dtype=float)
        c_max = np.asarray(c_max, dtype=float)
        if c_min.shape != (m,) or c_max.shape != (m,):
            raise ValueError(f"c_min/c_max must have length {m}")
        if np.any(c_min > c_max):
            raise ValueError(f"c_min must be <= c_max, got {c_min} > {c_max}")
        c_now = np.atleast_2d(np.asarray(c_hist, dtype=float))[0]

        cache = self._model_cache()
        psi = cache["psi"]
        phi = model.predict_const(t_hist, c_hist, P, M)
        phi = phi + float(output_bias)

        # Quadratic cost: tracking + control penalty (Hessian cached —
        # it depends only on the model and the weights).
        q = cfg.q_weight
        H = cache["H"]
        g = 2.0 * q * psi.T @ (phi - ref)
        if self._g_power is not None:
            g = g + self._g_power

        # Bounds on absolute inputs at k+1..k+M:
        #   c_min <= c_now + cumsum(dc) <= c_max.
        # The constraint matrix is static per model/cap-shape; only the
        # right-hand side changes each period.
        has_cap = total_cap_ghz is not None
        A_ub, _ = self._constraints(cache, has_cap)
        upper = c_max - c_now
        lower = c_now - c_min
        rhs = []
        for i in range(M):
            rhs.append(upper)
            rhs.append(lower)
            if has_cap:
                rhs.append(np.asarray([total_cap_ghz - float(c_now.sum())]))
        if cfg.delta_max is not None:
            rhs.append(np.full(nu, cfg.delta_max))
            rhs.append(np.full(nu, cfg.delta_max))
        b_ub = np.concatenate(rhs)

        # Terminal constraint (paper Eq. 4): t(k+M|k) = Ts.
        terminal_row = cache["terminal_row"]
        terminal_rhs = np.asarray([float(setpoint) - phi[M - 1]])

        warm_on = cfg.warm_start
        self.solves += 1
        softened = False
        if cfg.terminal_constraint:
            result = solve_qp(
                H, g, A_eq=terminal_row, b_eq=terminal_rhs, A_ub=A_ub, b_ub=b_ub,
                warm_start=self._warm_active.get(("hard", has_cap)) if warm_on else None,
            )
            if result.warm_started:
                self.warm_hits += 1
            if not result.ok:
                softened = True
            else:
                if warm_on and result.status == "optimal":
                    self._warm_active[("hard", has_cap)] = result.active_set
                return self._package(result, phi, psi, c_now, softened=False)
        # Soft terminal (or no terminal): add W * (t(k+M|k) - Ts)^2.
        if cfg.terminal_constraint and softened:
            w = cfg.terminal_soft_weight
            H2 = self._soft_hessian(cache)
            g2 = g + 2.0 * w * terminal_row[0] * (phi[M - 1] - float(setpoint))
        else:
            H2, g2 = H, g
        result = solve_qp(
            H2, g2, A_ub=A_ub, b_ub=b_ub,
            warm_start=self._warm_active.get(("soft", has_cap)) if warm_on else None,
        )
        if result.warm_started:
            self.warm_hits += 1
        if warm_on and result.status == "optimal":
            self._warm_active[("soft", has_cap)] = result.active_set
        if not result.ok:
            # Bounds themselves inconsistent (shouldn't happen: dc=0 is
            # feasible whenever c_now is within bounds). Hold the input.
            zero = np.zeros(nu)
            result = QPResult(zero, "infeasible-hold", 0, ())
        return self._package(result, phi, psi, c_now, softened=softened)

    def _package(
        self,
        result: QPResult,
        phi: np.ndarray,
        psi: np.ndarray,
        c_now: np.ndarray,
        softened: bool,
    ) -> MPCSolution:
        m = self.model.n_inputs
        M = self.config.control_horizon
        u = np.asarray(result.x, dtype=float)
        traj = u.reshape(M, m)
        predicted = phi + psi @ u
        return MPCSolution(
            delta_c=traj[0].copy(),
            input_trajectory=traj,
            predicted_outputs=predicted,
            qp=result,
            terminal_softened=softened,
        )
