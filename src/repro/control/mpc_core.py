"""Generic constrained MPC over an ARX model.

Implements the optimization the paper's controller solves each control
period (its Eq. 2 cost, Eq. 4 terminal constraint) for any ARX model:

``min_u  sum_{i=1..P} Q (t(k+i|k) - ref_i)^2  +  sum_{i=0..M-1} |dc_i|^2_R``

subject to actuator bounds on the resulting absolute inputs, an optional
aggregate-capacity cap, and the terminal equality ``t(k+M|k) = Ts``.
When the terminal equality makes the QP infeasible (the set point is not
reachable within M steps under the bounds), it is automatically softened
into a large quadratic penalty — the standard practical treatment — and
the solution is flagged accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.control.arx import ARXModel
from repro.control.qp import QPResult, solve_qp, solve_qp_batch
from repro.obs import get_telemetry

__all__ = ["MPCConfig", "MPCSolution", "MPCController", "solve_mpc_batch"]


@dataclass(frozen=True)
class MPCConfig:
    """Tuning knobs of the MPC (paper §IV-B notation).

    Attributes
    ----------
    prediction_horizon:
        P — periods over which tracking error is penalized.
    control_horizon:
        M — periods with free input changes (P >= M >= 1).
    q_weight:
        Q — tracking-error weight.
    r_weight:
        R — control-penalty weight; scalar or per-input vector.  "can be
        tuned to represent a preference among the VMs" (paper).
    terminal_constraint:
        Enforce t(k+M|k) = Ts as a hard equality (paper Eq. 4).
    terminal_soft_weight:
        Penalty weight used when the hard terminal equality is
        infeasible under the actuator bounds.
    delta_max:
        Optional per-period rate limit on each input change,
        ``|dc_j| <= delta_max`` (GHz).  Damps limit cycles on plants
        whose gain steepens sharply near saturation.
    power_weight:
        Linear penalty on the summed future allocations (W-like units
        per GHz).  The paper's cost (Eq. 2) only penalizes *changes*, so
        allocation raised during a transient is never reclaimed; this
        term adds gentle downward pressure so excess CPU drains back out
        once tracking allows, feeding the DVFS savings.  The terminal
        constraint keeps the response time pinned at the set point while
        that happens.  0 reproduces the paper's cost exactly.
    warm_start:
        Seed each QP's initial working set from the previous period's
        optimal active set (receding-horizon warm start).  The optimum
        is unchanged — only the iteration count drops — but the solver
        may settle on a different (equivalent) working set in degenerate
        cases, so disable for bit-exact reproduction of cold solves.
    """

    prediction_horizon: int = 8
    control_horizon: int = 2
    q_weight: float = 1.0
    r_weight: float | Sequence[float] = 1.0
    terminal_constraint: bool = True
    terminal_soft_weight: float = 1e4
    delta_max: Optional[float] = None
    power_weight: float = 0.0
    warm_start: bool = True

    def __post_init__(self):
        if self.prediction_horizon < 1:
            raise ValueError(f"prediction_horizon must be >= 1, got {self.prediction_horizon}")
        if not 1 <= self.control_horizon <= self.prediction_horizon:
            raise ValueError(
                f"control_horizon must be in [1, {self.prediction_horizon}], "
                f"got {self.control_horizon}"
            )
        if self.q_weight <= 0:
            raise ValueError(f"q_weight must be positive, got {self.q_weight}")
        r = np.atleast_1d(np.asarray(self.r_weight, dtype=float))
        if np.any(r <= 0):
            raise ValueError(f"r_weight entries must be positive, got {self.r_weight}")
        if self.terminal_soft_weight <= 0:
            raise ValueError(
                f"terminal_soft_weight must be positive, got {self.terminal_soft_weight}"
            )
        if self.delta_max is not None and self.delta_max <= 0:
            raise ValueError(f"delta_max must be positive, got {self.delta_max}")
        if self.power_weight < 0:
            raise ValueError(f"power_weight must be >= 0, got {self.power_weight}")


@dataclass(frozen=True)
class MPCSolution:
    """Result of one MPC solve.

    ``delta_c`` is the first input change (applied to the system);
    ``input_trajectory`` has shape ``(M, m)``; ``predicted_outputs`` are
    t(k+1..k+P | k); ``terminal_softened`` reports whether the hard
    terminal equality had to be relaxed.
    """

    delta_c: np.ndarray
    input_trajectory: np.ndarray
    predicted_outputs: np.ndarray
    qp: QPResult
    terminal_softened: bool


class MPCController:
    """Reusable MPC solver bound to an ARX model and a config.

    Fast lane: the horizon-lifted prediction matrix ``psi``, the QP
    Hessian, and the (static) inequality-constraint matrix are cached
    keyed on the ARX parameter vector — they only change when an RLS
    update swaps the model — and each QP is warm-started from the
    previous period's optimal active set (``config.warm_start``).  The
    cached quantities are deterministic functions of the model
    parameters, computed with the same operations as the uncached
    reference (:meth:`ARXModel.predict_affine`), so caching alone is
    bit-identical; only warm-starting can perturb the solve path.
    """

    def __init__(self, model: ARXModel, config: MPCConfig | None = None):
        self.model = model
        self.config = config or MPCConfig()
        m = model.n_inputs
        r = np.atleast_1d(np.asarray(self.config.r_weight, dtype=float))
        if r.size == 1:
            r = np.full(m, float(r[0]))
        if r.shape != (m,):
            raise ValueError(
                f"r_weight must be scalar or length-{m}, got shape {r.shape}"
            )
        self._r_vec = r
        cfg = self.config
        M = cfg.control_horizon
        if cfg.power_weight > 0.0:
            # sum_{i=1..M} c(k+i) = const + sum_l (M - l) * dc_l, so the
            # linear coefficient on block l is power_weight * (M - l).
            block_coeff = cfg.power_weight * (M - np.arange(M, dtype=float))
            self._g_power: Optional[np.ndarray] = np.repeat(block_coeff, m)
        else:
            self._g_power = None
        # Model-keyed matrix cache + per-QP-form warm-start working sets.
        self._cache_key: Optional[tuple] = None
        self._cache: dict = {}
        self._warm_active: dict = {}
        self.solves = 0
        self.warm_hits = 0

    # -- cached matrices ------------------------------------------------

    def _model_cache(self):
        """Matrices that only change when the ARX parameters change."""
        model = self.model
        cfg = self.config
        P, M, m = cfg.prediction_horizon, cfg.control_horizon, model.n_inputs
        key = (model.a.tobytes(), model.b.tobytes(), model.g, P, M)
        if key != self._cache_key:
            nu = M * m
            psi = model.lifted_input_matrix(P, M)
            q = cfg.q_weight
            H = 2.0 * (q * psi.T @ psi)
            H[np.diag_indices(nu)] += 2.0 * np.tile(self._r_vec, M)
            # Drop warm state only on a mid-life model swap: on first use
            # (key was None) any adopted warm state must survive.
            if self._cache_key is not None:
                self._warm_active = {}
            self._cache_key = key
            self._cache = {"psi": psi, "H": H, "terminal_row": psi[M - 1 : M]}
        return self._cache

    def _soft_hessian(self, cache: dict) -> np.ndarray:
        """Hessian with the softened terminal penalty folded in."""
        H_soft = cache.get("H_soft")
        if H_soft is None:
            w = self.config.terminal_soft_weight
            terminal_row = cache["terminal_row"]
            H_soft = cache["H"] + 2.0 * w * terminal_row.T @ terminal_row
            cache["H_soft"] = H_soft
        return H_soft

    def _constraints(self, cache: dict, has_cap: bool) -> tuple:
        """Static inequality matrix for this model/config/cap shape.

        Returns ``(A_ub, n_delta_rows)``; the right-hand side is filled
        per solve (it depends on the current input and bounds).
        """
        key = ("A_ub", has_cap)
        entry = cache.get(key)
        if entry is None:
            cfg = self.config
            M, m = cfg.control_horizon, self.model.n_inputs
            nu = M * m
            rows = []
            cumulative = np.zeros((m, nu))
            for i in range(M):
                cumulative[:, i * m : (i + 1) * m] = np.eye(m)
                sel = cumulative.copy()
                rows.append(sel)
                rows.append(-sel)
                if has_cap:
                    rows.append(np.sum(sel, axis=0, keepdims=True))
            n_delta = 0
            if cfg.delta_max is not None:
                eye = np.eye(nu)
                rows.append(eye)
                rows.append(-eye)
                n_delta = 2 * nu
            entry = (np.vstack(rows), n_delta)
            cache[key] = entry
        return entry

    def state_dict(self) -> dict:
        """Warm-start working sets + solve counters (engine checkpoints).

        The cached prediction/Hessian matrices are *not* serialized:
        they are deterministic functions of the model parameters and are
        rebuilt identically on first use after a restore.
        """
        return {
            "warm_active": [
                {
                    "mode": mode,
                    "has_cap": has_cap,
                    "active": [int(i) for i in active],
                }
                for (mode, has_cap), active in sorted(self._warm_active.items())
            ],
            "solves": self.solves,
            "warm_hits": self.warm_hits,
        }

    def load_state_dict(self, state) -> None:
        """Restore :meth:`state_dict` so the next solve is bit-identical."""
        self._warm_active = {
            (str(e["mode"]), bool(e["has_cap"])): tuple(int(i) for i in e["active"])
            for e in state["warm_active"]
        }
        self.solves = int(state["solves"])
        self.warm_hits = int(state["warm_hits"])

    def adopt_warm_state(self, other: "MPCController") -> None:
        """Carry another controller's warm-start working sets over.

        Used when a supervisor (e.g. the adaptive controller) rebuilds
        the MPC around a newly identified model: the constraint geometry
        is unchanged, so the previous active set remains a good seed.
        """
        self._warm_active = dict(other._warm_active)

    def solve(
        self,
        t_hist: Sequence[float],
        c_hist: np.ndarray,
        reference: Sequence[float],
        setpoint: float,
        c_min: Sequence[float],
        c_max: Sequence[float],
        total_cap_ghz: Optional[float] = None,
        output_bias: float = 0.0,
    ) -> MPCSolution:
        """Compute the input-change trajectory for the current period
        (traced as the ``mpc.solve`` span when telemetry is enabled).

        See :meth:`_solve` for the parameters.
        """
        tel = get_telemetry()
        if not tel.enabled:
            return self._solve(
                t_hist, c_hist, reference, setpoint, c_min, c_max,
                total_cap_ghz, output_bias,
            )
        with tel.span("mpc.solve") as sp:
            solution = self._solve(
                t_hist, c_hist, reference, setpoint, c_min, c_max,
                total_cap_ghz, output_bias,
            )
            sp.annotate(
                softened=solution.terminal_softened,
                qp_status=solution.qp.status,
                warm=solution.qp.warm_started,
            )
        tel.count("mpc.solves")
        if solution.qp.warm_started:
            tel.count("mpc.warm_hits")
        if solution.terminal_softened:
            tel.count("mpc.terminal_softened")
        return solution

    def _assemble(
        self,
        t_hist: Sequence[float],
        c_hist: np.ndarray,
        reference: Sequence[float],
        setpoint: float,
        c_min: Sequence[float],
        c_max: Sequence[float],
        total_cap_ghz: Optional[float] = None,
        output_bias: float = 0.0,
    ) -> dict:
        """Validate inputs and assemble the QP data for one period.

        Returns the cached matrices plus the per-period vectors
        (``phi``, ``g``, ``b_ub``, ``terminal_rhs``, ``c_now``).  The
        operations match the pre-extraction inline code exactly, so a
        solve through this helper is bit-identical to the historical
        path; :func:`solve_mpc_batch` reuses it to stack many periods
        into one batched QP.
        """
        cfg = self.config
        model = self.model
        P, M, m = cfg.prediction_horizon, cfg.control_horizon, model.n_inputs
        nu = M * m
        ref = np.asarray(reference, dtype=float)
        if ref.shape != (P,):
            raise ValueError(f"reference must have length {P}, got {ref.shape}")
        c_min = np.asarray(c_min, dtype=float)
        c_max = np.asarray(c_max, dtype=float)
        if c_min.shape != (m,) or c_max.shape != (m,):
            raise ValueError(f"c_min/c_max must have length {m}")
        if np.any(c_min > c_max):
            raise ValueError(f"c_min must be <= c_max, got {c_min} > {c_max}")
        c_now = np.atleast_2d(np.asarray(c_hist, dtype=float))[0]

        cache = self._model_cache()
        psi = cache["psi"]
        phi = model.predict_const(t_hist, c_hist, P, M)
        phi = phi + float(output_bias)

        # Quadratic cost: tracking + control penalty (Hessian cached —
        # it depends only on the model and the weights).
        q = cfg.q_weight
        g = 2.0 * q * psi.T @ (phi - ref)
        if self._g_power is not None:
            g = g + self._g_power

        # Bounds on absolute inputs at k+1..k+M:
        #   c_min <= c_now + cumsum(dc) <= c_max.
        # The constraint matrix is static per model/cap-shape; only the
        # right-hand side changes each period.
        has_cap = total_cap_ghz is not None
        A_ub, _ = self._constraints(cache, has_cap)
        upper = c_max - c_now
        lower = c_now - c_min
        rhs = []
        for i in range(M):
            rhs.append(upper)
            rhs.append(lower)
            if has_cap:
                rhs.append(np.asarray([total_cap_ghz - float(c_now.sum())]))
        if cfg.delta_max is not None:
            rhs.append(np.full(nu, cfg.delta_max))
            rhs.append(np.full(nu, cfg.delta_max))
        b_ub = np.concatenate(rhs)

        # Terminal constraint (paper Eq. 4): t(k+M|k) = Ts.
        terminal_row = cache["terminal_row"]
        terminal_rhs = np.asarray([float(setpoint) - phi[M - 1]])

        return {
            "cache": cache,
            "phi": phi,
            "g": g,
            "has_cap": has_cap,
            "A_ub": A_ub,
            "b_ub": b_ub,
            "c_now": c_now,
            "terminal_row": terminal_row,
            "terminal_rhs": terminal_rhs,
            "setpoint": float(setpoint),
        }

    def _solve(
        self,
        t_hist: Sequence[float],
        c_hist: np.ndarray,
        reference: Sequence[float],
        setpoint: float,
        c_min: Sequence[float],
        c_max: Sequence[float],
        total_cap_ghz: Optional[float] = None,
        output_bias: float = 0.0,
    ) -> MPCSolution:
        """Compute the input-change trajectory for the current period.

        Parameters
        ----------
        t_hist, c_hist:
            Histories ending at period k — ``t_hist = [t(k), ...]``,
            ``c_hist = [c(k), ...]`` (see
            :meth:`repro.control.arx.ARXModel.predict_affine`).
        reference:
            Reference trajectory ref(k+i|k) for i=1..P (length P).
        setpoint:
            Ts, used by the terminal constraint.
        c_min, c_max:
            Per-input bounds on the *absolute* future inputs (GHz).
        total_cap_ghz:
            Optional cap on the summed inputs (e.g. host capacity).
        output_bias:
            Constant output-disturbance estimate added to every
            predicted output (offset-free MPC): the caller's estimate of
            the plant-model mismatch, typically a filtered innovation.
        """
        cfg = self.config
        asm = self._assemble(
            t_hist, c_hist, reference, setpoint, c_min, c_max,
            total_cap_ghz, output_bias,
        )
        cache = asm["cache"]
        psi = cache["psi"]
        phi = asm["phi"]
        H = cache["H"]
        g = asm["g"]
        has_cap = asm["has_cap"]
        A_ub = asm["A_ub"]
        b_ub = asm["b_ub"]
        c_now = asm["c_now"]
        terminal_row = asm["terminal_row"]
        terminal_rhs = asm["terminal_rhs"]
        M = cfg.control_horizon
        nu = M * self.model.n_inputs

        warm_on = cfg.warm_start
        self.solves += 1
        softened = False
        if cfg.terminal_constraint:
            result = solve_qp(
                H, g, A_eq=terminal_row, b_eq=terminal_rhs, A_ub=A_ub, b_ub=b_ub,
                warm_start=self._warm_active.get(("hard", has_cap)) if warm_on else None,
            )
            if result.warm_started:
                self.warm_hits += 1
            if not result.ok:
                softened = True
            else:
                if warm_on and result.status == "optimal":
                    self._warm_active[("hard", has_cap)] = result.active_set
                return self._package(result, phi, psi, c_now, softened=False)
        # Soft terminal (or no terminal): add W * (t(k+M|k) - Ts)^2.
        if cfg.terminal_constraint and softened:
            w = cfg.terminal_soft_weight
            H2 = self._soft_hessian(cache)
            g2 = g + 2.0 * w * terminal_row[0] * (phi[M - 1] - float(setpoint))
        else:
            H2, g2 = H, g
        result = solve_qp(
            H2, g2, A_ub=A_ub, b_ub=b_ub,
            warm_start=self._warm_active.get(("soft", has_cap)) if warm_on else None,
        )
        if result.warm_started:
            self.warm_hits += 1
        if warm_on and result.status == "optimal":
            self._warm_active[("soft", has_cap)] = result.active_set
        if not result.ok:
            # Bounds themselves inconsistent (shouldn't happen: dc=0 is
            # feasible whenever c_now is within bounds). Hold the input.
            zero = np.zeros(nu)
            result = QPResult(zero, "infeasible-hold", 0, ())
        return self._package(result, phi, psi, c_now, softened=softened)

    def _package(
        self,
        result: QPResult,
        phi: np.ndarray,
        psi: np.ndarray,
        c_now: np.ndarray,
        softened: bool,
    ) -> MPCSolution:
        m = self.model.n_inputs
        M = self.config.control_horizon
        u = np.asarray(result.x, dtype=float)
        traj = u.reshape(M, m)
        predicted = phi + psi @ u
        return MPCSolution(
            delta_c=traj[0].copy(),
            input_trajectory=traj,
            predicted_outputs=predicted,
            qp=result,
            terminal_softened=softened,
        )


def solve_mpc_batch(
    controllers: Sequence[MPCController],
    requests: Sequence[dict],
    stats: Optional[dict] = None,
) -> list:
    """Solve many controllers' periods at once, batching shared-model QPs.

    ``requests[i]`` is a dict of keyword arguments for
    :meth:`MPCController.solve` (``t_hist``, ``c_hist``, ``reference``,
    ``setpoint``, ``c_min``, ``c_max``, and optionally
    ``total_cap_ghz``/``output_bias``).  Controllers whose model
    parameters, horizons, and constraint geometry coincide are grouped
    and their hard-terminal QPs solved by one
    :func:`repro.control.qp.solve_qp_batch` call — a single stacked-RHS
    linear solve per active-set round instead of one KKT factorization
    per controller.  Warm-start working sets and solve counters are
    read and written per controller exactly as in the scalar path.

    Batching pays off for homogeneous fleets (controllers still on the
    same identified model, e.g. before per-app RLS estimates diverge, or
    synthetic sweeps); controllers that group alone fall back to the
    scalar :meth:`MPCController.solve`, as do softened/degenerate
    members of a batch.  Results are *allclose* to, not bit-identical
    with, sequential scalar solves (multi-RHS LAPACK) — golden-hash
    pipelines must keep calling :meth:`MPCController.solve`.

    ``stats``, when given a dict, receives grouping telemetry:
    ``groups`` (member count per group, descending), ``scalar`` (how
    many members fell back to a scalar solve), ``softened``.

    Returns the list of :class:`MPCSolution` in request order.
    """
    if len(controllers) != len(requests):
        raise ValueError(
            f"controllers and requests must pair up, got "
            f"{len(controllers)} vs {len(requests)}"
        )
    results: list = [None] * len(controllers)
    groups: dict = {}
    for i, ctrl in enumerate(controllers):
        cfg = ctrl.config
        model = ctrl.model
        key = (
            model.a.shape, model.a.tobytes(),
            model.b.shape, model.b.tobytes(), model.g,
            cfg.prediction_horizon, cfg.control_horizon,
            cfg.q_weight, tuple(ctrl._r_vec), cfg.delta_max,
            cfg.terminal_constraint,
            requests[i].get("total_cap_ghz") is not None,
        )
        groups.setdefault(key, []).append(i)

    if stats is not None:
        stats["groups"] = sorted(
            (len(m) for m in groups.values()), reverse=True
        )
        stats["scalar"] = 0
        stats["softened"] = 0
    tel = get_telemetry()
    for key, members in groups.items():
        hard_terminal = key[-2]
        if len(members) == 1 or not hard_terminal:
            for i in members:
                results[i] = controllers[i].solve(**requests[i])
            if stats is not None:
                stats["scalar"] += len(members)
            continue
        asms = [controllers[i]._assemble(**requests[i]) for i in members]
        has_cap = asms[0]["has_cap"]
        H = asms[0]["cache"]["H"]
        A_ub = asms[0]["A_ub"]
        terminal_row = asms[0]["terminal_row"]
        g_stack = np.stack([a["g"] for a in asms])
        b_eq_stack = np.stack([a["terminal_rhs"] for a in asms])
        b_ub_stack = np.stack([a["b_ub"] for a in asms])
        warms = [
            controllers[i]._warm_active.get(("hard", has_cap))
            if controllers[i].config.warm_start
            else None
            for i in members
        ]
        qps = solve_qp_batch(
            H, g_stack, A_eq=terminal_row, b_eq_batch=b_eq_stack,
            A_ub=A_ub, b_ub_batch=b_ub_stack, warm_starts=warms,
        )
        n_soft = 0
        n_warm = 0
        for asm, i, res in zip(asms, members, qps):
            ctrl = controllers[i]
            cfg = ctrl.config
            ctrl.solves += 1
            if res.warm_started:
                ctrl.warm_hits += 1
                n_warm += 1
            psi = asm["cache"]["psi"]
            if res.ok:
                if cfg.warm_start and res.status == "optimal":
                    ctrl._warm_active[("hard", has_cap)] = res.active_set
                results[i] = ctrl._package(
                    res, asm["phi"], psi, asm["c_now"], softened=False
                )
                continue
            # Hard terminal infeasible for this member: soften it alone
            # (the scalar treatment; softening is rare, so no batch).
            n_soft += 1
            M = cfg.control_horizon
            w = cfg.terminal_soft_weight
            H2 = ctrl._soft_hessian(asm["cache"])
            g2 = asm["g"] + 2.0 * w * asm["terminal_row"][0] * (
                asm["phi"][M - 1] - asm["setpoint"]
            )
            soft_seed = (
                ctrl._warm_active.get(("soft", has_cap))
                if cfg.warm_start
                else None
            )
            res2 = solve_qp(
                H2, g2, A_ub=asm["A_ub"], b_ub=asm["b_ub"], warm_start=soft_seed
            )
            if res2.warm_started:
                ctrl.warm_hits += 1
            if cfg.warm_start and res2.status == "optimal":
                ctrl._warm_active[("soft", has_cap)] = res2.active_set
            if not res2.ok:
                res2 = QPResult(
                    np.zeros(M * ctrl.model.n_inputs), "infeasible-hold", 0, ()
                )
            results[i] = ctrl._package(
                res2, asm["phi"], psi, asm["c_now"], softened=True
            )
        if stats is not None and n_soft:
            stats["softened"] += n_soft
        if tel.enabled:
            tel.count("mpc.solves", len(members))
            if n_warm:
                tel.count("mpc.warm_hits", n_warm)
            if n_soft:
                tel.count("mpc.terminal_softened", n_soft)
    return results
