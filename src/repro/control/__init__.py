"""Control-theory substrate: QP solver, ARX models, MPC machinery.

The paper's response-time controller is a constrained MIMO Model
Predictive Controller over an identified ARX model.  This package
provides the generic machinery; :mod:`repro.core.controller` assembles
it into the paper's specific controller (Eq. 2-4).
"""

from repro.control.qp import QPResult, solve_qp
from repro.control.arx import ARXModel
from repro.control.lti import StateSpace, arx_to_state_space, dominant_time_constant, step_response
from repro.control.mpc_core import MPCConfig, MPCController, MPCSolution
from repro.control.stability import arx_poles, is_stable_arx, closed_loop_converges

__all__ = [
    "QPResult",
    "solve_qp",
    "ARXModel",
    "StateSpace",
    "arx_to_state_space",
    "dominant_time_constant",
    "step_response",
    "MPCConfig",
    "MPCController",
    "MPCSolution",
    "arx_poles",
    "is_stable_arx",
    "closed_loop_converges",
]
