"""ARX (AutoRegressive with eXogenous input) models.

The paper identifies the response-time dynamics of each application as
an ARX model (its Eq. 1):

``t(k) = a1 t(k-1) + b1' c(k-1) + b2' c(k-2) + g``

with scalar output ``t`` (90-percentile response time, ms) and input
vector ``c`` (per-tier CPU allocations, GHz).

**Index convention.**  The paper indexes inputs by *decision* number:
its ``c(k-1)`` is the most recent allocation decision — the one active
while ``t(k)`` was being measured.  This library indexes inputs by the
*period they act in*: ``c(k)`` is the allocation active during period
``k``, so the same model reads

``t(k) = a1 t(k-1) + b1' c(k) + b2' c(k-1) + g``

(b_q multiplies ``c(k-q+1)``).  The two are the same model; only the
label on the input sequence differs.  The practical consequence is that
the first MPC decision directly shapes the *next* measured output, which
matches a plant whose queues settle well within one control period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["ARXModel"]


@dataclass(frozen=True)
class ARXModel:
    """An identified ARX model.

    Attributes
    ----------
    a:
        Output coefficients, shape ``(na,)``; ``a[p-1]`` multiplies
        ``t(k-p)``.
    b:
        Input coefficient matrix, shape ``(nb, m)``; row ``q-1``
        multiplies ``c(k-q+1)`` — row 0 is the input active during the
        predicted period.
    g:
        Constant (affine) term, capturing the operating-point offset.
    """

    a: np.ndarray
    b: np.ndarray
    g: float = 0.0

    def __post_init__(self):
        a = np.atleast_1d(np.asarray(self.a, dtype=float))
        b = np.atleast_2d(np.asarray(self.b, dtype=float))
        if a.ndim != 1 or a.size == 0:
            raise ValueError(f"a must be a non-empty vector, got shape {a.shape}")
        if b.ndim != 2 or b.shape[0] == 0 or b.shape[1] == 0:
            raise ValueError(f"b must be a non-empty (nb, m) matrix, got shape {b.shape}")
        if not np.all(np.isfinite(a)) or not np.all(np.isfinite(b)) or not np.isfinite(self.g):
            raise ValueError("ARX coefficients must be finite")
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)
        object.__setattr__(self, "g", float(self.g))

    @property
    def na(self) -> int:
        """Number of autoregressive lags."""
        return self.a.shape[0]

    @property
    def nb(self) -> int:
        """Number of input lags (including the direct, lag-0 term)."""
        return self.b.shape[0]

    @property
    def n_inputs(self) -> int:
        """Input dimension (number of VMs/tiers)."""
        return self.b.shape[1]

    # -- simulation -----------------------------------------------------

    def one_step(self, t_hist: Sequence[float], c_hist: np.ndarray) -> float:
        """Predict ``t(k+1)``.

        ``t_hist`` is most-recent-first ``[t(k), t(k-1), ...]`` with at
        least ``na`` entries.  ``c_hist`` is most-recent-first rows
        ``[c(k+1), c(k), ...]`` with at least ``nb`` rows — **row 0 is
        the input active during the period being predicted.**
        """
        t_hist = np.asarray(t_hist, dtype=float)
        c_hist = np.atleast_2d(np.asarray(c_hist, dtype=float))
        if t_hist.shape[0] < self.na:
            raise ValueError(f"need {self.na} past outputs, got {t_hist.shape[0]}")
        if c_hist.shape[0] < self.nb or c_hist.shape[1] != self.n_inputs:
            raise ValueError(
                f"need {self.nb} inputs of dim {self.n_inputs}, got {c_hist.shape}"
            )
        out = self.g
        out += float(self.a @ t_hist[: self.na])
        out += float(np.sum(self.b * c_hist[: self.nb], axis=(0, 1)))
        return out

    def simulate(
        self,
        t_init: Sequence[float],
        c_sequence: np.ndarray,
        c_init: np.ndarray | None = None,
    ) -> np.ndarray:
        """Free-run the model over an input sequence.

        ``t_init`` is most-recent-first initial outputs (length >= na,
        ending at period 0); ``c_sequence`` has shape ``(K, m)`` — row
        ``k`` is the input active during period ``k+1``; ``c_init``
        (optional, most-recent-first, shape ``(>=nb-1, m)``) supplies
        inputs for period 0 and earlier.  Returns the simulated outputs
        ``t(1..K)`` of shape ``(K,)``.
        """
        c_sequence = np.atleast_2d(np.asarray(c_sequence, dtype=float))
        K = c_sequence.shape[0]
        if c_sequence.shape[1] != self.n_inputs:
            raise ValueError(
                f"c_sequence must have {self.n_inputs} columns, got {c_sequence.shape}"
            )
        t_hist = list(np.asarray(t_init, dtype=float)[: max(self.na, 1)])
        if len(t_hist) < self.na:
            raise ValueError(f"need {self.na} initial outputs, got {len(t_hist)}")
        if c_init is None:
            c_init = np.tile(c_sequence[0], (max(self.nb - 1, 1), 1))
        c_hist = [np.asarray(row, dtype=float) for row in np.atleast_2d(c_init)]
        while len(c_hist) < self.nb - 1:
            c_hist.append(c_hist[-1].copy())
        out = np.empty(K)
        for k in range(K):
            c_hist.insert(0, c_sequence[k])
            c_hist = c_hist[: max(self.nb, 1)]
            t_next = self.one_step(t_hist, np.asarray(c_hist))
            out[k] = t_next
            t_hist.insert(0, t_next)
            t_hist = t_hist[: max(self.na, 1)]
        return out

    # -- MPC prediction ---------------------------------------------------

    def predict_affine(
        self,
        t_hist: Sequence[float],
        c_hist: np.ndarray,
        horizon: int,
        control_horizon: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Affine map from future input changes to predicted outputs.

        Histories end at period ``k``: ``t_hist = [t(k), t(k-1), ...]``
        and ``c_hist = [c(k), c(k-1), ...]`` (``c(k)`` being the input
        that was active during the just-measured period).  Returns
        ``(phi, psi)`` with shapes ``(P,)`` and ``(P, M*m)`` such that::

            t(k+i | k) = phi[i-1] + psi[i-1] @ u,   i = 1..P

        where ``u`` stacks ``[dc(k), dc(k+1|k), ..., dc(k+M-1|k)]`` and
        future inputs follow ``c(k+i) = c(k) + sum_{j<i} dc(k+j)`` with
        changes beyond the control horizon fixed at zero (the paper's
        input-trajectory parameterization, §IV-B).

        The two halves are independently reusable: ``psi`` depends only
        on the model parameters and the horizons (cache it across
        solves — see :meth:`lifted_input_matrix`), while ``phi`` depends
        on the histories and is recomputed each period
        (:meth:`predict_const`).  Both helpers perform the exact same
        floating-point operations as the original fused recursion, so
        splitting (or caching ``psi``) is bit-identical.
        """
        return (
            self.predict_const(t_hist, c_hist, horizon, control_horizon),
            self.lifted_input_matrix(horizon, control_horizon),
        )

    def predict_const(
        self,
        t_hist: Sequence[float],
        c_hist: np.ndarray,
        horizon: int,
        control_horizon: int,
    ) -> np.ndarray:
        """The constant (history-driven) part ``phi`` of
        :meth:`predict_affine` — the predicted outputs under zero future
        input change."""
        P = int(horizon)
        M = int(control_horizon)
        if P < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        if not 1 <= M <= P:
            raise ValueError(f"control_horizon must be in [1, {P}], got {M}")
        m = self.n_inputs
        t_hist = np.asarray(t_hist, dtype=float)
        c_hist = np.atleast_2d(np.asarray(c_hist, dtype=float))
        if t_hist.shape[0] < self.na:
            raise ValueError(f"need {self.na} past outputs, got {t_hist.shape[0]}")
        if c_hist.shape[0] < max(self.nb - 1, 1) or c_hist.shape[1] != m:
            raise ValueError(
                f"need {max(self.nb - 1, 1)} past inputs of dim {m}, got {c_hist.shape}"
            )
        c_now = c_hist[0]
        t_const = np.empty(P)
        for i in range(1, P + 1):
            const = self.g
            for p in range(1, self.na + 1):
                tau = i - p  # output index relative to k
                if tau >= 1:
                    const += self.a[p - 1] * t_const[tau - 1]
                else:
                    const += self.a[p - 1] * t_hist[-tau]  # t(k+tau), tau <= 0
            for q in range(1, self.nb + 1):
                j = i - q + 1  # input index relative to k (b_q acts on c(k+i-q+1))
                if j >= 1:
                    const += float(self.b[q - 1] @ c_now)
                else:
                    const += float(self.b[q - 1] @ c_hist[-j])  # c(k+j), j <= 0
            t_const[i - 1] = const
        return t_const

    def lifted_input_matrix(self, horizon: int, control_horizon: int) -> np.ndarray:
        """The linear (input-driven) part ``psi`` of
        :meth:`predict_affine`.

        Depends only on the model parameters and the horizons — for a
        fixed model this is a constant matrix, so callers solving the
        MPC every period should compute it once per model update (the
        per-solve cost of the fused recursion is dominated by exactly
        this matrix).
        """
        P = int(horizon)
        M = int(control_horizon)
        if P < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        if not 1 <= M <= P:
            raise ValueError(f"control_horizon must be in [1, {P}], got {M}")
        m = self.n_inputs
        nu = M * m
        t_lin = np.zeros((P, nu))

        # Future input c(k+j), j >= 1: c_now plus the first min(j, M)
        # blocks of u.
        def input_lin(j: int) -> np.ndarray:
            sel = np.zeros((m, nu))
            for l in range(min(j, M)):
                sel[:, l * m : (l + 1) * m] += np.eye(m)
            return sel

        for i in range(1, P + 1):
            lin = np.zeros(nu)
            for p in range(1, self.na + 1):
                tau = i - p  # output index relative to k
                if tau >= 1:
                    lin += self.a[p - 1] * t_lin[tau - 1]
            for q in range(1, self.nb + 1):
                j = i - q + 1  # input index relative to k (b_q acts on c(k+i-q+1))
                if j >= 1:
                    lin += self.b[q - 1] @ input_lin(j)
            t_lin[i - 1] = lin
        return t_lin

    def dc_gain(self) -> np.ndarray:
        """Steady-state gain from each input to the output.

        For constant input ``c`` the fixed point satisfies
        ``t* = ((sum_q b_q) c + g) / (1 - sum_p a_p)``; returns the input
        gain vector (inf when the model integrates).
        """
        denom = 1.0 - float(self.a.sum())
        if abs(denom) < 1e-12:
            return np.full(self.n_inputs, np.inf)
        return self.b.sum(axis=0) / denom
