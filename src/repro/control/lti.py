"""LTI views of ARX models: state space, step response, time constants.

The paper's §IV-B "analyze the control performance" step works with the
identified model as a linear time-invariant system.  These helpers give
the standard views: a controllable-canonical state-space realization,
open-loop step responses, and settling metrics — used by the stability
analysis and the MPC-tuning ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.control.arx import ARXModel

__all__ = ["StateSpace", "arx_to_state_space", "step_response", "dominant_time_constant"]


@dataclass(frozen=True)
class StateSpace:
    """Discrete-time state-space model ``x+ = A x + B u, y = C x + D u + y0``.

    ``y0`` carries the ARX affine term so the realization reproduces the
    model exactly, not just its deviations.
    """

    A: np.ndarray
    B: np.ndarray
    C: np.ndarray
    D: np.ndarray
    y0: float = 0.0

    @property
    def n_states(self) -> int:
        """State dimension."""
        return self.A.shape[0]

    def simulate(self, u_sequence: np.ndarray, x0: Optional[np.ndarray] = None) -> np.ndarray:
        """Drive the realization with inputs ``(K, m)``; returns ``(K,)``."""
        u = np.atleast_2d(np.asarray(u_sequence, dtype=float))
        x = np.zeros(self.n_states) if x0 is None else np.asarray(x0, dtype=float)
        out = np.empty(u.shape[0])
        for k in range(u.shape[0]):
            out[k] = float(self.C @ x + self.D @ u[k]) + self.y0
            x = self.A @ x + self.B @ u[k]
        return out


def arx_to_state_space(model: ARXModel) -> StateSpace:
    """Realize an ARX model in observable companion form.

    The state stacks ``na`` past *deviation* outputs and ``nb - 1`` past
    inputs; the direct term ``b_1`` becomes ``D`` (our convention has the
    lag-0 input acting on the same period's output).  The affine term is
    absorbed into the zero-input equilibrium ``y0 = g / (1 - sum a)``, so
    the realization is exact for non-integrating models (integrating
    models are rejected).
    """
    na, nb, m = model.na, model.nb, model.n_inputs
    denom = 1.0 - float(model.a.sum())
    if abs(denom) < 1e-12:
        raise ValueError("state-space realization requires a non-integrating model")
    n = na + max(nb - 1, 0) * m
    A = np.zeros((n, n))
    B = np.zeros((n, m))
    C = np.zeros(n)

    # Output block: y(k) = sum a_p y(k-p) + sum_{q>=2} b_q c(k-q+1) + b_1 c(k) + g
    # State layout: [y(k-1) ... y(k-na), c(k-1) ... c(k-nb+1)] (inputs flattened).
    C[:na] = model.a
    for q in range(2, nb + 1):
        base = na + (q - 2) * m
        C[base : base + m] = model.b[q - 1]
    D = model.b[0].copy()

    # y-shift rows: next state y-block = [y(k), y(k-1), ...] where
    # y(k) = C x + D u + g; the affine part is carried by y0 in C-space —
    # for the state recursion we drop g (it is re-added at the output).
    A[0, :] = C
    B[0, :] = D
    for p in range(1, na):
        A[p, p - 1] = 1.0
    # input-shift rows.
    if nb >= 2:
        base = na
        B[base : base + m, :] = np.eye(m)
        for q in range(2, nb):
            src = na + (q - 2) * m
            dst = na + (q - 1) * m
            A[dst : dst + m, src : src + m] = np.eye(m)
    return StateSpace(A=A, B=B, C=C, D=D, y0=float(model.g / denom))


def step_response(
    model: ARXModel,
    input_index: int,
    step_size: float = 1.0,
    n_steps: int = 60,
    baseline_input: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Open-loop response to a step on one input channel.

    Returns the *deviation* of the output from its pre-step equilibrium,
    shape ``(n_steps,)`` — converging to ``dc_gain[input_index] * step``
    for a stable model.
    """
    if not 0 <= input_index < model.n_inputs:
        raise ValueError(f"input_index out of range: {input_index}")
    if n_steps < 1:
        raise ValueError(f"n_steps must be >= 1, got {n_steps}")
    m = model.n_inputs
    base = np.zeros(m) if baseline_input is None else np.asarray(baseline_input, float)
    denom = 1.0 - float(model.a.sum())
    if abs(denom) < 1e-12:
        raise ValueError("step_response requires a non-integrating model")
    y_eq = float((model.g + model.b.sum(axis=0) @ base) / denom)
    stepped = base.copy()
    stepped[input_index] += float(step_size)
    out = model.simulate([y_eq] * model.na, np.tile(stepped, (n_steps, 1)),
                         c_init=np.tile(base, (max(model.nb - 1, 1), 1)))
    return out - y_eq


def dominant_time_constant(model: ARXModel, period_s: float = 1.0) -> float:
    """Time constant of the slowest pole, in seconds.

    ``tau = -T / ln|z_max|``; returns ``inf`` for non-decaying poles and
    0 for a memoryless model.
    """
    if period_s <= 0:
        raise ValueError(f"period_s must be positive, got {period_s}")
    roots = np.roots(np.concatenate([[1.0], -model.a]))
    if roots.size == 0:
        return 0.0
    mag = float(np.max(np.abs(roots)))
    if mag >= 1.0:
        return float("inf")
    if mag <= 0.0:
        return 0.0
    return -period_s / np.log(mag)
