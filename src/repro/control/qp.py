"""Dense convex quadratic programming by the active-set method.

Solves ``min 0.5 x'Hx + g'x  s.t.  A_eq x = b_eq,  A_ub x <= b_ub`` for
small dense problems — exactly the shape the MPC controller produces
every control period (a handful of decision variables, a few dozen
constraints).  The implementation is the classic working-set scheme:

1. solve the equality-constrained KKT system for the current working set;
2. if an inactive inequality is violated, add the most violated one;
3. if an active inequality has a negative multiplier, drop the most
   negative one;
4. repeat until primal feasible with non-negative multipliers.

``H`` must be positive definite on the feasible set (the MPC cost has a
strictly positive control penalty ``R``, which guarantees this).  The
solver is validated against ``scipy.optimize`` in the test suite and
falls back to it automatically if the active-set loop fails to settle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

__all__ = ["QPResult", "solve_qp", "solve_qp_batch"]

#: Iterations a warm-started attempt may spend before the seed is
#: declared unhelpful and the working set restarts from empty.  A good
#: seed terminates in a handful of iterations; a bad one can cycle for
#: the whole budget, so without this cap a warm solve could cost *more*
#: than a cold one (bad seed burns max_iter, then the cold retry pays
#: full price again).
_WARM_ITER_BUDGET = 30


@dataclass(frozen=True)
class QPResult:
    """Outcome of a QP solve.

    ``status`` is ``"optimal"``, ``"fallback"`` (SciPy finished the job),
    or ``"infeasible"``.  ``x`` is ``None`` only when infeasible.
    ``active_set`` is the final working set of inequality indices — feed
    it back as ``warm_start`` on the next structurally-identical solve;
    ``warm_started`` reports whether this solve was seeded that way.
    """

    x: Optional[np.ndarray]
    status: str
    iterations: int
    active_set: Tuple[int, ...]
    warm_started: bool = False

    @property
    def ok(self) -> bool:
        """True when a solution was produced."""
        return self.x is not None


def _solve_kkt(
    H: np.ndarray, g: np.ndarray, C: np.ndarray, d: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve the equality-constrained QP ``min .5x'Hx+g'x s.t. Cx=d``.

    Returns ``(x, nu)`` where ``nu`` are the constraint multipliers.
    Falls back to least-squares for singular KKT matrices (degenerate
    working sets).
    """
    n = H.shape[0]
    m = C.shape[0]
    if m == 0:
        try:
            return np.linalg.solve(H, -g), np.empty(0)
        except np.linalg.LinAlgError:
            x, *_ = np.linalg.lstsq(H, -g, rcond=None)
            return x, np.empty(0)
    kkt = np.zeros((n + m, n + m))
    kkt[:n, :n] = H
    kkt[:n, n:] = C.T
    kkt[n:, :n] = C
    rhs = np.concatenate([-g, d])
    try:
        sol = np.linalg.solve(kkt, rhs)
    except np.linalg.LinAlgError:
        sol, *_ = np.linalg.lstsq(kkt, rhs, rcond=None)
    return sol[:n], sol[n:]


def _scipy_fallback(
    H: np.ndarray,
    g: np.ndarray,
    A_eq: Optional[np.ndarray],
    b_eq: Optional[np.ndarray],
    A_ub: Optional[np.ndarray],
    b_ub: Optional[np.ndarray],
    x0: Optional[np.ndarray],
    iterations: int,
    warm_started: bool = False,
) -> QPResult:
    """Solve with SciPy SLSQP; used when the active-set loop stalls."""
    n = H.shape[0]
    if x0 is None:
        x0 = np.zeros(n)
    constraints = []
    if A_eq is not None and A_eq.shape[0]:
        constraints.append(
            {"type": "eq", "fun": lambda x, A=A_eq, b=b_eq: A @ x - b}
        )
    if A_ub is not None and A_ub.shape[0]:
        constraints.append(
            {"type": "ineq", "fun": lambda x, A=A_ub, b=b_ub: b - A @ x}
        )
    res = optimize.minimize(
        lambda x: 0.5 * x @ H @ x + g @ x,
        x0,
        jac=lambda x: H @ x + g,
        constraints=constraints,
        method="SLSQP",
        options={"maxiter": 500, "ftol": 1e-12},
    )
    if not res.success:
        return QPResult(None, "infeasible", iterations, (), warm_started)
    return QPResult(
        np.asarray(res.x, dtype=float), "fallback", iterations, (), warm_started
    )


def solve_qp(
    H: np.ndarray,
    g: np.ndarray,
    A_eq: Optional[np.ndarray] = None,
    b_eq: Optional[np.ndarray] = None,
    A_ub: Optional[np.ndarray] = None,
    b_ub: Optional[np.ndarray] = None,
    max_iter: int = 200,
    tol: float = 1e-8,
    warm_start: Optional[Sequence[int]] = None,
) -> QPResult:
    """Solve a dense convex QP (see module docstring for the form).

    Parameters are NumPy arrays; ``A_eq``/``A_ub`` may be ``None`` or
    empty.  Returns a :class:`QPResult`; check ``result.ok`` before using
    ``result.x``.

    ``warm_start`` seeds the initial working set with inequality indices
    from a previous solve of a structurally similar problem (typically
    ``QPResult.active_set`` of the last control period).  When the
    optimal active set barely changes between periods — the common case
    for receding-horizon MPC — the solver terminates in one or two
    iterations instead of rebuilding the working set from empty.  Out of
    range indices are ignored; the result is the same optimum either
    way, only reached faster.
    """
    H = np.asarray(H, dtype=float)
    g = np.asarray(g, dtype=float)
    n = g.shape[0]
    if H.shape != (n, n):
        raise ValueError(f"H must be {n}x{n}, got {H.shape}")
    H = 0.5 * (H + H.T)  # symmetrize against numerical asymmetry

    A_eq = np.zeros((0, n)) if A_eq is None else np.atleast_2d(np.asarray(A_eq, float))
    b_eq = np.zeros(0) if b_eq is None else np.atleast_1d(np.asarray(b_eq, float))
    A_ub = np.zeros((0, n)) if A_ub is None else np.atleast_2d(np.asarray(A_ub, float))
    b_ub = np.zeros(0) if b_ub is None else np.atleast_1d(np.asarray(b_ub, float))
    if A_eq.shape != (b_eq.shape[0], n):
        raise ValueError(f"A_eq shape {A_eq.shape} inconsistent with n={n}, b_eq={b_eq.shape}")
    if A_ub.shape != (b_ub.shape[0], n):
        raise ValueError(f"A_ub shape {A_ub.shape} inconsistent with n={n}, b_ub={b_ub.shape}")

    n_eq = A_eq.shape[0]
    n_ub = A_ub.shape[0]
    active: List[int] = []
    warm = False
    if warm_start is not None:
        seen = set()
        for idx in warm_start:
            idx = int(idx)
            if 0 <= idx < n_ub and idx not in seen:
                seen.add(idx)
                active.append(idx)
        warm = bool(active)
    x = None
    seed_unverified = warm
    for iteration in range(1, max_iter + 1):
        if warm and iteration > _WARM_ITER_BUDGET:
            # The seed did not lead to quick convergence — from here on
            # this is a plain cold solve from the empty working set.
            warm = False
            seed_unverified = False
            active = []
        C = np.vstack([A_eq, A_ub[active]]) if (n_eq or active) else np.zeros((0, n))
        d = np.concatenate([b_eq, b_ub[active]]) if (n_eq or active) else np.zeros(0)
        x, nu = _solve_kkt(H, g, C, d)

        # A stale warm-start seed can be inconsistent under the current
        # rhs (the KKT solve then degrades to least squares, leaving
        # working-set rows unsatisfied while the feasibility mask below
        # would treat them as enforced).  Verify the seed once, on the
        # first iterate; if any seeded row is not actually met, discard
        # the whole seed and restart cold — never cheaper to repair a
        # bad guess row by row.
        if seed_unverified:
            seed_unverified = False
            bad_eq = n_eq and np.max(np.abs(A_eq @ x - b_eq)) > 1e-6
            bad_ub = active and np.max(np.abs(A_ub[active] @ x - b_ub[active])) > 1e-6
            if bad_eq or bad_ub:
                warm = False  # seed discarded: this is a cold solve now
                active = []
                continue

        # Drop an active inequality whose multiplier went negative.
        if active:
            ineq_mult = nu[n_eq:]
            worst = int(np.argmin(ineq_mult))
            if ineq_mult[worst] < -tol:
                active.pop(worst)
                continue

        # Add the most violated inactive inequality.
        if A_ub.shape[0]:
            resid = A_ub @ x - b_ub
            resid[active] = -np.inf  # already enforced
            worst = int(np.argmax(resid))
            if resid[worst] > tol:
                active.append(worst)
                continue

        # Verify equality feasibility (catches inconsistent A_eq).
        if n_eq and np.max(np.abs(A_eq @ x - b_eq)) > 1e-6:
            if warm:
                break  # retry cold below rather than trusting this iterate
            return _scipy_fallback(H, g, A_eq, b_eq, A_ub, b_ub, x, iteration, warm)

        # Warm seeds can steer the iteration through a degenerate working
        # set whose KKT system is only solvable in least squares — the
        # masked active rows are then *not* actually enforced.  Verify
        # them before declaring victory; a violation means the warm path
        # went astray, so retry cold (which never takes that path).
        if warm and active and np.max(np.abs(A_ub[active] @ x - b_ub[active])) > 1e-6:
            break

        return QPResult(x, "optimal", iteration, tuple(sorted(active)), warm)

    if warm:
        # A warm-started solve that stalls (degenerate cycling around a
        # bad seed) must never end worse than a cold one: rerun cold.
        return solve_qp(H, g, A_eq, b_eq, A_ub, b_ub, max_iter, tol, None)
    return _scipy_fallback(H, g, A_eq, b_eq, A_ub, b_ub, x, max_iter, warm)


def solve_qp_batch(
    H: np.ndarray,
    g_batch: np.ndarray,
    A_eq: Optional[np.ndarray] = None,
    b_eq_batch: Optional[np.ndarray] = None,
    A_ub: Optional[np.ndarray] = None,
    b_ub_batch: Optional[np.ndarray] = None,
    max_iter: int = 200,
    tol: float = 1e-8,
    warm_starts: Optional[Sequence[Optional[Sequence[int]]]] = None,
) -> List[QPResult]:
    """Solve B convex QPs sharing ``H``/``A_eq``/``A_ub`` in lock step.

    This is the batch form of :func:`solve_qp` for fleets of structurally
    identical controllers (same model horizon, same constraint geometry)
    whose per-period data differ only in the linear term ``g`` and the
    right-hand sides: ``g_batch`` is ``(B, n)``, ``b_eq_batch`` is
    ``(B, n_eq)``, ``b_ub_batch`` is ``(B, n_ub)``.

    Each active-set round groups the still-pending problems by their
    current working set; every group shares one KKT matrix, so its
    members are solved with a single stacked-RHS ``np.linalg.solve``
    instead of B separate factorizations.  The per-problem drop/add
    bookkeeping is unchanged from the scalar solver, and any problem
    that leaves the happy path (singular group KKT, stale seed on a
    degenerate set, iteration stall) is handed to :func:`solve_qp`
    individually, so batch results carry the same status semantics.

    Equivalence: LAPACK's multi-RHS solve is *allclose* to, but not
    bit-identical with, a sequence of single-RHS solves — callers that
    pin golden hashes must stay on :func:`solve_qp`.
    """
    H = np.asarray(H, dtype=float)
    g_batch = np.atleast_2d(np.asarray(g_batch, dtype=float))
    B, n = g_batch.shape
    if H.shape != (n, n):
        raise ValueError(f"H must be {n}x{n}, got {H.shape}")
    H = 0.5 * (H + H.T)

    A_eq = np.zeros((0, n)) if A_eq is None else np.atleast_2d(np.asarray(A_eq, float))
    A_ub = np.zeros((0, n)) if A_ub is None else np.atleast_2d(np.asarray(A_ub, float))
    n_eq = A_eq.shape[0]
    n_ub = A_ub.shape[0]
    if b_eq_batch is None:
        b_eq_batch = np.zeros((B, n_eq))
    b_eq_batch = np.atleast_2d(np.asarray(b_eq_batch, dtype=float))
    if b_ub_batch is None:
        b_ub_batch = np.zeros((B, n_ub))
    b_ub_batch = np.atleast_2d(np.asarray(b_ub_batch, dtype=float))
    if b_eq_batch.shape != (B, n_eq):
        raise ValueError(
            f"b_eq_batch must be ({B}, {n_eq}), got {b_eq_batch.shape}"
        )
    if b_ub_batch.shape != (B, n_ub):
        raise ValueError(
            f"b_ub_batch must be ({B}, {n_ub}), got {b_ub_batch.shape}"
        )
    if warm_starts is not None and len(warm_starts) != B:
        raise ValueError(f"warm_starts must have length {B}, got {len(warm_starts)}")

    def _scalar(i: int, warm_seed) -> QPResult:
        return solve_qp(
            H, g_batch[i], A_eq, b_eq_batch[i], A_ub, b_ub_batch[i],
            max_iter, tol, warm_seed,
        )

    results: List[Optional[QPResult]] = [None] * B
    # Per-problem mutable solver state, mirroring the scalar loop.
    actives: List[List[int]] = []
    warm_flags: List[bool] = []
    seed_unverified: List[bool] = []
    for i in range(B):
        active: List[int] = []
        seed = warm_starts[i] if warm_starts is not None else None
        if seed is not None:
            seen = set()
            for idx in seed:
                idx = int(idx)
                if 0 <= idx < n_ub and idx not in seen:
                    seen.add(idx)
                    active.append(idx)
        actives.append(active)
        warm_flags.append(bool(active))
        seed_unverified.append(bool(active))

    pending = list(range(B))
    for iteration in range(1, max_iter + 1):
        if not pending:
            break
        if iteration > _WARM_ITER_BUDGET:
            for i in pending:
                if warm_flags[i]:
                    warm_flags[i] = False
                    seed_unverified[i] = False
                    actives[i] = []
        groups: dict = {}
        for i in pending:
            groups.setdefault(tuple(actives[i]), []).append(i)
        next_pending: List[int] = []
        for key, members in groups.items():
            active = list(key)
            m = n_eq + len(active)
            rhs = np.empty((n + m, len(members)))
            for col, i in enumerate(members):
                rhs[:n, col] = -g_batch[i]
                if n_eq:
                    rhs[n : n + n_eq, col] = b_eq_batch[i]
                if active:
                    rhs[n + n_eq :, col] = b_ub_batch[i][active]
            if m == 0:
                try:
                    sol = np.linalg.solve(H, rhs)
                except np.linalg.LinAlgError:
                    for i in members:
                        results[i] = _scalar(i, None)
                    continue
            else:
                C = np.vstack([A_eq, A_ub[active]])
                kkt = np.zeros((n + m, n + m))
                kkt[:n, :n] = H
                kkt[:n, n:] = C.T
                kkt[n:, :n] = C
                try:
                    sol = np.linalg.solve(kkt, rhs)
                except np.linalg.LinAlgError:
                    # Degenerate working set: the scalar path handles it
                    # (least-squares iterate + seed verification).
                    for i in members:
                        results[i] = _scalar(i, None)
                    continue
            for col, i in enumerate(members):
                x = sol[:n, col]
                nu = sol[n:, col]
                b_eq = b_eq_batch[i]
                b_ub = b_ub_batch[i]
                act = actives[i]

                if seed_unverified[i]:
                    seed_unverified[i] = False
                    bad_eq = n_eq and np.max(np.abs(A_eq @ x - b_eq)) > 1e-6
                    bad_ub = (
                        act and np.max(np.abs(A_ub[act] @ x - b_ub[act])) > 1e-6
                    )
                    if bad_eq or bad_ub:
                        warm_flags[i] = False
                        actives[i] = []
                        next_pending.append(i)
                        continue

                if act:
                    ineq_mult = nu[n_eq:]
                    worst = int(np.argmin(ineq_mult))
                    if ineq_mult[worst] < -tol:
                        act.pop(worst)
                        next_pending.append(i)
                        continue

                if n_ub:
                    resid = A_ub @ x - b_ub
                    resid[act] = -np.inf
                    worst = int(np.argmax(resid))
                    if resid[worst] > tol:
                        act.append(worst)
                        next_pending.append(i)
                        continue

                if n_eq and np.max(np.abs(A_eq @ x - b_eq)) > 1e-6:
                    results[i] = _scalar(i, None)
                    continue
                if (
                    warm_flags[i]
                    and act
                    and np.max(np.abs(A_ub[act] @ x - b_ub[act])) > 1e-6
                ):
                    # Warm path wandered into a degenerate set; the cold
                    # scalar solve never takes that route.
                    results[i] = _scalar(i, None)
                    continue

                results[i] = QPResult(
                    x.copy(), "optimal", iteration, tuple(sorted(act)), warm_flags[i]
                )
        pending = next_pending

    for i in pending:
        results[i] = _scalar(i, None)
    return results  # type: ignore[return-value]
