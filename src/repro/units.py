"""Unit conventions and conversion helpers.

The whole library uses one fixed set of units (see DESIGN.md §7):

* CPU capacity / allocation / demand: **gigahertz** (GHz) — the paper
  expresses CPU allocations as absolute cycles per second, e.g. 20% of a
  5 GHz CPU is ``c = 1.0`` GHz (paper §IV-A).
* Response time: **milliseconds** (ms).
* Simulation / wall-clock time: **seconds** (s).
* Power: **watts** (W).  Energy: **watt-hours** (Wh).

These helpers exist so that call sites carrying a value in a *different*
unit convert explicitly and legibly instead of sprinkling magic factors.
"""

from __future__ import annotations

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_MINUTE = 60.0
MS_PER_SECOND = 1000.0


def ghz(value: float) -> float:
    """Identity marker: *value* is already in GHz."""
    return float(value)


def mhz_to_ghz(value_mhz: float) -> float:
    """Convert megahertz to gigahertz."""
    return float(value_mhz) / 1000.0


def seconds_to_ms(value_s: float) -> float:
    """Convert seconds to milliseconds."""
    return float(value_s) * MS_PER_SECOND


def ms_to_seconds(value_ms: float) -> float:
    """Convert milliseconds to seconds."""
    return float(value_ms) / MS_PER_SECOND


def hours_to_seconds(value_h: float) -> float:
    """Convert hours to seconds."""
    return float(value_h) * SECONDS_PER_HOUR


def seconds_to_hours(value_s: float) -> float:
    """Convert seconds to hours."""
    return float(value_s) / SECONDS_PER_HOUR


def minutes_to_seconds(value_min: float) -> float:
    """Convert minutes to seconds."""
    return float(value_min) * SECONDS_PER_MINUTE


def watt_seconds_to_wh(value_ws: float) -> float:
    """Convert watt-seconds (joules) to watt-hours."""
    return float(value_ws) / SECONDS_PER_HOUR


def wh_to_watt_seconds(value_wh: float) -> float:
    """Convert watt-hours to watt-seconds (joules)."""
    return float(value_wh) * SECONDS_PER_HOUR


def share_to_ghz(share: float, cpu_ghz: float) -> float:
    """Convert a fractional CPU share of a ``cpu_ghz`` processor to GHz.

    Example from the paper: ``share_to_ghz(0.20, 5.0) == 1.0``.
    """
    if not 0.0 <= share:
        raise ValueError(f"share must be non-negative, got {share}")
    return float(share) * float(cpu_ghz)


def ghz_to_share(alloc_ghz: float, cpu_ghz: float) -> float:
    """Convert an absolute GHz allocation to a fraction of ``cpu_ghz``."""
    if cpu_ghz <= 0.0:
        raise ValueError(f"cpu_ghz must be positive, got {cpu_ghz}")
    return float(alloc_ghz) / float(cpu_ghz)
