"""Analytic queueing models: exact MVA for closed networks, M/M/1 helpers.

These serve three roles:

1. validation targets for the discrete-event simulator (a PS tier fed by
   a closed-loop client population must agree with exact MVA);
2. a fast approximate plant for large parameter sweeps;
3. sizing aids — picking service demands and allocations that make the
   paper's operating points (e.g. 1000 ms at concurrency 40) feasible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.util.validation import check_non_negative, check_positive

__all__ = [
    "MVAResult",
    "mva_closed_network",
    "approx_mva_closed_network",
    "mm1_mean_response_time",
    "mm1_utilization",
    "p90_from_mean_exponential",
    "closed_network_response_time_ms",
]


@dataclass(frozen=True)
class MVAResult:
    """Output of exact Mean Value Analysis for a closed network.

    Attributes
    ----------
    response_time_s:
        Mean end-to-end response time (sum over stations), seconds.
    throughput_rps:
        System throughput in requests per second.
    station_response_s:
        Per-station mean residence times, seconds.
    station_queue_len:
        Per-station mean number of requests present.
    station_utilization:
        Per-station utilization in [0, 1).
    """

    response_time_s: float
    throughput_rps: float
    station_response_s: np.ndarray
    station_queue_len: np.ndarray
    station_utilization: np.ndarray


def mva_closed_network(
    service_times_s: Sequence[float],
    n_clients: int,
    think_time_s: float,
    visits: Sequence[float] | None = None,
) -> MVAResult:
    """Exact single-class MVA for a closed queueing network.

    Stations are queueing (PS or FCFS-exponential — MVA is identical for
    both) with per-visit mean service times ``service_times_s``; clients
    cycle through all stations then think for ``think_time_s``.
    ``visits`` optionally scales per-station visit counts (default 1).

    The classic exact recursion (Reiser & Lavenberg):
    ``R_m(n) = v_m s_m (1 + Q_m(n-1))``, ``X(n) = n / (Z + sum R)``,
    ``Q_m(n) = X(n) R_m(n)``.
    """
    s = np.asarray(service_times_s, dtype=float)
    if s.ndim != 1 or s.size == 0:
        raise ValueError("service_times_s must be a non-empty 1-D sequence")
    if np.any(s < 0):
        raise ValueError(f"service times must be >= 0, got {s}")
    if n_clients < 0 or int(n_clients) != n_clients:
        raise ValueError(f"n_clients must be a non-negative integer, got {n_clients}")
    check_non_negative("think_time_s", think_time_s)
    v = np.ones_like(s) if visits is None else np.asarray(visits, dtype=float)
    if v.shape != s.shape:
        raise ValueError("visits must match service_times_s in length")
    if np.any(v < 0):
        raise ValueError(f"visits must be >= 0, got {v}")

    demand = v * s  # per-pass service demand at each station
    q = np.zeros_like(s)
    x = 0.0
    r = np.zeros_like(s)
    for n in range(1, int(n_clients) + 1):
        r = demand * (1.0 + q)
        total_r = float(r.sum())
        x = n / (think_time_s + total_r) if (think_time_s + total_r) > 0 else math.inf
        q = x * r
    total_r = float(r.sum()) if n_clients > 0 else 0.0
    util = np.clip(x * demand, 0.0, 1.0)
    return MVAResult(
        response_time_s=total_r,
        throughput_rps=float(x),
        station_response_s=r.copy(),
        station_queue_len=q.copy(),
        station_utilization=util,
    )


def approx_mva_closed_network(
    service_times_s: Sequence[float],
    n_clients: int,
    think_time_s: float,
    visits: Sequence[float] | None = None,
    tol: float = 1e-8,
    max_iter: int = 10_000,
) -> MVAResult:
    """Schweitzer's approximate MVA (fixed-point, O(M) per iteration).

    Exact MVA iterates over the population (O(N·M)), which is costly for
    sweeps over thousands of clients; Schweitzer's approximation replaces
    ``Q_m(n-1)`` with ``(n-1)/n * Q_m(n)`` and solves the fixed point.
    Errors are typically a few percent near saturation and vanish at the
    extremes.  Same arguments and result type as
    :func:`mva_closed_network`.
    """
    s = np.asarray(service_times_s, dtype=float)
    if s.ndim != 1 or s.size == 0:
        raise ValueError("service_times_s must be a non-empty 1-D sequence")
    if np.any(s < 0):
        raise ValueError(f"service times must be >= 0, got {s}")
    if n_clients < 0 or int(n_clients) != n_clients:
        raise ValueError(f"n_clients must be a non-negative integer, got {n_clients}")
    check_non_negative("think_time_s", think_time_s)
    v = np.ones_like(s) if visits is None else np.asarray(visits, dtype=float)
    if v.shape != s.shape:
        raise ValueError("visits must match service_times_s in length")
    n = int(n_clients)
    demand = v * s
    if n == 0:
        zero = np.zeros_like(s)
        return MVAResult(0.0, 0.0, zero, zero.copy(), zero.copy())

    q = np.full_like(s, n / s.size)  # start with an even split
    x = 0.0
    r = demand.copy()
    for _ in range(max_iter):
        r = demand * (1.0 + (n - 1) / n * q)
        total_r = float(r.sum())
        x = n / (think_time_s + total_r) if (think_time_s + total_r) > 0 else math.inf
        q_new = x * r
        if float(np.max(np.abs(q_new - q))) < tol:
            q = q_new
            break
        q = q_new
    util = np.clip(x * demand, 0.0, 1.0)
    return MVAResult(
        response_time_s=float(r.sum()),
        throughput_rps=float(x),
        station_response_s=r.copy(),
        station_queue_len=q.copy(),
        station_utilization=util,
    )


def closed_network_response_time_ms(
    demands_ghz_s: Sequence[float],
    allocations_ghz: Sequence[float],
    n_clients: int,
    think_time_s: float,
) -> float:
    """Mean response time (ms) of a closed multi-tier app via MVA.

    ``demands_ghz_s[j] / allocations_ghz[j]`` is tier *j*'s mean service
    time.  This is the analytic counterpart of one
    :class:`repro.apps.rubbos.MultiTierApp` operating point.
    """
    d = np.asarray(demands_ghz_s, dtype=float)
    c = np.asarray(allocations_ghz, dtype=float)
    if d.shape != c.shape:
        raise ValueError("demands and allocations must have equal length")
    if np.any(c <= 0):
        raise ValueError(f"allocations must be > 0, got {c}")
    service = d / c
    res = mva_closed_network(service, n_clients, think_time_s)
    return res.response_time_s * 1000.0


def mm1_utilization(arrival_rps: float, service_time_s: float) -> float:
    """Offered load rho = lambda * s of an M/M/1 queue."""
    check_non_negative("arrival_rps", arrival_rps)
    check_non_negative("service_time_s", service_time_s)
    return arrival_rps * service_time_s


def mm1_mean_response_time(arrival_rps: float, service_time_s: float) -> float:
    """Mean sojourn time of a stable M/M/1 queue: ``s / (1 - rho)``."""
    rho = mm1_utilization(arrival_rps, service_time_s)
    if rho >= 1.0:
        return math.inf
    return service_time_s / (1.0 - rho)


def p90_from_mean_exponential(mean: float) -> float:
    """90th percentile of an exponential with the given mean (= mean·ln 10).

    M/M/1 sojourn times are exactly exponential, so this converts the
    analytic mean into the paper's 90-percentile SLA metric.  For other
    distributions it is an approximation.
    """
    check_non_negative("mean", mean)
    return mean * math.log(10.0)
