"""Per-request CPU demand distributions.

Demands are denominated in **GHz-seconds** (billions of cycles): the
amount of CPU work one request needs at a given tier, independent of how
fast the hosting VM happens to run.  A request with demand ``d`` served
by a tier allocated ``c`` GHz takes ``d / c`` seconds of pure service
time (plus queueing).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.util.validation import check_positive

__all__ = ["DemandDistribution", "Deterministic", "Exponential", "Erlang", "LogNormal"]


class DemandDistribution(ABC):
    """A positive random variable with a known mean."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """Expected value."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value (> 0)."""

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw *n* values as an array (default: loop over sample)."""
        return np.asarray([self.sample(rng) for _ in range(n)], dtype=float)


class Deterministic(DemandDistribution):
    """Constant demand; zero variance."""

    def __init__(self, value: float):
        self._value = check_positive("value", value)

    @property
    def mean(self) -> float:
        return self._value

    def sample(self, rng: np.random.Generator) -> float:
        return self._value

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self._value)

    def __repr__(self) -> str:
        return f"Deterministic({self._value})"


class Exponential(DemandDistribution):
    """Exponential demand (coefficient of variation 1)."""

    def __init__(self, mean: float):
        self._mean = check_positive("mean", mean)

    @property
    def mean(self) -> float:
        return self._mean

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._mean))

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(self._mean, size=n)

    def __repr__(self) -> str:
        return f"Exponential(mean={self._mean})"


class Erlang(DemandDistribution):
    """Erlang-k demand: sum of k exponentials, CV = 1/sqrt(k).

    Lower variability than exponential; ``k=1`` degenerates to
    :class:`Exponential`.
    """

    def __init__(self, mean: float, k: int = 2):
        self._mean = check_positive("mean", mean)
        if k < 1 or int(k) != k:
            raise ValueError(f"k must be a positive integer, got {k}")
        self._k = int(k)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def k(self) -> int:
        """Number of exponential stages."""
        return self._k

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.gamma(self._k, self._mean / self._k))

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.gamma(self._k, self._mean / self._k, size=n)

    def __repr__(self) -> str:
        return f"Erlang(mean={self._mean}, k={self._k})"


class LogNormal(DemandDistribution):
    """Log-normal demand parameterized by mean and coefficient of variation.

    Heavy-ish right tail; a common fit for web service demands.
    """

    def __init__(self, mean: float, cv: float = 1.0):
        self._mean = check_positive("mean", mean)
        self._cv = check_positive("cv", cv)
        sigma2 = math.log(1.0 + cv * cv)
        self._sigma = math.sqrt(sigma2)
        self._mu = math.log(mean) - sigma2 / 2.0

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def cv(self) -> float:
        """Coefficient of variation (std / mean)."""
        return self._cv

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self._mu, self._sigma))

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(self._mu, self._sigma, size=n)

    def __repr__(self) -> str:
        return f"LogNormal(mean={self._mean}, cv={self._cv})"
