"""Client workload schedules (concurrency level over time).

The paper drives each RUBBoS instance with the Apache ``ab`` tool at a
fixed *concurrency level* — the number of closed-loop clients.  Its
stress experiment (Fig. 3) steps App5's concurrency from 40 to 80 during
t in [600 s, 1200 s].  A schedule maps simulated time to the integer
concurrency level the workload generator should hold.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple

__all__ = [
    "ConcurrencySchedule",
    "ConstantWorkload",
    "StepWorkload",
    "RampWorkload",
    "PiecewiseWorkload",
    "TraceWorkload",
]


class ConcurrencySchedule(ABC):
    """Maps simulated time (s) to an integer concurrency level."""

    @abstractmethod
    def level(self, time_s: float) -> int:
        """Concurrency level in effect at *time_s*."""

    @property
    @abstractmethod
    def max_level(self) -> int:
        """Largest level the schedule can ever return (for sizing)."""


class ConstantWorkload(ConcurrencySchedule):
    """Fixed concurrency for the whole run."""

    def __init__(self, level: int):
        if level < 0:
            raise ValueError(f"level must be >= 0, got {level}")
        self._level = int(level)

    def level(self, time_s: float) -> int:
        return self._level

    @property
    def max_level(self) -> int:
        return self._level

    def __repr__(self) -> str:
        return f"ConstantWorkload({self._level})"


class StepWorkload(ConcurrencySchedule):
    """Base level with a rectangular step to ``high`` on [t_start, t_end).

    ``StepWorkload(40, 80, 600, 1200)`` reproduces the paper's Fig. 3
    stress scenario.
    """

    def __init__(self, base: int, high: int, t_start_s: float, t_end_s: float):
        if base < 0 or high < 0:
            raise ValueError("levels must be >= 0")
        if not t_end_s > t_start_s:
            raise ValueError(
                f"t_end_s ({t_end_s}) must be after t_start_s ({t_start_s})"
            )
        self._base = int(base)
        self._high = int(high)
        self._t0 = float(t_start_s)
        self._t1 = float(t_end_s)

    def level(self, time_s: float) -> int:
        return self._high if self._t0 <= time_s < self._t1 else self._base

    @property
    def max_level(self) -> int:
        return max(self._base, self._high)

    def __repr__(self) -> str:
        return (
            f"StepWorkload(base={self._base}, high={self._high}, "
            f"t=[{self._t0}, {self._t1}))"
        )


class RampWorkload(ConcurrencySchedule):
    """Linear ramp from ``start`` to ``end`` over [t_start, t_end]."""

    def __init__(self, start: int, end: int, t_start_s: float, t_end_s: float):
        if start < 0 or end < 0:
            raise ValueError("levels must be >= 0")
        if not t_end_s > t_start_s:
            raise ValueError(
                f"t_end_s ({t_end_s}) must be after t_start_s ({t_start_s})"
            )
        self._a = int(start)
        self._b = int(end)
        self._t0 = float(t_start_s)
        self._t1 = float(t_end_s)

    def level(self, time_s: float) -> int:
        if time_s <= self._t0:
            return self._a
        if time_s >= self._t1:
            return self._b
        frac = (time_s - self._t0) / (self._t1 - self._t0)
        return int(round(self._a + frac * (self._b - self._a)))

    @property
    def max_level(self) -> int:
        return max(self._a, self._b)

    def __repr__(self) -> str:
        return (
            f"RampWorkload({self._a}->{self._b}, t=[{self._t0}, {self._t1}])"
        )


class PiecewiseWorkload(ConcurrencySchedule):
    """Step function defined by breakpoints ``[(t0, level0), (t1, level1), ...]``.

    Level ``level_i`` holds on ``[t_i, t_{i+1})``; the first breakpoint
    must be at time 0 so the level is defined everywhere.
    """

    def __init__(self, breakpoints: Sequence[Tuple[float, int]]):
        pts: List[Tuple[float, int]] = [(float(t), int(l)) for t, l in breakpoints]
        if not pts:
            raise ValueError("breakpoints must be non-empty")
        if pts[0][0] != 0.0:
            raise ValueError(f"first breakpoint must be at t=0, got {pts[0][0]}")
        for (ta, _), (tb, _) in zip(pts, pts[1:]):
            if not tb > ta:
                raise ValueError("breakpoint times must be strictly increasing")
        for _, level in pts:
            if level < 0:
                raise ValueError("levels must be >= 0")
        self._points = pts

    def level(self, time_s: float) -> int:
        current = self._points[0][1]
        for t, lvl in self._points:
            if time_s >= t:
                current = lvl
            else:
                break
        return current

    @property
    def max_level(self) -> int:
        return max(lvl for _, lvl in self._points)

    def __repr__(self) -> str:
        return f"PiecewiseWorkload({self._points})"


class TraceWorkload(ConcurrencySchedule):
    """Concurrency driven by a normalized utilization series.

    Bridges the trace substrate to the testbed: a series of values in
    [0, 1] (e.g. one row of a :class:`repro.traces.UtilizationTrace`) is
    mapped affinely onto ``[min_level, max_level]`` and held for
    ``interval_s`` per sample — a "day in the life" client population.
    Times beyond the series clamp to its last sample.
    """

    def __init__(
        self,
        series,
        interval_s: float,
        min_level: int,
        max_level: int,
        time_scale: float = 1.0,
    ):
        values = [float(v) for v in series]
        if not values:
            raise ValueError("series must be non-empty")
        if any(not 0.0 <= v <= 1.0 for v in values):
            raise ValueError("series values must lie in [0, 1]")
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        if not 0 <= min_level <= max_level:
            raise ValueError(
                f"need 0 <= min_level <= max_level, got {min_level}, {max_level}"
            )
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        self._values = values
        self._interval = float(interval_s) / float(time_scale)
        self._lo = int(min_level)
        self._hi = int(max_level)

    def level(self, time_s: float) -> int:
        idx = min(int(max(time_s, 0.0) // self._interval), len(self._values) - 1)
        frac = self._values[idx]
        return int(round(self._lo + frac * (self._hi - self._lo)))

    @property
    def max_level(self) -> int:
        return self._hi

    def __repr__(self) -> str:
        return (
            f"TraceWorkload({len(self._values)} samples x {self._interval:.0f}s, "
            f"levels [{self._lo}, {self._hi}])"
        )
