"""Request-level simulator of a multi-tier web application.

This is the synthetic stand-in for the paper's testbed workload: a PHP
RUBBoS bulletin board deployed as a two-tier application (Apache web
tier, MySQL database tier), one VM per tier, driven by the ``ab``
benchmarking tool at a fixed concurrency level (paper §VI-A).

Model
-----
* Each tier is a processor-sharing CPU (:class:`repro.sim.des.PSResource`)
  whose capacity equals the GHz allocation of the hosting VM — the
  quantity the paper's controller actuates.
* A fixed population of closed-loop clients (the concurrency level)
  cycles: think (exponential) → tier 1 → tier 2 → ... → record response
  time → think again.  This matches ``ab``'s closed-loop semantics.
* Per-visit CPU demands are drawn from configurable distributions
  (:mod:`repro.apps.demand`), so response times are stochastic and the
  90-percentile is measured *empirically* per control period, exactly as
  the testbed's response-time monitor would.

The app exposes :meth:`MultiTierApp.run_period`, which advances the
embedded discrete-event simulation by one control period and returns the
measurements the response-time controller consumes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.demand import DemandDistribution, Exponential
from repro.obs.reqtrace import RequestTrace, RequestTracer
from repro.sim.des import PSResource, SimEvent, Simulator
from repro.sim.metrics import PeriodStats
from repro.util.rng import RngLike, ensure_rng
from repro.util.validation import check_positive

__all__ = ["TierSpec", "AppSpec", "MultiTierApp"]


@dataclass(frozen=True)
class TierSpec:
    """Static description of one application tier.

    Attributes
    ----------
    name:
        Human-readable tier name (e.g. ``"web"``, ``"db"``).
    demand:
        Per-request CPU demand distribution in GHz-seconds.
    min_alloc_ghz / max_alloc_ghz:
        Acceptable range for the VM's CPU allocation; the controller's
        actuator constraints.
    max_concurrency:
        Optional admission cap — at most this many requests in CPU
        service simultaneously; excess requests wait FIFO at the tier's
        door.  Models a worker-pool limit (Apache ``MaxClients``, a DB
        connection pool).  ``None`` = unbounded processor sharing.
    """

    name: str
    demand: DemandDistribution
    min_alloc_ghz: float = 0.1
    max_alloc_ghz: float = 4.0
    max_concurrency: Optional[int] = None

    def __post_init__(self):
        check_positive("min_alloc_ghz", self.min_alloc_ghz)
        if self.max_alloc_ghz < self.min_alloc_ghz:
            raise ValueError(
                f"max_alloc_ghz ({self.max_alloc_ghz}) < min_alloc_ghz "
                f"({self.min_alloc_ghz})"
            )
        if self.max_concurrency is not None and self.max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {self.max_concurrency}"
            )


@dataclass(frozen=True)
class AppSpec:
    """Static description of a multi-tier application."""

    name: str
    tiers: Tuple[TierSpec, ...]
    think_time_s: float = 1.0

    def __post_init__(self):
        if not self.tiers:
            raise ValueError("an application needs at least one tier")
        check_positive("think_time_s", self.think_time_s)

    @property
    def n_tiers(self) -> int:
        """Number of tiers (= number of VMs hosting this app)."""
        return len(self.tiers)

    @staticmethod
    def rubbos(
        name: str = "rubbos",
        web_demand_ghz_s: float = 0.020,
        db_demand_ghz_s: float = 0.015,
        think_time_s: float = 1.0,
        max_alloc_ghz: float = 4.0,
    ) -> "AppSpec":
        """The default two-tier RUBBoS-like configuration.

        Demands are exponential with means of 20 ms (web) and 15 ms (db)
        of CPU time per request at 1 GHz — sized so that a ~1 GHz/tier
        allocation yields a 90-percentile response time near the paper's
        1000 ms set point at concurrency 40.
        """
        return AppSpec(
            name=name,
            tiers=(
                TierSpec("web", Exponential(web_demand_ghz_s), 0.1, max_alloc_ghz),
                TierSpec("db", Exponential(db_demand_ghz_s), 0.1, max_alloc_ghz),
            ),
            think_time_s=think_time_s,
        )


class _Tier:
    """One tier: a PS CPU behind an optional FIFO admission gate.

    With ``max_concurrency`` set, at most that many requests share the
    CPU; the rest wait in arrival order, as behind a worker-pool limit.
    The completion event's value is the *total* tier sojourn (admission
    wait + service).

    Without a cap the gate is pass-through, so ``submit`` hands back the
    PS resource's own completion event: same value (sojourn = service
    time), same synchronous callback chain, one fewer ``SimEvent`` and
    closure per request.
    """

    __slots__ = ("sim", "spec", "resource", "_waiting", "_in_service")

    def __init__(
        self,
        sim: Simulator,
        spec: TierSpec,
        capacity_ghz: float,
        resource_cls: type = PSResource,
    ):
        self.sim = sim
        self.spec = spec
        self.resource = resource_cls(sim, capacity_ghz)
        self._waiting: Deque[tuple] = deque()
        self._in_service = 0

    def submit(self, work_ghz_seconds: float) -> SimEvent:
        if self.spec.max_concurrency is None:
            # Ungated: the resource's event value is already the tier
            # sojourn (arrival == admission), bit-identical to wrapping.
            return self.resource.submit(float(work_ghz_seconds))
        outer = self.sim.event()
        job = (float(work_ghz_seconds), outer, self.sim.now)
        if self._in_service < self.spec.max_concurrency:
            self._start(job)
        else:
            self._waiting.append(job)
        return outer

    def _start(self, job: tuple) -> None:
        work, outer, arrival = job
        self._in_service += 1
        inner = self.resource.submit(work)
        inner.on_success(lambda _v: self._complete(outer, arrival))

    def _complete(self, outer: SimEvent, arrival: float) -> None:
        self._in_service -= 1
        outer.succeed(self.sim.now - arrival)
        cap = self.spec.max_concurrency
        while self._waiting and (cap is None or self._in_service < cap):
            self._start(self._waiting.popleft())

    # -- pass-throughs ---------------------------------------------------

    def set_capacity(self, capacity_ghz: float) -> None:
        self.resource.set_capacity(capacity_ghz)

    def degrade(self, fraction: float) -> None:
        self.resource.degrade(fraction)

    @property
    def degrade_fraction(self) -> float:
        return self.resource.degrade_fraction

    def reset_counters(self) -> None:
        self.resource.reset_counters()

    @property
    def work_done(self) -> float:
        return self.resource.work_done

    @property
    def queue_length(self) -> int:
        """Requests in service plus any waiting at the admission gate."""
        if self.spec.max_concurrency is None:
            return self.resource.queue_length
        return self._in_service + len(self._waiting)


class MultiTierApp:
    """A running multi-tier application with closed-loop clients.

    Parameters
    ----------
    spec:
        Static application description.
    initial_allocations_ghz:
        CPU allocation per tier, GHz.  Defaults to 1.0 GHz each.
    concurrency:
        Initial number of closed-loop clients.
    rng:
        Seed or generator for demands and think times.
    kernel:
        ``"fast"`` (default) uses the optimized DES kernel from
        :mod:`repro.sim.des`; ``"reference"`` uses the preserved
        original from :mod:`repro.sim.des_reference`.  The two are
        bit-identical — the reference exists for equivalence tests and
        for the ``des`` benchmark's baseline timing.
    """

    def __init__(
        self,
        spec: AppSpec,
        initial_allocations_ghz: Optional[Sequence[float]] = None,
        concurrency: int = 0,
        rng: RngLike = None,
        kernel: str = "fast",
    ):
        if kernel not in ("fast", "reference"):
            raise ValueError(f"kernel must be 'fast' or 'reference', got {kernel!r}")
        self.spec = spec
        self.kernel = kernel
        if kernel == "reference":
            from repro.sim.des_reference import ReferencePSResource, ReferenceSimulator

            self.sim: Simulator = ReferenceSimulator()
            resource_cls: type = ReferencePSResource
        else:
            self.sim = Simulator()
            resource_cls = PSResource
        self._rng = ensure_rng(rng)
        if initial_allocations_ghz is None:
            initial_allocations_ghz = [1.0] * spec.n_tiers
        alloc = np.asarray(initial_allocations_ghz, dtype=float)
        if alloc.shape != (spec.n_tiers,):
            raise ValueError(
                f"expected {spec.n_tiers} allocations, got shape {alloc.shape}"
            )
        self._alloc = np.empty(spec.n_tiers)
        self._tiers: List[_Tier] = [
            _Tier(self.sim, tier, 1.0, resource_cls) for tier in spec.tiers
        ]
        self.set_allocations(alloc)
        self._target_n = 0
        self._n_spawned = 0
        self._parked: Dict[int, SimEvent] = {}
        self._period_rts: List[float] = []
        self._tracer: Optional[RequestTracer] = None
        if concurrency:
            self.set_concurrency(concurrency)

    # -- configuration ------------------------------------------------------

    @property
    def allocations_ghz(self) -> np.ndarray:
        """Current per-tier CPU allocations (GHz), copied."""
        return self._alloc.copy()

    @property
    def concurrency(self) -> int:
        """Current target concurrency level."""
        return self._target_n

    def set_allocations(self, allocations_ghz: Sequence[float]) -> None:
        """Apply new per-tier allocations, clipped to each tier's range."""
        alloc = np.asarray(allocations_ghz, dtype=float)
        if alloc.shape != (self.spec.n_tiers,):
            raise ValueError(
                f"expected {self.spec.n_tiers} allocations, got shape {alloc.shape}"
            )
        for j, (tier, res) in enumerate(zip(self.spec.tiers, self._tiers)):
            value = float(np.clip(alloc[j], tier.min_alloc_ghz, tier.max_alloc_ghz))
            self._alloc[j] = value
            res.set_capacity(value)

    def degrade_tier(self, tier_index: int, fraction: float) -> None:
        """Deliver only *fraction* of tier ``tier_index``'s allocation.

        Fault-injection hook: the hosting server crashed (fraction 0) or
        is thermally throttled.  Orthogonal to :meth:`set_allocations` —
        a later allocation change keeps the degradation fraction.
        """
        self._tiers[tier_index].degrade(fraction)

    def tier_degrade_fraction(self, tier_index: int) -> float:
        """Current degradation fraction of tier ``tier_index``."""
        return self._tiers[tier_index].degrade_fraction

    def allocation_bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """(lower, upper) per-tier allocation bounds in GHz."""
        lo = np.asarray([t.min_alloc_ghz for t in self.spec.tiers])
        hi = np.asarray([t.max_alloc_ghz for t in self.spec.tiers])
        return lo, hi

    def set_concurrency(self, n: int) -> None:
        """Change the number of active closed-loop clients.

        Raising the level wakes parked clients / spawns new ones; lowering
        it lets extra clients finish their in-flight request and park.
        """
        if n < 0:
            raise ValueError(f"concurrency must be >= 0, got {n}")
        self._target_n = int(n)
        while self._n_spawned < self._target_n:
            idx = self._n_spawned
            self._n_spawned += 1
            self.sim.process(self._client_loop(idx))
        for idx in sorted(list(self._parked.keys())):
            if idx < self._target_n:
                ev = self._parked.pop(idx)
                ev.succeed(None)

    # -- execution ----------------------------------------------------------

    def warmup(self, duration_s: float) -> None:
        """Run *duration_s* seconds and discard all measurements."""
        self.sim.run_until(self.sim.now + float(duration_s))
        self._reset_period()

    def run_period(self, duration_s: float) -> PeriodStats:
        """Advance one control period and return its measurements."""
        duration_s = check_positive("duration_s", duration_s)
        self._reset_period()
        self.sim.run_until(self.sim.now + duration_s)
        rts = np.asarray(self._period_rts, dtype=float)
        utils = tuple(
            min(res.work_done / (self._alloc[j] * duration_s), 1.0)
            if self._alloc[j] > 0
            else 0.0
            for j, res in enumerate(self._tiers)
        )
        if rts.size:
            p90 = float(np.percentile(rts, 90.0))
            p50 = float(np.percentile(rts, 50.0))
            mean = float(rts.mean())
            rt_max = float(rts.max())
        else:
            p90 = p50 = mean = rt_max = float("nan")
        return PeriodStats(
            rt_p90_ms=p90,
            rt_mean_ms=mean,
            completed=int(rts.size),
            throughput_rps=rts.size / duration_s,
            utilizations=utils,
            rt_p50_ms=p50,
            rt_max_ms=rt_max,
        )

    def used_ghz(self, duration_s: float) -> np.ndarray:
        """Average GHz consumed per tier over the last ``duration_s``.

        Derived from each tier's ``work_done`` integral; callers must pass
        the same duration they ran.
        """
        return np.asarray(
            [res.work_done / duration_s for res in self._tiers], dtype=float
        )

    def queue_lengths(self) -> List[int]:
        """Instantaneous number of in-service requests per tier."""
        return [res.queue_length for res in self._tiers]

    # -- request-path tracing -------------------------------------------

    def enable_request_tracing(
        self, sample_every: int = 1, app: Optional[str] = None
    ) -> RequestTracer:
        """Trace every ``sample_every``-th request through the tiers.

        ``app`` names the application in trace IDs (defaults to the
        spec name).  Sampling is counter-based, and the traced client
        path draws the identical RNG sequence as the untraced one, so
        enabling tracing never changes simulated behaviour — only what
        gets recorded.
        """
        self._tracer = RequestTracer(app or self.spec.name, sample_every)
        return self._tracer

    def drain_traces(self) -> List[RequestTrace]:
        """Finished request traces since the last drain ([] if disabled)."""
        return self._tracer.drain() if self._tracer is not None else []

    # -- internals ------------------------------------------------------

    def _reset_period(self) -> None:
        self._period_rts = []
        for res in self._tiers:
            res.reset_counters()

    def _client_loop(self, idx: int):
        rng = self._rng
        think_mean = self.spec.think_time_s
        while True:
            if idx >= self._target_n:
                ev = self.sim.event()
                self._parked[idx] = ev
                yield ev
                continue
            # Yield the raw delay: the process schedules its own resume
            # directly, skipping the timeout SimEvent + callback hop.
            # Same single sequence number, same resume time.
            yield float(rng.exponential(think_mean))
            if idx >= self._target_n:
                continue
            t_start = self.sim.now
            tracer = self._tracer
            req = tracer.begin() if tracer is not None else -1
            if req >= 0:
                # Traced request: identical RNG draws and event sequence
                # as the plain path — it only *records* the per-tier
                # sojourn each completion event already carries.
                visits = []
                for tier_spec, res in zip(self.spec.tiers, self._tiers):
                    work = tier_spec.demand.sample(rng)
                    sojourn = yield res.submit(work)
                    visits.append((tier_spec.name, sojourn, work))
                tracer.finish(req, t_start, self.sim.now, visits)
            else:
                for tier_spec, res in zip(self.spec.tiers, self._tiers):
                    work = tier_spec.demand.sample(rng)
                    yield res.submit(work)
            self._period_rts.append((self.sim.now - t_start) * 1000.0)
