"""Application substrate: queueing models and a RUBBoS-like web app.

The paper's testbed ran RUBBoS, a two-tier PHP bulletin board (Apache web
tier + MySQL tier), driven by ``ab`` at a fixed concurrency level.  We do
not have the testbed, so this package provides the closest synthetic
equivalent (DESIGN.md §5): a request-level closed queueing network whose
tier speeds are the GHz allocations the controller actuates.
"""

from repro.apps.demand import (
    Deterministic,
    Erlang,
    Exponential,
    LogNormal,
    DemandDistribution,
)
from repro.apps.queueing import (
    approx_mva_closed_network,
    mva_closed_network,
    MVAResult,
    mm1_mean_response_time,
    mm1_utilization,
    p90_from_mean_exponential,
)
from repro.apps.workload import (
    ConcurrencySchedule,
    ConstantWorkload,
    StepWorkload,
    RampWorkload,
    PiecewiseWorkload,
    TraceWorkload,
)
from repro.apps.rubbos import MultiTierApp, TierSpec, AppSpec

__all__ = [
    "DemandDistribution",
    "Deterministic",
    "Exponential",
    "Erlang",
    "LogNormal",
    "mva_closed_network",
    "approx_mva_closed_network",
    "MVAResult",
    "mm1_mean_response_time",
    "mm1_utilization",
    "p90_from_mean_exponential",
    "ConcurrencySchedule",
    "ConstantWorkload",
    "StepWorkload",
    "RampWorkload",
    "PiecewiseWorkload",
    "TraceWorkload",
    "MultiTierApp",
    "TierSpec",
    "AppSpec",
]
