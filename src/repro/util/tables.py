"""Plain-text table rendering for benchmark and example output.

The benchmark harness reproduces the paper's figures as printed series;
:func:`format_table` renders them in aligned monospace columns so the
rows are directly comparable to the paper.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _cell(value) -> str:
    if isinstance(value, float):
        # Compact fixed-point keeps columns readable across magnitudes.
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render *rows* under *headers* as an aligned monospace table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    ncols = len(headers)
    for i, row in enumerate(str_rows):
        if len(row) != ncols:
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {ncols}: {row}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(widths[j]) for j, c in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
