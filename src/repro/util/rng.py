"""Seeded random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed,
a :class:`numpy.random.Generator`, or ``None`` (fresh entropy).  Routing
everything through :func:`ensure_rng` keeps experiments reproducible
bit-for-bit while letting quick interactive use stay terse.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce *rng* into a :class:`numpy.random.Generator`.

    ``None`` draws fresh OS entropy; an ``int`` seeds a new PCG64
    generator; an existing generator is passed through unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot build a Generator from {type(rng).__name__}")


def spawn_rngs(rng: RngLike, n: int) -> Sequence[np.random.Generator]:
    """Derive *n* statistically independent child generators.

    Children are independent of each other and of the parent's future
    output, so parallel components (e.g. one per application) do not
    share streams.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    parent = ensure_rng(rng)
    seeds = parent.bit_generator.seed_seq.spawn(n)  # type: ignore[union-attr]
    return [np.random.default_rng(s) for s in seeds]
