"""Small shared utilities: seeded RNG plumbing, validation, text rendering."""

from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
)
from repro.util.tables import format_table
from repro.util.ascii_chart import ascii_series, ascii_bars

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "check_finite",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "format_table",
    "ascii_series",
    "ascii_bars",
]
