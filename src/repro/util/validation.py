"""Argument-validation helpers with consistent error messages.

Raising early with the offending name and value keeps simulator bugs from
propagating as NaNs through long runs.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it as a float."""
    value = float(value)
    if not value > 0.0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it as a float."""
    value = float(value)
    if not value >= 0.0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Require ``lo <= value <= hi``; return it as a float."""
    value = float(value)
    if not lo <= value <= hi:
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value}")
    return value


def check_finite(name: str, value) -> None:
    """Require a scalar or array to contain only finite values."""
    arr = np.asarray(value, dtype=float)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite, got {value!r}")


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it as a float."""
    return check_in_range(name, value, 0.0, 1.0)


def check_monotone_increasing(name: str, values: Iterable[float]) -> None:
    """Require a strictly increasing sequence."""
    seq = list(values)
    for a, b in zip(seq, seq[1:]):
        if not b > a:
            raise ValueError(f"{name} must be strictly increasing, got {seq}")


def is_close(a: float, b: float, rel: float = 1e-9, abs_: float = 1e-12) -> bool:
    """Symmetric closeness test used by allocation bookkeeping."""
    return math.isclose(a, b, rel_tol=rel, abs_tol=abs_)
