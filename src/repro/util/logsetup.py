"""Stdlib-logging wiring shared by the CLI entry points.

The library logs through module-level ``repro.*`` loggers and never
configures handlers itself (the usual library discipline — embedding
applications decide where logs go).  The CLI entry points call
:func:`configure_logging` to attach one stderr handler to the ``repro``
root logger; the default level is WARNING, so runs are as quiet as
before the logging wiring existed unless ``--verbose`` is given.
"""

from __future__ import annotations

import argparse
import logging
import sys

__all__ = ["add_verbosity_flags", "configure_logging"]

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def add_verbosity_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--verbose``/``--quiet`` flags to *parser*."""
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log progress (-v: INFO, -vv: DEBUG)",
    )
    group.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress warnings (errors only)",
    )


def configure_logging(verbose: int = 0, quiet: bool = False) -> logging.Logger:
    """Point the ``repro`` logger hierarchy at stderr; returns the logger.

    Level mapping: default WARNING, ``-v`` INFO, ``-vv`` (or more) DEBUG,
    ``--quiet`` ERROR.  Idempotent — repeated calls reconfigure the same
    handler instead of stacking duplicates.
    """
    if quiet:
        level = logging.ERROR
    elif verbose >= 2:
        level = logging.DEBUG
    elif verbose == 1:
        level = logging.INFO
    else:
        level = logging.WARNING
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    logger.addHandler(handler)
    logger.propagate = False
    return logger
