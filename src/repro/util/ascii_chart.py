"""Minimal ASCII charts for terminal-only reproduction output.

No plotting backend is available offline, so benches render each paper
figure as (a) the exact numeric series and (b) a coarse ASCII sketch of
its shape.  The sketches are deliberately simple: they exist to make
"who wins, where's the crossover" visible at a glance in CI logs.
"""

from __future__ import annotations

from typing import Sequence


def ascii_series(
    values: Sequence[float],
    width: int = 72,
    height: int = 12,
    label: str = "",
) -> str:
    """Render a single series as a dot plot in a ``height``-row grid."""
    vals = [float(v) for v in values]
    if not vals:
        return f"{label} (empty)"
    lo, hi = min(vals), max(vals)
    if hi == lo:
        hi = lo + 1.0
    n = len(vals)
    # Downsample / stretch horizontally onto `width` columns.
    cols = min(width, n)
    grid = [[" "] * cols for _ in range(height)]
    for c in range(cols):
        i = int(c * (n - 1) / max(cols - 1, 1))
        frac = (vals[i] - lo) / (hi - lo)
        r = height - 1 - int(round(frac * (height - 1)))
        grid[r][c] = "*"
    lines = []
    if label:
        lines.append(label)
    for r, row in enumerate(grid):
        edge = f"{hi:10.2f} |" if r == 0 else (f"{lo:10.2f} |" if r == height - 1 else " " * 11 + "|")
        lines.append(edge + "".join(row))
    return "\n".join(lines)


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
) -> str:
    """Render labelled horizontal bars scaled to the max value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    vals = [float(v) for v in values]
    vmax = max(vals) if vals else 1.0
    if vmax <= 0:
        vmax = 1.0
    lw = max((len(str(l)) for l in labels), default=0)
    lines = [title] if title else []
    for lab, v in zip(labels, vals):
        bar = "#" * max(0, int(round(v / vmax * width)))
        lines.append(f"{str(lab).rjust(lw)} | {bar} {v:.2f}")
    return "\n".join(lines)
