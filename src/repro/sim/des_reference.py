"""Reference (pre-fast-lane) DES kernel, preserved verbatim.

The optimized kernel in :mod:`repro.sim.des` reorganizes the event
queue (batched dispatch, lazy-cancel compaction) and the
processor-sharing bookkeeping (slot arrays instead of per-job objects)
while keeping every floating-point operation in the same order — its
results are **bit-identical** to this module's.  This module keeps the
original, obviously-correct implementations around for two jobs:

* the equivalence property tests in ``tests/test_des_equivalence.py``
  drive random workloads through both kernels and assert bitwise-equal
  departure times, counters, and event logs;
* the ``des`` benchmark case times the fast lane against this kernel
  (``TestbedConfig.des_kernel="reference"``), so the reported speedup
  measures what the optimization actually bought.

Nothing here should be "improved" — it is the frozen baseline.  The
classes subclass / interoperate with :mod:`repro.sim.des` types
(:class:`~repro.sim.des.SimEvent`, :class:`~repro.sim.des.EventHandle`)
so application code is kernel-agnostic.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.obs import get_telemetry
from repro.sim.des import EventHandle, SimEvent, Simulator

__all__ = ["ReferenceSimulator", "ReferencePSResource"]


class ReferenceSimulator(Simulator):
    """The original event loop: ``peek``/``step`` calls per event, no
    heap compaction (cancelled handles linger until popped)."""

    def _maybe_compact(self) -> None:  # original behavior: never
        pass

    def run_until(self, until: float) -> None:
        """Original per-event loop (one ``peek`` + ``step`` call each)."""
        if until < self._now:
            raise ValueError(f"cannot run backwards to {until} from {self._now}")
        tel = get_telemetry()
        if not tel.enabled:
            while True:
                nxt = self.peek()
                if nxt > until:
                    break
                self.step()
            self._now = until
            return
        with tel.span("des.run_until", until=until) as sp:
            n_events = 0
            while True:
                nxt = self.peek()
                if nxt > until:
                    break
                self.step()
                n_events += 1
            self._now = until
            sp.annotate(events=n_events)
        tel.count("des.events", n_events)


class _PSJob:
    __slots__ = ("job_id", "remaining", "done_event", "arrival_time")

    def __init__(self, job_id: int, remaining: float, done_event: SimEvent, arrival_time: float):
        self.job_id = job_id
        self.remaining = remaining  # remaining work in GHz-seconds (gigacycles)
        self.done_event = done_event
        self.arrival_time = arrival_time


class ReferencePSResource:
    """Original egalitarian PS queue: one ``_PSJob`` object per request,
    a full per-job rescan in ``_advance``, dict bookkeeping.

    Semantics are documented on the optimized
    :class:`repro.sim.des.PSResource`; the two must stay bit-identical.
    """

    __slots__ = (
        "sim",
        "_capacity",
        "_nominal",
        "_degrade_fraction",
        "_jobs",
        "_next_id",
        "_completion",
        "_last_update",
        "busy_time",
        "work_done",
        "completed_jobs",
    )

    def __init__(self, sim: Simulator, capacity_ghz: float):
        if capacity_ghz < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_ghz}")
        self.sim = sim
        self._capacity = float(capacity_ghz)
        self._nominal = float(capacity_ghz)
        self._degrade_fraction = 1.0
        self._jobs: Dict[int, _PSJob] = {}
        self._next_id = 0
        self._completion: Optional[EventHandle] = None
        self._last_update = sim.now
        self.busy_time = 0.0  # seconds with >=1 job present
        self.work_done = 0.0  # GHz-seconds actually processed
        self.completed_jobs = 0

    @property
    def capacity_ghz(self) -> float:
        """Current *effective* service capacity in GHz (after degradation)."""
        return self._capacity

    @property
    def nominal_capacity_ghz(self) -> float:
        """Allocated capacity in GHz, before any degradation."""
        return self._nominal

    @property
    def degrade_fraction(self) -> float:
        """Fraction of the nominal capacity currently delivered."""
        return self._degrade_fraction

    @property
    def queue_length(self) -> int:
        """Number of jobs currently in service."""
        return len(self._jobs)

    def set_capacity(self, capacity_ghz: float) -> None:
        """Change capacity; in-flight jobs keep their remaining work."""
        if capacity_ghz < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_ghz}")
        self._advance()
        self._nominal = float(capacity_ghz)
        self._capacity = self._nominal * self._degrade_fraction
        self._reschedule()

    def degrade(self, fraction: float) -> None:
        """Deliver only *fraction* of the nominal capacity."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        self._advance()
        self._degrade_fraction = float(fraction)
        self._capacity = self._nominal * self._degrade_fraction
        self._reschedule()

    def restore(self) -> None:
        """Lift any degradation: effective capacity returns to nominal."""
        self.degrade(1.0)

    def submit(self, work_ghz_seconds: float) -> SimEvent:
        """Add a job of the given size; returns its completion event."""
        if work_ghz_seconds <= 0 or not math.isfinite(work_ghz_seconds):
            raise ValueError(f"work must be finite and > 0, got {work_ghz_seconds}")
        self._advance()
        self._next_id += 1
        ev = self.sim.event()
        job = _PSJob(self._next_id, float(work_ghz_seconds), ev, self.sim.now)
        self._jobs[job.job_id] = job
        self._reschedule()
        return ev

    def reset_counters(self) -> None:
        """Zero the busy-time / work-done integrals (per-period stats)."""
        self._advance()
        self.busy_time = 0.0
        self.work_done = 0.0
        self.completed_jobs = 0

    # -- internal machinery ------------------------------------------------

    def _advance(self) -> None:
        """Account for processing between the last update and now."""
        now = self.sim.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._jobs:
            return
        n = len(self._jobs)
        rate = self._capacity / n
        self.busy_time += dt
        self.work_done += self._capacity * dt
        eps = 1e-12
        finished: List[_PSJob] = []
        for job in self._jobs.values():
            job.remaining -= rate * dt
            if job.remaining <= eps:
                finished.append(job)
        for job in finished:
            del self._jobs[job.job_id]
            self.completed_jobs += 1
            job.done_event.succeed(now - job.arrival_time)

    def _reschedule(self) -> None:
        """(Re)book the next completion event from current state."""
        if self._completion is not None:
            self._completion.cancel()
            self._completion = None
        if not self._jobs or self._capacity <= 0:
            return
        n = len(self._jobs)
        min_remaining = min(job.remaining for job in self._jobs.values())
        delay = max(min_remaining, 0.0) * n / self._capacity
        self._completion = self.sim.schedule(delay, self._on_completion)

    def _on_completion(self) -> None:
        self._completion = None
        self._advance()
        self._reschedule()
